//! End-to-end tests for `tapeflow lint`: each seeded-broken fixture under
//! `tests/lint/` proves one rule family live against a golden table
//! (regenerate with `BLESS=1 cargo test --test lint_cli`), the JSON
//! report is schema-checked and byte-stable across runs, every in-tree
//! benchmark lints clean, unknown program names exit with a structured
//! error instead of a panic, and `--lint-after-all` leaves the simulate
//! output byte-identical.

use std::path::PathBuf;
use std::process::Command;
use tapeflow::sim::json::Value;

fn target_tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create target tmpdir");
    dir.join(name)
}

fn tapeflow(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tapeflow"))
        .args(args)
        .output()
        .expect("run tapeflow")
}

/// (fixture stem, expected exit code). Error findings exit 1; the
/// warning-only bank-stride fixture stays 0.
const FIXTURES: [(&str, i32); 5] = [
    ("oob_tape_index", 1),
    ("spad_overflow", 1),
    ("stream_cycle", 1),
    ("bank_stride", 0),
    ("float_nonfinite", 1),
];

#[test]
fn seeded_fixture_tables_are_golden() {
    for (stem, want_code) in FIXTURES {
        let file = format!("tests/lint/{stem}.tf");
        let out = tapeflow(&["lint", &file]);
        assert_eq!(
            out.status.code(),
            Some(want_code),
            "{stem}: exit code (stderr: {})",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = String::from_utf8(out.stdout).expect("utf-8 stdout");
        let path = format!("tests/golden/lint_{stem}.txt");
        if std::env::var_os("BLESS").is_some() {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with BLESS=1)"));
        assert_eq!(
            got, want,
            "{stem}: lint table drifted from {path} \
             (intentional? regenerate with BLESS=1 cargo test --test lint_cli)"
        );
    }
}

#[test]
fn every_benchmark_lints_clean_at_default_config() {
    for name in tapeflow::benchmarks::NAMES {
        let out = tapeflow(&["lint", name, "--scale", "tiny"]);
        assert!(
            out.status.success(),
            "{name}: lint found errors:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("0 error(s)"),
            "{name}: unexpected summary: {stdout}"
        );
    }
}

#[test]
fn json_report_matches_schema_and_is_deterministic() {
    let docs: Vec<String> = (0..3)
        .map(|i| {
            let path = target_tmp(&format!("lint_oob_{i}.json"));
            let out = tapeflow(&[
                "lint",
                "tests/lint/oob_tape_index.tf",
                "--json",
                path.to_str().unwrap(),
            ]);
            assert_eq!(out.status.code(), Some(1));
            std::fs::read_to_string(&path).expect("json written")
        })
        .collect();
    assert_eq!(docs[0], docs[1], "lint JSON differs across runs");
    assert_eq!(docs[1], docs[2], "lint JSON differs across runs");

    let doc = Value::parse(&docs[0]).expect("lint JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("tapeflow.cli.lint/v2")
    );
    assert_eq!(
        doc.get("program").and_then(Value::as_str),
        Some("tests/lint/oob_tape_index.tf")
    );
    for key in ["spad_entries", "spad_banks", "errors", "warnings"] {
        assert!(
            doc.get(key).and_then(Value::as_u64).is_some(),
            "missing or non-numeric {key}"
        );
    }
    assert_eq!(doc.get("errors").and_then(Value::as_u64), Some(2));
    let diags = doc
        .get("diagnostics")
        .and_then(Value::as_arr)
        .expect("diagnostics array");
    assert_eq!(diags.len(), 2);
    for d in diags {
        assert_eq!(
            d.get("rule").and_then(Value::as_str),
            Some("tape-index-oob")
        );
        assert_eq!(d.get("severity").and_then(Value::as_str), Some("error"));
        assert!(d.get("inst").and_then(Value::as_u64).is_some(), "inst");
        assert!(d.get("array").and_then(Value::as_u64).is_some(), "array");
        assert!(
            d.get("message")
                .and_then(Value::as_str)
                .is_some_and(|m| m.contains("8 elements")),
            "message"
        );
    }
    // v2 range census: bounded/total value counts plus per-array
    // content ranges, even on the direct (already-lowered) lint path.
    let ranges = doc.get("ranges").expect("v2 carries a ranges section");
    for key in ["bounded_i64", "total_i64", "bounded_f64", "total_f64"] {
        assert!(
            ranges.get(key).and_then(Value::as_u64).is_some(),
            "missing or non-numeric ranges.{key}"
        );
    }
    let arrays = ranges
        .get("arrays")
        .and_then(Value::as_arr)
        .expect("ranges.arrays");
    assert!(!arrays.is_empty());
    for a in arrays {
        assert!(a.get("name").and_then(Value::as_str).is_some());
        assert!(a.get("content").and_then(Value::as_str).is_some());
    }
}

#[test]
fn compressed_benchmark_json_reports_narrowing_decisions() {
    let path = target_tmp("lint_matdescent_v2.json");
    let out = tapeflow(&[
        "lint",
        "matdescent",
        "--scale",
        "tiny",
        "--compress-tape",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let ranges = doc.get("ranges").expect("ranges section");
    let narrowing = ranges
        .get("narrowing")
        .and_then(Value::as_arr)
        .expect("narrowing decisions under --compress-tape");
    assert!(!narrowing.is_empty());
    // matdescent's A·x product slot narrows to a single byte; the input
    // copies are elided outright.
    let encodings: Vec<&str> = narrowing
        .iter()
        .filter_map(|n| n.get("encoding").and_then(Value::as_str))
        .collect();
    assert!(encodings.contains(&"remat"), "{encodings:?}");
    assert!(encodings.contains(&"keep"), "{encodings:?}");
    assert!(narrowing
        .iter()
        .any(|n| n.get("width_bytes").and_then(Value::as_u64) == Some(1)));
}

#[test]
fn check_dynamic_is_green_on_benchmarks() {
    for name in ["matdescent", "pathfinder"] {
        let out = tapeflow(&[
            "lint",
            name,
            "--scale",
            "tiny",
            "--compress-tape",
            "--check-dynamic",
        ]);
        assert!(
            out.status.success(),
            "{name}: {}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("=== dynamic range oracle ==="), "{stdout}");
        assert!(stdout.contains("dynamic oracle: 0 escape(s)"), "{stdout}");
        // Both the source program and its gradient function ran under
        // the recorder.
        assert!(stdout.contains("source"), "{stdout}");
        assert!(stdout.contains("gradient"), "{stdout}");
    }
}

#[test]
fn explain_prints_catalog_entries_and_rejects_unknown_rules() {
    let out = tapeflow(&["lint", "--explain", "unsound-narrow"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("unsound-narrow (error, plan level)"),
        "{stdout}"
    );
    assert!(stdout.contains("its own checker"), "{stdout}");

    let out = tapeflow(&["lint", "--explain", "float-nonfinite"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("NaN"), "{stdout}");

    let out = tapeflow(&["lint", "--explain", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no lint rule named") && stderr.contains("tape-index-oob"),
        "the error should list the catalog: {stderr}"
    );
}

#[test]
fn benchmark_json_runs_are_byte_identical() {
    let runs: Vec<String> = (0..2)
        .map(|i| {
            let path = target_tmp(&format!("lint_logsum_{i}.json"));
            let out = tapeflow(&[
                "lint",
                "logsum",
                "--scale",
                "tiny",
                "--json",
                path.to_str().unwrap(),
            ]);
            assert!(out.status.success());
            let stdout = String::from_utf8(out.stdout).expect("utf-8");
            stdout + &std::fs::read_to_string(&path).expect("json written")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "lint output differs across runs");
}

#[test]
fn unknown_program_name_is_a_structured_error() {
    for cmd in ["lint", "simulate", "profile"] {
        let out = tapeflow(&[cmd, "nosuch_program"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{cmd}: expected usage-error exit"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("neither a readable IR file nor a registered benchmark"),
            "{cmd}: stderr: {stderr}"
        );
        assert!(
            stderr.contains("logsum") && stderr.contains("mass_spring"),
            "{cmd}: error should list the registry: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{cmd}: panicked: {stderr}");
    }
}

#[test]
fn lint_after_all_leaves_simulate_output_byte_identical() {
    let json_a = target_tmp("sim_plain.json");
    let json_b = target_tmp("sim_linted.json");
    let plain = tapeflow(&[
        "simulate",
        "logsum",
        "--scale",
        "tiny",
        "--json",
        json_a.to_str().unwrap(),
    ]);
    let linted = tapeflow(&[
        "simulate",
        "logsum",
        "--scale",
        "tiny",
        "--lint-after-all",
        "--json",
        json_b.to_str().unwrap(),
    ]);
    assert!(plain.status.success() && linted.status.success());
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&linted.stdout),
        "--lint-after-all changed simulate stdout"
    );
    // The report embeds per-pass wall-clock timings that differ between
    // any two runs; everything else must match byte for byte.
    let strip_timings = |text: String| -> String {
        text.lines()
            .filter(|l| !l.trim_start().starts_with("\"seconds\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_timings(std::fs::read_to_string(&json_a).unwrap()),
        strip_timings(std::fs::read_to_string(&json_b).unwrap()),
        "--lint-after-all changed the simulate JSON report"
    );
}

#[test]
fn lint_after_all_reports_pass_boundaries_on_stderr() {
    // Compiling a source program with --lint-after-all banners every
    // pass boundary on stderr, even when each comes back clean.
    let out = tapeflow(&[
        "lint",
        "programs/sumexp.tf",
        "--wrt",
        "x",
        "--loss",
        "loss",
        "--lint-after-all",
    ]);
    assert!(
        out.status.success(),
        "lint failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for pass in [
        "opt",
        "ad",
        "regions",
        "layering",
        "value-ranges",
        "streams",
        "spad-index",
    ] {
        assert!(
            stderr.contains(&format!(": {pass} (")),
            "missing lint banner for pass {pass:?} on stderr: {stderr}"
        );
    }
}
