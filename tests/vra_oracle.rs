//! The dynamic soundness oracle as a property, plus the transparency
//! regression for declared ranges.
//!
//! Property: random programs (in-tree RNG, no `rand`) interpreted under
//! a [`RangeRecorder`] never observe a value or array element outside
//! what the static value-range analysis proved — any escape is a
//! soundness bug in `tapeflow_ir::vra` (or a dishonest generated
//! input) and fails hard. A subset of the corpus is additionally
//! differentiated and the gradient function is held to the same oracle.
//!
//! Regression: declared ranges are a *transparent codec* — stripping
//! every annotation from an annotated benchmark must leave the compiled
//! gradient values byte-identical, while annotations may only shrink
//! the modeled tape traffic.

use tapeflow::autodiff::{differentiate, AdOptions, Gradient};
use tapeflow::benchmarks::{by_name, Scale};
use tapeflow::core::pipeline::PipelineBuilder;
use tapeflow::core::CompileOptions;
use tapeflow::ir::interp::{self, RangeRecorder};
use tapeflow::ir::{vra, ArrayId, ArrayKind, DeclRange, Function, FunctionBuilder, Memory, Scalar};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

/// One random program: a bounded quantized-or-not input `x` read through
/// a bounded index array `k` (exercising the array-content domain), an
/// unannotated input `y`, a random float expression DAG, and a
/// loop-carried accumulator (exercising widening). Inputs are generated
/// honest to their declared ranges.
fn random_program(seed: u64) -> (Function, Memory) {
    let mut rng = Rng::new(seed);
    let n = 4 + rng.below(5) as usize;
    let lo = -(rng.below(4) as i64);
    let hi = lo + 1 + rng.below(9) as i64;
    let quantized = rng.below(2) == 0;
    let mut b = FunctionBuilder::new("prop");
    let x = b.array_ranged(
        "x",
        n,
        ArrayKind::Input,
        Scalar::F64,
        DeclRange::Float {
            lo: lo as f64,
            hi: hi as f64,
            quantized,
        },
    );
    let k = b.array_ranged(
        "k",
        n,
        ArrayKind::Input,
        Scalar::I64,
        DeclRange::Int {
            lo: 0,
            hi: n as i64 - 1,
        },
    );
    let y = b.array("y", n, ArrayKind::Input, Scalar::F64);
    let out = b.array("out", n, ArrayKind::Output, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let j = b.load(k, i);
        let xv = b.load(x, j);
        let yv = b.load(y, i);
        let mut vals = vec![xv, yv];
        for _ in 0..2 + rng.below(6) {
            let a = vals[rng.below(vals.len() as u64) as usize];
            let c = vals[rng.below(vals.len() as u64) as usize];
            let v = match rng.below(8) {
                0 => b.fadd(a, c),
                1 => b.fsub(a, c),
                2 => b.fmul(a, c),
                3 => b.fmin(a, c),
                4 => b.fmax(a, c),
                5 => b.fabs(a),
                6 => b.tanh(a),
                _ => {
                    // Division with a denominator provably >= 1: never a
                    // runtime zero-division, never provably non-finite.
                    let d = b.fabs(c);
                    let one = b.f64(1.0);
                    let dd = b.fadd(d, one);
                    b.fdiv(a, dd)
                }
            };
            vals.push(v);
        }
        let last = *vals.last().expect("at least the two loads");
        b.store(out, i, last);
        let cur = b.load_cell(loss);
        let s = b.fadd(cur, last);
        b.store_cell(loss, s);
    });
    let f = b.finish();
    let mut mem = Memory::for_function(&f);
    let xs: Vec<f64> = (0..n)
        .map(|_| {
            let v = rng.f64_in(lo as f64, hi as f64);
            if quantized {
                v.floor().clamp(lo as f64, hi as f64)
            } else {
                v
            }
        })
        .collect();
    mem.set_f64(x, &xs);
    let ks: Vec<i64> = (0..n).map(|_| rng.below(n as u64) as i64).collect();
    mem.set_i64(k, &ks);
    let ys: Vec<f64> = (0..n).map(|_| rng.f64_in(-2.0, 2.0)).collect();
    mem.set_f64(y, &ys);
    (f, mem)
}

/// Runs `f` under the recorder and asserts containment in the fresh
/// static result. Returns the count of statically bounded f64 values so
/// callers can prove the corpus is not vacuous.
fn assert_contained(label: &str, f: &Function, mem: &mut Memory) -> usize {
    tapeflow::ir::verify::verify(f).unwrap_or_else(|e| panic!("{label}: {e}"));
    let rec = RangeRecorder::new(f, mem);
    let (rec, _) = interp::execute(f, mem, rec).unwrap_or_else(|e| panic!("{label}: {e}"));
    let ranges = vra::value_ranges(f);
    let escapes = vra::check_containment(f, &ranges, &rec);
    assert!(
        escapes.is_empty(),
        "{label}: dynamic observations escape the static ranges:\n{}",
        escapes
            .iter()
            .map(|e| format!("  {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    ranges.float_census(f).0
}

#[test]
fn random_programs_stay_inside_their_static_ranges() {
    let mut bounded = 0;
    for seed in 0..60 {
        let (f, mut mem) = random_program(seed);
        bounded += assert_contained(&format!("seed {seed}"), &f, &mut mem);
    }
    assert!(
        bounded > 100,
        "the corpus proved almost nothing bounded ({bounded}); generator drifted?"
    );
}

#[test]
fn random_gradients_stay_inside_their_static_ranges() {
    for seed in 0..12 {
        let (f, mem) = random_program(seed);
        let wrt = f.array_by_name("y").unwrap();
        let loss = f.array_by_name("loss").unwrap();
        let grad = differentiate(&f, &AdOptions::new(vec![wrt], vec![loss]))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut gmem = grad.prepare_memory(&f, &mem);
        gmem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
        assert_contained(&format!("seed {seed} gradient"), &grad.func, &mut gmem);
    }
}

#[test]
fn benchmark_oracle_is_green_at_tiny_scale() {
    for name in tapeflow::benchmarks::NAMES {
        let b = by_name(name, Scale::Tiny);
        let mut mem = b.mem.clone();
        assert_contained(name, &b.func, &mut mem);
        let grad = b.gradient();
        let mut gmem = b.gradient_memory(&grad);
        assert_contained(&format!("{name} gradient"), &grad.func, &mut gmem);
    }
}

// ---------------------------------------------------------------------------
// Transparency regression
// ---------------------------------------------------------------------------

fn compile_compressed(
    f: &Function,
    wrt: &[ArrayId],
    loss: ArrayId,
) -> (Gradient, Function, u64, usize) {
    let opts = CompileOptions {
        compress_tape: true,
        ..CompileOptions::default()
    };
    let run = PipelineBuilder::full(opts, AdOptions::new(wrt.to_vec(), vec![loss]))
        .with_verify(true)
        .run_source(f)
        .unwrap();
    let grad = run.state.gradient.clone().unwrap();
    let enc = run.state.encoding.clone().unwrap();
    let compiled = run.state.current_ir().unwrap().clone();
    (grad, compiled, enc.bytes_after, enc.narrowed_slots)
}

/// Executes a compiled variant against the benchmark's inputs and
/// returns every wrt-shadow bit pattern.
fn gradient_bits(
    source: &Function,
    variant: &Function,
    base: &Memory,
    grad: &Gradient,
    wrt: &[ArrayId],
    loss: ArrayId,
) -> Vec<u64> {
    let mut mem = Memory::for_function(variant);
    for i in 0..source.arrays().len() {
        mem.clone_array_from(base, ArrayId::new(i));
    }
    mem.set_f64_at(grad.shadow_of(loss).expect("loss shadow"), 0, 1.0);
    interp::run(variant, &mut mem).expect("compiled variant executes");
    wrt.iter()
        .flat_map(|&w| {
            mem.get_f64(grad.shadow_of(w).expect("wrt shadow"))
                .into_iter()
                .map(f64::to_bits)
        })
        .collect()
}

#[test]
fn stripping_annotations_never_changes_gradient_bits() {
    // The three benchmarks whose annotations make narrowing fire, plus
    // one whose annotation exists but cannot narrow (tanh breaks
    // quantization) — transparency must hold either way.
    for name in ["matdescent", "mttkrp", "pathfinder", "nn"] {
        let b = by_name(name, Scale::Tiny);
        let mut stripped = b.func.clone();
        stripped.clear_array_ranges();

        let (ga, fa, bytes_a, _) = compile_compressed(&b.func, &b.wrt, b.loss.array);
        let (gb, fb, bytes_b, _) = compile_compressed(&stripped, &b.wrt, b.loss.array);

        // AD never reads the annotations: the gradient functions differ
        // only in their array-declaration lines.
        let body_only = |g: &Gradient| {
            tapeflow::ir::pretty::pretty(&g.func)
                .to_string()
                .lines()
                .filter(|l| !l.trim_start().starts_with("array "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body_only(&ga), body_only(&gb), "{name}: AD read the ranges");

        // The codec is transparent: compiled gradients are bit-equal.
        let bits_a = gradient_bits(&b.func, &fa, &b.mem, &ga, &b.wrt, b.loss.array);
        let bits_b = gradient_bits(&stripped, &fb, &b.mem, &gb, &b.wrt, b.loss.array);
        assert!(!bits_a.is_empty());
        assert_eq!(bits_a, bits_b, "{name}: annotations changed gradient bits");

        // Annotations may only shrink the modeled tape traffic.
        assert!(
            bytes_a <= bytes_b,
            "{name}: annotated traffic {bytes_a} exceeds stripped {bytes_b}"
        );
    }
}

#[test]
fn annotations_are_what_make_narrowing_fire() {
    // On the narrowing benchmarks the declared ranges are load-bearing:
    // stripped, the quantized-float proof disappears and the modeled
    // traffic goes strictly up.
    for name in ["matdescent", "mttkrp", "pathfinder"] {
        let b = by_name(name, Scale::Tiny);
        let mut stripped = b.func.clone();
        stripped.clear_array_ranges();
        let (_, _, bytes_a, narrowed_a) = compile_compressed(&b.func, &b.wrt, b.loss.array);
        let (_, _, bytes_b, narrowed_b) = compile_compressed(&stripped, &b.wrt, b.loss.array);
        assert!(narrowed_a > 0, "{name}: nothing narrowed while annotated");
        assert!(
            bytes_a < bytes_b || narrowed_a > narrowed_b,
            "{name}: stripping changed nothing \
             (annotated {bytes_a} B/{narrowed_a} slots, \
             stripped {bytes_b} B/{narrowed_b} slots)"
        );
    }
}
