//! Cross-crate integration through the `tapeflow` facade: the README's
//! advertised flow, determinism, and ablations of the design choices
//! DESIGN.md calls out.

use tapeflow::autodiff::{differentiate, AdOptions, TapePolicy};
use tapeflow::benchmarks::{by_name, Scale};
use tapeflow::core::{compile, CompileOptions};
use tapeflow::ir::trace::{trace_function, TraceOptions};
use tapeflow::ir::{ArrayId, ArrayKind, FunctionBuilder, Memory, Scalar};
use tapeflow::sim::{simulate, Cache, CacheConfig, ReplacementPolicy, SimOptions, SystemConfig};

#[test]
fn readme_flow_works_through_the_facade() {
    let mut b = FunctionBuilder::new("readme");
    let x = b.array("x", 32, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, 32, |b, i| {
        let v = b.load(x, i);
        let e = b.exp(v);
        let c = b.load_cell(loss);
        let s = b.fadd(c, e);
        b.store_cell(loss, s);
    });
    let f = b.finish();
    let grad = differentiate(&f, &AdOptions::new(vec![x], vec![loss])).unwrap();
    let compiled = compile(&grad, &CompileOptions::default()).unwrap();
    let mut mem = Memory::for_function(&compiled.func);
    mem.set_f64(x, &[0.1; 32]);
    mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    let trace = trace_function(
        &compiled.func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(compiled.phase_barrier),
        },
    )
    .unwrap();
    let report = simulate(&trace, &SystemConfig::default(), &SimOptions::default());
    assert!(report.cycles > 0);
    let d = mem.get_f64(grad.shadow_of(x).unwrap());
    assert!(d.iter().all(|&g| (g - 0.1f64.exp()).abs() < 1e-12));
}

#[test]
fn simulation_is_deterministic() {
    let bench = by_name("pathfinder", Scale::Tiny);
    let grad = bench.gradient();
    let run = || {
        let mut mem = bench.gradient_memory(&grad);
        let t = trace_function(
            &grad.func,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(grad.phase_barrier),
            },
        )
        .unwrap();
        let r = simulate(&t, &SystemConfig::default(), &SimOptions::default());
        (
            t.len(),
            t.edge_count(),
            r.cycles,
            r.cache.hits,
            r.dram_bytes(),
        )
    };
    assert_eq!(run(), run(), "trace and simulation must be reproducible");
}

#[test]
fn tape_policy_ablation_orders_tape_sizes() {
    // Minimal <= Conservative <= All, strictly somewhere.
    let bench = by_name("matdescent", Scale::Tiny);
    let sizes: Vec<u64> = [
        TapePolicy::Minimal,
        TapePolicy::Conservative,
        TapePolicy::All,
    ]
    .into_iter()
    .map(|p| bench.gradient_with(p).stats.tape_bytes)
    .collect();
    assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "{sizes:?}");
    assert!(sizes[0] < sizes[2], "policies must differ: {sizes:?}");
}

#[test]
fn replacement_policy_does_not_rescue_the_baseline() {
    // Paper Obs 1.3: the tape's mixed reuse defeats policy tweaks. FIFO
    // and LRU must land within a modest factor of each other, both far
    // from eliminating tape misses.
    let bench = by_name("mttkrp", Scale::Small);
    let grad = bench.gradient();
    let mut mem = bench.gradient_memory(&grad);
    let t = trace_function(
        &grad.func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(grad.phase_barrier),
        },
    )
    .unwrap();
    let mut results = Vec::new();
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
        let mut cfg = SystemConfig::with_cache_bytes(8 * 1024);
        cfg.cache.policy = policy;
        let r = simulate(&t, &cfg, &SimOptions::default());
        assert!(r.cache.tape_misses > 0, "{policy:?}");
        results.push(r.cycles as f64);
    }
    let ratio = results[0] / results[1];
    assert!(
        (0.5..2.0).contains(&ratio),
        "policies within 2x of each other: {ratio:.2}"
    );
}

#[test]
fn cache_model_exposed_for_standalone_use() {
    // The cache is a reusable component in its own right.
    let mut c = Cache::new(CacheConfig {
        size_bytes: 512,
        assoc: 2,
        line_bytes: 64,
        ports: 1,
        hit_latency: 1,
        mshrs: 2,
        policy: ReplacementPolicy::Lru,
    });
    let mut misses = 0;
    for i in 0..64u64 {
        if !c.access(i * 8, false).hit {
            misses += 1;
        }
    }
    assert_eq!(misses, 8, "one miss per 64 B line over 512 B");
}

#[test]
fn unrolled_benchmark_grads_match_rolled() {
    let bench = by_name("pathfinder", Scale::Tiny);
    // Tiny pathfinder inner loop has 7 columns; unroll the copy loop
    // instead (7 is prime) — use logsum for a clean divisible case.
    let _ = bench;
    let lb = by_name("logsum", Scale::Tiny); // 24 elements
    let unrolled = tapeflow::ir::transform::unroll_loop(&lb.func, "i", 4).unwrap();
    let grad_r = lb.gradient();
    let opts = AdOptions::new(lb.wrt.clone(), vec![lb.loss.array]);
    let grad_u = differentiate(&unrolled, &opts).unwrap();
    let run = |g: &tapeflow::autodiff::Gradient, f: &tapeflow::ir::Function| {
        let mut mem = Memory::for_function(f);
        mem.clone_array_from(&lb.mem, ArrayId::new(0));
        mem.set_f64_at(g.shadow_of(lb.loss.array).unwrap(), 0, 1.0);
        tapeflow::ir::interp::run(f, &mut mem).unwrap();
        mem.get_f64(g.shadow_of(lb.wrt[0]).unwrap())
    };
    assert_eq!(run(&grad_r, &grad_r.func), run(&grad_u, &grad_u.func));
}
