//! End-to-end tests for `tapeflow profile`: the stall-breakdown table is
//! pinned as a golden snapshot (regenerate with `BLESS=1 cargo test
//! --test profile_cli`), and the `--trace-out` Chrome trace must be
//! structurally valid — parseable JSON, complete "X" events, and
//! monotonic timestamps within every (pid, tid) track, which is what
//! chrome://tracing and Perfetto require to render it.
//!
//! `validates_trace_file_from_env` re-runs the same validator against an
//! externally produced file named by `TAPEFLOW_TRACE_VALIDATE`; `ci.sh`
//! uses it to vet the trace its smoke run emits.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;
use tapeflow::sim::json::Value;

fn target_tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create target tmpdir");
    dir.join(name)
}

fn run_profile(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tapeflow"))
        .arg("profile")
        .arg("programs/sumexp.tf")
        .args(["--wrt", "x", "--loss", "loss"])
        .args(extra)
        .output()
        .expect("run tapeflow profile")
}

#[test]
fn profile_sumexp_table_is_golden() {
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let out = run_profile(&[]);
            assert!(
                out.status.success(),
                "profile failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8(out.stdout).expect("utf-8 stdout")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "profile output differs across runs");
    let path = "tests/golden/profile_sumexp.txt";
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &runs[0]).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with BLESS=1)"));
    assert_eq!(
        runs[0], want,
        "profile table drifted from {path} \
         (intentional? regenerate with BLESS=1 cargo test --test profile_cli)"
    );
}

#[test]
fn trace_out_emits_a_valid_chrome_trace() {
    let trace_path = target_tmp("profile_sumexp_trace.json");
    let out = run_profile(&["--trace-out", trace_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "profile --trace-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let names = validate_chrome_trace(&text);
    // Both variants and every engine kind show up in a sumexp profile.
    for expected in [
        "fp-alu",
        "int",
        "hit",
        "miss",
        "stream-in",
        "stream-out",
        "spad",
    ] {
        assert!(
            names.contains(&expected.to_string()),
            "trace misses {expected:?} events (has: {names:?})"
        );
    }
}

#[test]
fn validates_trace_file_from_env() {
    let Some(path) = std::env::var_os("TAPEFLOW_TRACE_VALIDATE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.to_string_lossy()));
    let names = validate_chrome_trace(&text);
    assert!(!names.is_empty(), "trace has no slice events");
}

/// Structural validation of a Chrome trace-event document; returns the
/// distinct "X" (complete-slice) event names found.
fn validate_chrome_trace(text: &str) -> Vec<String> {
    let doc = Value::parse(text).expect("trace JSON parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ns"),
        "displayTimeUnit"
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    let mut last_ts: HashMap<(u64, u64), u64> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut slices = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("event phase");
        let pid = e.get("pid").and_then(Value::as_u64).expect("event pid");
        match ph {
            // Metadata names a process or thread; no timestamp to check.
            "M" => {
                let name = e.get("name").and_then(Value::as_str).expect("meta name");
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unexpected metadata {name:?}"
                );
                assert!(
                    e.get("args").and_then(|a| a.get("name")).is_some(),
                    "metadata without args.name"
                );
            }
            "X" => {
                slices += 1;
                let tid = e.get("tid").and_then(Value::as_u64).expect("slice tid");
                let ts = e.get("ts").and_then(Value::as_u64).expect("slice ts");
                let dur = e.get("dur").and_then(Value::as_u64).expect("slice dur");
                let name = e.get("name").and_then(Value::as_str).expect("slice name");
                assert!(dur >= 1, "zero-width slice {name:?}");
                // Per-track monotonicity: Perfetto tolerates overlaps
                // across tracks, not time running backwards within one.
                let prev = last_ts.entry((pid, tid)).or_insert(0);
                assert!(
                    ts >= *prev,
                    "track ({pid},{tid}): ts {ts} after {prev} — not monotonic"
                );
                *prev = ts;
                if !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
            "i" => {
                assert!(e.get("s").is_some(), "instant event without scope");
                assert!(e.get("ts").and_then(Value::as_u64).is_some(), "instant ts");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(slices > 0, "trace has metadata but no slices");
    names
}
