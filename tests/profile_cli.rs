//! End-to-end tests for `tapeflow profile`: the stall-breakdown table is
//! pinned as a golden snapshot (regenerate with `BLESS=1 cargo test
//! --test profile_cli`), and the `--trace-out` Chrome trace must be
//! structurally valid — parseable JSON, complete "X" events, and
//! monotonic timestamps within every (pid, tid) track, which is what
//! chrome://tracing and Perfetto require to render it.
//!
//! `validates_trace_file_from_env` re-runs the same validator against an
//! externally produced file named by `TAPEFLOW_TRACE_VALIDATE`; `ci.sh`
//! uses it to vet the trace its smoke run emits.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;
use tapeflow::sim::json::Value;

fn target_tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create target tmpdir");
    dir.join(name)
}

fn run_profile(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tapeflow"))
        .arg("profile")
        .arg("programs/sumexp.tf")
        .args(["--wrt", "x", "--loss", "loss"])
        .args(extra)
        .output()
        .expect("run tapeflow profile")
}

fn run_profile_pathfinder(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tapeflow"))
        .arg("profile")
        .arg("programs/pathfinder_mini.tf")
        .args(["--wrt", "w,src", "--loss", "loss"])
        .args(extra)
        .output()
        .expect("run tapeflow profile")
}

/// Runs twice (catching nondeterminism), asserts success, and compares
/// stdout against the golden snapshot at `path` (`BLESS=1` regenerates).
fn assert_golden(path: &str, run: impl Fn() -> std::process::Output) {
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let out = run();
            assert!(
                out.status.success(),
                "profile failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8(out.stdout).expect("utf-8 stdout")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "profile output differs across runs");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &runs[0]).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with BLESS=1)"));
    assert_eq!(
        runs[0], want,
        "profile table drifted from {path} \
         (intentional? regenerate with BLESS=1 cargo test --test profile_cli)"
    );
}

#[test]
fn profile_sumexp_table_is_golden() {
    assert_golden("tests/golden/profile_sumexp.txt", || run_profile(&[]));
}

#[test]
fn profile_by_inst_sumexp_table_is_golden() {
    assert_golden("tests/golden/profile_by_inst_sumexp.txt", || {
        run_profile(&["--by-inst", "--top", "8"])
    });
}

#[test]
fn profile_by_inst_pathfinder_mini_table_is_golden() {
    assert_golden("tests/golden/profile_by_inst_pathfinder_mini.txt", || {
        run_profile_pathfinder(&["--by-inst", "--top", "8"])
    });
}

/// The paper's headline attribution claim, independent of the golden
/// snapshot: on the irregular pathfinder kernel the hot-spot table must
/// name a tape access whose dominant cost is tape cache misses.
#[test]
fn by_inst_names_tape_access_with_tape_miss_share() {
    let json_path = target_tmp("pathfinder_by_inst.json");
    let out = run_profile_pathfinder(&[
        "--by-inst",
        "--top",
        "10",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Value::parse(&std::fs::read_to_string(&json_path).expect("json written"))
        .expect("profile JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("tapeflow.cli.profile/v2"),
        "schema"
    );
    let insts = doc
        .get("enzyme")
        .and_then(|v| v.get("insts"))
        .and_then(Value::as_arr)
        .expect("enzyme insts array");
    let tape_miss_key = tapeflow::sim::StallKind::TapeMissStall.key();
    let hit = insts.iter().any(|row| {
        let op = row.get("op").and_then(Value::as_str).unwrap_or("");
        let miss = row
            .get("stalls")
            .and_then(|s| s.get(tape_miss_key))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        op.starts_with("tape.") && miss > 0
    });
    assert!(
        hit,
        "no tape.load/tape.store row with nonzero tape-miss cycles in top 10"
    );
    // Every listed instruction resolves through provenance: a source op
    // for pass-created insts, or a self-referential source line.
    for row in insts {
        assert!(
            row.get("created_by").and_then(Value::as_str).is_some()
                || row.get("op").and_then(Value::as_str) == Some("(unattributed)"),
            "row without provenance: {}",
            row.render()
        );
    }
}

/// The v2 JSON document carries the provenance census and per-inst
/// stall objects that sum exactly to each row's total.
#[test]
fn json_v2_provenance_and_inst_rows_are_consistent() {
    let json_path = target_tmp("sumexp_by_inst.json");
    let out = run_profile(&["--by-inst", "--json", json_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Value::parse(&std::fs::read_to_string(&json_path).expect("json written"))
        .expect("profile JSON parses");
    for variant in ["enzyme", "tapeflow"] {
        let v = doc.get(variant).expect("variant section");
        let prov = v.get("provenance").expect("provenance census");
        assert!(
            prov.get("insts").and_then(Value::as_u64).unwrap_or(0) > 0,
            "{variant}: empty provenance census"
        );
        assert!(
            prov.get("created_by").is_some(),
            "{variant}: census misses created_by"
        );
        let insts = v.get("insts").and_then(Value::as_arr).expect("insts rows");
        assert!(!insts.is_empty(), "{variant}: no inst rows");
        let mut prev = u64::MAX;
        for row in insts {
            let total = row
                .get("total_pe_cycles")
                .and_then(Value::as_u64)
                .expect("total_pe_cycles");
            assert!(total <= prev, "{variant}: rows not sorted by cost");
            prev = total;
            let stalls = row.get("stalls").expect("per-row stalls");
            let sum: u64 = tapeflow::sim::StallKind::ALL
                .iter()
                .filter_map(|k| stalls.get(k.key()).and_then(Value::as_u64))
                .sum();
            assert_eq!(sum, total, "{variant}: stall object doesn't sum to total");
        }
    }
    // The tapeflow variant went through the pass pipeline, so its
    // census must attribute instructions to compiler passes.
    let created = doc
        .get("tapeflow")
        .and_then(|v| v.get("provenance"))
        .and_then(|p| p.get("created_by"))
        .expect("tapeflow created_by");
    assert!(
        created.get("streams").and_then(Value::as_u64).unwrap_or(0) > 0,
        "streams pass created no instructions?"
    );
}

#[test]
fn trace_out_emits_a_valid_chrome_trace() {
    let trace_path = target_tmp("profile_sumexp_trace.json");
    let out = run_profile(&["--trace-out", trace_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "profile --trace-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let names = validate_chrome_trace(&text);
    // Both variants and every engine kind show up in a sumexp profile.
    for expected in [
        "fp-alu",
        "int",
        "hit",
        "miss",
        "stream-in",
        "stream-out",
        "spad",
    ] {
        assert!(
            names.contains(&expected.to_string()),
            "trace misses {expected:?} events (has: {names:?})"
        );
    }
}

/// A sampled timeline must stay a structurally valid Chrome trace, be
/// byte-identical across runs (fixed windows, not RNG), and actually
/// drop events relative to the full recording.
#[test]
fn sampled_trace_is_deterministic_valid_and_smaller() {
    let full_path = target_tmp("profile_sumexp_full_trace.json");
    let out = run_profile(&["--trace-out", full_path.to_str().unwrap()]);
    assert!(out.status.success());
    let full_len = std::fs::metadata(&full_path).expect("full trace").len();

    let texts: Vec<String> = (0..2)
        .map(|i| {
            let path = target_tmp(&format!("profile_sumexp_sampled_{i}.json"));
            let out = run_profile(&["--trace-out", path.to_str().unwrap(), "--sample", "8"]);
            assert!(
                out.status.success(),
                "sampled profile failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let stderr = String::from_utf8_lossy(&out.stderr).to_string();
            assert!(
                stderr.contains("sampled timeline: 1 in 8 windows"),
                "missing sampling note on stderr: {stderr}"
            );
            std::fs::read_to_string(&path).expect("sampled trace written")
        })
        .collect();
    assert_eq!(texts[0], texts[1], "sampled trace differs across runs");
    assert!(
        (texts[0].len() as u64) < full_len,
        "sampling did not shrink the trace ({} vs {full_len} bytes)",
        texts[0].len()
    );
    validate_chrome_trace(&texts[0]);
    // The sampling parameters ride along as an instant event so a
    // viewer (or a later reader) can tell the timeline has holes.
    let doc = Value::parse(&texts[0]).unwrap();
    let has_meta = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .any(|e| {
            e.get("name").and_then(Value::as_str) == Some("sampling")
                && e.get("args")
                    .and_then(|a| a.get("stride"))
                    .and_then(Value::as_u64)
                    == Some(8)
        });
    assert!(has_meta, "sampled trace misses the sampling metadata event");
}

/// `--flame-out` emits well-formed collapsed stacks: five `;`-separated
/// frames (root;region;layer;source;op), a positive count, and both
/// variants present as roots.
#[test]
fn flame_out_emits_wellformed_collapsed_stacks() {
    let path = target_tmp("profile_sumexp.folded");
    let out = run_profile(&["--flame-out", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "profile --flame-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("folded file written");
    let mut roots: Vec<&str> = Vec::new();
    let mut lines = 0usize;
    for line in text.lines() {
        lines += 1;
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(count.parse::<u64>().expect("numeric count") > 0, "{line}");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 5, "stack depth in {line:?}");
        assert!(
            frames.iter().all(|f| !f.is_empty() && !f.contains(' ')),
            "malformed frame in {line:?}"
        );
        if !roots.contains(&frames[0]) {
            roots.push(frames[0]);
        }
    }
    assert!(lines > 0, "empty flamegraph");
    assert_eq!(roots, ["Enzyme", "Tapeflow"], "variant roots");
}

/// An unwritable output path is a structured usage error (exit 2) caught
/// before any simulation runs, not an io panic afterwards.
#[test]
fn unwritable_output_path_is_a_structured_usage_error() {
    for flag in ["--json", "--trace-out", "--flame-out"] {
        let out = run_profile(&[flag, "/nonexistent-tapeflow-dir/out.json"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag}: expected usage-error exit"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("not writable") && stderr.contains(flag),
            "{flag}: unhelpful error: {stderr}"
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).is_empty(),
            "{flag}: produced output despite the error"
        );
    }
}

#[test]
fn validates_trace_file_from_env() {
    let Some(path) = std::env::var_os("TAPEFLOW_TRACE_VALIDATE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.to_string_lossy()));
    let names = validate_chrome_trace(&text);
    assert!(!names.is_empty(), "trace has no slice events");
}

/// Structural validation of a Chrome trace-event document; returns the
/// distinct "X" (complete-slice) event names found.
fn validate_chrome_trace(text: &str) -> Vec<String> {
    let doc = Value::parse(text).expect("trace JSON parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ns"),
        "displayTimeUnit"
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    let mut last_ts: HashMap<(u64, u64), u64> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut slices = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("event phase");
        let pid = e.get("pid").and_then(Value::as_u64).expect("event pid");
        match ph {
            // Metadata names a process or thread; no timestamp to check.
            "M" => {
                let name = e.get("name").and_then(Value::as_str).expect("meta name");
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unexpected metadata {name:?}"
                );
                assert!(
                    e.get("args").and_then(|a| a.get("name")).is_some(),
                    "metadata without args.name"
                );
            }
            "X" => {
                slices += 1;
                let tid = e.get("tid").and_then(Value::as_u64).expect("slice tid");
                let ts = e.get("ts").and_then(Value::as_u64).expect("slice ts");
                let dur = e.get("dur").and_then(Value::as_u64).expect("slice dur");
                let name = e.get("name").and_then(Value::as_str).expect("slice name");
                assert!(dur >= 1, "zero-width slice {name:?}");
                // Per-track monotonicity: Perfetto tolerates overlaps
                // across tracks, not time running backwards within one.
                let prev = last_ts.entry((pid, tid)).or_insert(0);
                assert!(
                    ts >= *prev,
                    "track ({pid},{tid}): ts {ts} after {prev} — not monotonic"
                );
                *prev = ts;
                if !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
            "i" => {
                assert!(e.get("s").is_some(), "instant event without scope");
                assert!(e.get("ts").and_then(Value::as_u64).is_some(), "instant ts");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(slices > 0, "trace has metadata but no slices");
    names
}
