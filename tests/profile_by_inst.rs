//! Per-instruction attribution across the whole benchmark registry: on
//! every one of the nine registered benchmarks (Tiny scale), the
//! per-inst cycle breakdown must partition the per-cause totals exactly
//! (`InstBreakdown::check_against`), on both simulator engines, and the
//! event-driven core must charge every instruction identically to the
//! legacy scalar loop it replaced — the per-inst ledger is part of the
//! engines' equivalence contract, not just the aggregate counters.

use tapeflow::bench::attr;
use tapeflow::benchmarks::{by_name, Scale, NAMES};
use tapeflow::core::pipeline::PipelineBuilder;
use tapeflow::core::CompileOptions;
use tapeflow::ir::trace::{trace_function, TraceOptions};
use tapeflow::ir::{ArrayId, Function, Memory};
use tapeflow::sim::{
    try_simulate_probed_with, AttributionProbe, Engine, InstBreakdown, SimOptions, SystemConfig,
};

/// Runs `func`'s trace under the per-inst probe on `engine` and checks
/// the partition invariants; returns the raw per-inst ledger.
fn probed_rows(
    label: &str,
    func: &Function,
    trace: &tapeflow::ir::trace::Trace,
    engine: Engine,
) -> InstBreakdown {
    let sys = SystemConfig::default();
    let mut probe = AttributionProbe::with_inst_map(attr::node_to_inst(trace), func.insts().len());
    try_simulate_probed_with(engine, trace, &sys, &SimOptions::default(), &mut probe)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let (bd, inst_bd) = probe.into_parts();
    let inst_bd = inst_bd.expect("per-inst mode was requested");
    bd.check().unwrap_or_else(|e| panic!("{label}: {e}"));
    inst_bd
        .check_against(&bd)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    // One row per instruction plus the trailing unattributed bucket.
    assert_eq!(
        inst_bd.rows.len(),
        func.insts().len() + 1,
        "{label}: ledger shape"
    );
    // The resolved view must conserve cycles: resolve() only drops
    // all-zero rows, so resolved totals sum back to the full budget.
    let resolved = attr::resolve(func, None, &inst_bd);
    let budget: u64 = bd.cycles * bd.pes as u64;
    let resolved_total: u64 = resolved.iter().map(|r| r.total).sum();
    assert_eq!(resolved_total, budget, "{label}: resolve() lost cycles");
    assert!(
        resolved.iter().all(|r| r.total > 0),
        "{label}: resolve() kept a zero row"
    );
    inst_bd
}

/// Traces `func` with the benchmark's inputs and loss seed (the
/// harness's memory recipe).
fn traced(
    bench: &tapeflow::benchmarks::Benchmark,
    grad: &tapeflow::autodiff::Gradient,
    func: &Function,
    barrier: tapeflow::ir::InstId,
) -> tapeflow::ir::trace::Trace {
    let mut mem = Memory::for_function(func);
    for i in 0..bench.func.arrays().len() {
        mem.clone_array_from(&bench.mem, ArrayId::new(i));
    }
    mem.set_f64_at(
        grad.shadow_of(bench.loss.array).expect("loss shadow"),
        bench.loss.index,
        1.0,
    );
    trace_function(
        func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(barrier),
        },
    )
    .unwrap_or_else(|e| panic!("{}: {e}", bench.name))
}

#[test]
fn registry_per_inst_sums_match_per_cause_totals_on_both_engines() {
    for name in NAMES {
        let bench = by_name(name, Scale::Tiny);
        let grad = bench.gradient();
        let trace = traced(&bench, &grad, &grad.func, grad.phase_barrier);
        let event = probed_rows(
            &format!("{name} gradient event"),
            &grad.func,
            &trace,
            Engine::Event,
        );
        let legacy = probed_rows(
            &format!("{name} gradient legacy"),
            &grad.func,
            &trace,
            Engine::Legacy,
        );
        assert_eq!(
            event.rows, legacy.rows,
            "{name}: engines disagree on per-inst attribution"
        );
    }
}

#[test]
fn registry_per_inst_invariants_hold_for_compiled_programs() {
    let mut compiled_count = 0usize;
    for name in NAMES {
        let bench = by_name(name, Scale::Tiny);
        let grad = bench.gradient();
        let run = match PipelineBuilder::for_options(&CompileOptions::default()).run_gradient(&grad)
        {
            Ok(run) => run,
            // An infeasible scratchpad fit is a legitimate outcome for a
            // fixed default configuration, not an attribution bug.
            Err(_) => continue,
        };
        let compiled = match run.into_compiled() {
            Ok(c) => c,
            Err(_) => continue,
        };
        compiled_count += 1;
        let trace = traced(&bench, &grad, &compiled.func, compiled.phase_barrier);
        let inst_bd = probed_rows(
            &format!("{name} tapeflow"),
            &compiled.func,
            &trace,
            Engine::Event,
        );
        // Compiled programs carry provenance from the pass pipeline:
        // the hot rows must resolve to source ops, not all fall into
        // the unattributed bucket.
        let rows = attr::resolve(&compiled.func, Some(&bench.func), &inst_bd);
        assert!(
            rows.iter().any(|r| r.inst.is_some()),
            "{name}: every cycle unattributed"
        );
        assert!(
            rows.iter()
                .filter(|r| r.inst.is_some())
                .all(|r| !r.created_by.is_empty()),
            "{name}: compiled inst without a creating pass"
        );
    }
    assert!(
        compiled_count >= NAMES.len() / 2,
        "only {compiled_count} of {} benchmarks compiled at the default \
         scratchpad — the compiled-side coverage collapsed",
        NAMES.len()
    );
}
