//! Golden snapshot tests for `--print-after-all`: the pass manager's
//! rendered IR-after-every-pass output on the sample programs must be
//! stable across runs and match the checked-in goldens byte for byte.
//!
//! The snapshots are produced by the exact code path the CLI prints
//! (`PipelineReport::render_snapshots` over the CLI's default compile
//! pipeline and options), so these goldens pin `tapeflow compile FILE
//! --print-after-all`'s stdout. Regenerate intentionally with
//! `BLESS=1 cargo test --test print_after_all`.

use tapeflow::autodiff::{AdOptions, TapePolicy};
use tapeflow::core::pipeline::{PipelineBuilder, PipelineRun};
use tapeflow::core::CompileOptions;
use tapeflow::ir::lint::{self, LintConfig};
use tapeflow::ir::{parse, pretty, verify};

/// Mirrors the CLI's `compile` invocation — 1 KB scratchpad, double
/// buffering, conservative tape policy — through an explicit `--passes`
/// list (`None` = the default full pipeline).
fn cli_passes_run(file: &str, wrt: &[&str], loss: &str, passes: Option<&[&str]>) -> PipelineRun {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("{file}: {e}"));
    let func = parse::parse(&text).unwrap();
    let wrt = wrt
        .iter()
        .map(|n| func.array_by_name(n).unwrap_or_else(|| panic!("array {n}")))
        .collect();
    let loss = func.array_by_name(loss).expect("loss array");
    let ad = AdOptions::new(wrt, vec![loss]).with_policy(TapePolicy::Conservative);
    let copts = CompileOptions::with_spad_bytes(1024);
    let builder = match passes {
        Some(names) => PipelineBuilder::from_names(names, copts, Some(ad))
            .unwrap_or_else(|e| panic!("{file}: {e}")),
        None => PipelineBuilder::full(copts, ad),
    };
    builder
        .with_verify(true)
        .with_ir_capture(true)
        .run_source(&func)
        .unwrap_or_else(|e| panic!("{file}: {e}"))
}

fn check_golden(golden: &str, file: &str, wrt: &[&str], loss: &str) {
    check_passes_golden(golden, file, wrt, loss, None);
}

fn check_passes_golden(
    golden: &str,
    file: &str,
    wrt: &[&str],
    loss: &str,
    passes: Option<&[&str]>,
) {
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let run = cli_passes_run(file, wrt, loss, passes);
            for r in &run.report.records {
                assert_eq!(
                    r.verified,
                    Some(true),
                    "{file}: pass {} not verified",
                    r.name
                );
            }
            run.report.render_snapshots()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "{file}: snapshots differ across runs");
    let path = format!("tests/golden/{golden}");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &runs[0]).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with BLESS=1)"));
    assert_eq!(
        runs[0], want,
        "{file}: --print-after-all output drifted from {path} \
         (intentional? regenerate with BLESS=1 cargo test --test print_after_all)"
    );
}

#[test]
fn sumexp_print_after_all_is_golden() {
    check_golden(
        "print_after_all_sumexp.txt",
        "programs/sumexp.tf",
        &["x"],
        "loss",
    );
}

#[test]
fn pathfinder_mini_print_after_all_is_golden() {
    check_golden(
        "print_after_all_pathfinder_mini.txt",
        "programs/pathfinder_mini.tf",
        &["w", "src"],
        "loss",
    );
}

/// Pass 3 as a genuine terminal lowering: stopping the pipeline at
/// `streams` leaves a first-class program state.
const STREAMS_TERMINAL: &[&str] = &["opt", "ad", "regions", "layering", "streams"];

/// The de-fused `streams` output is a complete program: verified,
/// parseable (pretty → parse round-trips losslessly) and lintable,
/// not a snapshot side-channel.
fn check_streams_terminal(golden: &str, file: &str, wrt: &[&str], loss: &str) {
    check_passes_golden(golden, file, wrt, loss, Some(STREAMS_TERMINAL));
    let run = cli_passes_run(file, wrt, loss, Some(STREAMS_TERMINAL));
    let sp = run.state.streams.as_ref().expect("streams artifact");
    assert!(run.state.compiled.is_none(), "{file}: no spad-index ran");
    verify::verify(&sp.func).unwrap_or_else(|e| panic!("{file}: terminal IR: {e}"));
    // Parse/pretty fixpoint: one reparse may renumber const values, but
    // the text must be stable from then on (no structure is lost).
    let printed = pretty::pretty(&sp.func).to_string();
    let reparsed = parse::parse(&printed)
        .unwrap_or_else(|e| panic!("{file}: terminal IR does not re-parse: {e}"));
    verify::verify(&reparsed).unwrap_or_else(|e| panic!("{file}: reparsed terminal IR: {e}"));
    let printed2 = pretty::pretty(&reparsed).to_string();
    let reparsed2 = parse::parse(&printed2)
        .unwrap_or_else(|e| panic!("{file}: terminal IR does not re-parse twice: {e}"));
    assert_eq!(
        pretty::pretty(&reparsed2).to_string(),
        printed2,
        "{file}: terminal IR pretty/parse never reaches a fixpoint"
    );
    let diags = lint::lint_function(&sp.func, &LintConfig::default());
    let (errors, _) = lint::counts(&diags);
    assert_eq!(errors, 0, "{file}: terminal IR lints dirty: {diags:?}");
}

#[test]
fn sumexp_streams_terminal_is_golden_and_roundtrips() {
    check_streams_terminal(
        "streams_terminal_sumexp.txt",
        "programs/sumexp.tf",
        &["x"],
        "loss",
    );
}

#[test]
fn pathfinder_mini_streams_terminal_is_golden_and_roundtrips() {
    check_streams_terminal(
        "streams_terminal_pathfinder_mini.txt",
        "programs/pathfinder_mini.tf",
        &["w", "src"],
        "loss",
    );
}

const COMPRESSED: &[&str] = &[
    "opt",
    "ad",
    "regions",
    "layering",
    "value-ranges",
    "tape-compress",
    "streams",
    "spad-index",
];

/// `tape-compress` consumes the `value-ranges` artifact; listing it
/// without a producer must be rejected by the artifact-graph check with
/// an error naming the missing edge.
#[test]
fn tape_compress_without_value_ranges_is_rejected() {
    let names = [
        "opt",
        "ad",
        "regions",
        "layering",
        "tape-compress",
        "streams",
        "spad-index",
    ];
    let ad = AdOptions::new(vec![], vec![]);
    let Err(err) = PipelineBuilder::from_names(&names, CompileOptions::default(), Some(ad)) else {
        panic!("missing value-ranges must fail assembly");
    };
    let msg = err.to_string();
    assert!(
        msg.contains("value-ranges") && msg.contains("tape-compress"),
        "unclear error: {msg}"
    );
}

#[test]
fn sumexp_tape_compress_is_golden() {
    check_passes_golden(
        "tape_compress_sumexp.txt",
        "programs/sumexp.tf",
        &["x"],
        "loss",
        Some(COMPRESSED),
    );
}

#[test]
fn pathfinder_mini_tape_compress_is_golden() {
    check_passes_golden(
        "tape_compress_pathfinder_mini.txt",
        "programs/pathfinder_mini.tf",
        &["w", "src"],
        "loss",
        Some(COMPRESSED),
    );
}
