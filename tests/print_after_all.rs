//! Golden snapshot tests for `--print-after-all`: the pass manager's
//! rendered IR-after-every-pass output on the sample programs must be
//! stable across runs and match the checked-in goldens byte for byte.
//!
//! The snapshots are produced by the exact code path the CLI prints
//! (`PipelineReport::render_snapshots` over the CLI's default compile
//! pipeline and options), so these goldens pin `tapeflow compile FILE
//! --print-after-all`'s stdout. Regenerate intentionally with
//! `BLESS=1 cargo test --test print_after_all`.

use tapeflow::autodiff::{AdOptions, TapePolicy};
use tapeflow::core::pipeline::{PipelineBuilder, PipelineRun};
use tapeflow::core::CompileOptions;
use tapeflow::ir::parse;

/// Mirrors the CLI's default `compile` invocation: 1 KB scratchpad,
/// double buffering, conservative tape policy, full pipeline.
fn cli_compile_run(file: &str, wrt: &[&str], loss: &str) -> PipelineRun {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("{file}: {e}"));
    let func = parse::parse(&text).unwrap();
    let wrt = wrt
        .iter()
        .map(|n| func.array_by_name(n).unwrap_or_else(|| panic!("array {n}")))
        .collect();
    let loss = func.array_by_name(loss).expect("loss array");
    let ad = AdOptions::new(wrt, vec![loss]).with_policy(TapePolicy::Conservative);
    PipelineBuilder::full(CompileOptions::with_spad_bytes(1024), ad)
        .with_verify(true)
        .with_ir_capture(true)
        .run_source(&func)
        .unwrap_or_else(|e| panic!("{file}: {e}"))
}

fn check_golden(golden: &str, file: &str, wrt: &[&str], loss: &str) {
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let run = cli_compile_run(file, wrt, loss);
            for r in &run.report.records {
                assert_eq!(
                    r.verified,
                    Some(true),
                    "{file}: pass {} not verified",
                    r.name
                );
            }
            run.report.render_snapshots()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "{file}: snapshots differ across runs");
    let path = format!("tests/golden/{golden}");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &runs[0]).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with BLESS=1)"));
    assert_eq!(
        runs[0], want,
        "{file}: --print-after-all output drifted from {path} \
         (intentional? regenerate with BLESS=1 cargo test --test print_after_all)"
    );
}

#[test]
fn sumexp_print_after_all_is_golden() {
    check_golden(
        "print_after_all_sumexp.txt",
        "programs/sumexp.tf",
        &["x"],
        "loss",
    );
}

#[test]
fn pathfinder_mini_print_after_all_is_golden() {
    check_golden(
        "print_after_all_pathfinder_mini.txt",
        "programs/pathfinder_mini.tf",
        &["w", "src"],
        "loss",
    );
}
