//! Library-level seeded-broken tests for `unsound-narrow` — the one lint
//! rule that cannot be provoked from a textual fixture, because it
//! checks the `tape-compress` *artifact*: a corrupted [`TapeEncoding`]
//! has to be handed to `lint_plan` directly. The diagnostic table is
//! golden (regenerate with `BLESS=1 cargo test --test lint_rules`).

use tapeflow::autodiff::{AdOptions, Gradient};
use tapeflow::core::compress::{SlotEncoding, TapeEncoding};
use tapeflow::core::layering::LayerPlan;
use tapeflow::core::pipeline::PipelineBuilder;
use tapeflow::core::{lint as plan_lint, CompileOptions};
use tapeflow::ir::lint::{render_table, Severity};
use tapeflow::ir::parse;

/// `loss = Σ x²·y` with `x` on a quantized lattice: the taped product
/// term `x²` is a *computed* quantized value (not an input copy, so
/// `tape-compress` cannot elide it) whose honest width is 2 bytes
/// (span 10 000 needs more than one byte).
const QUAD: &str = r"func @quad {
  array @0 x : f64[64] (Input) in[0,100] quantized
  array @1 y : f64[64] (Input)
  array @2 loss : f64[1] (Output)
  for i in 0..64 step 1 {
    %0 = load @0 i
    %1 = load @1 i
    %2 = fmul %0 %0
    %3 = fmul %2 %1
    %4 = load @2 0i
    %5 = fadd %4 %3
    store @2 0i %5
  }
}";

fn compile(text: &str, wrt: &str, loss: &str) -> (Gradient, LayerPlan, TapeEncoding) {
    let f = parse::parse(text).unwrap();
    let wrt = f.array_by_name(wrt).unwrap();
    let loss = f.array_by_name(loss).unwrap();
    let opts = CompileOptions {
        compress_tape: true,
        ..CompileOptions::default()
    };
    let run = PipelineBuilder::full(opts, AdOptions::new(vec![wrt], vec![loss]))
        .with_verify(true)
        .run_source(&f)
        .unwrap();
    (
        run.state.gradient.clone().unwrap(),
        run.state.plan.clone().unwrap(),
        run.state.encoding.clone().unwrap(),
    )
}

fn opts() -> CompileOptions {
    CompileOptions {
        compress_tape: true,
        ..CompileOptions::default()
    }
}

fn assert_golden(name: &str, got: &str) {
    let path = format!("tests/golden/{name}");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with BLESS=1)"));
    assert_eq!(
        got, want,
        "table drifted from {path} \
         (intentional? regenerate with BLESS=1 cargo test --test lint_rules)"
    );
}

#[test]
fn honest_compression_lints_clean() {
    let (grad, plan, enc) = compile(QUAD, "y", "loss");
    assert!(
        enc.slots
            .iter()
            .any(|s| matches!(s, SlotEncoding::Keep { width: 2 })),
        "the x² slot should narrow to 2 bytes: {:?}",
        enc.slots
    );
    let diags = plan_lint::lint_plan(&grad, &plan, &opts(), Some(&enc));
    assert!(
        diags.iter().all(|d| d.severity != Severity::Error),
        "{diags:?}"
    );
}

#[test]
fn narrower_than_the_fresh_proof_is_unsound() {
    // Shave the honestly-narrowed 2-byte slot down to 1 byte: the rule's
    // independent re-proof must reject the encoding.
    let (grad, plan, mut enc) = compile(QUAD, "y", "loss");
    for s in &mut enc.slots {
        if matches!(s, SlotEncoding::Keep { width: 2 }) {
            *s = SlotEncoding::Keep { width: 1 };
        }
    }
    let diags = plan_lint::lint_plan(&grad, &plan, &opts(), Some(&enc));
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "unsound-narrow")
        .collect();
    assert!(!hits.is_empty(), "{diags:?}");
    assert!(
        hits.iter().any(|d| d.message.contains("needs 2 B")),
        "{hits:?}"
    );
}

#[test]
fn narrowing_an_unprovable_slot_is_unsound_and_golden() {
    // sum exp(x): the taped exp results have no integer or quantized
    // range at all — any narrow width on them must be rejected.
    let text = std::fs::read_to_string("programs/sumexp.tf").unwrap();
    let (grad, plan, mut enc) = compile(&text, "x", "loss");
    let mut corrupted = 0;
    for s in &mut enc.slots {
        if matches!(s, SlotEncoding::Keep { width: 8 }) {
            *s = SlotEncoding::Keep { width: 4 };
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "sumexp should keep at least one f64 slot");
    let diags = plan_lint::lint_plan(&grad, &plan, &opts(), Some(&enc));
    let table = render_table(
        &diags
            .iter()
            .filter(|d| d.rule == "unsound-narrow")
            .cloned()
            .collect::<Vec<_>>(),
    );
    assert!(
        table.contains("no provable integer or quantized range"),
        "{table}"
    );
    assert_golden("lint_unsound_narrow.txt", &table);
}
