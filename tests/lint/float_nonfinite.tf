// Seeded lint fixture: the divisor is loaded from an input whose
// declared range pins every element to exactly 0.0, so the division
// provably produces a non-finite value (±Inf or NaN) on every run that
// honors the input contract.
func @float_nonfinite {
  array @0 x : f64[8] (Input) in[1,2]
  array @1 z : f64[8] (Input) in[0,0]
  array @2 out : f64[8] (Output)
  for i in 0..8 step 1 {
    %0 = load @0 i
    %1 = load @1 i
    %2 = fdiv %0 %1
    store @2 i %2
  }
}
