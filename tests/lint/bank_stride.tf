// Seeded lint fixture (warning only): the load strides by 16 entries
// per iteration, so every access of the loop lands in the same bank of
// the 16-bank scratchpad and the accesses serialize.
func @bank_stride {
  %0 = salloc 128 @0
  for i in 0..8 step 1 {
    %1 = imul i 16i
    %2 = spad.load %1
  }
}
