// Seeded lint fixture: both loops run to 16 but the tape holds 8
// elements, so the store and the load provably leave [0, 8).
func @oob_tape {
  array @0 t : f64[8] (Tape)
  for i in 0..16 step 1 {
    store @0 i 1.5
  }
  for r in 0..16 step 1 {
    %0 = load @0 r
  }
}
