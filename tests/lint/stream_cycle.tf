// Seeded lint fixture: a circular fill/drain handshake. The drain is
// queued first, so the stream engine holds the fill until the drain
// completes; the drain waits on the core's spad.store, which sits in
// program order behind a spad.load that waits on the fill. Deadlock.
func @stream_cycle {
  array @0 t : f64[8] (Tape)
  %0 = salloc 8 @0
  stream.out @0 0i 0i 8i
  %1 = spad.load 0i
  spad.store 1i %1
  stream.in @0 0i 0i 8i
  barrier
}
