// Seeded lint fixture: the layer allocation claims 192 entries of a
// 128-entry scratchpad, and the store's index 191 lands past the end.
func @spad_overflow {
  %0 = salloc 192 @0
  spad.store 191i 1.5
}
