//! Property-style tests for the cycle-attribution probe on the real
//! sample programs: across both simulated variants (the Enzyme-baseline
//! gradient and the Tapeflow build), a sweep of cache sizes and two
//! scratchpad sizes, every simulated PE-cycle must be attributed to
//! exactly one cause (`sum(units) == cycles * PEs`), the occupancy
//! histogram must account for every cycle, and the probed run must
//! report exactly what the unprobed engine reports.

use tapeflow::autodiff::{AdOptions, Gradient, TapePolicy};
use tapeflow::core::pipeline::PipelineBuilder;
use tapeflow::core::{CompileOptions, CompiledProgram};
use tapeflow::ir::trace::{trace_function, TraceOptions};
use tapeflow::ir::{parse, ArrayId, ArrayKind, Function, Memory, Scalar};
use tapeflow::sim::{
    simulate, simulate_probed, AttributionProbe, SimOptions, StallKind, SystemConfig,
};

/// Deterministic inputs matching the CLI: f64 ramps, i64 identity
/// indices.
fn default_memory(func: &Function) -> Memory {
    let mut mem = Memory::for_function(func);
    for (i, a) in func.arrays().iter().enumerate() {
        if a.kind != ArrayKind::Input {
            continue;
        }
        let id = ArrayId::new(i);
        match a.elem {
            Scalar::F64 => {
                let data: Vec<f64> = (0..a.len).map(|k| 0.05 + 0.01 * k as f64).collect();
                mem.set_f64(id, &data);
            }
            Scalar::I64 => {
                let data: Vec<i64> = (0..a.len).map(|k| k as i64).collect();
                mem.set_i64(id, &data);
            }
        }
    }
    mem
}

/// Compiles `file` through the CLI's simulate pipeline at `spad_bytes`.
fn build(file: &str, wrt: &[&str], loss: &str, spad_bytes: usize) -> Setup {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("{file}: {e}"));
    let func = parse::parse(&text).unwrap();
    let wrt = wrt
        .iter()
        .map(|n| func.array_by_name(n).unwrap_or_else(|| panic!("array {n}")))
        .collect();
    let loss = func.array_by_name(loss).expect("loss array");
    let opts = AdOptions::new(wrt, vec![loss]).with_policy(TapePolicy::Conservative);
    let builder = PipelineBuilder::from_names(
        &["ad", "regions", "layering", "streams", "spad-index"],
        CompileOptions::with_spad_bytes(spad_bytes),
        Some(opts.clone()),
    )
    .unwrap();
    let run = builder
        .run_source(&func)
        .unwrap_or_else(|e| panic!("{file}: {e}"));
    let grad = run.state.gradient.clone().expect("gradient");
    let compiled = run.into_compiled().expect("compiled program");
    Setup {
        func,
        opts,
        grad,
        compiled,
    }
}

struct Setup {
    func: Function,
    opts: AdOptions,
    grad: Gradient,
    compiled: CompiledProgram,
}

impl Setup {
    /// The variant's memory: shared base arrays plus a unit loss-shadow
    /// seed (mirrors the CLI's `variant_memory`).
    fn memory(&self, variant: &Function) -> Memory {
        let base = default_memory(&self.func);
        let mut mem = Memory::for_function(variant);
        for i in 0..self.func.arrays().len() {
            mem.clone_array_from(&base, ArrayId::new(i));
        }
        mem.set_f64_at(
            self.grad
                .shadow_of(self.opts.seeds[0])
                .expect("loss shadow"),
            0,
            1.0,
        );
        mem
    }
}

/// Simulates one variant probed and unprobed on `sys` and checks every
/// attribution invariant.
fn check_variant(label: &str, setup: &Setup, variant_is_tapeflow: bool, sys: &SystemConfig) {
    let (f, barrier) = if variant_is_tapeflow {
        (&setup.compiled.func, setup.compiled.phase_barrier)
    } else {
        (&setup.grad.func, setup.grad.phase_barrier)
    };
    let mut mem = setup.memory(f);
    let trace = trace_function(
        f,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(barrier),
        },
    )
    .unwrap_or_else(|e| panic!("{label}: {e}"));
    let plain = simulate(&trace, sys, &SimOptions::default());
    let mut probe = AttributionProbe::new();
    let probed = simulate_probed(&trace, sys, &SimOptions::default(), &mut probe);

    // The probe must be invisible: identical report, counter by counter.
    assert_eq!(plain.cycles, probed.cycles, "{label}: cycles");
    assert_eq!(plain.fwd_cycles, probed.fwd_cycles, "{label}: fwd_cycles");
    assert_eq!(plain.cache, probed.cache, "{label}: cache stats");
    assert_eq!(plain.spad_accesses, probed.spad_accesses, "{label}: spad");
    assert_eq!(plain.stream_cmds, probed.stream_cmds, "{label}: streams");
    assert_eq!(plain.fp_ops, probed.fp_ops, "{label}: fp ops");
    assert_eq!(plain.int_ops, probed.int_ops, "{label}: int ops");
    assert_eq!(
        plain.dram_fill_bytes, probed.dram_fill_bytes,
        "{label}: dram fills"
    );

    let bd = probe.into_breakdown();
    bd.check().unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(bd.cycles, probed.cycles, "{label}: breakdown cycles");
    assert_eq!(
        bd.attributed(),
        bd.cycles * bd.pes as u64,
        "{label}: every PE-cycle attributed exactly once"
    );
    assert!(
        bd.get(StallKind::FpBusy) > 0,
        "{label}: a real program keeps FP units busy at least once"
    );
    // The occupancy histogram covers every cycle with one bin per
    // possible busy-PE count (check() verifies the sum; pin the shape).
    assert_eq!(bd.pe_occupancy.len(), bd.pes + 1, "{label}: occupancy bins");
    let busy: u64 = bd.pe_occupancy.iter().skip(1).sum();
    assert!(busy > 0, "{label}: some cycle had a busy PE");
}

fn sweep(file: &str, wrt: &[&str], loss: &str) {
    for spad_bytes in [256usize, 1024] {
        let setup = build(file, wrt, loss, spad_bytes);
        for cache_bytes in [1024usize, 4096, 32768] {
            let sys = SystemConfig::with_cache_bytes(cache_bytes);
            let tag = format!("{file} spad={spad_bytes} cache={cache_bytes}");
            check_variant(&format!("{tag} Enzyme"), &setup, false, &sys);
            check_variant(&format!("{tag} Tapeflow"), &setup, true, &sys);
        }
    }
}

#[test]
fn sumexp_attribution_invariants_hold_across_configs() {
    sweep("programs/sumexp.tf", &["x"], "loss");
}

#[test]
fn pathfinder_mini_attribution_invariants_hold_across_configs() {
    sweep("programs/pathfinder_mini.tf", &["w", "src"], "loss");
}
