//! Whole-program value-range analysis (VRA).
//!
//! Where [`crate::lint`]'s interval walk bounds *index* arithmetic one
//! instruction at a time, this module is an **array-content abstract
//! interpretation** of the whole function: every array carries a content
//! domain seeded from its declared [`crate::DeclRange`] (inputs), its
//! zero-initialization ([`crate::Memory::for_function`] zero-fills
//! `Temp` and `Tape` arrays), or ⊤ (externally writable kinds), and the
//! domains are updated by `store` / `stream.out` and consulted by
//! `load` / `tape.load` — so values that round-trip through the gradient
//! tape (store → tape → load) stay bounded.
//!
//! Two precision layers:
//!
//! 1. **Bounded unrolling.** Loops with static trip counts are executed
//!    abstractly iteration by iteration (induction variables are points)
//!    while a global evaluation budget lasts. This is what makes
//!    accumulation and DP recurrences (`acc = acc + x`) converge to
//!    their true hull — a joining fixpoint alone has no finite solution
//!    for them.
//! 2. **Join mode with widening-to-thresholds.** Loops that do not fit
//!    the budget (or have runtime bounds) run with the induction
//!    variable as its hull, re-executing the body until the memory
//!    domains stabilize; after a few rounds, still-growing bounds are
//!    widened to the next threshold, and finally to ⊤, guaranteeing
//!    termination.
//!
//! The float domain tracks **finiteness** (a `Some` range means "provably
//! finite, in `[lo, hi]`") and **quantization** (`quantized` means every
//! value is an exact integer — the property that lets the tape-compress
//! pass narrow an 8-byte float slot to an integer wire format without
//! changing a single gradient bit). Ops that provably produce NaN/Inf
//! surface as `float-nonfinite` diagnostics.
//!
//! The analysis is *checked* rather than trusted: the dynamic soundness
//! oracle ([`crate::interp::RangeRecorder`] + [`check_containment`])
//! replays a program under the recording interpreter and fails hard on
//! any observed value that escapes its static range.

use crate::function::{ArrayKind, Bound, DeclRange, Function, Stmt};
use crate::ids::{ArrayId, InstId, LoopId};
use crate::interp::RangeRecorder;
use crate::lint::{Diagnostic, Severity, Span};
use crate::ops::Op;
use crate::types::{Const, Scalar};
use crate::ValueDef;
use std::collections::HashMap;

/// Exact-integer cutoff: every `f64` with magnitude below this is exact
/// integer arithmetic territory.
const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53

/// `exp` overflows to `Inf` above this.
const EXP_OVERFLOW: f64 = 709.782712893384;

// ---------------------------------------------------------------------------
// Domains
// ---------------------------------------------------------------------------

/// A provably finite `f64` range. `None` at use sites means "may be
/// anything, including NaN/Inf".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FloatRange {
    /// Inclusive lower bound (finite).
    pub lo: f64,
    /// Inclusive upper bound (finite).
    pub hi: f64,
    /// Every value in the set is an exact integer.
    pub quantized: bool,
}

impl FloatRange {
    fn point(v: f64) -> Option<FloatRange> {
        v.is_finite().then_some(FloatRange {
            lo: v,
            hi: v,
            quantized: v.fract() == 0.0,
        })
    }

    fn join(self, o: FloatRange) -> FloatRange {
        FloatRange {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            quantized: self.quantized && o.quantized,
        }
    }

    /// True when `o` adds nothing (used for fixpoint detection).
    fn contains(&self, o: &FloatRange) -> bool {
        self.lo <= o.lo && self.hi >= o.hi && (self.quantized == o.quantized || !self.quantized)
    }
}

fn join_f(a: Option<FloatRange>, b: Option<FloatRange>) -> Option<FloatRange> {
    Some(a?.join(b?))
}

/// An inclusive `i64` range. All transfer functions use *checked*
/// arithmetic and fall to ⊤ (`None`) on overflow, which is sound against
/// the interpreter's wrapping semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntRange {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl IntRange {
    fn point(v: i64) -> IntRange {
        IntRange { lo: v, hi: v }
    }

    fn join(self, o: IntRange) -> IntRange {
        IntRange {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    fn contains(&self, o: &IntRange) -> bool {
        self.lo <= o.lo && self.hi >= o.hi
    }

    fn add(self, o: IntRange) -> Option<IntRange> {
        Some(IntRange {
            lo: self.lo.checked_add(o.lo)?,
            hi: self.hi.checked_add(o.hi)?,
        })
    }

    fn sub(self, o: IntRange) -> Option<IntRange> {
        Some(IntRange {
            lo: self.lo.checked_sub(o.hi)?,
            hi: self.hi.checked_sub(o.lo)?,
        })
    }

    fn corners(self, o: IntRange, f: impl Fn(i64, i64) -> Option<i64>) -> Option<IntRange> {
        let cs = [
            f(self.lo, o.lo)?,
            f(self.lo, o.hi)?,
            f(self.hi, o.lo)?,
            f(self.hi, o.hi)?,
        ];
        Some(IntRange {
            lo: cs.iter().copied().min().unwrap(),
            hi: cs.iter().copied().max().unwrap(),
        })
    }

    fn mul(self, o: IntRange) -> Option<IntRange> {
        self.corners(o, i64::checked_mul)
    }

    /// Truncated division; defined only when the divisor excludes zero.
    fn div(self, o: IntRange) -> Option<IntRange> {
        if o.lo > 0 || o.hi < 0 {
            self.corners(o, i64::checked_div)
        } else {
            None
        }
    }

    /// Remainder with a divisor range that excludes zero.
    fn rem(self, o: IntRange) -> Option<IntRange> {
        if o.lo <= 0 && o.hi >= 0 {
            return None;
        }
        let mag = o.lo.unsigned_abs().max(o.hi.unsigned_abs());
        let m = i64::try_from(mag).ok()?.checked_sub(1)?;
        if self.lo >= 0 {
            Some(IntRange {
                lo: 0,
                hi: self.hi.min(m),
            })
        } else {
            Some(IntRange { lo: -m, hi: m })
        }
    }

    fn min(self, o: IntRange) -> IntRange {
        IntRange {
            lo: self.lo.min(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    fn max(self, o: IntRange) -> IntRange {
        IntRange {
            lo: self.lo.max(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

fn join_i(a: Option<IntRange>, b: Option<IntRange>) -> Option<IntRange> {
    Some(a?.join(b?))
}

/// Content range of one array, in the array's element type. `None`
/// payloads mean unbounded (for floats: possibly NaN/Inf).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ContentRange {
    /// Content of an `i64` array.
    Int(Option<IntRange>),
    /// Content of an `f64` array.
    Float(Option<FloatRange>),
}

// ---------------------------------------------------------------------------
// Outward rounding
// ---------------------------------------------------------------------------

fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    f64::from_bits(if x > 0.0 { bits + 1 } else { bits - 1 })
}

fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// Widens `[lo, hi]` outward by two ulps per side to absorb the
/// round-to-nearest error of endpoint arithmetic. Returns `None` when a
/// bound has escaped to ±Inf.
fn outward(lo: f64, hi: f64, quantized: bool) -> Option<FloatRange> {
    let (lo, hi) = (next_down(next_down(lo)), next_up(next_up(hi)));
    (lo.is_finite() && hi.is_finite()).then_some(FloatRange { lo, hi, quantized })
}

/// Endpoint arithmetic for a binary float op: exact when both operands
/// are quantized and the result endpoints stay below 2^53, outward-
/// rounded otherwise. Integer-valued operands keep the result integer-
/// valued for `+ - *` (every representable `f64` ≥ 2^53 is an integer).
fn f_binary(
    a: FloatRange,
    b: FloatRange,
    f: impl Fn(f64, f64) -> f64,
    preserves_quant: bool,
) -> Option<FloatRange> {
    let cs = [f(a.lo, b.lo), f(a.lo, b.hi), f(a.hi, b.lo), f(a.hi, b.hi)];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for c in cs {
        if c.is_nan() {
            return None;
        }
        lo = lo.min(c);
        hi = hi.max(c);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return None;
    }
    let quantized = preserves_quant && a.quantized && b.quantized;
    if quantized && lo.abs() < EXACT && hi.abs() < EXACT {
        // Exact integer endpoint arithmetic: no rounding to absorb.
        return Some(FloatRange { lo, hi, quantized });
    }
    outward(lo, hi, quantized)
}

// ---------------------------------------------------------------------------
// Widening thresholds
// ---------------------------------------------------------------------------

const INT_THRESHOLDS: &[i64] = &[0, 1, 9, 15, 255, 1023, 65_535, 1 << 20, i32::MAX as i64];
const FLOAT_THRESHOLDS: &[f64] = &[0.0, 1.0, 9.0, 255.0, 65_535.0, 1e6, 1e12, 1e100];

/// Widens a grown bound to the next threshold; `None` when the value is
/// past the last threshold (the caller then falls to ⊤).
fn threshold_up_i(v: i64) -> Option<i64> {
    INT_THRESHOLDS.iter().copied().find(|&t| t >= v)
}

fn threshold_up_f(v: f64) -> Option<f64> {
    FLOAT_THRESHOLDS.iter().copied().find(|&t| t >= v)
}

fn widen_int(prev: IntRange, next: IntRange) -> Option<IntRange> {
    let lo = if next.lo < prev.lo {
        threshold_up_i(-next.lo).map(|t| -t)?
    } else {
        prev.lo
    };
    let hi = if next.hi > prev.hi {
        threshold_up_i(next.hi)?
    } else {
        prev.hi
    };
    Some(IntRange { lo, hi })
}

fn widen_float(prev: FloatRange, next: FloatRange) -> Option<FloatRange> {
    let lo = if next.lo < prev.lo {
        threshold_up_f(-next.lo).map(|t| -t)?
    } else {
        prev.lo
    };
    let hi = if next.hi > prev.hi {
        threshold_up_f(next.hi)?
    } else {
        prev.hi
    };
    Some(FloatRange {
        lo,
        hi,
        // Widening loosens bounds, not values: integers stay integers.
        quantized: prev.quantized && next.quantized,
    })
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// Tuning knobs for the analysis. Defaults are sized so the nine paper
/// benchmarks unroll fully at `Tiny` scale while keeping the pass well
/// under a second.
#[derive(Clone, Copy, Debug)]
pub struct VraConfig {
    /// Global abstract-evaluation budget; loops whose full unrolling
    /// does not fit the remaining budget run in join mode instead.
    pub eval_budget: u64,
    /// Join-mode rounds before widening kicks in.
    pub widen_after: u32,
    /// Hard cap on join-mode rounds; still-growing domains go to ⊤.
    pub max_rounds: u32,
}

impl Default for VraConfig {
    fn default() -> Self {
        VraConfig {
            eval_budget: 2_000_000,
            widen_after: 2,
            max_rounds: 8,
        }
    }
}

/// The analysis result: proven ranges for every SSA value and every
/// array's contents, plus `float-nonfinite` diagnostics.
///
/// Indexed by [`crate::ValueId`] / [`ArrayId`]. A `None` entry means the
/// analysis could not bound the value (or, for values inside never-
/// executed loops, never saw it) — consumers must treat it as ⊤.
#[derive(Clone, Debug)]
pub struct ValueRanges {
    /// Per-value `i64` range (`None` for `f64` values and ⊤).
    pub ints: Vec<Option<IntRange>>,
    /// Per-value finite `f64` range (`None` for `i64` values and ⊤).
    pub floats: Vec<Option<FloatRange>>,
    /// Per-array content range over the whole execution.
    pub contents: Vec<ContentRange>,
    /// `float-nonfinite` findings: ops that provably produce NaN/Inf.
    pub diagnostics: Vec<Diagnostic>,
}

impl ValueRanges {
    /// Counts `(bounded, unbounded)` over the `i64` values of `func`.
    pub fn int_census(&self, func: &Function) -> (usize, usize) {
        census(func, Scalar::I64, |i| self.ints[i].is_some())
    }

    /// Counts `(bounded, unbounded)` over the `f64` values of `func`.
    pub fn float_census(&self, func: &Function) -> (usize, usize) {
        census(func, Scalar::F64, |i| self.floats[i].is_some())
    }
}

fn census(func: &Function, ty: Scalar, bounded: impl Fn(usize) -> bool) -> (usize, usize) {
    let mut b = 0;
    let mut u = 0;
    for (i, v) in func.values().iter().enumerate() {
        if v.ty == ty {
            if bounded(i) {
                b += 1;
            } else {
                u += 1;
            }
        }
    }
    (b, u)
}

/// Runs the analysis with default tuning. See [`value_ranges_with`].
pub fn value_ranges(func: &Function) -> ValueRanges {
    value_ranges_with(func, &VraConfig::default())
}

/// Runs the whole-program value-range analysis over `func`.
///
/// The function must pass [`crate::verify::verify`]. The result is
/// deterministic for a given `(func, cfg)` pair.
pub fn value_ranges_with(func: &Function, cfg: &VraConfig) -> ValueRanges {
    let mut eng = Engine::new(func, *cfg);
    eng.exec_block(&func.body);
    eng.finish()
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Join accumulator: ⊥ (never evaluated) → range → ⊤.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Acc<T> {
    Bot,
    Range(T),
    Top,
}

impl<T: Copy> Acc<T> {
    fn join(&mut self, v: Option<T>, j: impl Fn(T, T) -> T) {
        *self = match (*self, v) {
            (Acc::Top, _) | (_, None) => Acc::Top,
            (Acc::Bot, Some(r)) => Acc::Range(r),
            (Acc::Range(a), Some(b)) => Acc::Range(j(a, b)),
        };
    }

    fn export(self) -> Option<T> {
        match self {
            Acc::Range(r) => Some(r),
            _ => None,
        }
    }
}

#[derive(Clone, PartialEq)]
enum Content {
    Int(Option<IntRange>),
    Float(Option<FloatRange>),
}

struct Engine<'f> {
    func: &'f Function,
    cfg: VraConfig,
    /// Current environment (per evaluation of an instruction).
    int: Vec<Option<IntRange>>,
    float: Vec<Option<FloatRange>>,
    /// Join over every evaluation — the exported per-value ranges.
    acc_int: Vec<Acc<IntRange>>,
    acc_float: Vec<Acc<FloatRange>>,
    /// Monotone per-array content domains.
    content: Vec<Content>,
    /// Monotone scratchpad content domain (spad entries are zero-
    /// initialized `f64` bit patterns).
    spad: Option<FloatRange>,
    /// Remaining abstract-evaluation budget.
    budget: u64,
    /// Full-unroll cost per loop (`None`: runtime bounds somewhere).
    loop_cost: HashMap<LoopId, Option<u64>>,
    /// Deduplicated `float-nonfinite` findings.
    nonfinite: HashMap<usize, Diagnostic>,
}

impl<'f> Engine<'f> {
    fn new(func: &'f Function, cfg: VraConfig) -> Self {
        let nv = func.values().len();
        let mut int = vec![None; nv];
        let mut float = vec![None; nv];
        for (i, v) in func.values().iter().enumerate() {
            match v.def {
                ValueDef::Const(Const::I64(c)) => int[i] = Some(IntRange::point(c)),
                ValueDef::Const(Const::F64(c)) => float[i] = FloatRange::point(c),
                _ => {}
            }
        }
        let content = func.arrays().iter().map(seed_content).collect();
        let mut loop_cost = HashMap::new();
        block_cost(func, &func.body, &mut loop_cost);
        Engine {
            func,
            cfg,
            int,
            float,
            acc_int: vec![Acc::Bot; nv],
            acc_float: vec![Acc::Bot; nv],
            content,
            spad: Some(FloatRange {
                lo: 0.0,
                hi: 0.0,
                quantized: true,
            }),
            budget: cfg.eval_budget,
            loop_cost,
            nonfinite: HashMap::new(),
        }
    }

    fn finish(mut self) -> ValueRanges {
        // Constants never flow through `eval`, so export them directly.
        for (i, v) in self.func.values().iter().enumerate() {
            match v.def {
                ValueDef::Const(Const::I64(_)) | ValueDef::Const(Const::F64(_)) => {
                    self.acc_int[i].join(self.int[i], IntRange::join);
                    self.acc_float[i].join(self.float[i], FloatRange::join);
                    // A non-finite f64 constant is ⊤, not ⊥.
                    if v.ty == Scalar::F64 && self.float[i].is_none() {
                        self.acc_float[i] = Acc::Top;
                    }
                }
                _ => {}
            }
        }
        let mut diagnostics: Vec<Diagnostic> = self.nonfinite.into_values().collect();
        crate::lint::sort_diagnostics(&mut diagnostics);
        ValueRanges {
            ints: self.acc_int.into_iter().map(Acc::export).collect(),
            floats: self.acc_float.into_iter().map(Acc::export).collect(),
            contents: self
                .content
                .into_iter()
                .map(|c| match c {
                    Content::Int(r) => ContentRange::Int(r),
                    Content::Float(r) => ContentRange::Float(r),
                })
                .collect(),
            diagnostics,
        }
    }

    fn bound_range(&self, b: Bound) -> Option<IntRange> {
        match b {
            Bound::Const(c) => Some(IntRange::point(c)),
            Bound::Value(v) => self.int[v.index()],
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Inst(id) => self.eval(*id),
                Stmt::For { loop_id, body } => self.exec_loop(*loop_id, body),
            }
        }
    }

    fn exec_loop(&mut self, loop_id: LoopId, body: &[Stmt]) {
        let info = self.func.loop_info(loop_id);
        let (start, end, step) = (
            self.bound_range(info.start),
            self.bound_range(info.end),
            info.step,
        );
        // Unroll when the trip count is a known constant and the full
        // expansion fits the remaining budget.
        let const_trips = match (start, end) {
            (Some(s), Some(e)) if s.lo == s.hi && e.lo == e.hi => {
                Some((s.lo, crate::function::trip_count(s.lo, e.lo, step)))
            }
            _ => None,
        };
        if let Some((s0, trips)) = const_trips {
            let cost = self
                .loop_cost
                .get(&loop_id)
                .copied()
                .flatten()
                .or_else(|| per_iter_cost(self.func, body).map(|c| c.saturating_mul(trips)));
            if let Some(c) = cost {
                if c <= self.budget {
                    self.budget -= c;
                    let iv = info.iv.index();
                    for k in 0..trips {
                        self.int[iv] = Some(IntRange::point(s0 + k as i64 * step));
                        self.acc_int[iv].join(self.int[iv], IntRange::join);
                        self.exec_block(body);
                    }
                    return;
                }
            }
        }
        // Join mode: iv gets its hull, the body re-executes until the
        // memory domains stabilize, widening after a few rounds.
        let hull = match (start, end) {
            (Some(s), Some(e)) if step > 0 => Some(IntRange {
                lo: s.lo,
                hi: e.hi.saturating_sub(1).max(s.lo),
            }),
            (Some(s), Some(e)) => Some(IntRange {
                lo: e.lo.saturating_add(1).min(s.hi),
                hi: s.hi,
            }),
            _ => None,
        };
        let iv = info.iv.index();
        self.int[iv] = hull;
        self.acc_int[iv].join(hull, IntRange::join);
        for round in 0..self.cfg.max_rounds {
            let before = (self.content.clone(), self.spad);
            self.exec_block(body);
            if self.content == before.0 && self.spad == before.1 {
                return;
            }
            if round + 1 >= self.cfg.widen_after {
                self.widen_memory(&before.0, before.1);
            }
        }
        // Still growing at the cap: force the moving domains to ⊤ and do
        // one final pass so downstream values see the stable state.
        let before = (self.content.clone(), self.spad);
        self.exec_block(body);
        for (c, b) in self.content.iter_mut().zip(&before.0) {
            if c != b {
                *c = match c {
                    Content::Int(_) => Content::Int(None),
                    Content::Float(_) => Content::Float(None),
                };
            }
        }
        if self.spad != before.1 {
            self.spad = None;
        }
        self.exec_block(body);
    }

    /// Threshold-widens every content domain that grew since `prev`.
    fn widen_memory(&mut self, prev: &[Content], prev_spad: Option<FloatRange>) {
        for (c, p) in self.content.iter_mut().zip(prev) {
            match (&mut *c, p) {
                (Content::Int(Some(n)), Content::Int(Some(b))) if !b.contains(n) => {
                    *c = Content::Int(widen_int(*b, *n));
                }
                (Content::Float(Some(n)), Content::Float(Some(b))) if !b.contains(n) => {
                    *c = Content::Float(widen_float(*b, *n));
                }
                _ => {}
            }
        }
        if let (Some(n), Some(b)) = (self.spad, prev_spad) {
            if !b.contains(&n) {
                self.spad = widen_float(b, n);
            }
        }
    }

    fn flag_nonfinite(&mut self, id: InstId, what: &str) {
        self.nonfinite.entry(id.index()).or_insert(Diagnostic {
            rule: "float-nonfinite",
            severity: Severity::Error,
            span: Span::at_inst(id),
            message: format!("{} — the result is provably non-finite", what),
        });
    }

    fn store_content(&mut self, arr: ArrayId, int: Option<IntRange>, float: Option<FloatRange>) {
        match &mut self.content[arr.index()] {
            Content::Int(c) => *c = join_i(*c, int),
            Content::Float(c) => *c = join_f(*c, float),
        }
    }

    fn load_content(&self, arr: ArrayId) -> (Option<IntRange>, Option<FloatRange>) {
        match &self.content[arr.index()] {
            Content::Int(c) => (*c, None),
            Content::Float(c) => (None, *c),
        }
    }

    fn eval(&mut self, id: InstId) {
        self.budget = self.budget.saturating_sub(1);
        let inst = self.func.inst(id);
        let fi = |e: &Self, k: usize| e.int[inst.args[k].index()];
        let ff = |e: &Self, k: usize| e.float[inst.args[k].index()];
        use Op::*;
        let (ri, rf): (Option<IntRange>, Option<FloatRange>) = match inst.op {
            IAdd => (
                fi(self, 0).zip(fi(self, 1)).and_then(|(a, b)| a.add(b)),
                None,
            ),
            ISub => (
                fi(self, 0).zip(fi(self, 1)).and_then(|(a, b)| a.sub(b)),
                None,
            ),
            IMul => (
                fi(self, 0).zip(fi(self, 1)).and_then(|(a, b)| a.mul(b)),
                None,
            ),
            IDiv => (
                fi(self, 0).zip(fi(self, 1)).and_then(|(a, b)| a.div(b)),
                None,
            ),
            IRem => (
                fi(self, 0).zip(fi(self, 1)).and_then(|(a, b)| a.rem(b)),
                None,
            ),
            IMin => (fi(self, 0).zip(fi(self, 1)).map(|(a, b)| a.min(b)), None),
            IMax => (fi(self, 0).zip(fi(self, 1)).map(|(a, b)| a.max(b)), None),
            ICmp(_) | FCmp(_) => (Some(IntRange { lo: 0, hi: 1 }), None),
            FAdd => (
                None,
                ff(self, 0)
                    .zip(ff(self, 1))
                    .and_then(|(a, b)| f_binary(a, b, |x, y| x + y, true)),
            ),
            FSub => (
                None,
                ff(self, 0)
                    .zip(ff(self, 1))
                    .and_then(|(a, b)| f_binary(a, b, |x, y| x - y, true)),
            ),
            FMul => (
                None,
                ff(self, 0)
                    .zip(ff(self, 1))
                    .and_then(|(a, b)| f_binary(a, b, |x, y| x * y, true)),
            ),
            FDiv => {
                let d = ff(self, 1);
                if let Some(d) = d {
                    if d.lo == 0.0 && d.hi == 0.0 {
                        self.flag_nonfinite(id, "fdiv divides by a value provably zero");
                    }
                }
                let r = ff(self, 0).zip(d).and_then(|(a, b)| {
                    if b.lo <= 0.0 && b.hi >= 0.0 {
                        None
                    } else {
                        f_binary(a, b, |x, y| x / y, false)
                    }
                });
                (None, r)
            }
            FMin => (
                None,
                ff(self, 0).zip(ff(self, 1)).map(|(a, b)| FloatRange {
                    lo: a.lo.min(b.lo),
                    hi: a.hi.min(b.hi),
                    quantized: a.quantized && b.quantized,
                }),
            ),
            FMax => (
                None,
                ff(self, 0).zip(ff(self, 1)).map(|(a, b)| FloatRange {
                    lo: a.lo.max(b.lo),
                    hi: a.hi.max(b.hi),
                    quantized: a.quantized && b.quantized,
                }),
            ),
            FNeg => (
                None,
                ff(self, 0).map(|a| FloatRange {
                    lo: -a.hi,
                    hi: -a.lo,
                    quantized: a.quantized,
                }),
            ),
            FAbs => (
                None,
                ff(self, 0).map(|a| {
                    let lo = if a.lo <= 0.0 && a.hi >= 0.0 {
                        0.0
                    } else {
                        a.lo.abs().min(a.hi.abs())
                    };
                    FloatRange {
                        lo,
                        hi: a.lo.abs().max(a.hi.abs()),
                        quantized: a.quantized,
                    }
                }),
            ),
            Sqrt => {
                let a = ff(self, 0);
                if let Some(a) = a {
                    if a.hi < 0.0 {
                        self.flag_nonfinite(id, "sqrt of a value provably negative");
                    }
                }
                let r = a.and_then(|a| {
                    (a.lo >= 0.0)
                        .then(|| outward(a.lo.sqrt(), a.hi.sqrt(), false))
                        .flatten()
                });
                (None, r)
            }
            Exp => {
                let a = ff(self, 0);
                if let Some(a) = a {
                    if a.lo > EXP_OVERFLOW {
                        self.flag_nonfinite(id, "exp of a value provably overflowing");
                    }
                }
                (None, a.and_then(|a| outward(a.lo.exp(), a.hi.exp(), false)))
            }
            Ln => {
                let a = ff(self, 0);
                if let Some(a) = a {
                    if a.hi <= 0.0 {
                        self.flag_nonfinite(id, "ln of a value provably non-positive");
                    }
                }
                let r = a.and_then(|a| {
                    (a.lo > 0.0)
                        .then(|| outward(a.lo.ln(), a.hi.ln(), false))
                        .flatten()
                });
                (None, r)
            }
            Tanh => (
                None,
                ff(self, 0).and_then(|a| {
                    let r = outward(a.lo.tanh(), a.hi.tanh(), false)?;
                    Some(FloatRange {
                        lo: r.lo.max(-1.0),
                        hi: r.hi.min(1.0),
                        quantized: false,
                    })
                }),
            ),
            Sin | Cos => (
                None,
                ff(self, 0).map(|_| FloatRange {
                    lo: -1.0,
                    hi: 1.0,
                    quantized: false,
                }),
            ),
            FPow => (None, None),
            IToF => (
                None,
                fi(self, 0).and_then(|a| {
                    let (lo, hi) = (a.lo as f64, a.hi as f64);
                    if lo.abs() < EXACT && hi.abs() < EXACT {
                        Some(FloatRange {
                            lo,
                            hi,
                            quantized: true,
                        })
                    } else {
                        // The casts round to nearest; widen outward. Casts of
                        // i64 are always integer-valued floats.
                        outward(lo, hi, true)
                    }
                }),
            ),
            FToI => (
                ff(self, 0).map(|a| IntRange {
                    lo: a.lo.round() as i64,
                    hi: a.hi.round() as i64,
                }),
                None,
            ),
            Select => (
                join_i(fi(self, 1), fi(self, 2)),
                join_f(ff(self, 1), ff(self, 2)),
            ),
            Load(arr) => self.load_content(arr),
            Store(arr) => {
                let (i, f) = (fi(self, 1), ff(self, 1));
                self.store_content(arr, i, f);
                (None, None)
            }
            SAlloc { base, .. } => (Some(IntRange::point(i64::from(base))), None),
            SpadLoad => (None, self.spad),
            SpadStore | TapeStore { .. } => {
                self.spad = join_f(self.spad, ff(self, 1));
                (None, None)
            }
            TapeLoad { array, .. } => self.load_content(array),
            StreamOut(arr) | StreamOutC { array: arr, .. } => {
                let s = self.spad;
                self.store_content(arr, None, s);
                (None, None)
            }
            StreamIn(arr) | StreamInC { array: arr, .. } => {
                let (_, f) = self.load_content(arr);
                self.spad = join_f(self.spad, f);
                (None, None)
            }
            Barrier => (None, None),
        };
        let Some(res) = inst.result else { return };
        let i = res.index();
        match self.func.value(res).ty {
            Scalar::I64 => {
                self.int[i] = ri;
                self.acc_int[i].join(ri, IntRange::join);
            }
            Scalar::F64 => {
                self.float[i] = rf;
                self.acc_float[i].join(rf, FloatRange::join);
            }
        }
    }
}

/// Initial content domain of one array (what the interpreter's memory
/// holds before the first instruction runs).
fn seed_content(a: &crate::ArrayDecl) -> Content {
    match (a.kind, a.range) {
        // Declared ranges are a caller contract on inputs; the dynamic
        // oracle re-checks them against the actual initial memory.
        (ArrayKind::Input, Some(DeclRange::Int { lo, hi })) => {
            Content::Int(Some(IntRange { lo, hi }))
        }
        (ArrayKind::Input, Some(DeclRange::Float { lo, hi, quantized })) => {
            Content::Float(Some(FloatRange { lo, hi, quantized }))
        }
        // Temp and Tape arrays are zero-initialized by
        // `Memory::for_function` and not externally writable.
        (ArrayKind::Temp | ArrayKind::Tape, _) => match a.elem {
            Scalar::I64 => Content::Int(Some(IntRange::point(0))),
            Scalar::F64 => Content::Float(Some(FloatRange {
                lo: 0.0,
                hi: 0.0,
                quantized: true,
            })),
        },
        // Unannotated inputs and all externally writable kinds
        // (Output, InOut, Shadow — e.g. the loss shadow seeded to 1.0
        // by the driver) start unbounded.
        _ => match a.elem {
            Scalar::I64 => Content::Int(None),
            Scalar::F64 => Content::Float(None),
        },
    }
}

/// Total dynamic instruction count of `stmts` when every loop has a
/// constant trip count; memoizes per-loop costs.
fn block_cost(
    func: &Function,
    stmts: &[Stmt],
    memo: &mut HashMap<LoopId, Option<u64>>,
) -> Option<u64> {
    let mut c = 0u64;
    let mut ok = true;
    for s in stmts {
        match s {
            Stmt::Inst(_) => c = c.saturating_add(1),
            Stmt::For { loop_id, body } => {
                let inner = block_cost(func, body, memo);
                let trips = func.loop_info(*loop_id).trip_count();
                let cost = match (inner, trips) {
                    (Some(b), Some(t)) => Some(t.saturating_mul(b.max(1))),
                    _ => None,
                };
                memo.insert(*loop_id, cost);
                match cost {
                    Some(lc) => c = c.saturating_add(lc),
                    None => ok = false,
                }
            }
        }
    }
    ok.then_some(c)
}

/// Per-iteration cost of a loop body whose own trip count came from the
/// environment rather than the loop header (runtime bounds that the
/// abstract interpretation resolved to points).
fn per_iter_cost(func: &Function, body: &[Stmt]) -> Option<u64> {
    let mut memo = HashMap::new();
    block_cost(func, body, &mut memo)
}

// ---------------------------------------------------------------------------
// Dynamic soundness oracle: containment checking
// ---------------------------------------------------------------------------

/// One observed value (or array element) escaping its static range.
#[derive(Clone, Debug, PartialEq)]
pub struct Escape {
    /// What escaped: `"value %7"` or ``"array @2 `x`"``.
    pub what: String,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl std::fmt::Display for Escape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.what, self.detail)
    }
}

/// Checks every range observed by a [`RangeRecorder`] run against the
/// static result. Any escape is a soundness bug in the analysis (or a
/// dishonest input annotation) and must fail hard.
pub fn check_containment(
    func: &Function,
    ranges: &ValueRanges,
    rec: &RangeRecorder,
) -> Vec<Escape> {
    let mut out = Vec::new();
    for (i, obs) in rec.values().iter().enumerate() {
        let what = || format!("value %{i}");
        if let Some((lo, hi)) = obs.int {
            if let Some(r) = ranges.ints.get(i).copied().flatten() {
                if lo < r.lo || hi > r.hi {
                    out.push(Escape {
                        what: what(),
                        detail: format!(
                            "observed i64 [{lo}, {hi}] escapes static [{}, {}]",
                            r.lo, r.hi
                        ),
                    });
                }
            }
        }
        if let Some(r) = ranges.floats.get(i).copied().flatten() {
            if obs.nonfinite {
                out.push(Escape {
                    what: what(),
                    detail: "observed a non-finite f64 but the static range claims finiteness"
                        .into(),
                });
            } else if let Some((lo, hi)) = obs.float {
                if lo < r.lo || hi > r.hi {
                    out.push(Escape {
                        what: what(),
                        detail: format!(
                            "observed f64 [{lo}, {hi}] escapes static [{}, {}]",
                            r.lo, r.hi
                        ),
                    });
                } else if r.quantized && obs.fractional {
                    out.push(Escape {
                        what: what(),
                        detail: "observed a fractional f64 but the static range claims \
                                 quantized (integer) values"
                            .into(),
                    });
                }
            }
        }
    }
    for (i, obs) in rec.arrays().iter().enumerate() {
        let what = || format!("array @{i} `{}`", func.arrays()[i].name);
        match ranges.contents.get(i) {
            Some(ContentRange::Int(Some(r))) => {
                if let Some((lo, hi)) = obs.int {
                    if lo < r.lo || hi > r.hi {
                        out.push(Escape {
                            what: what(),
                            detail: format!(
                                "observed contents [{lo}, {hi}] escape static [{}, {}]",
                                r.lo, r.hi
                            ),
                        });
                    }
                }
            }
            Some(ContentRange::Float(Some(r))) => {
                if obs.nonfinite {
                    out.push(Escape {
                        what: what(),
                        detail: "observed non-finite contents but the static range claims \
                                 finiteness"
                            .into(),
                    });
                } else if let Some((lo, hi)) = obs.float {
                    if lo < r.lo || hi > r.hi {
                        out.push(Escape {
                            what: what(),
                            detail: format!(
                                "observed contents [{lo}, {hi}] escape static [{}, {}]",
                                r.lo, r.hi
                            ),
                        });
                    } else if r.quantized && obs.fractional {
                        out.push(Escape {
                            what: what(),
                            detail: "observed fractional contents but the static range \
                                     claims quantized (integer) values"
                                .into(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;
    use crate::interp;
    use crate::memory::Memory;
    use crate::types::Scalar;
    use crate::verify::verify;

    #[test]
    fn unrolled_product_gets_exact_hull() {
        // prod = i*3 over i in 0..8: the hull is [0, 21].
        let mut b = FunctionBuilder::new("iv");
        let k = b.i64(3);
        let mut prod = None;
        b.for_loop("i", 0, 8, |b, i| {
            prod = Some(b.imul(i, k));
        });
        let f = b.finish();
        let r = value_ranges(&f);
        assert_eq!(
            r.ints[prod.unwrap().index()],
            Some(IntRange { lo: 0, hi: 21 })
        );
    }

    #[test]
    fn load_bounded_by_declared_range() {
        let mut b = FunctionBuilder::new("ld");
        let x = b.array_ranged(
            "x",
            8,
            ArrayKind::Input,
            Scalar::I64,
            DeclRange::Int { lo: 0, hi: 9 },
        );
        let mut v = None;
        b.for_loop("i", 0, 8, |b, i| {
            v = Some(b.load(x, i));
        });
        let f = b.finish();
        verify(&f).unwrap();
        let r = value_ranges(&f);
        assert_eq!(r.ints[v.unwrap().index()], Some(IntRange { lo: 0, hi: 9 }));
    }

    #[test]
    fn accumulator_hull_via_unrolling() {
        // acc += x[i] with x in [0, 9]: after 8 iterations acc ∈ [0, 72].
        // A joining fixpoint alone cannot bound this.
        let mut b = FunctionBuilder::new("acc");
        let x = b.array_ranged(
            "x",
            8,
            ArrayKind::Input,
            Scalar::F64,
            DeclRange::Float {
                lo: 0.0,
                hi: 9.0,
                quantized: true,
            },
        );
        let cell = b.cell_f64("acc", 0.0);
        b.for_loop("i", 0, 8, |b, i| {
            let xi = b.load(x, i);
            let cur = b.load_cell(cell);
            let s = b.fadd(cur, xi);
            b.store_cell(cell, s);
        });
        let f = b.finish();
        verify(&f).unwrap();
        let r = value_ranges(&f);
        let ContentRange::Float(Some(c)) = r.contents[cell.index()] else {
            panic!("accumulator cell content unbounded: {:?}", r.contents);
        };
        assert_eq!((c.lo, c.hi), (0.0, 72.0));
        assert!(c.quantized, "integer inputs keep the accumulator quantized");
    }

    #[test]
    fn join_mode_widens_to_thresholds() {
        // Tiny budget forces join mode; the accumulator's content must
        // widen to a finite threshold or ⊤ (not loop forever).
        let mut b = FunctionBuilder::new("widen");
        let x = b.array_ranged(
            "x",
            64,
            ArrayKind::Input,
            Scalar::F64,
            DeclRange::Float {
                lo: 0.0,
                hi: 1.0,
                quantized: false,
            },
        );
        let cell = b.cell_f64("acc", 0.0);
        b.for_loop("i", 0, 64, |b, i| {
            let xi = b.load(x, i);
            let cur = b.load_cell(cell);
            let s = b.fadd(cur, xi);
            b.store_cell(cell, s);
        });
        let f = b.finish();
        let cfg = VraConfig {
            eval_budget: 8,
            ..VraConfig::default()
        };
        let r = value_ranges_with(&f, &cfg);
        match r.contents[cell.index()] {
            // Sound either way: a widened threshold covering [0, 64]
            // or ⊤ after the round cap.
            ContentRange::Float(Some(c)) => {
                assert!(c.lo <= 0.0 && c.hi >= 64.0, "unsound widening: {c:?}");
            }
            ContentRange::Float(None) => {}
            ref other => panic!("wrong content domain: {other:?}"),
        }
    }

    #[test]
    fn tape_round_trip_stays_bounded() {
        // FWD stores a bounded value into a tape array, REV loads it:
        // the loaded value inherits the bound (plus the zero seed).
        let mut b = FunctionBuilder::new("tape");
        let x = b.array_ranged(
            "x",
            8,
            ArrayKind::Input,
            Scalar::F64,
            DeclRange::Float {
                lo: 2.0,
                hi: 5.0,
                quantized: true,
            },
        );
        let t = b.array("T0", 8, ArrayKind::Tape, Scalar::F64);
        b.for_loop("i", 0, 8, |b, i| {
            let xi = b.load(x, i);
            b.store(t, i, xi);
        });
        let mut back = None;
        b.for_loop_step(
            "r",
            crate::function::Bound::Const(7),
            crate::function::Bound::Const(-1),
            -1,
            |b, i| {
                back = Some(b.load(t, i));
            },
        );
        let f = b.finish();
        verify(&f).unwrap();
        let r = value_ranges(&f);
        let got = r.floats[back.unwrap().index()].expect("tape load bounded");
        assert_eq!((got.lo, got.hi), (0.0, 5.0));
        assert!(got.quantized);
    }

    #[test]
    fn nonfinite_division_is_flagged() {
        let mut b = FunctionBuilder::new("nf");
        let z = b.array_ranged(
            "z",
            1,
            ArrayKind::Input,
            Scalar::F64,
            DeclRange::Float {
                lo: 0.0,
                hi: 0.0,
                quantized: true,
            },
        );
        let i0 = b.i64(0);
        let d = b.load(z, i0);
        let one = b.f64(1.0);
        let q = b.fdiv(one, d);
        let _ = q;
        let f = b.finish();
        verify(&f).unwrap();
        let r = value_ranges(&f);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "float-nonfinite");
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn division_by_nonzero_stays_clean() {
        let mut b = FunctionBuilder::new("ok");
        let z = b.array_ranged(
            "z",
            1,
            ArrayKind::Input,
            Scalar::F64,
            DeclRange::Float {
                lo: 1.0,
                hi: 4.0,
                quantized: false,
            },
        );
        let i0 = b.i64(0);
        let d = b.load(z, i0);
        let one = b.f64(1.0);
        let q = b.fdiv(one, d);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.diagnostics.is_empty());
        let fr = r.floats[q.index()].expect("bounded quotient");
        assert!(fr.lo <= 0.25 && fr.hi >= 1.0, "{fr:?}");
    }

    #[test]
    fn oracle_agrees_on_interpreted_run() {
        // Build, analyze, execute under the recorder, check containment.
        let mut b = FunctionBuilder::new("orc");
        let x = b.array_ranged(
            "x",
            8,
            ArrayKind::Input,
            Scalar::F64,
            DeclRange::Float {
                lo: 0.0,
                hi: 9.0,
                quantized: true,
            },
        );
        let y = b.array("y", 8, ArrayKind::Output, Scalar::F64);
        let cell = b.cell_f64("acc", 0.0);
        b.for_loop("i", 0, 8, |b, i| {
            let xi = b.load(x, i);
            let cur = b.load_cell(cell);
            let s = b.fadd(cur, xi);
            b.store_cell(cell, s);
            b.store(y, i, s);
        });
        let f = b.finish();
        verify(&f).unwrap();
        let ranges = value_ranges(&f);
        let mut mem = Memory::for_function(&f);
        mem.set_f64(x, &[0.0, 9.0, 3.0, 1.0, 4.0, 1.0, 5.0, 9.0]);
        let rec = RangeRecorder::new(&f, &mem);
        let (rec, _) = interp::execute(&f, &mut mem, rec).unwrap();
        let escapes = check_containment(&f, &ranges, &rec);
        assert!(escapes.is_empty(), "{escapes:?}");
    }

    #[test]
    fn oracle_catches_dishonest_annotation() {
        let mut b = FunctionBuilder::new("liar");
        let x = b.array_ranged(
            "x",
            4,
            ArrayKind::Input,
            Scalar::F64,
            DeclRange::Float {
                lo: 0.0,
                hi: 1.0,
                quantized: false,
            },
        );
        let mut v = None;
        b.for_loop("i", 0, 4, |b, i| {
            v = Some(b.load(x, i));
        });
        let _ = v;
        let f = b.finish();
        let ranges = value_ranges(&f);
        let mut mem = Memory::for_function(&f);
        mem.set_f64(x, &[0.5, 7.0, 0.5, 0.5]); // 7.0 breaks the contract
        let rec = RangeRecorder::new(&f, &mem);
        let (rec, _) = interp::execute(&f, &mut mem, rec).unwrap();
        let escapes = check_containment(&f, &ranges, &rec);
        assert!(!escapes.is_empty(), "dishonest range must be caught");
    }

    #[test]
    fn census_counts_bounded_values() {
        let mut b = FunctionBuilder::new("c");
        let k = b.i64(3);
        b.for_loop("i", 0, 4, |b, i| {
            let _ = b.imul(i, k);
        });
        let f = b.finish();
        let r = value_ranges(&f);
        let (bi, _) = r.int_census(&f);
        assert!(bi >= 2, "constant and product should be bounded");
    }
}
