//! Source-level transforms: loop unrolling.
//!
//! The paper's design-exploration experiments (Figures 4.8 and 4.10)
//! control the unroll factor of a kernel's inner loop to trade layer
//! depth against per-layer parallelism; [`unroll_loop`] provides that
//! knob for any function with a statically counted loop.

use crate::function::{Bound, Function, Stmt, ValueDef};
use crate::ids::{LoopId, ValueId};
use crate::ops::Op;
use crate::types::Const;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors raised by [`unroll_loop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// The named loop does not exist.
    UnknownLoop(String),
    /// The loop's trip count is not a compile-time constant.
    DynamicTrip(String),
    /// The trip count is not divisible by the unroll factor.
    NotDivisible {
        /// Loop trip count.
        trip: u64,
        /// Requested factor.
        factor: u64,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::UnknownLoop(n) => write!(f, "no loop named {n:?}"),
            TransformError::DynamicTrip(n) => {
                write!(f, "loop {n:?} has a dynamic trip count")
            }
            TransformError::NotDivisible { trip, factor } => {
                write!(
                    f,
                    "trip count {trip} not divisible by unroll factor {factor}"
                )
            }
        }
    }
}

impl Error for TransformError {}

/// Finds a loop by its debug name.
pub fn find_loop_by_name(func: &Function, name: &str) -> Option<LoopId> {
    func.loops()
        .iter()
        .position(|l| l.name == name)
        .map(LoopId::new)
}

struct Cloner<'a> {
    src: &'a Function,
    g: Function,
    vmap: Vec<Option<ValueId>>,
    consts: HashMap<(bool, u64), ValueId>,
    target: LoopId,
    factor: u64,
}

impl Cloner<'_> {
    fn cf(&mut self, v: f64) -> ValueId {
        let key = (true, v.to_bits());
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.g.add_const(Const::F64(v));
        self.consts.insert(key, id);
        id
    }

    fn ci(&mut self, v: i64) -> ValueId {
        let key = (false, v as u64);
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.g.add_const(Const::I64(v));
        self.consts.insert(key, id);
        id
    }

    fn map_val(&mut self, v: ValueId) -> ValueId {
        match self.src.value(v).def {
            ValueDef::Const(Const::F64(c)) => self.cf(c),
            ValueDef::Const(Const::I64(c)) => self.ci(c),
            _ => self.vmap[v.index()].expect("value mapped before use"),
        }
    }

    fn map_bound(&mut self, b: Bound) -> Bound {
        match b {
            Bound::Const(c) => Bound::Const(c),
            Bound::Value(v) => Bound::Value(self.map_val(v)),
        }
    }

    fn clone_inst(&mut self, id: crate::InstId, out: &mut Vec<Stmt>) {
        let inst = self.src.inst(id).clone();
        let args: Vec<ValueId> = inst.args.iter().map(|&a| self.map_val(a)).collect();
        let (nid, res) = self.g.add_inst(inst.op, args);
        out.push(Stmt::Inst(nid));
        if let (Some(r0), Some(r)) = (inst.result, res) {
            self.vmap[r0.index()] = Some(r);
        }
    }

    fn walk(&mut self, stmts: &[Stmt], out: &mut Vec<Stmt>) {
        for s in stmts {
            match s {
                Stmt::Inst(id) => self.clone_inst(*id, out),
                Stmt::For { loop_id, body } => {
                    if *loop_id == self.target {
                        self.emit_unrolled(*loop_id, body, out);
                    } else {
                        let info = self.src.loop_info(*loop_id).clone();
                        let start = self.map_bound(info.start);
                        let end = self.map_bound(info.end);
                        let (nlid, niv) = self.g.add_loop(info.name.clone(), start, end, info.step);
                        self.vmap[info.iv.index()] = Some(niv);
                        let mut inner = Vec::new();
                        self.walk(body, &mut inner);
                        out.push(Stmt::For {
                            loop_id: nlid,
                            body: inner,
                        });
                    }
                }
            }
        }
    }

    fn emit_unrolled(&mut self, loop_id: LoopId, body: &[Stmt], out: &mut Vec<Stmt>) {
        let info = self.src.loop_info(loop_id).clone();
        let (nlid, niv) = self.g.add_loop(
            format!("{}.u{}", info.name, self.factor),
            info.start,
            info.end,
            info.step * self.factor as i64,
        );
        let mut inner = Vec::new();
        for k in 0..self.factor {
            let iv_k = if k == 0 {
                niv
            } else {
                let off = self.ci(k as i64 * info.step);
                let (iid, r) = self.g.add_inst(Op::IAdd, vec![niv, off]);
                inner.push(Stmt::Inst(iid));
                r.expect("iadd result")
            };
            self.vmap[info.iv.index()] = Some(iv_k);
            // Each copy clones the body fresh; values defined inside get
            // new ids per copy (their vmap entries are overwritten, which
            // is safe because uses cannot escape the copy).
            self.walk(body, &mut inner);
        }
        out.push(Stmt::For {
            loop_id: nlid,
            body: inner,
        });
    }
}

/// Unrolls the loop named `loop_name` by `factor`, returning a new
/// function. `factor == 1` returns a plain clone.
///
/// # Errors
///
/// See [`TransformError`]. The trip count must be static and divisible by
/// `factor`.
pub fn unroll_loop(
    func: &Function,
    loop_name: &str,
    factor: u64,
) -> Result<Function, TransformError> {
    assert!(factor >= 1, "unroll factor must be positive");
    let target = find_loop_by_name(func, loop_name)
        .ok_or_else(|| TransformError::UnknownLoop(loop_name.to_string()))?;
    let info = func.loop_info(target);
    let trip = info
        .trip_count()
        .ok_or_else(|| TransformError::DynamicTrip(loop_name.to_string()))?;
    if trip % factor != 0 {
        return Err(TransformError::NotDivisible { trip, factor });
    }
    let mut cloner = Cloner {
        src: func,
        g: Function::new(format!("{}_u{}", func.name, factor)),
        vmap: vec![None; func.values().len()],
        consts: HashMap::new(),
        target,
        factor,
    };
    for a in func.arrays() {
        let id = cloner.g.add_array(a.name.clone(), a.len, a.kind, a.elem);
        if let Some(r) = a.range {
            cloner.g.set_array_range(id, r);
        }
    }
    let body = func.body.clone();
    let mut out = Vec::new();
    cloner.walk(&body, &mut out);
    cloner.g.body = out;
    Ok(cloner.g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;
    use crate::memory::Memory;
    use crate::types::Scalar;

    fn sum_squares(n: usize) -> (Function, crate::ArrayId, crate::ArrayId) {
        let mut b = FunctionBuilder::new("ss");
        let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
        let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, n as i64, |b, i| {
            let v = b.load(x, i);
            let sq = b.fmul(v, v);
            let c = b.load_cell(loss);
            let s = b.fadd(c, sq);
            b.store_cell(loss, s);
        });
        (b.finish(), x, loss)
    }

    #[test]
    fn unrolled_function_computes_the_same() {
        let n = 12;
        let (f, x, loss) = sum_squares(n);
        for factor in [1u64, 2, 3, 4, 6] {
            let u = unroll_loop(&f, "i", factor).unwrap();
            crate::verify::verify(&u).unwrap();
            let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
            let mut m0 = Memory::for_function(&f);
            m0.set_f64(x, &data);
            crate::interp::run(&f, &mut m0).unwrap();
            let mut m1 = Memory::for_function(&u);
            m1.set_f64(x, &data);
            crate::interp::run(&u, &mut m1).unwrap();
            assert_eq!(
                m0.get_f64_at(loss, 0),
                m1.get_f64_at(loss, 0),
                "factor {factor}"
            );
        }
    }

    #[test]
    fn body_is_replicated() {
        let (f, _, _) = sum_squares(8);
        let u = unroll_loop(&f, "i", 4).unwrap();
        // 4 copies of (load, fmul, load, fadd, store) + 3 iv adds.
        let base_insts = f.insts().len();
        assert!(u.insts().len() >= base_insts * 3);
        let l = find_loop_by_name(&u, "i.u4").unwrap();
        assert_eq!(u.loop_info(l).step, 4);
    }

    #[test]
    fn indivisible_factor_rejected() {
        let (f, _, _) = sum_squares(10);
        assert_eq!(
            unroll_loop(&f, "i", 4).err(),
            Some(TransformError::NotDivisible {
                trip: 10,
                factor: 4
            })
        );
        assert!(matches!(
            unroll_loop(&f, "nope", 2),
            Err(TransformError::UnknownLoop(_))
        ));
    }

    #[test]
    fn unrolled_gradient_still_checks() {
        // Differentiating the unrolled function must give the same
        // gradients (unrolling is semantics-preserving).
        let n = 8;
        let (f, x, loss) = sum_squares(n);
        let u = unroll_loop(&f, "i", 4).unwrap();
        let mut mem = Memory::for_function(&f);
        mem.set_f64(x, &[0.1, 0.4, -0.7, 1.1, 0.0, -0.3, 0.9, 0.5]);
        // Interpret both; no AD dependency from this crate (checked in
        // integration tests); compare forward values only here.
        let mut m1 = mem.clone();
        crate::interp::run(&f, &mut m1).unwrap();
        let mut m2 = Memory::for_function(&u);
        m2.set_f64(x, &[0.1, 0.4, -0.7, 1.1, 0.0, -0.3, 0.9, 0.5]);
        crate::interp::run(&u, &mut m2).unwrap();
        assert_eq!(m1.get_f64_at(loss, 0), m2.get_f64_at(loss, 0));
    }
}
