//! Trace-level analyses reproducing the paper's Chapter-2 tape
//! characterization: edge distribution (Fig 2.6), edge lifetimes
//! (Fig 2.7), tape-lifetime quantiles (Fig 2.8), and working-set sizing
//! (Table 4.1, Fig 4.9).

use crate::ops::{Op, OpClass};
use crate::trace::{Phase, Trace};
use std::collections::HashMap;

/// Classification of a dependence edge, following Figure 2.6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Produced and consumed within the forward phase.
    Fwd,
    /// Consumed in the reverse phase through ordinary (non-tape) state.
    Rev,
    /// Carried FWD → REV through the tape (tape-array, scratchpad or
    /// stream accesses on both endpoints).
    Tape,
}

/// Aggregate counts of a trace's accesses and edges.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Dynamic node count.
    pub nodes: u64,
    /// Dynamic floating-point compute ops.
    pub fp_ops: u64,
    /// Dynamic integer ops.
    pub int_ops: u64,
    /// DRAM loads + stores (cache path), excluding streams.
    pub mem_accesses: u64,
    /// DRAM accesses that target tape arrays.
    pub tape_mem_accesses: u64,
    /// Scratchpad accesses.
    pub spad_accesses: u64,
    /// Stream commands.
    pub streams: u64,
    /// Bytes moved by stream commands.
    pub stream_bytes: u64,
    /// Memory accesses issued in the forward phase.
    pub fwd_mem_accesses: u64,
    /// Memory accesses issued in the reverse phase.
    pub rev_mem_accesses: u64,
    /// Edges by kind: `[Fwd, Rev, Tape]`.
    pub edges: [u64; 3],
    /// Distinct DRAM bytes touched.
    pub bytes_touched: u64,
    /// Peak simultaneously-live DRAM bytes (first-touch to last-touch).
    pub max_live_bytes: u64,
}

impl TraceStats {
    /// Fraction of DRAM accesses that are tape accesses (paper Obs 1.1:
    /// 20–40 %).
    pub fn tape_access_fraction(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.tape_mem_accesses as f64 / self.mem_accesses as f64
        }
    }

    /// Total edges.
    pub fn total_edges(&self) -> u64 {
        self.edges.iter().sum()
    }
}

/// Classifies one edge given its endpoints.
fn edge_kind(trace: &Trace, p: crate::NodeId, c: crate::NodeId) -> EdgeKind {
    let pn = trace.node(p);
    let cn = trace.node(c);
    if pn.is_tape && cn.is_tape {
        EdgeKind::Tape
    } else if cn.phase == Phase::Rev {
        EdgeKind::Rev
    } else {
        EdgeKind::Fwd
    }
}

/// Computes [`TraceStats`] in a single pass.
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let mut s = TraceStats {
        nodes: trace.len() as u64,
        ..TraceStats::default()
    };
    // (first_touch, last_touch) per 8-byte DRAM word, by node index.
    let mut touch: HashMap<u64, (u32, u32)> = HashMap::new();
    for (i, n) in trace.nodes().iter().enumerate() {
        match n.class() {
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpLong => s.fp_ops += 1,
            OpClass::Int => s.int_ops += 1,
            OpClass::MemLoad | OpClass::MemStore => {
                s.mem_accesses += 1;
                if n.is_tape {
                    s.tape_mem_accesses += 1;
                }
                match n.phase {
                    Phase::Fwd => s.fwd_mem_accesses += 1,
                    Phase::Rev => s.rev_mem_accesses += 1,
                }
                let e = touch.entry(n.addr & !7).or_insert((i as u32, i as u32));
                e.1 = i as u32;
            }
            OpClass::SpadLoad | OpClass::SpadStore => s.spad_accesses += 1,
            OpClass::Stream => {
                s.streams += 1;
                s.stream_bytes += n.bytes as u64;
                // Streams touch DRAM too; count their footprint.
                for k in 0..(n.bytes as u64 / 8) {
                    let a = (n.addr + 8 * k) & !7;
                    let e = touch.entry(a).or_insert((i as u32, i as u32));
                    e.1 = i as u32;
                }
            }
            OpClass::Sync => {}
        }
        for &d in &n.deps {
            let k = edge_kind(trace, d, crate::NodeId::new(i));
            let slot = match k {
                EdgeKind::Fwd => 0,
                EdgeKind::Rev => 1,
                EdgeKind::Tape => 2,
            };
            s.edges[slot] += 1;
        }
    }
    s.bytes_touched = touch.len() as u64 * 8;
    // Sweep for the peak live footprint.
    let mut events: Vec<(u32, i64)> = Vec::with_capacity(touch.len() * 2);
    for (_, (first, last)) in touch {
        events.push((first, 8));
        events.push((last + 1, -8));
    }
    events.sort_unstable();
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        live += delta;
        peak = peak.max(live);
    }
    s.max_live_bytes = peak as u64;
    s
}

/// Average producer→consumer distance of edges, split by kind
/// (Fig 2.7). `times[i]` is the completion time of node `i` — pass
/// simulator cycles for lifetimes in cycles, or [`node_index_times`] for
/// a topology-only proxy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LifetimeStats {
    /// Mean lifetime of tape edges.
    pub tape_avg: f64,
    /// Mean lifetime of forward (non-tape) edges.
    pub fwd_avg: f64,
    /// Mean lifetime of reverse edges.
    pub rev_avg: f64,
    /// Count of tape edges.
    pub tape_edges: u64,
    /// Count of forward edges.
    pub fwd_edges: u64,
    /// Count of reverse edges.
    pub rev_edges: u64,
}

impl LifetimeStats {
    /// The paper's headline ratio: tape lifetimes vs FWD lifetimes
    /// (Obs 1.2: up to 100×).
    pub fn tape_over_fwd(&self) -> f64 {
        if self.fwd_avg == 0.0 {
            f64::INFINITY
        } else {
            self.tape_avg / self.fwd_avg
        }
    }
}

/// A trivial time assignment: node index in trace order.
pub fn node_index_times(trace: &Trace) -> Vec<u64> {
    (0..trace.len() as u64).collect()
}

/// Computes [`LifetimeStats`] under the time assignment `times`.
///
/// # Panics
///
/// Panics if `times.len() != trace.len()`.
pub fn edge_lifetimes(trace: &Trace, times: &[u64]) -> LifetimeStats {
    assert_eq!(times.len(), trace.len(), "one time per node required");
    let mut sums = [0f64; 3];
    let mut counts = [0u64; 3];
    for (i, n) in trace.nodes().iter().enumerate() {
        for &d in &n.deps {
            let k = edge_kind(trace, d, crate::NodeId::new(i));
            let slot = match k {
                EdgeKind::Fwd => 0,
                EdgeKind::Rev => 1,
                EdgeKind::Tape => 2,
            };
            sums[slot] += times[i].saturating_sub(times[d.index()]) as f64;
            counts[slot] += 1;
        }
    }
    let avg = |s: f64, c: u64| if c == 0 { 0.0 } else { s / c as f64 };
    LifetimeStats {
        tape_avg: avg(sums[2], counts[2]),
        fwd_avg: avg(sums[0], counts[0]),
        rev_avg: avg(sums[1], counts[1]),
        tape_edges: counts[2],
        fwd_edges: counts[0],
        rev_edges: counts[1],
    }
}

/// One bucket of the tape-lifetime distribution (Fig 2.8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifetimeBucket {
    /// Largest lifetime in the bucket.
    pub max_lifetime: u64,
    /// Number of tape edges in the bucket.
    pub count: u64,
    /// Fraction of all tape edges.
    pub fraction: f64,
}

/// Splits tape-edge lifetimes into `quantiles` equal-population buckets,
/// mirroring the paper's 5-quantile presentation.
///
/// Returns an empty vector when the trace has no tape edges.
pub fn tape_lifetime_quantiles(
    trace: &Trace,
    times: &[u64],
    quantiles: usize,
) -> Vec<LifetimeBucket> {
    assert!(quantiles > 0, "need at least one quantile");
    assert_eq!(times.len(), trace.len(), "one time per node required");
    let mut lifetimes = Vec::new();
    for (i, n) in trace.nodes().iter().enumerate() {
        for &d in &n.deps {
            if edge_kind(trace, d, crate::NodeId::new(i)) == EdgeKind::Tape {
                lifetimes.push(times[i].saturating_sub(times[d.index()]));
            }
        }
    }
    if lifetimes.is_empty() {
        return Vec::new();
    }
    lifetimes.sort_unstable();
    let total = lifetimes.len();
    let mut out = Vec::with_capacity(quantiles);
    for q in 0..quantiles {
        let lo = q * total / quantiles;
        let hi = ((q + 1) * total / quantiles).max(lo + usize::from(q == quantiles - 1));
        let hi = hi.min(total);
        if lo >= hi {
            continue;
        }
        out.push(LifetimeBucket {
            max_lifetime: lifetimes[hi - 1],
            count: (hi - lo) as u64,
            fraction: (hi - lo) as f64 / total as f64,
        });
    }
    out
}

/// Register-pressure report over a dynamic dataflow graph — the thesis's
/// register-allocation tool (§1.5): liveness analysis, minimum registers
/// for a spill-free schedule, and spill count for a given file size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegisterReport {
    /// Dynamic values produced (register definitions).
    pub values: u64,
    /// Peak simultaneously-live values = minimum spill-free registers.
    pub max_live: u64,
    /// Values evicted by the furthest-next-use policy with the given
    /// register-file size.
    pub spills: u64,
    /// Register-file size the spill count was computed for.
    pub regs: usize,
}

/// Linear-scan register-pressure analysis over the trace's schedule
/// order, spilling by furthest last use (Belady) when the file of
/// `regs` registers overflows.
///
/// Dependence edges approximate register uses: every consumer of a
/// value-producing node counts as a use (write-after-read memory edges
/// slightly over-extend lifetimes; the approximation is conservative).
pub fn register_pressure(trace: &Trace, regs: usize) -> RegisterReport {
    assert!(regs > 0, "need at least one register");
    let n = trace.len();
    // Last consumer of each node, in schedule order.
    let mut last_use = vec![0u32; n];
    for (i, node) in trace.nodes().iter().enumerate() {
        for d in &node.deps {
            last_use[d.index()] = last_use[d.index()].max(i as u32);
        }
    }
    let produces = |i: usize| trace.nodes()[i].op.fixed_result() != Some(None);
    let mut report = RegisterReport {
        regs,
        ..RegisterReport::default()
    };
    // Live sets as (last_use, node) pairs; `full` tracks true pressure
    // (no eviction), `file` models the finite register file whose spill
    // policy drops the value reused furthest in the future.
    use std::collections::BTreeSet;
    let mut full: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut file: BTreeSet<(u32, u32)> = BTreeSet::new();
    #[allow(clippy::needless_range_loop)] // indexes three parallel arrays
    for i in 0..n {
        // Expire values whose last use has passed.
        for set in [&mut full, &mut file] {
            while let Some(&(lu, id)) = set.iter().next() {
                if (lu as usize) < i {
                    set.remove(&(lu, id));
                } else {
                    break;
                }
            }
        }
        if !produces(i) || last_use[i] as usize <= i {
            continue;
        }
        report.values += 1;
        full.insert((last_use[i], i as u32));
        report.max_live = report.max_live.max(full.len() as u64);
        file.insert((last_use[i], i as u32));
        if file.len() > regs {
            let &victim = file.iter().next_back().expect("non-empty");
            file.remove(&victim);
            report.spills += 1;
        }
    }
    report
}

/// Counts dynamic DRAM accesses per static array kind — the FWD / REV /
/// input / output / tape split of Figure 1.3.
pub fn accesses_by_array_kind(
    func: &crate::Function,
    trace: &Trace,
) -> HashMap<crate::ArrayKind, u64> {
    let mut m = HashMap::new();
    for n in trace.nodes() {
        if let Op::Load(a) | Op::Store(a) = n.op {
            *m.entry(func.array(a).kind).or_insert(0) += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;
    use crate::memory::Memory;
    use crate::trace::{trace_function, TraceOptions};
    use crate::types::Scalar;
    use crate::Function;

    /// FWD: t[i] = x[i]*x[i] (taped); barrier; REV: d[i] = t[i].
    fn tape_roundtrip_fn() -> (Function, crate::InstId) {
        let mut b = FunctionBuilder::new("rt");
        let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
        let t = b.array("T0", 8, ArrayKind::Tape, Scalar::F64);
        let d = b.array("d_x", 8, ArrayKind::Shadow, Scalar::F64);
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.load(x, i);
            let w = b.fmul(v, v);
            b.store(t, i, w);
        });
        let bar = b.push_inst(crate::Op::Barrier, vec![]);
        assert!(bar.is_none());
        let bar_id = crate::InstId::new(b.func().insts().len() - 1);
        b.for_loop_step("ri", 7i64, -1i64, -1, |b, i| {
            let w = b.load(t, i);
            b.store(d, i, w);
        });
        (b.finish(), bar_id)
    }

    fn traced() -> (Function, Trace) {
        let (f, bar) = tape_roundtrip_fn();
        let mut mem = Memory::for_function(&f);
        let t = trace_function(
            &f,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(bar),
            },
        )
        .unwrap();
        (f, t)
    }

    #[test]
    fn stats_count_tape_accesses() {
        let (_, t) = traced();
        let s = trace_stats(&t);
        // 8 input loads + 8 tape stores + 8 tape loads + 8 shadow stores.
        assert_eq!(s.mem_accesses, 32);
        assert_eq!(s.tape_mem_accesses, 16);
        assert!((s.tape_access_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.fwd_mem_accesses, 16);
        assert_eq!(s.rev_mem_accesses, 16);
        assert!(s.edges[2] >= 8, "8 tape RAW edges expected");
        assert!(s.bytes_touched >= 8 * 3 * 8);
    }

    #[test]
    fn tape_edges_outlive_fwd_edges() {
        let (_, t) = traced();
        let times = node_index_times(&t);
        let lt = edge_lifetimes(&t, &times);
        assert!(lt.tape_edges >= 8);
        assert!(
            lt.tape_avg > lt.fwd_avg,
            "tape {} vs fwd {}",
            lt.tape_avg,
            lt.fwd_avg
        );
        assert!(lt.tape_over_fwd() > 1.0);
    }

    #[test]
    fn lifetime_reversal_makes_first_tape_entry_longest() {
        // The first-produced tape value is consumed last: its lifetime
        // must be the largest bucket.
        let (_, t) = traced();
        let times = node_index_times(&t);
        let buckets = tape_lifetime_quantiles(&t, &times, 5);
        assert!(!buckets.is_empty());
        for w in buckets.windows(2) {
            assert!(w[0].max_lifetime <= w[1].max_lifetime);
        }
        let total: f64 = buckets.iter().map(|b| b.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_empty_without_tape() {
        let mut b = FunctionBuilder::new("notape");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        b.for_loop("i", 0, 4, |b, i| {
            let _ = b.load(x, i);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let t = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        assert!(tape_lifetime_quantiles(&t, &node_index_times(&t), 5).is_empty());
    }

    #[test]
    fn kind_split_matches() {
        let (f, t) = traced();
        let m = accesses_by_array_kind(&f, &t);
        assert_eq!(m[&ArrayKind::Input], 8);
        assert_eq!(m[&ArrayKind::Tape], 16);
        assert_eq!(m[&ArrayKind::Shadow], 8);
    }

    #[test]
    fn register_pressure_on_chain_vs_parallel() {
        // A dependent chain needs 1 live value; n parallel values all
        // consumed at the end need n.
        let mut b = FunctionBuilder::new("chain");
        let o = b.array("o", 1, ArrayKind::Output, Scalar::F64);
        let one = b.f64(1.0);
        let mut v = b.f64(0.5);
        for _ in 0..6 {
            v = b.fadd(v, one);
        }
        b.store_cell(o, v);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let t = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let chain = register_pressure(&t, 4);
        assert!(chain.max_live <= 2, "{chain:?}");
        assert_eq!(chain.spills, 0);

        let mut b = FunctionBuilder::new("wide");
        let o = b.array("o", 1, ArrayKind::Output, Scalar::F64);
        let one = b.f64(1.0);
        let vals: Vec<_> = (0..8).map(|_| b.fadd(one, one)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.fmul(acc, v);
        }
        b.store_cell(o, acc);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let t = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let wide = register_pressure(&t, 4);
        assert!(wide.max_live >= 7, "{wide:?}");
        assert!(wide.spills > 0, "a 4-register file must spill: {wide:?}");
        let roomy = register_pressure(&t, 16);
        assert_eq!(roomy.spills, 0);
    }

    #[test]
    fn max_live_bounded_by_touched() {
        let (_, t) = traced();
        let s = trace_stats(&t);
        assert!(s.max_live_bytes <= s.bytes_touched);
        assert!(s.max_live_bytes > 0);
    }
}
