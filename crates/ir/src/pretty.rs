//! Human-readable printing of functions.

use crate::function::{Bound, Function, Stmt, ValueDef};
use crate::ids::ValueId;
use std::fmt;
use std::fmt::Write as _;

/// Wrapper whose `Display` renders a function as pseudo-IR text.
///
/// ```rust
/// # use tapeflow_ir::{FunctionBuilder, ArrayKind, Scalar};
/// let mut b = FunctionBuilder::new("f");
/// let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
/// b.for_loop("i", 0, 4, |b, i| { let _ = b.load(x, i); });
/// let text = tapeflow_ir::pretty::pretty(&b.finish()).to_string();
/// assert!(text.contains("for i"));
/// ```
pub fn pretty(func: &Function) -> Pretty<'_> {
    Pretty {
        func,
        provenance: false,
    }
}

/// Like [`pretty`], but annotates every instruction with its
/// [`crate::Provenance`] record as a trailing comment
/// (`// src=inst3 region=0 layer=1 by=streams`). The plain printer's
/// output is unchanged, so golden IR snapshots and the parser
/// round-trip are unaffected.
pub fn pretty_with_provenance(func: &Function) -> Pretty<'_> {
    Pretty {
        func,
        provenance: true,
    }
}

/// See [`pretty`].
#[derive(Debug)]
pub struct Pretty<'f> {
    func: &'f Function,
    provenance: bool,
}

fn operand(func: &Function, v: ValueId) -> String {
    match func.value(v).def {
        ValueDef::Const(c) => c.to_string(),
        ValueDef::Iv(l) => func.loop_info(l).name.clone(),
        ValueDef::Inst(_) => v.to_string(),
    }
}

fn bound(func: &Function, b: Bound) -> String {
    match b {
        Bound::Const(c) => c.to_string(),
        Bound::Value(v) => operand(func, v),
    }
}

/// Renders one provenance record the way the annotated printer and the
/// profiler's hot-spot table show it.
pub fn provenance_comment(p: crate::Provenance) -> String {
    let mut s = String::new();
    match p.source {
        Some(i) => {
            let _ = write!(s, "src={i}");
        }
        None => s.push_str("src=-"),
    }
    if let Some(r) = p.region {
        let _ = write!(s, " region={r}");
    }
    if let Some(l) = p.layer {
        let _ = write!(s, " layer={l}");
    }
    let _ = write!(s, " by={}", p.created_by);
    if let Some(rw) = p.rewritten_by {
        let _ = write!(s, "+{rw}");
    }
    s
}

fn write_stmts(
    out: &mut String,
    func: &Function,
    stmts: &[Stmt],
    indent: usize,
    provenance: bool,
) -> fmt::Result {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Inst(id) => {
                let inst = func.inst(*id);
                write!(out, "{pad}")?;
                if let Some(r) = inst.result {
                    write!(out, "{r} = ")?;
                }
                write!(out, "{}", inst.op.mnemonic())?;
                for a in &inst.args {
                    write!(out, " {}", operand(func, *a))?;
                }
                if provenance {
                    write!(out, "  // {}", provenance_comment(func.prov(*id)))?;
                }
                writeln!(out)?;
            }
            Stmt::For { loop_id, body } => {
                let info = func.loop_info(*loop_id);
                writeln!(
                    out,
                    "{pad}for {} in {}..{} step {} {{",
                    info.name,
                    bound(func, info.start),
                    bound(func, info.end),
                    info.step
                )?;
                write_stmts(out, func, body, indent + 1, provenance)?;
                writeln!(out, "{pad}}}")?;
            }
        }
    }
    Ok(())
}

impl fmt::Display for Pretty<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let f = self.func;
        writeln!(out, "func @{} {{", f.name)?;
        for (i, a) in f.arrays().iter().enumerate() {
            write!(
                out,
                "  array @{i} {} : {}[{}] ({:?})",
                a.name, a.elem, a.len, a.kind
            )?;
            match a.range {
                Some(crate::function::DeclRange::Int { lo, hi }) => {
                    write!(out, " in[{lo},{hi}]")?;
                }
                Some(crate::function::DeclRange::Float { lo, hi, quantized }) => {
                    write!(out, " in[{lo},{hi}]")?;
                    if quantized {
                        write!(out, " quantized")?;
                    }
                }
                None => {}
            }
            writeln!(out)?;
        }
        let mut body = String::new();
        write_stmts(&mut body, f, &f.body, 1, self.provenance).map_err(|_| fmt::Error)?;
        write!(out, "{body}")?;
        writeln!(out, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;
    use crate::types::Scalar;

    #[test]
    fn renders_loops_and_ops() {
        let mut b = FunctionBuilder::new("demo");
        let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", 8, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.load(x, i);
            let w = b.fmul(v, v);
            b.store(y, i, w);
        });
        let text = super::pretty(&b.finish()).to_string();
        assert!(text.contains("func @demo"), "{text}");
        assert!(text.contains("for i in 0..8 step 1"), "{text}");
        assert!(text.contains("fmul"), "{text}");
        assert!(text.contains("array @0 x : f64[8]"), "{text}");
    }

    #[test]
    fn provenance_annotation_is_opt_in() {
        let mut b = FunctionBuilder::new("p");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        b.for_loop("i", 0, 4, |b, i| {
            let _ = b.load(x, i);
        });
        let f = b.finish();
        let plain = super::pretty(&f).to_string();
        assert!(!plain.contains("// src="), "{plain}");
        let annotated = super::pretty_with_provenance(&f).to_string();
        assert!(annotated.contains("// src=inst0 by=source"), "{annotated}");
    }

    #[test]
    fn renders_constants_inline() {
        let mut b = FunctionBuilder::new("c");
        let two = b.f64(2.0);
        let three = b.f64(3.0);
        let _ = b.fadd(two, three);
        let text = super::pretty(&b.finish()).to_string();
        assert!(text.contains("fadd 2 3"), "{text}");
    }
}
