//! Instruction opcodes, their typing rules and scheduling classes.

use crate::ids::ArrayId;
use crate::types::Scalar;
use std::fmt;

/// Comparison predicates shared by [`Op::FCmp`] and [`Op::ICmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpKind {
    /// Evaluates the predicate over a [`std::cmp::Ordering`]-like pair.
    #[inline]
    pub fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        };
        write!(f, "{s}")
    }
}

/// Instruction opcodes.
///
/// The first groups mirror what a post-`-O3` LLVM function contains
/// (floating-point dataflow plus integer address arithmetic). The last
/// group — scratchpad and stream operations — is introduced by the
/// Tapeflow passes (`tapeflow-core`) and corresponds to the paper's
/// `SAlloc`, `TLoad`/`TStore`-to-scratchpad rewrites and the
/// `FWD-Stream`/`REV-Stream` engine commands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    // ---- f64 arithmetic ------------------------------------------------
    /// `f64` addition: `args = [a, b]`.
    FAdd,
    /// `f64` subtraction: `args = [a, b]`.
    FSub,
    /// `f64` multiplication: `args = [a, b]`.
    FMul,
    /// `f64` division: `args = [a, b]`.
    FDiv,
    /// `f64` minimum: `args = [a, b]`.
    FMin,
    /// `f64` maximum: `args = [a, b]`.
    FMax,
    /// `f64` negation: `args = [a]`.
    FNeg,
    /// `f64` absolute value: `args = [a]`.
    FAbs,
    /// Square root: `args = [a]`.
    Sqrt,
    /// Sine: `args = [a]`.
    Sin,
    /// Cosine: `args = [a]`.
    Cos,
    /// Natural exponential: `args = [a]`.
    Exp,
    /// Natural logarithm: `args = [a]`.
    Ln,
    /// Hyperbolic tangent: `args = [a]`.
    Tanh,
    /// Power: `args = [base, exponent]`, both `f64`.
    FPow,
    /// Float comparison producing `i64` 0/1: `args = [a, b]`.
    FCmp(CmpKind),
    /// Conditional select: `args = [cond (i64), if_true, if_false]`.
    ///
    /// The result type equals the type of `if_true`/`if_false` (which must
    /// agree); this is how data-dependent dataflow (e.g. `pathfinder`'s
    /// running minimum) is expressed without control divergence.
    Select,

    // ---- i64 arithmetic (address generation) ---------------------------
    /// `i64` addition: `args = [a, b]`.
    IAdd,
    /// `i64` subtraction: `args = [a, b]`.
    ISub,
    /// `i64` multiplication: `args = [a, b]`.
    IMul,
    /// `i64` Euclidean-style truncated division: `args = [a, b]`.
    IDiv,
    /// `i64` remainder: `args = [a, b]`.
    IRem,
    /// `i64` minimum: `args = [a, b]`.
    IMin,
    /// `i64` maximum: `args = [a, b]`.
    IMax,
    /// Integer comparison producing `i64` 0/1: `args = [a, b]`.
    ICmp(CmpKind),
    /// Integer to float conversion: `args = [a]`.
    IToF,
    /// Float to integer conversion (round to nearest): `args = [a]`.
    ///
    /// Used when a reverse pass reloads an integer (e.g. a select
    /// condition or an indirect index) from the `f64`-only tape.
    FToI,

    // ---- memory ---------------------------------------------------------
    /// Load an element: `args = [index]`; result type is the array's
    /// element type. Loads from [`crate::ArrayKind::Tape`] arrays are tape
    /// reads (REV side).
    Load(ArrayId),
    /// Store an element: `args = [index, value]`; no result. Stores to
    /// [`crate::ArrayKind::Tape`] arrays are tape writes (FWD side).
    Store(ArrayId),

    // ---- scratchpad & streams (inserted by tapeflow-core) ---------------
    /// Allocate a region of `size` scratchpad entries at a layer head and
    /// yield its base index (`i64`). `args = []`.
    ///
    /// The base is assigned statically by Pass 3 (`tapeflow-core`), which
    /// alternates between double-buffer halves so a layer's stream can
    /// overlap the next layer's compute.
    SAlloc {
        /// Number of 8 B scratchpad entries reserved for the layer.
        size: u32,
        /// Statically assigned base entry within the scratchpad.
        base: u32,
    },
    /// Scratchpad load: `args = [entry_index]` (`i64`), result `f64`.
    SpadLoad,
    /// Scratchpad store: `args = [entry_index, value]`; no result.
    SpadStore,
    /// `FWD-Stream`: drain `args = [spad_base, elems]` scratchpad entries
    /// to the tape `array` in DRAM starting at element `args[2]`.
    ///
    /// `args = [spad_base (i64), dram_elem_base (i64), elems (i64)]`.
    StreamOut(ArrayId),
    /// `REV-Stream`: fill scratchpad from the tape `array` in DRAM.
    ///
    /// `args = [spad_base (i64), dram_elem_base (i64), elems (i64)]`.
    StreamIn(ArrayId),
    /// Layer barrier: orders everything before it in program order ahead of
    /// everything after it. `args = []`, no result.
    Barrier,
}

/// Coarse scheduling class of an operation, used by the simulator to pick
/// functional-unit pools, latencies and energy events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Short-latency floating-point ALU op (add/sub/neg/abs/min/max/select/cmp).
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Long-latency floating point (div/sqrt/transcendentals).
    FpLong,
    /// Integer / address-generation op.
    Int,
    /// Cache (DRAM-backed) load.
    MemLoad,
    /// Cache (DRAM-backed) store.
    MemStore,
    /// Scratchpad load.
    SpadLoad,
    /// Scratchpad store.
    SpadStore,
    /// Stream-engine command.
    Stream,
    /// Synchronization barrier or allocation pseudo-op.
    Sync,
}

impl Op {
    /// Number of value operands the op expects.
    pub fn arity(&self) -> usize {
        use Op::*;
        match self {
            FNeg | FAbs | Sqrt | Sin | Cos | Exp | Ln | Tanh | IToF | FToI => 1,
            FAdd | FSub | FMul | FDiv | FMin | FMax | FPow | IAdd | ISub | IMul | IDiv | IRem
            | IMin | IMax => 2,
            FCmp(_) | ICmp(_) => 2,
            Select => 3,
            Load(_) => 1,
            Store(_) => 2,
            SAlloc { .. } => 0,
            SpadLoad => 1,
            SpadStore => 2,
            StreamOut(_) | StreamIn(_) => 3,
            Barrier => 0,
        }
    }

    /// Result type, or `None` for ops that produce nothing (stores,
    /// streams, barriers). [`Op::Load`] and [`Op::Select`] are
    /// context-typed and return `None` here; the verifier derives their
    /// type from the array declaration / operand types.
    pub fn fixed_result(&self) -> Option<Option<Scalar>> {
        use Op::*;
        match self {
            FAdd | FSub | FMul | FDiv | FMin | FMax | FNeg | FAbs | Sqrt | Sin | Cos | Exp | Ln
            | Tanh | FPow | IToF | SpadLoad => Some(Some(Scalar::F64)),
            FCmp(_)
            | ICmp(_)
            | IAdd
            | ISub
            | IMul
            | IDiv
            | IRem
            | IMin
            | IMax
            | FToI
            | SAlloc { .. } => Some(Some(Scalar::I64)),
            Store(_) | SpadStore | StreamOut(_) | StreamIn(_) | Barrier => Some(None),
            Load(_) | Select => None,
        }
    }

    /// The scheduling class used by the simulator.
    pub fn class(&self) -> OpClass {
        use Op::*;
        match self {
            FAdd | FSub | FNeg | FAbs | FMin | FMax | FCmp(_) | Select | IToF | FToI => {
                OpClass::FpAlu
            }
            FMul => OpClass::FpMul,
            FDiv | Sqrt | Sin | Cos | Exp | Ln | Tanh | FPow => OpClass::FpLong,
            IAdd | ISub | IMul | IDiv | IRem | IMin | IMax | ICmp(_) => OpClass::Int,
            Load(_) => OpClass::MemLoad,
            Store(_) => OpClass::MemStore,
            SpadLoad => OpClass::SpadLoad,
            SpadStore => OpClass::SpadStore,
            StreamOut(_) | StreamIn(_) => OpClass::Stream,
            SAlloc { .. } | Barrier => OpClass::Sync,
        }
    }

    /// Whether the op touches an array in DRAM, and which one.
    pub fn touched_array(&self) -> Option<ArrayId> {
        match *self {
            Op::Load(a) | Op::Store(a) | Op::StreamOut(a) | Op::StreamIn(a) => Some(a),
            _ => None,
        }
    }

    /// Short mnemonic used by the pretty-printer.
    pub fn mnemonic(&self) -> String {
        use Op::*;
        match self {
            FAdd => "fadd".into(),
            FSub => "fsub".into(),
            FMul => "fmul".into(),
            FDiv => "fdiv".into(),
            FMin => "fmin".into(),
            FMax => "fmax".into(),
            FNeg => "fneg".into(),
            FAbs => "fabs".into(),
            Sqrt => "sqrt".into(),
            Sin => "sin".into(),
            Cos => "cos".into(),
            Exp => "exp".into(),
            Ln => "ln".into(),
            Tanh => "tanh".into(),
            FPow => "fpow".into(),
            FCmp(k) => format!("fcmp.{k}"),
            Select => "select".into(),
            IAdd => "iadd".into(),
            ISub => "isub".into(),
            IMul => "imul".into(),
            IDiv => "idiv".into(),
            IRem => "irem".into(),
            IMin => "imin".into(),
            IMax => "imax".into(),
            ICmp(k) => format!("icmp.{k}"),
            IToF => "itof".into(),
            FToI => "ftoi".into(),
            Load(a) => format!("load {a}"),
            Store(a) => format!("store {a}"),
            SAlloc { size, base } => format!("salloc {size} @{base}"),
            SpadLoad => "spad.load".into(),
            SpadStore => "spad.store".into(),
            StreamOut(a) => format!("stream.out {a}"),
            StreamIn(a) => format!("stream.in {a}"),
            Barrier => "barrier".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_class() {
        assert_eq!(Op::FAdd.arity(), 2);
        assert_eq!(Op::Select.arity(), 3);
        assert_eq!(Op::Load(ArrayId::new(0)).arity(), 1);
        assert_eq!(Op::Store(ArrayId::new(0)).arity(), 2);
        assert_eq!(Op::Barrier.arity(), 0);
        assert_eq!(Op::StreamIn(ArrayId::new(1)).arity(), 3);
    }

    #[test]
    fn classes() {
        assert_eq!(Op::FMul.class(), OpClass::FpMul);
        assert_eq!(Op::Exp.class(), OpClass::FpLong);
        assert_eq!(Op::IAdd.class(), OpClass::Int);
        assert_eq!(Op::SpadLoad.class(), OpClass::SpadLoad);
        assert_eq!(Op::Barrier.class(), OpClass::Sync);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpKind::Lt.eval(1.0, 2.0));
        assert!(!CmpKind::Ge.eval(1, 2));
        assert!(CmpKind::Ne.eval(1, 2));
        assert!(CmpKind::Eq.eval(3, 3));
    }

    #[test]
    fn touched_array() {
        let a = ArrayId::new(5);
        assert_eq!(Op::Load(a).touched_array(), Some(a));
        assert_eq!(Op::FAdd.touched_array(), None);
        assert_eq!(Op::StreamOut(a).touched_array(), Some(a));
    }
}
