//! Instruction opcodes, their typing rules and scheduling classes.

use crate::ids::ArrayId;
use crate::types::Scalar;
use std::fmt;

/// Comparison predicates shared by [`Op::FCmp`] and [`Op::ICmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpKind {
    /// Evaluates the predicate over a [`std::cmp::Ordering`]-like pair.
    #[inline]
    pub fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        };
        write!(f, "{s}")
    }
}

/// Instruction opcodes.
///
/// The first groups mirror what a post-`-O3` LLVM function contains
/// (floating-point dataflow plus integer address arithmetic). The last
/// group — scratchpad and stream operations — is introduced by the
/// Tapeflow passes (`tapeflow-core`) and corresponds to the paper's
/// `SAlloc`, `TLoad`/`TStore`-to-scratchpad rewrites and the
/// `FWD-Stream`/`REV-Stream` engine commands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    // ---- f64 arithmetic ------------------------------------------------
    /// `f64` addition: `args = [a, b]`.
    FAdd,
    /// `f64` subtraction: `args = [a, b]`.
    FSub,
    /// `f64` multiplication: `args = [a, b]`.
    FMul,
    /// `f64` division: `args = [a, b]`.
    FDiv,
    /// `f64` minimum: `args = [a, b]`.
    FMin,
    /// `f64` maximum: `args = [a, b]`.
    FMax,
    /// `f64` negation: `args = [a]`.
    FNeg,
    /// `f64` absolute value: `args = [a]`.
    FAbs,
    /// Square root: `args = [a]`.
    Sqrt,
    /// Sine: `args = [a]`.
    Sin,
    /// Cosine: `args = [a]`.
    Cos,
    /// Natural exponential: `args = [a]`.
    Exp,
    /// Natural logarithm: `args = [a]`.
    Ln,
    /// Hyperbolic tangent: `args = [a]`.
    Tanh,
    /// Power: `args = [base, exponent]`, both `f64`.
    FPow,
    /// Float comparison producing `i64` 0/1: `args = [a, b]`.
    FCmp(CmpKind),
    /// Conditional select: `args = [cond (i64), if_true, if_false]`.
    ///
    /// The result type equals the type of `if_true`/`if_false` (which must
    /// agree); this is how data-dependent dataflow (e.g. `pathfinder`'s
    /// running minimum) is expressed without control divergence.
    Select,

    // ---- i64 arithmetic (address generation) ---------------------------
    /// `i64` addition: `args = [a, b]`.
    IAdd,
    /// `i64` subtraction: `args = [a, b]`.
    ISub,
    /// `i64` multiplication: `args = [a, b]`.
    IMul,
    /// `i64` Euclidean-style truncated division: `args = [a, b]`.
    IDiv,
    /// `i64` remainder: `args = [a, b]`.
    IRem,
    /// `i64` minimum: `args = [a, b]`.
    IMin,
    /// `i64` maximum: `args = [a, b]`.
    IMax,
    /// Integer comparison producing `i64` 0/1: `args = [a, b]`.
    ICmp(CmpKind),
    /// Integer to float conversion: `args = [a]`.
    IToF,
    /// Float to integer conversion (round to nearest): `args = [a]`.
    ///
    /// Used when a reverse pass reloads an integer (e.g. a select
    /// condition or an indirect index) from the `f64`-only tape.
    FToI,

    // ---- memory ---------------------------------------------------------
    /// Load an element: `args = [index]`; result type is the array's
    /// element type. Loads from [`crate::ArrayKind::Tape`] arrays are tape
    /// reads (REV side).
    Load(ArrayId),
    /// Store an element: `args = [index, value]`; no result. Stores to
    /// [`crate::ArrayKind::Tape`] arrays are tape writes (FWD side).
    Store(ArrayId),

    // ---- scratchpad & streams (inserted by tapeflow-core) ---------------
    /// Allocate a region of `size` scratchpad entries at a layer head and
    /// yield its base index (`i64`). `args = []`.
    ///
    /// The base is assigned statically by Pass 3 (`tapeflow-core`), which
    /// alternates between double-buffer halves so a layer's stream can
    /// overlap the next layer's compute.
    SAlloc {
        /// Number of 8 B scratchpad entries reserved for the layer.
        size: u32,
        /// Statically assigned base entry within the scratchpad.
        base: u32,
    },
    /// Scratchpad load: `args = [entry_index]` (`i64`), result `f64`.
    SpadLoad,
    /// Scratchpad store: `args = [entry_index, value]`; no result.
    SpadStore,
    /// `FWD-Stream`: drain `args = [spad_base, elems]` scratchpad entries
    /// to the tape `array` in DRAM starting at element `args[2]`.
    ///
    /// `args = [spad_base (i64), dram_elem_base (i64), elems (i64)]`.
    StreamOut(ArrayId),
    /// `REV-Stream`: fill scratchpad from the tape `array` in DRAM.
    ///
    /// `args = [spad_base (i64), dram_elem_base (i64), elems (i64)]`.
    StreamIn(ArrayId),
    /// Layer barrier: orders everything before it in program order ahead of
    /// everything after it. `args = []`, no result.
    Barrier,

    // ---- streamed-tape form (Pass 3 terminal lowering) -------------------
    /// Streamed tape write: store `args[1]` to scratchpad entry `args[0]`;
    /// the enclosing layer's [`Op::StreamOut`] drains it to slot `off` of
    /// its struct in the merged tape `array`. `args = [spad_idx (i64),
    /// value (f64)]`, no result.
    ///
    /// This is the post-Pass-3 form of a tape store: the scratchpad side is
    /// explicit, the DRAM side is carried by the stream command. Pass 4
    /// rewrites it to a plain [`Op::SpadStore`].
    TapeStore {
        /// Merged tape array the enclosing stream drains into.
        array: ArrayId,
        /// Slot within the region struct (`0..rsize`).
        off: u32,
    },
    /// Streamed tape read: load element `args[0] * rsize + off` of the
    /// merged tape `array` from DRAM. `args = [lin (i64), spad_idx (i64)]`,
    /// result `f64`.
    ///
    /// `lin` is the struct's linear index; `spad_idx` names the scratchpad
    /// entry the enclosing [`Op::StreamIn`] fills with the same element,
    /// which Pass 4 redirects the load to (becoming [`Op::SpadLoad`]).
    TapeLoad {
        /// Merged tape array read from.
        array: ArrayId,
        /// Struct size in slots (the region's `rsize_total`).
        rsize: u32,
        /// Slot within the struct (`0..rsize`).
        off: u32,
    },
    /// Width-compressed `FWD-Stream` drain: like [`Op::StreamOut`] but each
    /// group of `struct_elems` scratchpad entries is encoded into
    /// `struct_bytes` bytes of DRAM traffic (delta/narrowed slots). Element
    /// addressing and interpretation are unchanged — compression only
    /// affects the modeled byte count. `args = [spad_base, dram_elem_base,
    /// elems]`, all `i64`.
    StreamOutC {
        /// Merged tape array drained into.
        array: ArrayId,
        /// Entries per encoded struct (the region's struct size).
        struct_elems: u16,
        /// Encoded bytes per struct (≤ `8 * struct_elems`).
        struct_bytes: u16,
    },
    /// Width-compressed `REV-Stream` fill: the decode mirror of
    /// [`Op::StreamOutC`]. `args = [spad_base, dram_elem_base, elems]`.
    StreamInC {
        /// Merged tape array filled from.
        array: ArrayId,
        /// Entries per encoded struct (the region's struct size).
        struct_elems: u16,
        /// Encoded bytes per struct (≤ `8 * struct_elems`).
        struct_bytes: u16,
    },
}

/// Coarse scheduling class of an operation, used by the simulator to pick
/// functional-unit pools, latencies and energy events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Short-latency floating-point ALU op (add/sub/neg/abs/min/max/select/cmp).
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Long-latency floating point (div/sqrt/transcendentals).
    FpLong,
    /// Integer / address-generation op.
    Int,
    /// Cache (DRAM-backed) load.
    MemLoad,
    /// Cache (DRAM-backed) store.
    MemStore,
    /// Scratchpad load.
    SpadLoad,
    /// Scratchpad store.
    SpadStore,
    /// Stream-engine command.
    Stream,
    /// Synchronization barrier or allocation pseudo-op.
    Sync,
}

impl Op {
    /// Number of value operands the op expects.
    pub fn arity(&self) -> usize {
        use Op::*;
        match self {
            FNeg | FAbs | Sqrt | Sin | Cos | Exp | Ln | Tanh | IToF | FToI => 1,
            FAdd | FSub | FMul | FDiv | FMin | FMax | FPow | IAdd | ISub | IMul | IDiv | IRem
            | IMin | IMax => 2,
            FCmp(_) | ICmp(_) => 2,
            Select => 3,
            Load(_) => 1,
            Store(_) => 2,
            SAlloc { .. } => 0,
            SpadLoad => 1,
            SpadStore => 2,
            TapeStore { .. } | TapeLoad { .. } => 2,
            StreamOut(_) | StreamIn(_) | StreamOutC { .. } | StreamInC { .. } => 3,
            Barrier => 0,
        }
    }

    /// Result type, or `None` for ops that produce nothing (stores,
    /// streams, barriers). [`Op::Load`] and [`Op::Select`] are
    /// context-typed and return `None` here; the verifier derives their
    /// type from the array declaration / operand types.
    pub fn fixed_result(&self) -> Option<Option<Scalar>> {
        use Op::*;
        match self {
            FAdd
            | FSub
            | FMul
            | FDiv
            | FMin
            | FMax
            | FNeg
            | FAbs
            | Sqrt
            | Sin
            | Cos
            | Exp
            | Ln
            | Tanh
            | FPow
            | IToF
            | SpadLoad
            | TapeLoad { .. } => Some(Some(Scalar::F64)),
            FCmp(_)
            | ICmp(_)
            | IAdd
            | ISub
            | IMul
            | IDiv
            | IRem
            | IMin
            | IMax
            | FToI
            | SAlloc { .. } => Some(Some(Scalar::I64)),
            Store(_)
            | SpadStore
            | TapeStore { .. }
            | StreamOut(_)
            | StreamIn(_)
            | StreamOutC { .. }
            | StreamInC { .. }
            | Barrier => Some(None),
            Load(_) | Select => None,
        }
    }

    /// The scheduling class used by the simulator.
    pub fn class(&self) -> OpClass {
        use Op::*;
        match self {
            FAdd | FSub | FNeg | FAbs | FMin | FMax | FCmp(_) | Select | IToF | FToI => {
                OpClass::FpAlu
            }
            FMul => OpClass::FpMul,
            FDiv | Sqrt | Sin | Cos | Exp | Ln | Tanh | FPow => OpClass::FpLong,
            IAdd | ISub | IMul | IDiv | IRem | IMin | IMax | ICmp(_) => OpClass::Int,
            Load(_) | TapeLoad { .. } => OpClass::MemLoad,
            Store(_) => OpClass::MemStore,
            SpadLoad => OpClass::SpadLoad,
            SpadStore | TapeStore { .. } => OpClass::SpadStore,
            StreamOut(_) | StreamIn(_) | StreamOutC { .. } | StreamInC { .. } => OpClass::Stream,
            SAlloc { .. } | Barrier => OpClass::Sync,
        }
    }

    /// Whether the op touches an array in DRAM, and which one.
    pub fn touched_array(&self) -> Option<ArrayId> {
        match *self {
            Op::Load(a)
            | Op::Store(a)
            | Op::StreamOut(a)
            | Op::StreamIn(a)
            | Op::TapeStore { array: a, .. }
            | Op::TapeLoad { array: a, .. }
            | Op::StreamOutC { array: a, .. }
            | Op::StreamInC { array: a, .. } => Some(a),
            _ => None,
        }
    }

    /// Short mnemonic used by the pretty-printer.
    pub fn mnemonic(&self) -> String {
        use Op::*;
        match self {
            FAdd => "fadd".into(),
            FSub => "fsub".into(),
            FMul => "fmul".into(),
            FDiv => "fdiv".into(),
            FMin => "fmin".into(),
            FMax => "fmax".into(),
            FNeg => "fneg".into(),
            FAbs => "fabs".into(),
            Sqrt => "sqrt".into(),
            Sin => "sin".into(),
            Cos => "cos".into(),
            Exp => "exp".into(),
            Ln => "ln".into(),
            Tanh => "tanh".into(),
            FPow => "fpow".into(),
            FCmp(k) => format!("fcmp.{k}"),
            Select => "select".into(),
            IAdd => "iadd".into(),
            ISub => "isub".into(),
            IMul => "imul".into(),
            IDiv => "idiv".into(),
            IRem => "irem".into(),
            IMin => "imin".into(),
            IMax => "imax".into(),
            ICmp(k) => format!("icmp.{k}"),
            IToF => "itof".into(),
            FToI => "ftoi".into(),
            Load(a) => format!("load {a}"),
            Store(a) => format!("store {a}"),
            SAlloc { size, base } => format!("salloc {size} @{base}"),
            SpadLoad => "spad.load".into(),
            SpadStore => "spad.store".into(),
            StreamOut(a) => format!("stream.out {a}"),
            StreamIn(a) => format!("stream.in {a}"),
            TapeStore { array, off } => format!("tape.store {array} +{off}"),
            TapeLoad { array, rsize, off } => format!("tape.load {array} x{rsize} +{off}"),
            StreamOutC {
                array,
                struct_elems,
                struct_bytes,
            } => format!("stream.outc {array} {struct_elems}x{struct_bytes}"),
            StreamInC {
                array,
                struct_elems,
                struct_bytes,
            } => format!("stream.inc {array} {struct_elems}x{struct_bytes}"),
            Barrier => "barrier".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_class() {
        assert_eq!(Op::FAdd.arity(), 2);
        assert_eq!(Op::Select.arity(), 3);
        assert_eq!(Op::Load(ArrayId::new(0)).arity(), 1);
        assert_eq!(Op::Store(ArrayId::new(0)).arity(), 2);
        assert_eq!(Op::Barrier.arity(), 0);
        assert_eq!(Op::StreamIn(ArrayId::new(1)).arity(), 3);
    }

    #[test]
    fn classes() {
        assert_eq!(Op::FMul.class(), OpClass::FpMul);
        assert_eq!(Op::Exp.class(), OpClass::FpLong);
        assert_eq!(Op::IAdd.class(), OpClass::Int);
        assert_eq!(Op::SpadLoad.class(), OpClass::SpadLoad);
        assert_eq!(Op::Barrier.class(), OpClass::Sync);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpKind::Lt.eval(1.0, 2.0));
        assert!(!CmpKind::Ge.eval(1, 2));
        assert!(CmpKind::Ne.eval(1, 2));
        assert!(CmpKind::Eq.eval(3, 3));
    }

    #[test]
    fn touched_array() {
        let a = ArrayId::new(5);
        assert_eq!(Op::Load(a).touched_array(), Some(a));
        assert_eq!(Op::FAdd.touched_array(), None);
        assert_eq!(Op::StreamOut(a).touched_array(), Some(a));
        assert_eq!(
            Op::TapeLoad {
                array: a,
                rsize: 2,
                off: 0
            }
            .touched_array(),
            Some(a)
        );
    }

    #[test]
    fn streamed_tape_ops() {
        let a = ArrayId::new(2);
        let ts = Op::TapeStore { array: a, off: 1 };
        let tl = Op::TapeLoad {
            array: a,
            rsize: 3,
            off: 1,
        };
        let oc = Op::StreamOutC {
            array: a,
            struct_elems: 3,
            struct_bytes: 12,
        };
        assert_eq!(ts.arity(), 2);
        assert_eq!(tl.arity(), 2);
        assert_eq!(oc.arity(), 3);
        assert_eq!(ts.class(), OpClass::SpadStore);
        assert_eq!(tl.class(), OpClass::MemLoad);
        assert_eq!(oc.class(), OpClass::Stream);
        assert_eq!(ts.fixed_result(), Some(None));
        assert_eq!(tl.fixed_result(), Some(Some(Scalar::F64)));
        assert_eq!(ts.mnemonic(), "tape.store @2 +1");
        assert_eq!(tl.mnemonic(), "tape.load @2 x3 +1");
        assert_eq!(oc.mnemonic(), "stream.outc @2 3x12");
    }
}
