//! Scalar optimizations: constant folding, local common-subexpression
//! elimination and dead-code elimination.
//!
//! The paper assumes Enzyme operates on *post-optimized* LLVM-IR
//! (`-O3 -mem2reg`); this module provides the equivalent clean-up for the
//! in-tree IR so hand-built or machine-generated functions reach the AD
//! front-end in the same shape. Run [`optimize`] **before**
//! differentiating — the Tapeflow passes rely on the instruction ids
//! recorded in [`tapeflow-autodiff`'s maps], which a later rewrite would
//! invalidate.
//!
//! [`tapeflow-autodiff`'s maps]: crate::trace

use crate::function::{Bound, Function, Stmt, ValueDef};
use crate::ids::ValueId;
use crate::ops::{Op, OpClass};
use crate::types::Const;
use std::collections::HashMap;

/// Statistics from one [`optimize`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Instructions replaced by an earlier identical one.
    pub cse_hits: usize,
    /// Dead instructions removed.
    pub dce_removed: usize,
}

/// Runs constant folding, local CSE and DCE until a fixpoint (at most a
/// few rounds), returning the optimized function and statistics.
pub fn optimize(func: &Function) -> (Function, OptStats) {
    let mut stats = OptStats::default();
    let mut current = fold_and_cse(func, &mut stats);
    loop {
        let before = current.insts().len();
        current = eliminate_dead_code(&current, &mut stats);
        let folded = fold_and_cse(&current, &mut stats);
        if folded.insts().len() == before {
            return (folded, stats);
        }
        current = folded;
    }
}

/// True when the op has no side effects and no memory dependence
/// (compute classes only; loads are excluded because memory may change).
fn is_pure(op: &Op) -> bool {
    matches!(
        op.class(),
        OpClass::FpAlu | OpClass::FpMul | OpClass::FpLong | OpClass::Int
    )
}

fn eval_pure(op: &Op, args: &[Const]) -> Option<Const> {
    use Const::{F64, I64};
    let f = |i: usize| args[i].as_f64();
    let g = |i: usize| args[i].as_i64();
    Some(match op {
        Op::FAdd => F64(f(0)? + f(1)?),
        Op::FSub => F64(f(0)? - f(1)?),
        Op::FMul => F64(f(0)? * f(1)?),
        Op::FDiv => F64(f(0)? / f(1)?),
        Op::FMin => F64(f(0)?.min(f(1)?)),
        Op::FMax => F64(f(0)?.max(f(1)?)),
        Op::FNeg => F64(-f(0)?),
        Op::FAbs => F64(f(0)?.abs()),
        Op::Sqrt => F64(f(0)?.sqrt()),
        Op::Sin => F64(f(0)?.sin()),
        Op::Cos => F64(f(0)?.cos()),
        Op::Exp => F64(f(0)?.exp()),
        Op::Ln => F64(f(0)?.ln()),
        Op::Tanh => F64(f(0)?.tanh()),
        Op::FPow => F64(f(0)?.powf(f(1)?)),
        Op::FCmp(k) => I64(k.eval(f(0)?, f(1)?) as i64),
        Op::ICmp(k) => I64(k.eval(g(0)?, g(1)?) as i64),
        Op::IAdd => I64(g(0)?.wrapping_add(g(1)?)),
        Op::ISub => I64(g(0)?.wrapping_sub(g(1)?)),
        Op::IMul => I64(g(0)?.wrapping_mul(g(1)?)),
        Op::IDiv => {
            let d = g(1)?;
            if d == 0 {
                return None;
            }
            I64(g(0)?.wrapping_div(d))
        }
        Op::IRem => {
            let d = g(1)?;
            if d == 0 {
                return None;
            }
            I64(g(0)?.wrapping_rem(d))
        }
        Op::IMin => I64(g(0)?.min(g(1)?)),
        Op::IMax => I64(g(0)?.max(g(1)?)),
        Op::IToF => F64(g(0)? as f64),
        Op::FToI => I64(f(0)?.round() as i64),
        Op::Select => {
            if g(0)? != 0 {
                args[1]
            } else {
                args[2]
            }
        }
        _ => return None,
    })
}

/// Key for local value numbering: opcode discriminator + canonical args.
fn cse_key(op: &Op, args: &[ValueId]) -> Option<(String, Vec<u32>)> {
    if !is_pure(op) {
        return None;
    }
    let mut a: Vec<u32> = args.iter().map(|v| v.index() as u32).collect();
    // Commutative ops get canonical operand order.
    if matches!(
        op,
        Op::FAdd | Op::FMul | Op::FMin | Op::FMax | Op::IAdd | Op::IMul | Op::IMin | Op::IMax
    ) {
        a.sort_unstable();
    }
    Some((op.mnemonic(), a))
}

// Provenance: the rebuilt function keeps no provenance context, so every
// surviving instruction self-stamps as source-level IR. That is
// deliberate — the optimized program becomes the canonical source-op id
// space the downstream passes (AD, streams, spad-index) chain their
// `Provenance::source` back-references to, and re-anchoring here keeps
// those references dense and in range after folding/CSE/DCE renumber
// everything.
struct Rebuild<'a> {
    src: &'a Function,
    g: Function,
    vmap: Vec<Option<ValueId>>,
    consts: HashMap<(bool, u64), ValueId>,
}

impl Rebuild<'_> {
    fn intern(&mut self, c: Const) -> ValueId {
        let key = match c {
            Const::F64(v) => (true, v.to_bits()),
            Const::I64(v) => (false, v as u64),
        };
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.g.add_const(c);
        self.consts.insert(key, id);
        id
    }

    fn map_val(&mut self, v: ValueId) -> ValueId {
        match self.src.value(v).def {
            ValueDef::Const(c) => self.intern(c),
            _ => self.vmap[v.index()].expect("value mapped before use"),
        }
    }

    fn const_of(&self, v: ValueId) -> Option<Const> {
        // After mapping, look at the *destination* value's def.
        match self.g.value(v).def {
            ValueDef::Const(c) => Some(c),
            _ => None,
        }
    }
}

fn fold_and_cse(func: &Function, stats: &mut OptStats) -> Function {
    fn walk(
        r: &mut Rebuild<'_>,
        stmts: &[Stmt],
        out: &mut Vec<Stmt>,
        // Value-numbering table for the current straight-line scope; keys
        // from enclosing scopes stay valid (dominance), so we thread one
        // table and record insertion points to roll back on scope exit.
        table: &mut HashMap<(String, Vec<u32>), ValueId>,
        stats: &mut OptStats,
    ) {
        for s in stmts {
            match s {
                Stmt::For { loop_id, body } => {
                    let info = r.src.loop_info(*loop_id).clone();
                    let start = match info.start {
                        Bound::Const(c) => Bound::Const(c),
                        Bound::Value(v) => Bound::Value(r.map_val(v)),
                    };
                    let end = match info.end {
                        Bound::Const(c) => Bound::Const(c),
                        Bound::Value(v) => Bound::Value(r.map_val(v)),
                    };
                    let (nlid, niv) = r.g.add_loop(info.name.clone(), start, end, info.step);
                    r.vmap[info.iv.index()] = Some(niv);
                    let mut inner = Vec::new();
                    // A fresh table scope: values defined inside the loop
                    // must not leak to later statements, and loop-variant
                    // redefinitions must not alias across iterations (keys
                    // involving the new iv are unique per loop).
                    let mut scoped = table.clone();
                    walk(r, body, &mut inner, &mut scoped, stats);
                    out.push(Stmt::For {
                        loop_id: nlid,
                        body: inner,
                    });
                }
                Stmt::Inst(id) => {
                    let inst = r.src.inst(*id).clone();
                    let args: Vec<ValueId> = inst.args.iter().map(|a| r.map_val(*a)).collect();
                    // Fold when every operand is a constant.
                    if let (Some(result), true) = (inst.result, is_pure(&inst.op)) {
                        let cargs: Option<Vec<Const>> =
                            args.iter().map(|&a| r.const_of(a)).collect();
                        if let Some(cargs) = cargs {
                            if let Some(c) = eval_pure(&inst.op, &cargs) {
                                let v = r.intern(c);
                                r.vmap[result.index()] = Some(v);
                                stats.folded += 1;
                                continue;
                            }
                        }
                        // CSE.
                        if let Some(key) = cse_key(&inst.op, &args) {
                            if let Some(&prev) = table.get(&key) {
                                r.vmap[result.index()] = Some(prev);
                                stats.cse_hits += 1;
                                continue;
                            }
                            let (nid, res) = r.g.add_inst(inst.op, args);
                            out.push(Stmt::Inst(nid));
                            let res = res.expect("pure op result");
                            r.vmap[result.index()] = Some(res);
                            table.insert(key, res);
                            continue;
                        }
                    }
                    let (nid, res) = r.g.add_inst(inst.op, args);
                    out.push(Stmt::Inst(nid));
                    if let (Some(r0), Some(nr)) = (inst.result, res) {
                        r.vmap[r0.index()] = Some(nr);
                    }
                }
            }
        }
    }
    let mut g = Function::new(func.name.clone());
    for a in func.arrays() {
        let id = g.add_array(a.name.clone(), a.len, a.kind, a.elem);
        if let Some(r) = a.range {
            g.set_array_range(id, r);
        }
    }
    let mut r = Rebuild {
        src: func,
        g,
        vmap: vec![None; func.values().len()],
        consts: HashMap::new(),
    };
    let mut out = Vec::new();
    let mut table = HashMap::new();
    walk(&mut r, &func.body, &mut out, &mut table, stats);
    r.g.body = out;
    r.g
}

fn eliminate_dead_code(func: &Function, stats: &mut OptStats) -> Function {
    // Liveness: side-effecting instructions are roots; mark their operand
    // chains (and loop bound values) live.
    let mut live_val = vec![false; func.values().len()];
    let mut live_inst = vec![false; func.insts().len()];
    let mut work: Vec<ValueId> = Vec::new();
    for (i, inst) in func.insts().iter().enumerate() {
        let side_effect = matches!(
            inst.op.class(),
            OpClass::MemStore | OpClass::Stream | OpClass::Sync | OpClass::SpadStore
        );
        if side_effect {
            live_inst[i] = true;
            work.extend(&inst.args);
        }
    }
    for l in func.loops() {
        for b in [l.start, l.end] {
            if let Bound::Value(v) = b {
                work.push(v);
            }
        }
    }
    while let Some(v) = work.pop() {
        if live_val[v.index()] {
            continue;
        }
        live_val[v.index()] = true;
        if let ValueDef::Inst(i) = func.value(v).def {
            if !live_inst[i.index()] {
                live_inst[i.index()] = true;
                work.extend(&func.inst(i).args);
            }
        }
    }
    // Loads are kept when live; dead loads go (they have no side effect).
    fn rebuild(
        r: &mut Rebuild<'_>,
        stmts: &[Stmt],
        live_inst: &[bool],
        out: &mut Vec<Stmt>,
        removed: &mut usize,
    ) {
        for s in stmts {
            match s {
                Stmt::Inst(id) => {
                    if !live_inst[id.index()] {
                        *removed += 1;
                        continue;
                    }
                    let inst = r.src.inst(*id).clone();
                    let args: Vec<ValueId> = inst.args.iter().map(|a| r.map_val(*a)).collect();
                    let (nid, res) = r.g.add_inst(inst.op, args);
                    out.push(Stmt::Inst(nid));
                    if let (Some(r0), Some(nr)) = (inst.result, res) {
                        r.vmap[r0.index()] = Some(nr);
                    }
                }
                Stmt::For { loop_id, body } => {
                    let mut inner = Vec::new();
                    let info = r.src.loop_info(*loop_id).clone();
                    let start = match info.start {
                        Bound::Const(c) => Bound::Const(c),
                        Bound::Value(v) => Bound::Value(r.map_val(v)),
                    };
                    let end = match info.end {
                        Bound::Const(c) => Bound::Const(c),
                        Bound::Value(v) => Bound::Value(r.map_val(v)),
                    };
                    let (nlid, niv) = r.g.add_loop(info.name.clone(), start, end, info.step);
                    r.vmap[info.iv.index()] = Some(niv);
                    rebuild(r, body, live_inst, &mut inner, removed);
                    if inner.is_empty() {
                        *removed += 1; // drop empty loops entirely
                        continue;
                    }
                    out.push(Stmt::For {
                        loop_id: nlid,
                        body: inner,
                    });
                }
            }
        }
    }
    let mut g = Function::new(func.name.clone());
    for a in func.arrays() {
        let id = g.add_array(a.name.clone(), a.len, a.kind, a.elem);
        if let Some(r) = a.range {
            g.set_array_range(id, r);
        }
    }
    let mut r = Rebuild {
        src: func,
        g,
        vmap: vec![None; func.values().len()],
        consts: HashMap::new(),
    };
    let mut out = Vec::new();
    let mut removed = 0;
    rebuild(&mut r, &func.body, &live_inst, &mut out, &mut removed);
    stats.dce_removed += removed;
    r.g.body = out;
    r.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;
    use crate::memory::Memory;
    use crate::types::Scalar;
    use crate::ArrayId;

    #[test]
    fn folds_constant_chains() {
        let mut b = FunctionBuilder::new("fold");
        let out = b.array("o", 1, ArrayKind::Output, Scalar::F64);
        let two = b.f64(2.0);
        let three = b.f64(3.0);
        let five = b.fadd(two, three);
        let ten = b.fmul(five, two);
        b.store_cell(out, ten);
        let f = b.finish();
        let (g, stats) = optimize(&f);
        crate::verify::verify(&g).unwrap();
        assert_eq!(stats.folded, 2);
        // Only the store and its index remain.
        assert_eq!(g.insts().len(), 1);
        let mut mem = Memory::for_function(&g);
        crate::interp::run(&g, &mut mem).unwrap();
        assert_eq!(mem.get_f64_at(ArrayId::new(0), 0), 10.0);
    }

    #[test]
    fn cse_merges_duplicate_index_math() {
        let mut b = FunctionBuilder::new("cse");
        let x = b.array("x", 16, ArrayKind::Input, Scalar::F64);
        let o = b.array("o", 16, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 4, |b, i| {
            b.for_loop("j", 0, 4, |b, j| {
                let idx1 = b.idx2(i, 4, j);
                let v = b.load(x, idx1);
                let idx2 = b.idx2(i, 4, j); // duplicate of idx1
                b.store(o, idx2, v);
            });
        });
        let f = b.finish();
        let (g, stats) = optimize(&f);
        crate::verify::verify(&g).unwrap();
        assert!(stats.cse_hits >= 2, "imul+iadd deduplicated: {stats:?}");
        let mut mem = Memory::for_function(&g);
        mem.set_f64(
            ArrayId::new(0),
            &(0..16).map(|i| i as f64).collect::<Vec<_>>(),
        );
        crate::interp::run(&g, &mut mem).unwrap();
        assert_eq!(
            mem.get_f64(ArrayId::new(1)),
            (0..16).map(|i| i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cse_does_not_merge_loads() {
        // Loads may observe different memory: never CSE'd.
        let mut b = FunctionBuilder::new("loads");
        let c = b.cell_f64("c", 1.0);
        let o = b.array("o", 2, ArrayKind::Output, Scalar::F64);
        let v1 = b.load_cell(c);
        let two = b.f64(2.0);
        b.store_cell(c, two);
        let v2 = b.load_cell(c);
        let z = b.i64(0);
        let one = b.i64(1);
        b.store(o, z, v1);
        b.store(o, one, v2);
        let f = b.finish();
        let (g, _) = optimize(&f);
        let mut mem = Memory::for_function(&g);
        crate::interp::run(&g, &mut mem).unwrap();
        assert_eq!(mem.get_f64(ArrayId::new(1)), vec![1.0, 2.0]);
    }

    #[test]
    fn dce_removes_dead_chains_and_empty_loops() {
        let mut b = FunctionBuilder::new("dce");
        let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
        let o = b.array("o", 1, ArrayKind::Output, Scalar::F64);
        // Dead loop: loads and computes, stores nothing.
        b.for_loop("dead", 0, 8, |b, i| {
            let v = b.load(x, i);
            let _ = b.exp(v);
        });
        let one = b.f64(1.0);
        b.store_cell(o, one);
        let f = b.finish();
        let (g, stats) = optimize(&f);
        crate::verify::verify(&g).unwrap();
        assert!(stats.dce_removed >= 3, "{stats:?}");
        assert!(
            g.body.iter().all(|s| matches!(s, Stmt::Inst(_))),
            "empty loop dropped from the body"
        );
    }

    #[test]
    fn loop_scoped_cse_does_not_leak() {
        // A value computed from the iv inside one loop must not be reused
        // in a sibling loop (different iv => different key, but also the
        // scope table must roll back).
        let mut b = FunctionBuilder::new("scope");
        let o = b.array("o", 8, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 4, |b, i| {
            let one = b.i64(1);
            let j = b.iadd(i, one);
            let fj = b.itof(j);
            b.store(o, i, fj);
        });
        b.for_loop("k", 0, 4, |b, k| {
            let one = b.i64(1);
            let j = b.iadd(k, one);
            let fj = b.itof(j);
            let four = b.i64(4);
            let idx = b.iadd(k, four);
            b.store(o, idx, fj);
        });
        let f = b.finish();
        let (g, _) = optimize(&f);
        crate::verify::verify(&g).unwrap();
        let mut mem = Memory::for_function(&g);
        crate::interp::run(&g, &mut mem).unwrap();
        assert_eq!(
            mem.get_f64(ArrayId::new(0)),
            vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn optimization_preserves_semantics_on_a_kernel() {
        let mut b = FunctionBuilder::new("kern");
        let x = b.array("x", 12, ArrayKind::Input, Scalar::F64);
        let o = b.array("o", 12, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 12, |b, i| {
            let v = b.load(x, i);
            let two = b.f64(2.0);
            let three = b.f64(3.0);
            let six = b.fmul(two, three); // foldable
            let t = b.fmul(v, six);
            let dead = b.exp(t); // dead
            let _ = dead;
            let s = b.sin(t);
            b.store(o, i, s);
        });
        let f = b.finish();
        let (g, stats) = optimize(&f);
        assert!(stats.folded >= 1 && stats.dce_removed >= 1);
        let data: Vec<f64> = (0..12).map(|i| i as f64 * 0.13).collect();
        let run = |f: &Function| {
            let mut mem = Memory::for_function(f);
            mem.set_f64(ArrayId::new(0), &data);
            crate::interp::run(f, &mut mem).unwrap();
            mem.get_f64(ArrayId::new(1))
        };
        assert_eq!(run(&f), run(&g));
        assert!(g.insts().len() < f.insts().len());
    }
}
