//! Ergonomic construction of IR functions.

use crate::function::{ArrayKind, Bound, Function, Stmt};
use crate::ids::{ArrayId, LoopId, ValueId};
use crate::ops::{CmpKind, Op};
use crate::types::{Const, Scalar};
use std::collections::HashMap;

/// Builder for [`Function`]s.
///
/// Keeps an insertion-point stack so nested loops read like the source
/// they model. Constants are deduplicated.
///
/// ```rust
/// use tapeflow_ir::{FunctionBuilder, ArrayKind, Scalar};
/// let mut b = FunctionBuilder::new("saxpy");
/// let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
/// let y = b.array("y", 8, ArrayKind::InOut, Scalar::F64);
/// let a = b.f64(2.0);
/// b.for_loop("i", 0, 8, |b, i| {
///     let xi = b.load(x, i);
///     let yi = b.load(y, i);
///     let ax = b.fmul(a, xi);
///     let s = b.fadd(ax, yi);
///     b.store(y, i, s);
/// });
/// let f = b.finish();
/// assert!(tapeflow_ir::verify::verify(&f).is_ok());
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    /// Stack of open statement sequences; `[0]` is the function body.
    frames: Vec<Vec<Stmt>>,
    const_cache: HashMap<ConstKey, ValueId>,
}

#[derive(PartialEq, Eq, Hash, Debug)]
enum ConstKey {
    F64(u64),
    I64(i64),
}

impl FunctionBuilder {
    /// Starts a new function.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            func: Function::new(name),
            frames: vec![Vec::new()],
            const_cache: HashMap::new(),
        }
    }

    /// Consumes the builder, returning the finished function.
    ///
    /// # Panics
    ///
    /// Panics if a loop frame is still open (should be impossible through
    /// the closure-based API).
    pub fn finish(mut self) -> Function {
        assert_eq!(self.frames.len(), 1, "unclosed loop frame");
        self.func.body = self.frames.pop().expect("root frame");
        self.func
    }

    /// Read-only view of the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    // ---- declarations ----------------------------------------------------

    /// Declares an array.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        len: usize,
        kind: ArrayKind,
        elem: Scalar,
    ) -> ArrayId {
        self.func.add_array(name, len, kind, elem)
    }

    /// Declares an array with a declared content range
    /// ([`crate::function::DeclRange`]); the value-range analysis seeds
    /// the array's content domain from it. Only `Input` arrays may carry
    /// a range (enforced by [`crate::verify::verify`]).
    pub fn array_ranged(
        &mut self,
        name: impl Into<String>,
        len: usize,
        kind: ArrayKind,
        elem: Scalar,
        range: crate::function::DeclRange,
    ) -> ArrayId {
        let id = self.func.add_array(name, len, kind, elem);
        self.func.set_array_range(id, range);
        id
    }

    /// Declares a one-element `f64` [`ArrayKind::Temp`] cell used for
    /// loop-carried state (accumulators). The interpreter/tracer
    /// initializes Temp cells to zero; emit an explicit store for other
    /// initial values — this helper does so when `init != 0.0`.
    pub fn cell_f64(&mut self, name: impl Into<String>, init: f64) -> ArrayId {
        let cell = self.func.add_array(name, 1, ArrayKind::Temp, Scalar::F64);
        if init != 0.0 {
            let z = self.i64(0);
            let v = self.f64(init);
            self.push_inst(Op::Store(cell), vec![z, v]);
        }
        cell
    }

    // ---- constants ---------------------------------------------------------

    /// Interns an `f64` constant (deduplicated by bit pattern).
    pub fn f64(&mut self, v: f64) -> ValueId {
        let key = ConstKey::F64(v.to_bits());
        if let Some(&id) = self.const_cache.get(&key) {
            return id;
        }
        let id = self.func.add_const(Const::F64(v));
        self.const_cache.insert(key, id);
        id
    }

    /// Interns an `i64` constant (deduplicated).
    pub fn i64(&mut self, v: i64) -> ValueId {
        let key = ConstKey::I64(v);
        if let Some(&id) = self.const_cache.get(&key) {
            return id;
        }
        let id = self.func.add_const(Const::I64(v));
        self.const_cache.insert(key, id);
        id
    }

    // ---- control flow --------------------------------------------------------

    /// Emits `for iv in start..end` (step 1) around the statements `body`
    /// generates; yields the induction variable to the closure.
    pub fn for_loop<R>(
        &mut self,
        name: impl Into<String>,
        start: i64,
        end: i64,
        body: impl FnOnce(&mut Self, ValueId) -> R,
    ) -> R {
        self.for_loop_step(name, Bound::Const(start), Bound::Const(end), 1, body)
    }

    /// Emits a loop with explicit bounds and step.
    pub fn for_loop_step<R>(
        &mut self,
        name: impl Into<String>,
        start: impl Into<Bound>,
        end: impl Into<Bound>,
        step: i64,
        body: impl FnOnce(&mut Self, ValueId) -> R,
    ) -> R {
        let (loop_id, iv) = self.func.add_loop(name, start.into(), end.into(), step);
        self.frames.push(Vec::new());
        let r = body(self, iv);
        let stmts = self.frames.pop().expect("loop frame");
        self.push_stmt(Stmt::For {
            loop_id,
            body: stmts,
        });
        r
    }

    /// Pushes a raw statement at the insertion point.
    pub fn push_stmt(&mut self, s: Stmt) {
        self.frames.last_mut().expect("open frame").push(s);
    }

    /// Emits an instruction at the insertion point, returning its result
    /// value (if the op defines one).
    pub fn push_inst(&mut self, op: Op, args: Vec<ValueId>) -> Option<ValueId> {
        let (inst, result) = self.func.add_inst(op, args);
        self.push_stmt(Stmt::Inst(inst));
        result
    }

    fn unary(&mut self, op: Op, a: ValueId) -> ValueId {
        self.push_inst(op, vec![a]).expect("op defines a result")
    }

    fn binary(&mut self, op: Op, a: ValueId, b: ValueId) -> ValueId {
        self.push_inst(op, vec![a, b]).expect("op defines a result")
    }

    // ---- f64 ops ----------------------------------------------------------

    /// `a + b`.
    pub fn fadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::FAdd, a, b)
    }
    /// `a - b`.
    pub fn fsub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::FSub, a, b)
    }
    /// `a * b`.
    pub fn fmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::FMul, a, b)
    }
    /// `a / b`.
    pub fn fdiv(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::FDiv, a, b)
    }
    /// `min(a, b)`.
    pub fn fmin(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::FMin, a, b)
    }
    /// `max(a, b)`.
    pub fn fmax(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::FMax, a, b)
    }
    /// `-a`.
    pub fn fneg(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::FNeg, a)
    }
    /// `|a|`.
    pub fn fabs(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::FAbs, a)
    }
    /// `sqrt(a)`.
    pub fn sqrt(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::Sqrt, a)
    }
    /// `sin(a)`.
    pub fn sin(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::Sin, a)
    }
    /// `cos(a)`.
    pub fn cos(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::Cos, a)
    }
    /// `e^a`.
    pub fn exp(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::Exp, a)
    }
    /// `ln(a)`.
    pub fn ln(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::Ln, a)
    }
    /// `tanh(a)`.
    pub fn tanh(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::Tanh, a)
    }
    /// `a ^ b`.
    pub fn fpow(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::FPow, a, b)
    }
    /// Float comparison, producing `i64` 0/1.
    pub fn fcmp(&mut self, kind: CmpKind, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::FCmp(kind), a, b)
    }
    /// `cond ? t : f`.
    pub fn select(&mut self, cond: ValueId, t: ValueId, f: ValueId) -> ValueId {
        self.push_inst(Op::Select, vec![cond, t, f])
            .expect("select defines a result")
    }

    // ---- i64 ops -------------------------------------------------------------

    /// `a + b` (i64).
    pub fn iadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::IAdd, a, b)
    }
    /// `a - b` (i64).
    pub fn isub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::ISub, a, b)
    }
    /// `a * b` (i64).
    pub fn imul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::IMul, a, b)
    }
    /// `a / b` (i64, truncated).
    pub fn idiv(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::IDiv, a, b)
    }
    /// `a % b` (i64).
    pub fn irem(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::IRem, a, b)
    }
    /// `min(a, b)` (i64).
    pub fn imin(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::IMin, a, b)
    }
    /// `max(a, b)` (i64).
    pub fn imax(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::IMax, a, b)
    }
    /// Integer comparison, producing `i64` 0/1.
    pub fn icmp(&mut self, kind: CmpKind, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Op::ICmp(kind), a, b)
    }
    /// Integer-to-float conversion.
    pub fn itof(&mut self, a: ValueId) -> ValueId {
        self.unary(Op::IToF, a)
    }

    // ---- addressing helpers ---------------------------------------------------

    /// Linearizes a 2-D index: `i * cols + j`.
    pub fn idx2(&mut self, i: ValueId, cols: i64, j: ValueId) -> ValueId {
        let c = self.i64(cols);
        let t = self.imul(i, c);
        self.iadd(t, j)
    }

    /// Linearizes a 3-D index: `(i * d1 + j) * d2 + k`.
    pub fn idx3(&mut self, i: ValueId, d1: i64, j: ValueId, d2: i64, k: ValueId) -> ValueId {
        let ij = self.idx2(i, d1, j);
        self.idx2(ij, d2, k)
    }

    /// `iv + c` for a constant `c`.
    pub fn iadd_const(&mut self, a: ValueId, c: i64) -> ValueId {
        let cv = self.i64(c);
        self.iadd(a, cv)
    }

    // ---- memory -----------------------------------------------------------------

    /// Loads `array[index]`.
    pub fn load(&mut self, array: ArrayId, index: ValueId) -> ValueId {
        self.push_inst(Op::Load(array), vec![index])
            .expect("load defines a result")
    }

    /// Stores `array[index] = value`.
    pub fn store(&mut self, array: ArrayId, index: ValueId, value: ValueId) {
        self.push_inst(Op::Store(array), vec![index, value]);
    }

    /// Loads a one-element cell.
    pub fn load_cell(&mut self, cell: ArrayId) -> ValueId {
        let z = self.i64(0);
        self.load(cell, z)
    }

    /// Stores into a one-element cell.
    pub fn store_cell(&mut self, cell: ArrayId, value: ValueId) {
        let z = self.i64(0);
        self.store(cell, z, value);
    }

    /// Returns the id the next loop created through this builder will get.
    pub fn next_loop_id(&self) -> LoopId {
        LoopId::new(self.func.loops().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::ValueDef;

    #[test]
    fn constants_deduplicated() {
        let mut b = FunctionBuilder::new("t");
        let a = b.f64(1.5);
        let c = b.f64(1.5);
        assert_eq!(a, c);
        let d = b.i64(3);
        let e = b.i64(3);
        assert_eq!(d, e);
        assert_ne!(b.f64(2.0), a);
    }

    #[test]
    fn nested_loops_structure() {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 16, ArrayKind::InOut, Scalar::F64);
        b.for_loop("i", 0, 4, |b, i| {
            b.for_loop("j", 0, 4, |b, j| {
                let idx = b.idx2(i, 4, j);
                let v = b.load(x, idx);
                let v2 = b.fmul(v, v);
                b.store(x, idx, v2);
            });
        });
        let f = b.finish();
        assert_eq!(f.body.len(), 1);
        match &f.body[0] {
            Stmt::For { body, .. } => {
                assert_eq!(body.len(), 1);
                assert!(matches!(body[0], Stmt::For { .. }));
            }
            other => panic!("expected loop, found {other:?}"),
        }
        assert_eq!(f.loops().len(), 2);
    }

    #[test]
    fn cell_init_emits_store() {
        let mut b = FunctionBuilder::new("t");
        let c = b.cell_f64("acc", 1.0);
        let f = b.finish();
        assert_eq!(f.array(c).kind, ArrayKind::Temp);
        assert_eq!(f.body.len(), 1);
        match &f.body[0] {
            Stmt::Inst(i) => assert!(matches!(f.inst(*i).op, Op::Store(a) if a == c)),
            other => panic!("expected store, found {other:?}"),
        }
    }

    #[test]
    fn cell_zero_init_no_store() {
        let mut b = FunctionBuilder::new("t");
        let _ = b.cell_f64("acc", 0.0);
        let f = b.finish();
        assert!(f.body.is_empty());
    }

    #[test]
    fn iv_defined_by_loop() {
        let mut b = FunctionBuilder::new("t");
        let mut captured = None;
        b.for_loop("i", 0, 2, |_, i| captured = Some(i));
        let f = b.finish();
        let iv = captured.unwrap();
        assert!(matches!(f.value(iv).def, ValueDef::Iv(_)));
    }
}
