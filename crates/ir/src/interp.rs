//! Reference execution of IR functions.
//!
//! A single executor drives both the plain interpreter ([`run`]) and the
//! dynamic-dataflow tracer ([`crate::trace`]): the tracer is just an
//! [`ExecHook`] observing every executed instruction, so functional
//! semantics can never diverge between the two.

use crate::function::{Bound, Function, Stmt, ValueDef};
use crate::ids::{ArrayId, InstId, ValueId};
use crate::memory::Memory;
use crate::ops::Op;
use crate::types::Value;
use std::error::Error;
use std::fmt;
use std::ops::Range;

/// A runtime error raised while executing a function.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// An array access fell outside the array.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending element index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivByZero {
        /// The instruction that divided.
        inst: InstId,
    },
    /// A value was consumed before any producer ran (unverified function).
    UndefinedValue(ValueId),
    /// A scratchpad access fell outside the allocated scratchpad.
    SpadOutOfRange {
        /// Offending entry index.
        entry: i64,
    },
    /// A stream command had a negative or out-of-range transfer.
    BadStream {
        /// The stream instruction.
        inst: InstId,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { array, index, len } => {
                write!(f, "access {array}[{index}] out of bounds (len {len})")
            }
            ExecError::DivByZero { inst } => write!(f, "integer division by zero at {inst}"),
            ExecError::UndefinedValue(v) => write!(f, "value {v} consumed before definition"),
            ExecError::SpadOutOfRange { entry } => {
                write!(f, "scratchpad entry {entry} out of range")
            }
            ExecError::BadStream { inst } => write!(f, "malformed stream transfer at {inst}"),
        }
    }
}

impl Error for ExecError {}

/// The memory effect of one executed instruction, as seen by a hook.
#[derive(Clone, Debug, PartialEq)]
pub enum MemEffect {
    /// Pure compute; no memory touched.
    None,
    /// A DRAM load of 8 bytes at `addr` from `array`.
    Load {
        /// Byte address.
        addr: u64,
        /// Array touched.
        array: ArrayId,
    },
    /// A DRAM store of 8 bytes at `addr` to `array`.
    Store {
        /// Byte address.
        addr: u64,
        /// Array touched.
        array: ArrayId,
    },
    /// A scratchpad read of entry `entry`.
    SpadLoad {
        /// Scratchpad entry index.
        entry: u64,
    },
    /// A scratchpad write of entry `entry`.
    SpadStore {
        /// Scratchpad entry index.
        entry: u64,
    },
    /// A stream transfer between a scratchpad range and a DRAM range.
    Stream {
        /// Scratchpad entries moved.
        spad: Range<u64>,
        /// DRAM byte addresses moved (8 B per element).
        dram_start: u64,
        /// Number of 8 B elements.
        elems: u64,
        /// The tape array streamed.
        array: ArrayId,
        /// Direction: `true` = scratchpad → DRAM (`FWD-Stream`).
        to_dram: bool,
    },
}

/// Observer invoked after every executed instruction.
pub trait ExecHook {
    /// Called once per dynamic instruction, in execution order.
    fn on_inst(&mut self, inst: InstId, func: &Function, effect: &MemEffect);

    /// Called right after an instruction's result value is written,
    /// with the concrete value. Default: ignore.
    #[inline]
    fn on_result(&mut self, _inst: InstId, _result: ValueId, _value: Value) {}

    /// Called for every element written to a DRAM array — plain stores
    /// and stream drains alike. Default: ignore.
    #[inline]
    fn on_array_write(&mut self, _array: ArrayId, _value: Value) {}
}

/// Hook that ignores everything (plain interpretation).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;

impl ExecHook for NoopHook {
    #[inline]
    fn on_inst(&mut self, _inst: InstId, _func: &Function, _effect: &MemEffect) {}
}

/// Observed min/max of one value or array over a concrete run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Observed {
    /// Observed `i64` min/max.
    pub int: Option<(i64, i64)>,
    /// Observed finite `f64` min/max.
    pub float: Option<(f64, f64)>,
    /// A NaN or ±Inf `f64` was observed.
    pub nonfinite: bool,
    /// A finite `f64` with a fractional part was observed.
    pub fractional: bool,
}

impl Observed {
    fn note(&mut self, v: Value) {
        match v {
            Value::I64(x) => {
                let (lo, hi) = self.int.get_or_insert((x, x));
                *lo = (*lo).min(x);
                *hi = (*hi).max(x);
            }
            Value::F64(x) => {
                if !x.is_finite() {
                    self.nonfinite = true;
                    return;
                }
                if x.fract() != 0.0 {
                    self.fractional = true;
                }
                let (lo, hi) = self.float.get_or_insert((x, x));
                *lo = (*lo).min(x);
                *hi = (*hi).max(x);
            }
        }
    }
}

/// Hook that records every produced value and every array write — the
/// measurement side of the dynamic soundness oracle. Feed the finished
/// recorder to [`crate::vra::check_containment`] to compare against the
/// static [`crate::vra::value_ranges`] result.
#[derive(Clone, Debug)]
pub struct RangeRecorder {
    values: Vec<Observed>,
    arrays: Vec<Observed>,
}

impl RangeRecorder {
    /// Creates a recorder for `func`, folding the *initial* contents of
    /// `mem` into the per-array observations — so a dishonest declared
    /// input range is caught even when the program never loads the
    /// offending element.
    pub fn new(func: &Function, mem: &Memory) -> Self {
        let mut arrays = vec![Observed::default(); func.arrays().len()];
        for (i, obs) in arrays.iter_mut().enumerate() {
            let id = ArrayId::new(i);
            for k in 0..mem.len_of(id) {
                obs.note(mem.load(id, k));
            }
        }
        RangeRecorder {
            values: vec![Observed::default(); func.values().len()],
            arrays,
        }
    }

    /// Per-value observations, indexed by [`ValueId`].
    pub fn values(&self) -> &[Observed] {
        &self.values
    }

    /// Per-array observations, indexed by [`ArrayId`].
    pub fn arrays(&self) -> &[Observed] {
        &self.arrays
    }
}

impl ExecHook for RangeRecorder {
    #[inline]
    fn on_inst(&mut self, _inst: InstId, _func: &Function, _effect: &MemEffect) {}

    #[inline]
    fn on_result(&mut self, _inst: InstId, result: ValueId, value: Value) {
        self.values[result.index()].note(value);
    }

    #[inline]
    fn on_array_write(&mut self, array: ArrayId, value: Value) {
        self.arrays[array.index()].note(value);
    }
}

struct Executor<'f, 'm, H> {
    func: &'f Function,
    mem: &'m mut Memory,
    vals: Vec<Option<Value>>,
    spad: Vec<u64>,
    hook: H,
    dyn_insts: u64,
}

impl<'f, 'm, H: ExecHook> Executor<'f, 'm, H> {
    fn new(func: &'f Function, mem: &'m mut Memory, hook: H) -> Self {
        let mut vals = vec![None; func.values().len()];
        for (i, v) in func.values().iter().enumerate() {
            if let ValueDef::Const(c) = v.def {
                vals[i] = Some(c.into());
            }
        }
        // Size the scratchpad to the highest statically allocated entry.
        let spad_top = func
            .insts()
            .iter()
            .filter_map(|inst| match inst.op {
                Op::SAlloc { size, base } => Some(base as usize + size as usize),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        Executor {
            func,
            mem,
            vals,
            spad: vec![0; spad_top],
            hook,
            dyn_insts: 0,
        }
    }

    #[inline]
    fn get(&self, v: ValueId) -> Result<Value, ExecError> {
        self.vals[v.index()].ok_or(ExecError::UndefinedValue(v))
    }

    #[inline]
    fn getf(&self, v: ValueId) -> Result<f64, ExecError> {
        Ok(self.get(v)?.expect_f64())
    }

    #[inline]
    fn geti(&self, v: ValueId) -> Result<i64, ExecError> {
        Ok(self.get(v)?.expect_i64())
    }

    fn bound(&self, b: Bound) -> Result<i64, ExecError> {
        match b {
            Bound::Const(c) => Ok(c),
            Bound::Value(v) => self.geti(v),
        }
    }

    fn check_index(&self, array: ArrayId, index: i64) -> Result<usize, ExecError> {
        let len = self.mem.len_of(array);
        if index < 0 || index as usize >= len {
            return Err(ExecError::OutOfBounds {
                array: self.mem.name_of(array).to_string(),
                index,
                len,
            });
        }
        Ok(index as usize)
    }

    fn spad_entry(&self, entry: i64) -> Result<usize, ExecError> {
        if entry < 0 || entry as usize >= self.spad.len() {
            return Err(ExecError::SpadOutOfRange { entry });
        }
        Ok(entry as usize)
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<(), ExecError> {
        for s in stmts {
            match s {
                Stmt::Inst(id) => self.exec_inst(*id)?,
                Stmt::For { loop_id, body } => {
                    let info = self.func.loop_info(*loop_id);
                    let start = self.bound(info.start)?;
                    let end = self.bound(info.end)?;
                    let step = info.step;
                    let iv_slot = info.iv.index();
                    let mut iv = start;
                    while (step > 0 && iv < end) || (step < 0 && iv > end) {
                        self.vals[iv_slot] = Some(Value::I64(iv));
                        self.exec_stmts(body)?;
                        iv += step;
                    }
                }
            }
        }
        Ok(())
    }

    fn exec_inst(&mut self, id: InstId) -> Result<(), ExecError> {
        let inst = self.func.inst(id);
        let a = &inst.args;
        let mut effect = MemEffect::None;
        use Op::*;
        let result: Option<Value> = match inst.op {
            FAdd => Some(Value::F64(self.getf(a[0])? + self.getf(a[1])?)),
            FSub => Some(Value::F64(self.getf(a[0])? - self.getf(a[1])?)),
            FMul => Some(Value::F64(self.getf(a[0])? * self.getf(a[1])?)),
            FDiv => Some(Value::F64(self.getf(a[0])? / self.getf(a[1])?)),
            FMin => Some(Value::F64(self.getf(a[0])?.min(self.getf(a[1])?))),
            FMax => Some(Value::F64(self.getf(a[0])?.max(self.getf(a[1])?))),
            FNeg => Some(Value::F64(-self.getf(a[0])?)),
            FAbs => Some(Value::F64(self.getf(a[0])?.abs())),
            Sqrt => Some(Value::F64(self.getf(a[0])?.sqrt())),
            Sin => Some(Value::F64(self.getf(a[0])?.sin())),
            Cos => Some(Value::F64(self.getf(a[0])?.cos())),
            Exp => Some(Value::F64(self.getf(a[0])?.exp())),
            Ln => Some(Value::F64(self.getf(a[0])?.ln())),
            Tanh => Some(Value::F64(self.getf(a[0])?.tanh())),
            FPow => Some(Value::F64(self.getf(a[0])?.powf(self.getf(a[1])?))),
            FCmp(k) => Some(Value::I64(k.eval(self.getf(a[0])?, self.getf(a[1])?) as i64)),
            Select => {
                let c = self.geti(a[0])?;
                Some(if c != 0 {
                    self.get(a[1])?
                } else {
                    self.get(a[2])?
                })
            }
            IAdd => Some(Value::I64(self.geti(a[0])?.wrapping_add(self.geti(a[1])?))),
            ISub => Some(Value::I64(self.geti(a[0])?.wrapping_sub(self.geti(a[1])?))),
            IMul => Some(Value::I64(self.geti(a[0])?.wrapping_mul(self.geti(a[1])?))),
            IDiv => {
                let d = self.geti(a[1])?;
                if d == 0 {
                    return Err(ExecError::DivByZero { inst: id });
                }
                Some(Value::I64(self.geti(a[0])?.wrapping_div(d)))
            }
            IRem => {
                let d = self.geti(a[1])?;
                if d == 0 {
                    return Err(ExecError::DivByZero { inst: id });
                }
                Some(Value::I64(self.geti(a[0])?.wrapping_rem(d)))
            }
            IMin => Some(Value::I64(self.geti(a[0])?.min(self.geti(a[1])?))),
            IMax => Some(Value::I64(self.geti(a[0])?.max(self.geti(a[1])?))),
            ICmp(k) => Some(Value::I64(k.eval(self.geti(a[0])?, self.geti(a[1])?) as i64)),
            IToF => Some(Value::F64(self.geti(a[0])? as f64)),
            FToI => Some(Value::I64(self.getf(a[0])?.round() as i64)),
            Load(arr) => {
                let idx = self.check_index(arr, self.geti(a[0])?)?;
                effect = MemEffect::Load {
                    addr: self.mem.addr_of(arr, idx),
                    array: arr,
                };
                Some(self.mem.load(arr, idx))
            }
            Store(arr) => {
                let idx = self.check_index(arr, self.geti(a[0])?)?;
                let v = self.get(a[1])?;
                effect = MemEffect::Store {
                    addr: self.mem.addr_of(arr, idx),
                    array: arr,
                };
                self.mem.store(arr, idx, v);
                self.hook.on_array_write(arr, v);
                None
            }
            SAlloc { base, .. } => Some(Value::I64(base as i64)),
            SpadLoad => {
                let e = self.spad_entry(self.geti(a[0])?)?;
                effect = MemEffect::SpadLoad { entry: e as u64 };
                Some(Value::F64(f64::from_bits(self.spad[e])))
            }
            SpadStore | TapeStore { .. } => {
                let e = self.spad_entry(self.geti(a[0])?)?;
                let v = self.getf(a[1])?;
                effect = MemEffect::SpadStore { entry: e as u64 };
                self.spad[e] = v.to_bits();
                None
            }
            TapeLoad { array, rsize, off } => {
                let lin = self.geti(a[0])?;
                let idx = self.check_index(
                    array,
                    lin.wrapping_mul(rsize as i64).wrapping_add(off as i64),
                )?;
                effect = MemEffect::Load {
                    addr: self.mem.addr_of(array, idx),
                    array,
                };
                Some(self.mem.load(array, idx))
            }
            StreamOut(arr)
            | StreamIn(arr)
            | StreamOutC { array: arr, .. }
            | StreamInC { array: arr, .. } => {
                let to_dram = matches!(inst.op, StreamOut(_) | StreamOutC { .. });
                let sbase = self.geti(a[0])?;
                let dbase = self.geti(a[1])?;
                let elems = self.geti(a[2])?;
                if elems < 0 || sbase < 0 || dbase < 0 {
                    return Err(ExecError::BadStream { inst: id });
                }
                let elems = elems as u64;
                if elems > 0 {
                    self.spad_entry(sbase)?;
                    self.spad_entry(sbase + elems as i64 - 1)?;
                    self.check_index(arr, dbase)?;
                    self.check_index(arr, dbase + elems as i64 - 1)?;
                    for k in 0..elems as usize {
                        let s = sbase as usize + k;
                        let d = dbase as usize + k;
                        if to_dram {
                            let v = Value::F64(f64::from_bits(self.spad[s]));
                            self.mem.store(arr, d, v);
                            self.hook.on_array_write(arr, v);
                        } else {
                            self.spad[s] = self.mem.load(arr, d).to_bits();
                        }
                    }
                }
                effect = MemEffect::Stream {
                    spad: sbase as u64..sbase as u64 + elems,
                    dram_start: if self.mem.len_of(arr) > 0 && elems > 0 {
                        self.mem.addr_of(arr, dbase as usize)
                    } else {
                        0
                    },
                    elems,
                    array: arr,
                    to_dram,
                };
                None
            }
            Barrier => None,
        };
        if let (Some(rv), Some(rid)) = (result, inst.result) {
            self.vals[rid.index()] = Some(rv);
            self.hook.on_result(id, rid, rv);
        }
        self.dyn_insts += 1;
        self.hook.on_inst(id, self.func, &effect);
        Ok(())
    }
}

/// Executes `func` against `mem`, reporting every dynamic instruction to
/// `hook`. Returns the hook and the dynamic instruction count.
///
/// # Errors
///
/// Returns an [`ExecError`] on out-of-bounds accesses, zero divisions,
/// malformed streams, or use of undefined values.
pub fn execute<H: ExecHook>(
    func: &Function,
    mem: &mut Memory,
    hook: H,
) -> Result<(H, u64), ExecError> {
    let mut ex = Executor::new(func, mem, hook);
    ex.exec_stmts(&func.body)?;
    Ok((ex.hook, ex.dyn_insts))
}

/// Interprets `func` against `mem` (no observation).
///
/// Returns the number of dynamic instructions executed.
///
/// # Errors
///
/// See [`execute`].
pub fn run(func: &Function, mem: &mut Memory) -> Result<u64, ExecError> {
    execute(func, mem, NoopHook).map(|(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;
    use crate::types::Scalar;

    #[test]
    fn saxpy_matches_reference() {
        let n = 16usize;
        let mut b = FunctionBuilder::new("saxpy");
        let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", n, ArrayKind::InOut, Scalar::F64);
        let a = b.f64(3.0);
        b.for_loop("i", 0, n as i64, |b, i| {
            let xi = b.load(x, i);
            let yi = b.load(y, i);
            let t = b.fmul(a, xi);
            let s = b.fadd(t, yi);
            b.store(y, i, s);
        });
        let f = b.finish();
        crate::verify::verify(&f).unwrap();
        let mut mem = Memory::for_function(&f);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        mem.set_f64(x, &xs);
        mem.set_f64(y, &ys);
        run(&f, &mut mem).unwrap();
        let out = mem.get_f64(y);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f64 + 2.0 * i as f64);
        }
    }

    #[test]
    fn accumulator_cell() {
        let mut b = FunctionBuilder::new("sum");
        let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
        let acc = b.cell_f64("acc", 0.0);
        b.for_loop("i", 0, 8, |b, i| {
            let xi = b.load(x, i);
            let cur = b.load_cell(acc);
            let s = b.fadd(cur, xi);
            b.store_cell(acc, s);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        mem.set_f64(x, &[1.0; 8]);
        run(&f, &mut mem).unwrap();
        assert_eq!(mem.get_f64_at(acc, 0), 8.0);
    }

    #[test]
    fn reversed_loop() {
        let mut b = FunctionBuilder::new("rev");
        let y = b.array("y", 4, ArrayKind::Output, Scalar::F64);
        let c = b.cell_f64("c", 0.0);
        b.for_loop_step("i", 3i64, -1i64, -1, |b, i| {
            let cur = b.load_cell(c);
            let one = b.f64(1.0);
            let nxt = b.fadd(cur, one);
            b.store_cell(c, nxt);
            b.store(y, i, nxt);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        run(&f, &mut mem).unwrap();
        // Iteration order 3,2,1,0 with a running count.
        assert_eq!(mem.get_f64(y), vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut b = FunctionBuilder::new("oob");
        let x = b.array("x", 2, ArrayKind::Input, Scalar::F64);
        let i = b.i64(5);
        let _ = b.load(x, i);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let err = run(&f, &mut mem).unwrap_err();
        assert!(matches!(
            err,
            ExecError::OutOfBounds {
                index: 5,
                len: 2,
                ..
            }
        ));
    }

    #[test]
    fn div_by_zero_reported() {
        let mut b = FunctionBuilder::new("dz");
        let one = b.i64(1);
        let zero = b.i64(0);
        let _ = b.idiv(one, zero);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        assert!(matches!(
            run(&f, &mut mem),
            Err(ExecError::DivByZero { .. })
        ));
    }

    #[test]
    fn spad_and_streams_roundtrip() {
        use crate::function::Stmt;
        use crate::ops::Op;
        // Store 1.5 and 2.5 to spad, stream out to tape, stream back in to
        // the other buffer and load.
        let mut f = crate::Function::new("spad");
        let tape = f.add_array("T", 4, ArrayKind::Tape, Scalar::F64);
        let out = f.add_array("o", 2, ArrayKind::Output, Scalar::F64);
        let mut sched = Vec::new();
        let (al0, base0) = f.add_inst(Op::SAlloc { size: 2, base: 0 }, vec![]);
        sched.push(Stmt::Inst(al0));
        let base0 = base0.unwrap();
        let c0 = f.add_const(crate::Const::I64(0));
        let c1 = f.add_const(crate::Const::I64(1));
        let c2 = f.add_const(crate::Const::I64(2));
        let v15 = f.add_const(crate::Const::F64(1.5));
        let v25 = f.add_const(crate::Const::F64(2.5));
        let (e0, _) = f.add_inst(Op::IAdd, vec![base0, c0]);
        sched.push(Stmt::Inst(e0));
        let e0v = f.inst(e0).result.unwrap();
        let (s0, _) = f.add_inst(Op::SpadStore, vec![e0v, v15]);
        sched.push(Stmt::Inst(s0));
        let (e1, _) = f.add_inst(Op::IAdd, vec![base0, c1]);
        sched.push(Stmt::Inst(e1));
        let e1v = f.inst(e1).result.unwrap();
        let (s1, _) = f.add_inst(Op::SpadStore, vec![e1v, v25]);
        sched.push(Stmt::Inst(s1));
        let (so, _) = f.add_inst(Op::StreamOut(tape), vec![base0, c0, c2]);
        sched.push(Stmt::Inst(so));
        let (al1, base1) = f.add_inst(Op::SAlloc { size: 2, base: 2 }, vec![]);
        sched.push(Stmt::Inst(al1));
        let base1 = base1.unwrap();
        let (si, _) = f.add_inst(Op::StreamIn(tape), vec![base1, c0, c2]);
        sched.push(Stmt::Inst(si));
        let (l0, r0) = f.add_inst(Op::SpadLoad, vec![base1]);
        sched.push(Stmt::Inst(l0));
        let (e3, _) = f.add_inst(Op::IAdd, vec![base1, c1]);
        sched.push(Stmt::Inst(e3));
        let e3v = f.inst(e3).result.unwrap();
        let (l1, r1) = f.add_inst(Op::SpadLoad, vec![e3v]);
        sched.push(Stmt::Inst(l1));
        let (w0, _) = f.add_inst(Op::Store(out), vec![c0, r0.unwrap()]);
        sched.push(Stmt::Inst(w0));
        let (w1, _) = f.add_inst(Op::Store(out), vec![c1, r1.unwrap()]);
        sched.push(Stmt::Inst(w1));
        f.body = sched;
        crate::verify::verify(&f).unwrap();
        let mut mem = Memory::for_function(&f);
        run(&f, &mut mem).unwrap();
        assert_eq!(mem.get_f64(out), vec![1.5, 2.5]);
        assert_eq!(mem.get_f64(tape)[..2], [1.5, 2.5]);
    }

    #[test]
    fn streamed_tape_form_executes() {
        use crate::function::Stmt;
        use crate::ops::Op;
        // tape.store writes the scratchpad, stream.outc drains it to DRAM,
        // tape.load reads the drained element straight from DRAM.
        let mut f = crate::Function::new("st");
        let tape = f.add_array("R0", 4, ArrayKind::Tape, Scalar::F64);
        let out = f.add_array("o", 2, ArrayKind::Output, Scalar::F64);
        let mut sched = Vec::new();
        let (al, base) = f.add_inst(Op::SAlloc { size: 2, base: 0 }, vec![]);
        sched.push(Stmt::Inst(al));
        let base = base.unwrap();
        let c0 = f.add_const(crate::Const::I64(0));
        let c1 = f.add_const(crate::Const::I64(1));
        let c2 = f.add_const(crate::Const::I64(2));
        let v15 = f.add_const(crate::Const::F64(1.5));
        let v25 = f.add_const(crate::Const::F64(2.5));
        let (e1, _) = f.add_inst(Op::IAdd, vec![base, c1]);
        sched.push(Stmt::Inst(e1));
        let e1v = f.inst(e1).result.unwrap();
        let (s0, _) = f.add_inst(
            Op::TapeStore {
                array: tape,
                off: 0,
            },
            vec![base, v15],
        );
        sched.push(Stmt::Inst(s0));
        let (s1, _) = f.add_inst(
            Op::TapeStore {
                array: tape,
                off: 1,
            },
            vec![e1v, v25],
        );
        sched.push(Stmt::Inst(s1));
        let (so, _) = f.add_inst(
            Op::StreamOutC {
                array: tape,
                struct_elems: 2,
                struct_bytes: 10,
            },
            vec![base, c0, c2],
        );
        sched.push(Stmt::Inst(so));
        let (l0, r0) = f.add_inst(
            Op::TapeLoad {
                array: tape,
                rsize: 2,
                off: 0,
            },
            vec![c0, base],
        );
        sched.push(Stmt::Inst(l0));
        let (l1, r1) = f.add_inst(
            Op::TapeLoad {
                array: tape,
                rsize: 2,
                off: 1,
            },
            vec![c0, e1v],
        );
        sched.push(Stmt::Inst(l1));
        let (w0, _) = f.add_inst(Op::Store(out), vec![c0, r0.unwrap()]);
        sched.push(Stmt::Inst(w0));
        let (w1, _) = f.add_inst(Op::Store(out), vec![c1, r1.unwrap()]);
        sched.push(Stmt::Inst(w1));
        f.body = sched;
        crate::verify::verify(&f).unwrap();
        let mut mem = Memory::for_function(&f);
        run(&f, &mut mem).unwrap();
        assert_eq!(mem.get_f64(out), vec![1.5, 2.5]);
        assert_eq!(mem.get_f64(tape)[..2], [1.5, 2.5]);
    }
}
