//! Structural and type verification of functions.
//!
//! Passes re-verify after rewriting; tests lean on this heavily.

use crate::function::{Bound, Function, Stmt, ValueDef};
use crate::ids::{InstId, ValueId};
use crate::ops::Op;
use crate::types::Scalar;
use std::error::Error;
use std::fmt;

/// An error found by [`verify`].
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// A value is used before (or without) being defined in program order.
    UseBeforeDef {
        /// The offending value.
        value: ValueId,
        /// The instruction using it.
        inst: InstId,
    },
    /// An operand has the wrong scalar type.
    TypeMismatch {
        /// The instruction.
        inst: InstId,
        /// Operand position.
        operand: usize,
        /// Expected type.
        expected: Scalar,
        /// Found type.
        found: Scalar,
    },
    /// An instruction's operand count does not match its opcode arity.
    BadArity {
        /// The instruction.
        inst: InstId,
    },
    /// An instruction appears more than once in the statement tree.
    DuplicateInst(InstId),
    /// An instruction exists in the table but never appears in the body.
    UnreachableInst(InstId),
    /// A loop bound value is not `i64` or not defined before the loop.
    BadLoopBound {
        /// Name of the loop.
        loop_name: String,
    },
    /// Select branches disagree in type.
    SelectBranchMismatch(InstId),
    /// A store writes to a read-only ([`crate::ArrayKind::Input`]) array.
    StoreToReadOnly(InstId),
    /// An instruction's provenance record is missing or inconsistent
    /// (found by [`verify_provenance`]).
    BadProvenance {
        /// The instruction.
        inst: InstId,
        /// What is wrong with its record.
        reason: &'static str,
    },
    /// An array's declared content range is ill-formed: on a writable
    /// array, mismatched with the element type, empty, or non-finite.
    BadArrayRange {
        /// Name of the offending array.
        array: String,
        /// What is wrong with the annotation.
        reason: &'static str,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UseBeforeDef { value, inst } => {
                write!(f, "value {value} used by {inst} before definition")
            }
            VerifyError::TypeMismatch {
                inst,
                operand,
                expected,
                found,
            } => write!(
                f,
                "operand {operand} of {inst} has type {found}, expected {expected}"
            ),
            VerifyError::BadArity { inst } => write!(f, "operand count mismatch at {inst}"),
            VerifyError::DuplicateInst(i) => write!(f, "instruction {i} scheduled twice"),
            VerifyError::UnreachableInst(i) => write!(f, "instruction {i} never scheduled"),
            VerifyError::BadLoopBound { loop_name } => {
                write!(f, "loop {loop_name} has an ill-typed or undefined bound")
            }
            VerifyError::SelectBranchMismatch(i) => {
                write!(f, "select {i} branch types disagree")
            }
            VerifyError::StoreToReadOnly(i) => {
                write!(f, "store {i} writes to a read-only input array")
            }
            VerifyError::BadProvenance { inst, reason } => {
                write!(f, "provenance of {inst}: {reason}")
            }
            VerifyError::BadArrayRange { array, reason } => {
                write!(f, "range annotation on array `{array}`: {reason}")
            }
        }
    }
}

impl Error for VerifyError {}

struct Checker<'f> {
    func: &'f Function,
    defined: Vec<bool>,
    seen_inst: Vec<bool>,
}

impl<'f> Checker<'f> {
    fn require_defined(&self, v: ValueId, inst: InstId) -> Result<(), VerifyError> {
        if self.defined[v.index()] {
            Ok(())
        } else {
            Err(VerifyError::UseBeforeDef { value: v, inst })
        }
    }

    fn require_ty(
        &self,
        inst: InstId,
        operand: usize,
        v: ValueId,
        expected: Scalar,
    ) -> Result<(), VerifyError> {
        let found = self.func.value(v).ty;
        if found == expected {
            Ok(())
        } else {
            Err(VerifyError::TypeMismatch {
                inst,
                operand,
                expected,
                found,
            })
        }
    }

    fn check_inst(&mut self, id: InstId) -> Result<(), VerifyError> {
        if self.seen_inst[id.index()] {
            return Err(VerifyError::DuplicateInst(id));
        }
        self.seen_inst[id.index()] = true;
        let inst = self.func.inst(id);
        if inst.args.len() != inst.op.arity() {
            return Err(VerifyError::BadArity { inst: id });
        }
        for &a in &inst.args {
            self.require_defined(a, id)?;
        }
        use Op::*;
        let f = Scalar::F64;
        let i = Scalar::I64;
        match inst.op {
            FAdd | FSub | FMul | FDiv | FMin | FMax | FPow => {
                self.require_ty(id, 0, inst.args[0], f)?;
                self.require_ty(id, 1, inst.args[1], f)?;
            }
            FNeg | FAbs | Sqrt | Sin | Cos | Exp | Ln | Tanh => {
                self.require_ty(id, 0, inst.args[0], f)?;
            }
            FCmp(_) => {
                self.require_ty(id, 0, inst.args[0], f)?;
                self.require_ty(id, 1, inst.args[1], f)?;
            }
            Select => {
                self.require_ty(id, 0, inst.args[0], i)?;
                let t = self.func.value(inst.args[1]).ty;
                let e = self.func.value(inst.args[2]).ty;
                if t != e {
                    return Err(VerifyError::SelectBranchMismatch(id));
                }
            }
            IAdd | ISub | IMul | IDiv | IRem | IMin | IMax | ICmp(_) => {
                self.require_ty(id, 0, inst.args[0], i)?;
                self.require_ty(id, 1, inst.args[1], i)?;
            }
            IToF => self.require_ty(id, 0, inst.args[0], i)?,
            FToI => self.require_ty(id, 0, inst.args[0], f)?,
            Load(_) => self.require_ty(id, 0, inst.args[0], i)?,
            Store(a) => {
                self.require_ty(id, 0, inst.args[0], i)?;
                let decl = self.func.array(a);
                self.require_ty(id, 1, inst.args[1], decl.elem)?;
                if decl.kind.is_read_only() {
                    return Err(VerifyError::StoreToReadOnly(id));
                }
            }
            SAlloc { .. } | Barrier => {}
            SpadLoad => self.require_ty(id, 0, inst.args[0], i)?,
            SpadStore | TapeStore { .. } => {
                self.require_ty(id, 0, inst.args[0], i)?;
                self.require_ty(id, 1, inst.args[1], f)?;
            }
            TapeLoad { .. } => {
                self.require_ty(id, 0, inst.args[0], i)?;
                self.require_ty(id, 1, inst.args[1], i)?;
            }
            StreamOut(_) | StreamIn(_) | StreamOutC { .. } | StreamInC { .. } => {
                for k in 0..3 {
                    self.require_ty(id, k, inst.args[k], i)?;
                }
            }
        }
        if let Some(r) = inst.result {
            self.defined[r.index()] = true;
        }
        Ok(())
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) -> Result<(), VerifyError> {
        for s in stmts {
            match s {
                Stmt::Inst(i) => self.check_inst(*i)?,
                Stmt::For { loop_id, body } => {
                    let info = self.func.loop_info(*loop_id);
                    for b in [info.start, info.end] {
                        if let Bound::Value(v) = b {
                            if !self.defined[v.index()] || self.func.value(v).ty != Scalar::I64 {
                                return Err(VerifyError::BadLoopBound {
                                    loop_name: info.name.clone(),
                                });
                            }
                        }
                    }
                    let iv_idx = info.iv.index();
                    let was = self.defined[iv_idx];
                    self.defined[iv_idx] = true;
                    self.check_stmts(body)?;
                    self.defined[iv_idx] = was;
                }
            }
        }
        Ok(())
    }
}

/// Verifies structural well-formedness and typing of `func`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered in program order.
pub fn verify(func: &Function) -> Result<(), VerifyError> {
    check_array_ranges(func)?;
    let mut defined = vec![false; func.values().len()];
    for (i, v) in func.values().iter().enumerate() {
        if matches!(v.def, ValueDef::Const(_)) {
            defined[i] = true;
        }
    }
    let mut checker = Checker {
        func,
        defined,
        seen_inst: vec![false; func.insts().len()],
    };
    checker.check_stmts(&func.body)?;
    if let Some(i) = checker.seen_inst.iter().position(|s| !s) {
        return Err(VerifyError::UnreachableInst(InstId::new(i)));
    }
    Ok(())
}

/// Semantic checks on declared array content ranges: ranges live only on
/// read-only `Input` arrays (the caller contract the value-range
/// analysis seeds from), must be non-empty, type-matched, and — for
/// floats — finite, with `quantized` bounds on exact integers.
fn check_array_ranges(func: &Function) -> Result<(), VerifyError> {
    use crate::function::DeclRange;
    for a in func.arrays() {
        let Some(r) = a.range else { continue };
        let bad = |reason| {
            Err(VerifyError::BadArrayRange {
                array: a.name.clone(),
                reason,
            })
        };
        if !a.kind.is_read_only() {
            return bad("only Input arrays may declare a content range");
        }
        match (r, a.elem) {
            (DeclRange::Int { .. }, Scalar::F64) | (DeclRange::Float { .. }, Scalar::I64) => {
                return bad("range kind does not match the element type");
            }
            (DeclRange::Int { lo, hi }, Scalar::I64) => {
                if lo > hi {
                    return bad("empty range (lo > hi)");
                }
            }
            (DeclRange::Float { lo, hi, quantized }, Scalar::F64) => {
                if !lo.is_finite() || !hi.is_finite() {
                    return bad("float range bounds must be finite");
                }
                if lo > hi {
                    return bad("empty range (lo > hi)");
                }
                if quantized && (lo.fract() != 0.0 || hi.fract() != 0.0) {
                    return bad("quantized range bounds must be exact integers");
                }
            }
        }
    }
    Ok(())
}

/// Verifies that no pass dropped or corrupted provenance: the record
/// table covers every instruction, every record names a creating pass,
/// source-level records are self-stamped, and every `source` back-
/// reference is in range of the originating function's instruction
/// table (`source_insts`; pass `None` when the source id space is the
/// function itself, as for freshly built or parsed IR).
///
/// # Errors
///
/// Returns the first [`VerifyError::BadProvenance`] in instruction
/// order.
pub fn verify_provenance(func: &Function, source_insts: Option<usize>) -> Result<(), VerifyError> {
    let bound = source_insts.unwrap_or(func.insts().len());
    if func.provs().len() != func.insts().len() {
        return Err(VerifyError::BadProvenance {
            inst: InstId::new(func.provs().len()),
            reason: "provenance table shorter than the instruction table",
        });
    }
    for (i, p) in func.provs().iter().enumerate() {
        let inst = InstId::new(i);
        if p.created_by.is_empty() {
            return Err(VerifyError::BadProvenance {
                inst,
                reason: "empty creating-pass name",
            });
        }
        if p.created_by == "source" && p.source != Some(inst) {
            return Err(VerifyError::BadProvenance {
                inst,
                reason: "source-level instruction is not self-stamped",
            });
        }
        if let Some(s) = p.source {
            if s.index() >= bound {
                return Err(VerifyError::BadProvenance {
                    inst,
                    reason: "source back-reference out of range",
                });
            }
        }
    }
    Ok(())
}

/// Post-lowering strengthening of [`verify_provenance`]: after the
/// streams / scratchpad-index lowerings, every tape, stream and
/// scratchpad access must carry the region the layer plan placed it in.
///
/// # Errors
///
/// Returns the first unplaced access as a [`VerifyError::BadProvenance`].
pub fn verify_provenance_regions(func: &Function) -> Result<(), VerifyError> {
    for (i, inst) in func.insts().iter().enumerate() {
        let placed = matches!(
            inst.op,
            Op::TapeStore { .. }
                | Op::TapeLoad { .. }
                | Op::StreamOutC { .. }
                | Op::StreamInC { .. }
                | Op::SpadLoad
                | Op::SpadStore
                | Op::StreamOut(_)
                | Op::StreamIn(_)
        );
        let id = InstId::new(i);
        if placed && func.prov(id).region.is_none() {
            return Err(VerifyError::BadProvenance {
                inst: id,
                reason: "tape/stream/scratchpad access lost its region",
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;

    #[test]
    fn accepts_well_formed() {
        let mut b = FunctionBuilder::new("ok");
        let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", 8, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.load(x, i);
            let w = b.fmul(v, v);
            b.store(y, i, w);
        });
        assert_eq!(verify(&b.finish()), Ok(()));
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = Function::new("bad");
        let a = f.add_const(crate::Const::F64(1.0));
        let b = f.add_const(crate::Const::I64(1));
        let (i, _) = f.add_inst(Op::FAdd, vec![a, b]);
        f.body.push(Stmt::Inst(i));
        assert!(matches!(
            verify(&f),
            Err(VerifyError::TypeMismatch { operand: 1, .. })
        ));
    }

    #[test]
    fn rejects_iv_used_outside_loop() {
        let mut f = Function::new("bad");
        let (lid, iv) = f.add_loop("i", Bound::Const(0), Bound::Const(4), 1);
        let one = f.add_const(crate::Const::I64(1));
        let (esc, _) = f.add_inst(Op::IAdd, vec![iv, one]);
        f.body.push(Stmt::For {
            loop_id: lid,
            body: vec![],
        });
        f.body.push(Stmt::Inst(esc));
        assert!(matches!(verify(&f), Err(VerifyError::UseBeforeDef { .. })));
    }

    #[test]
    fn rejects_duplicate_schedule() {
        let mut f = Function::new("bad");
        let a = f.add_const(crate::Const::F64(1.0));
        let (i, _) = f.add_inst(Op::FNeg, vec![a]);
        f.body.push(Stmt::Inst(i));
        f.body.push(Stmt::Inst(i));
        assert_eq!(verify(&f), Err(VerifyError::DuplicateInst(i)));
    }

    #[test]
    fn rejects_unscheduled_inst() {
        let mut f = Function::new("bad");
        let a = f.add_const(crate::Const::F64(1.0));
        let (i, _) = f.add_inst(Op::FNeg, vec![a]);
        let _ = i;
        assert!(matches!(verify(&f), Err(VerifyError::UnreachableInst(_))));
    }

    #[test]
    fn rejects_store_to_input() {
        let mut f = Function::new("bad");
        let x = f.add_array("x", 4, ArrayKind::Input, Scalar::F64);
        let i0 = f.add_const(crate::Const::I64(0));
        let v = f.add_const(crate::Const::F64(2.0));
        let (s, _) = f.add_inst(Op::Store(x), vec![i0, v]);
        f.body.push(Stmt::Inst(s));
        assert_eq!(verify(&f), Err(VerifyError::StoreToReadOnly(s)));
    }

    #[test]
    fn rejects_undefined_loop_bound() {
        let mut f = Function::new("bad");
        // A bound referring to a value that is never defined (an inst result
        // that is not scheduled before the loop).
        let c = f.add_const(crate::Const::I64(3));
        let (add, bound) = f.add_inst(Op::IAdd, vec![c, c]);
        let (lid, _) = f.add_loop("i", Bound::Const(0), Bound::Value(bound.unwrap()), 1);
        f.body.push(Stmt::For {
            loop_id: lid,
            body: vec![],
        });
        f.body.push(Stmt::Inst(add));
        assert!(matches!(verify(&f), Err(VerifyError::BadLoopBound { .. })));
    }

    #[test]
    fn checks_streamed_tape_ops() {
        let mut f = Function::new("st");
        let t = f.add_array("R0", 8, ArrayKind::Tape, Scalar::F64);
        let idx = f.add_const(crate::Const::I64(0));
        let val = f.add_const(crate::Const::F64(1.0));
        let (s, _) = f.add_inst(Op::TapeStore { array: t, off: 0 }, vec![idx, val]);
        let (l, _) = f.add_inst(
            Op::TapeLoad {
                array: t,
                rsize: 2,
                off: 1,
            },
            vec![idx, idx],
        );
        f.body.push(Stmt::Inst(s));
        f.body.push(Stmt::Inst(l));
        assert_eq!(verify(&f), Ok(()));

        let mut g = Function::new("bad");
        let t = g.add_array("R0", 8, ArrayKind::Tape, Scalar::F64);
        let val = g.add_const(crate::Const::F64(1.0));
        let (s, _) = g.add_inst(Op::TapeStore { array: t, off: 0 }, vec![val, val]);
        g.body.push(Stmt::Inst(s));
        assert!(matches!(
            verify(&g),
            Err(VerifyError::TypeMismatch { operand: 0, .. })
        ));
    }

    #[test]
    fn error_display_nonempty() {
        let e = VerifyError::DuplicateInst(InstId::new(3));
        assert!(!e.to_string().is_empty());
        let p = VerifyError::BadProvenance {
            inst: InstId::new(1),
            reason: "x",
        };
        assert!(p.to_string().contains("provenance"));
    }

    #[test]
    fn provenance_accepts_source_built_ir() {
        let mut b = FunctionBuilder::new("ok");
        let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", 8, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.load(x, i);
            b.store(y, i, v);
        });
        let f = b.finish();
        assert_eq!(verify_provenance(&f, None), Ok(()));
        assert_eq!(verify_provenance_regions(&f), Ok(()));
    }

    #[test]
    fn provenance_rejects_out_of_range_source() {
        let mut f = Function::new("bad");
        let a = f.add_const(crate::Const::F64(1.0));
        let (i, _) = f.add_inst(Op::FNeg, vec![a]);
        f.body.push(Stmt::Inst(i));
        f.set_prov(
            i,
            crate::Provenance::created_by("ad").with_source(InstId::new(99)),
        );
        assert!(matches!(
            verify_provenance(&f, None),
            Err(VerifyError::BadProvenance {
                reason: "source back-reference out of range",
                ..
            })
        ));
        // In-range against a declared source id space.
        assert_eq!(verify_provenance(&f, Some(100)), Ok(()));
    }

    #[test]
    fn provenance_rejects_unstamped_source_ir() {
        let mut f = Function::new("bad");
        let a = f.add_const(crate::Const::F64(1.0));
        let (i, _) = f.add_inst(Op::FNeg, vec![a]);
        f.body.push(Stmt::Inst(i));
        f.set_prov(i, crate::Provenance::SOURCE);
        assert!(matches!(
            verify_provenance(&f, None),
            Err(VerifyError::BadProvenance {
                reason: "source-level instruction is not self-stamped",
                ..
            })
        ));
    }

    #[test]
    fn provenance_region_check_flags_unplaced_tape_ops() {
        let mut f = Function::new("bad");
        let t = f.add_array("R0", 8, ArrayKind::Tape, Scalar::F64);
        let idx = f.add_const(crate::Const::I64(0));
        let val = f.add_const(crate::Const::F64(1.0));
        let (s, _) = f.add_inst(Op::TapeStore { array: t, off: 0 }, vec![idx, val]);
        f.body.push(Stmt::Inst(s));
        assert!(matches!(
            verify_provenance_regions(&f),
            Err(VerifyError::BadProvenance {
                reason: "tape/stream/scratchpad access lost its region",
                ..
            })
        ));
        f.set_prov(s, crate::Provenance::created_by("streams").with_region(0));
        assert_eq!(verify_provenance_regions(&f), Ok(()));
    }
}
