//! Textual IR parser — the inverse of [`crate::pretty`].
//!
//! The format is exactly what [`crate::pretty::pretty`] prints, so
//! functions round-trip: write tests and fixtures as text, feed programs
//! to the `tapeflow` CLI, or diff compiled output.
//!
//! ```text
//! func @saxpy {
//!   array @0 x : f64[8] (Input)
//!   array @1 y : f64[8] (InOut)
//!   for i in 0..8 step 1 {
//!     %0 = load @0 i
//!     %1 = load @1 i
//!     %2 = fmul 2 %0
//!     %3 = fadd %2 %1
//!     store @1 i %3
//!   }
//! }
//! ```
//!
//! Operands are `%N` (instruction results), loop names (induction
//! variables), or literal constants (`2` is the `f64` 2.0, `2i` the
//! `i64` 2).

use crate::function::{ArrayKind, Bound, Function, Stmt};
use crate::ids::{ArrayId, ValueId};
use crate::ops::{CmpKind, Op};
use crate::types::{Const, Scalar};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

struct Parser<'s> {
    lines: Vec<(usize, &'s str)>,
    pos: usize,
    func: Function,
    /// `%N` in the text → actual value id.
    results: HashMap<u32, ValueId>,
    /// open loop name → induction value (stacked by scope).
    ivs: Vec<(String, ValueId)>,
    consts: HashMap<(bool, u64), ValueId>,
}

impl<'s> Parser<'s> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        // `pos` has usually advanced past the offending line already.
        let idx = self
            .pos
            .saturating_sub(1)
            .min(self.lines.len().saturating_sub(1));
        let line = self.lines.get(idx).map_or(0, |(n, _)| *n);
        Err(ParseError {
            line,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<&'s str> {
        self.lines.get(self.pos).map(|(_, l)| *l)
    }

    fn next_line(&mut self) -> Option<&'s str> {
        let l = self.peek()?;
        self.pos += 1;
        Some(l)
    }

    fn cf(&mut self, v: f64) -> ValueId {
        let key = (true, v.to_bits());
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.func.add_const(Const::F64(v));
        self.consts.insert(key, id);
        id
    }

    fn ci(&mut self, v: i64) -> ValueId {
        let key = (false, v as u64);
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.func.add_const(Const::I64(v));
        self.consts.insert(key, id);
        id
    }

    fn operand(&mut self, tok: &str) -> Result<ValueId, ParseError> {
        if let Some(num) = tok.strip_prefix('%') {
            let n: u32 = match num.parse() {
                Ok(n) => n,
                Err(_) => return self.err(format!("bad value reference {tok:?}")),
            };
            return match self.results.get(&n) {
                Some(&v) => Ok(v),
                None => self.err(format!("use of undefined value %{n}")),
            };
        }
        if let Some((_, iv)) = self.ivs.iter().rev().find(|(name, _)| name == tok) {
            return Ok(*iv);
        }
        if let Some(int) = tok.strip_suffix('i') {
            if let Ok(v) = int.parse::<i64>() {
                return Ok(self.ci(v));
            }
        }
        if let Ok(v) = tok.parse::<f64>() {
            return Ok(self.cf(v));
        }
        self.err(format!("unknown operand {tok:?}"))
    }

    fn array_ref(&mut self, tok: &str) -> Result<ArrayId, ParseError> {
        let Some(num) = tok.strip_prefix('@') else {
            return self.err(format!("expected array reference, found {tok:?}"));
        };
        let n: usize = match num.parse() {
            Ok(n) => n,
            Err(_) => return self.err(format!("bad array reference {tok:?}")),
        };
        if n >= self.func.arrays().len() {
            return self.err(format!("array @{n} not declared"));
        }
        Ok(ArrayId::new(n))
    }

    fn parse_header(&mut self) -> Result<(), ParseError> {
        let Some(line) = self.next_line() else {
            return self.err("empty input");
        };
        let line = line.trim();
        let Some(rest) = line.strip_prefix("func @") else {
            return self.err("expected `func @<name> {`");
        };
        let Some(name) = rest.strip_suffix('{').map(str::trim) else {
            return self.err("expected `{` after function name");
        };
        self.func.name = name.to_string();
        Ok(())
    }

    fn parse_array_decl(&mut self, line: &str) -> Result<(), ParseError> {
        // array @0 x : f64[8] (Input)
        // array @0 x : f64[8] (Input) in[0,9] quantized
        let rest = line.trim().strip_prefix("array ").expect("caller checked");
        let toks: Vec<&str> = rest.split_whitespace().collect();
        // toks: [@N, name, :, ty[len], (Kind)] + optional [in[lo,hi], quantized]
        if !(5..=7).contains(&toks.len()) || toks[2] != ":" {
            return self.err(format!("malformed array declaration {line:?}"));
        }
        let name = toks[1];
        let tylen = toks[3];
        let (ty, len) = if let Some(r) = tylen.strip_prefix("f64[") {
            (Scalar::F64, r.strip_suffix(']'))
        } else if let Some(r) = tylen.strip_prefix("i64[") {
            (Scalar::I64, r.strip_suffix(']'))
        } else {
            return self.err(format!("bad element type in {tylen:?}"));
        };
        let Some(len) = len.and_then(|l| l.parse::<usize>().ok()) else {
            return self.err(format!("bad array length in {tylen:?}"));
        };
        let kind = match toks[4].trim_start_matches('(').trim_end_matches(')') {
            "Input" => ArrayKind::Input,
            "Output" => ArrayKind::Output,
            "InOut" => ArrayKind::InOut,
            "Temp" => ArrayKind::Temp,
            "Tape" => ArrayKind::Tape,
            "Shadow" => ArrayKind::Shadow,
            other => return self.err(format!("unknown array kind {other:?}")),
        };
        let id = self.func.add_array(name, len, kind, ty);
        if toks.len() > 5 {
            let range = self.parse_range_annotation(&toks[5..], ty, line)?;
            self.func.set_array_range(id, range);
        }
        Ok(())
    }

    /// Parses the optional trailing `in[lo,hi]` (+ `quantized`) clause of
    /// an array declaration. Syntax and numeric-literal errors surface
    /// here; semantic constraints (input-only, non-empty, finite) are
    /// enforced by [`crate::verify::verify`] after parsing.
    fn parse_range_annotation(
        &mut self,
        toks: &[&str],
        ty: Scalar,
        line: &str,
    ) -> Result<crate::function::DeclRange, ParseError> {
        use crate::function::DeclRange;
        let Some(body) = toks[0]
            .strip_prefix("in[")
            .and_then(|s| s.strip_suffix(']'))
        else {
            return self.err(format!("malformed range annotation in {line:?}"));
        };
        let Some((lo_s, hi_s)) = body.split_once(',') else {
            return self.err(format!(
                "malformed range annotation in {line:?} (expected `in[lo,hi]`)"
            ));
        };
        let quantized = match toks.get(1) {
            None => false,
            Some(&"quantized") => true,
            Some(other) => {
                return self.err(format!(
                    "unexpected token {other:?} after range annotation in {line:?}"
                ));
            }
        };
        match ty {
            Scalar::I64 => {
                if quantized {
                    return self.err(format!(
                        "`quantized` is only valid on f64 ranges in {line:?}"
                    ));
                }
                let (Ok(lo), Ok(hi)) = (lo_s.parse::<i64>(), hi_s.parse::<i64>()) else {
                    return self.err(format!("bad integer range bound in {line:?}"));
                };
                Ok(DeclRange::Int { lo, hi })
            }
            Scalar::F64 => {
                let (Ok(lo), Ok(hi)) = (lo_s.parse::<f64>(), hi_s.parse::<f64>()) else {
                    return self.err(format!("bad float range bound in {line:?}"));
                };
                Ok(DeclRange::Float { lo, hi, quantized })
            }
        }
    }

    fn parse_stmts(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        while let Some(raw) = self.peek() {
            let line = raw.trim();
            if line == "}" {
                self.pos += 1;
                return Ok(());
            }
            if line.is_empty() {
                self.pos += 1;
                continue;
            }
            if line.starts_with("for ") {
                self.pos += 1;
                self.parse_for(line, out)?;
                continue;
            }
            self.pos += 1;
            self.parse_inst(line, out)?;
        }
        self.err("unexpected end of input (missing `}`)")
    }

    fn parse_for(&mut self, line: &str, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        // for i in 0..8 step 1 {
        let body_line = line
            .strip_prefix("for ")
            .and_then(|l| l.strip_suffix('{'))
            .map(str::trim);
        let Some(spec) = body_line else {
            return self.err(format!("malformed for loop {line:?}"));
        };
        let toks: Vec<&str> = spec.split_whitespace().collect();
        // [name, in, LO..HI, step, N]
        if toks.len() != 5 || toks[1] != "in" || toks[3] != "step" {
            return self.err(format!("malformed for loop {line:?}"));
        }
        let name = toks[0].to_string();
        let Some((lo, hi)) = toks[2].split_once("..") else {
            return self.err(format!("malformed loop range {:?}", toks[2]));
        };
        let bound = |p: &mut Self, tok: &str| -> Result<Bound, ParseError> {
            if let Ok(c) = tok.parse::<i64>() {
                Ok(Bound::Const(c))
            } else {
                Ok(Bound::Value(p.operand(tok)?))
            }
        };
        let lo = bound(self, lo)?;
        let hi = bound(self, hi)?;
        let Ok(step) = toks[4].parse::<i64>() else {
            return self.err(format!("bad loop step {:?}", toks[4]));
        };
        let (loop_id, iv) = self.func.add_loop(name.clone(), lo, hi, step);
        self.ivs.push((name, iv));
        let mut body = Vec::new();
        self.parse_stmts(&mut body)?;
        self.ivs.pop();
        out.push(Stmt::For { loop_id, body });
        Ok(())
    }

    fn parse_inst(&mut self, line: &str, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        // Optional `%N = ` prefix.
        let (result_num, rest) = match line.split_once('=') {
            Some((lhs, rhs)) if lhs.trim_start().starts_with('%') => {
                let n: u32 = match lhs.trim().trim_start_matches('%').parse() {
                    Ok(n) => n,
                    Err(_) => return self.err(format!("bad result name {lhs:?}")),
                };
                (Some(n), rhs.trim())
            }
            _ => (None, line),
        };
        let mut toks = rest.split_whitespace();
        let Some(mn) = toks.next() else {
            return self.err("empty instruction");
        };
        let args: Vec<&str> = toks.collect();
        let (op, operand_toks) = self.decode_op(mn, &args)?;
        let mut vals = Vec::with_capacity(operand_toks.len());
        for t in operand_toks {
            vals.push(self.operand(t)?);
        }
        let (inst, res) = self.func.add_inst(op, vals);
        out.push(Stmt::Inst(inst));
        match (result_num, res) {
            (Some(n), Some(v)) => {
                self.results.insert(n, v);
            }
            (Some(_), None) => return self.err(format!("{mn} produces no result")),
            _ => {}
        }
        Ok(())
    }

    /// Maps a mnemonic + raw args to an opcode and its operand tokens.
    fn decode_op<'a>(
        &mut self,
        mn: &str,
        args: &[&'a str],
    ) -> Result<(Op, Vec<&'a str>), ParseError> {
        use Op::*;
        let cmp = |k: &str| -> Option<CmpKind> {
            Some(match k {
                "eq" => CmpKind::Eq,
                "ne" => CmpKind::Ne,
                "lt" => CmpKind::Lt,
                "le" => CmpKind::Le,
                "gt" => CmpKind::Gt,
                "ge" => CmpKind::Ge,
                _ => return None,
            })
        };
        let simple = |op: Op| Ok((op, args.to_vec()));
        match mn {
            "fadd" => simple(FAdd),
            "fsub" => simple(FSub),
            "fmul" => simple(FMul),
            "fdiv" => simple(FDiv),
            "fmin" => simple(FMin),
            "fmax" => simple(FMax),
            "fneg" => simple(FNeg),
            "fabs" => simple(FAbs),
            "sqrt" => simple(Sqrt),
            "sin" => simple(Sin),
            "cos" => simple(Cos),
            "exp" => simple(Exp),
            "ln" => simple(Ln),
            "tanh" => simple(Tanh),
            "fpow" => simple(FPow),
            "select" => simple(Select),
            "iadd" => simple(IAdd),
            "isub" => simple(ISub),
            "imul" => simple(IMul),
            "idiv" => simple(IDiv),
            "irem" => simple(IRem),
            "imin" => simple(IMin),
            "imax" => simple(IMax),
            "itof" => simple(IToF),
            "ftoi" => simple(FToI),
            "barrier" => simple(Barrier),
            "spad.load" => simple(SpadLoad),
            "spad.store" => simple(SpadStore),
            "load" | "store" | "stream.out" | "stream.in" => {
                let Some((&arr, rest)) = args.split_first() else {
                    return self.err(format!("{mn} needs an array operand"));
                };
                let a = self.array_ref(arr)?;
                let op = match mn {
                    "load" => Load(a),
                    "store" => Store(a),
                    "stream.out" => StreamOut(a),
                    _ => StreamIn(a),
                };
                Ok((op, rest.to_vec()))
            }
            "tape.store" => {
                // tape.store @A +OFF <spad_idx> <value>
                let Some((&arr, rest)) = args.split_first() else {
                    return self.err("tape.store needs an array operand");
                };
                let array = self.array_ref(arr)?;
                let Some((&off_tok, rest)) = rest.split_first() else {
                    return self.err("tape.store needs `+<off>` after the array");
                };
                let Some(off) = off_tok.strip_prefix('+').and_then(|o| o.parse().ok()) else {
                    return self.err(format!("bad tape.store offset {off_tok:?}"));
                };
                Ok((TapeStore { array, off }, rest.to_vec()))
            }
            "tape.load" => {
                // tape.load @A xRSIZE +OFF <lin> <spad_idx>
                if args.len() < 3 {
                    return self.err("tape.load needs `@<array> x<rsize> +<off>`");
                }
                let array = self.array_ref(args[0])?;
                let Some(rsize) = args[1].strip_prefix('x').and_then(|r| r.parse().ok()) else {
                    return self.err(format!("bad tape.load struct size {:?}", args[1]));
                };
                let Some(off) = args[2].strip_prefix('+').and_then(|o| o.parse().ok()) else {
                    return self.err(format!("bad tape.load offset {:?}", args[2]));
                };
                Ok((TapeLoad { array, rsize, off }, args[3..].to_vec()))
            }
            "stream.outc" | "stream.inc" => {
                // stream.outc @A ELEMSxBYTES <spad_base> <dram_base> <elems>
                if args.len() < 2 {
                    return self.err(format!("{mn} needs `@<array> <elems>x<bytes>`"));
                }
                let array = self.array_ref(args[0])?;
                let enc = args[1]
                    .split_once('x')
                    .and_then(|(e, b)| Some((e.parse().ok()?, b.parse().ok()?)));
                let Some((struct_elems, struct_bytes)) = enc else {
                    return self.err(format!("bad stream encoding {:?}", args[1]));
                };
                let op = if mn == "stream.outc" {
                    StreamOutC {
                        array,
                        struct_elems,
                        struct_bytes,
                    }
                } else {
                    StreamInC {
                        array,
                        struct_elems,
                        struct_bytes,
                    }
                };
                Ok((op, args[2..].to_vec()))
            }
            "salloc" => {
                // salloc SIZE @BASE
                if args.len() != 2 {
                    return self.err("salloc needs `<size> @<base>`");
                }
                let size: u32 = match args[0].parse() {
                    Ok(s) => s,
                    Err(_) => return self.err(format!("bad salloc size {:?}", args[0])),
                };
                let base: u32 = match args[1].trim_start_matches('@').parse() {
                    Ok(b) => b,
                    Err(_) => return self.err(format!("bad salloc base {:?}", args[1])),
                };
                Ok((SAlloc { size, base }, Vec::new()))
            }
            other => {
                if let Some(k) = other.strip_prefix("fcmp.").and_then(cmp) {
                    return simple(FCmp(k));
                }
                if let Some(k) = other.strip_prefix("icmp.").and_then(cmp) {
                    return simple(ICmp(k));
                }
                self.err(format!("unknown mnemonic {other:?}"))
            }
        }
    }
}

/// Parses a function in the [`crate::pretty`] text format.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line. The result is
/// verified before being returned.
pub fn parse(text: &str) -> Result<Function, ParseError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim().starts_with("//"))
        .collect();
    let mut p = Parser {
        lines,
        pos: 0,
        func: Function::new(""),
        results: HashMap::new(),
        ivs: Vec::new(),
        consts: HashMap::new(),
    };
    p.parse_header()?;
    // Array declarations come first.
    while let Some(line) = p.peek() {
        if line.trim().starts_with("array ") {
            p.pos += 1;
            p.parse_array_decl(line)?;
        } else {
            break;
        }
    }
    let mut body = Vec::new();
    p.parse_stmts(&mut body)?;
    p.func.body = body;
    if let Err(e) = crate::verify::verify(&p.func) {
        return Err(ParseError {
            line: 0,
            message: format!("parsed function fails verification: {e}"),
        });
    }
    Ok(p.func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::memory::Memory;
    use crate::pretty::pretty;

    const SAXPY: &str = r"func @saxpy {
  array @0 x : f64[8] (Input)
  array @1 y : f64[8] (InOut)
  for i in 0..8 step 1 {
    %0 = load @0 i
    %1 = load @1 i
    %2 = fmul 2 %0
    %3 = fadd %2 %1
    store @1 i %3
  }
}";

    #[test]
    fn parses_and_executes() {
        let f = parse(SAXPY).unwrap();
        assert_eq!(f.name, "saxpy");
        let mut mem = Memory::for_function(&f);
        mem.set_f64(ArrayId::new(0), &[1.0; 8]);
        mem.set_f64(ArrayId::new(1), &[3.0; 8]);
        crate::interp::run(&f, &mut mem).unwrap();
        assert_eq!(mem.get_f64(ArrayId::new(1)), vec![5.0; 8]);
    }

    #[test]
    fn pretty_parse_roundtrip() {
        let mut b = FunctionBuilder::new("rt");
        let x = b.array("x", 6, ArrayKind::Input, Scalar::F64);
        let idx = b.array("perm", 6, ArrayKind::Input, Scalar::I64);
        let out = b.array("out", 6, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 6, |b, i| {
            let j = b.load(idx, i);
            let v = b.load(x, j);
            let e = b.exp(v);
            let t = b.tanh(e);
            let c = b.fcmp(CmpKind::Gt, t, e);
            let half = b.f64(0.5);
            let sel = b.select(c, t, half);
            b.store(out, i, sel);
        });
        let f = b.finish();
        // Value numbering may shift once (the parser interns constants in
        // encounter order), after which pretty → parse → pretty is a
        // fixpoint.
        let text1 = pretty(&f).to_string();
        let text2 = pretty(&parse(&text1).unwrap()).to_string();
        let text3 = pretty(&parse(&text2).unwrap()).to_string();
        assert_eq!(text2, text3, "pretty → parse → pretty is a fixpoint");
    }

    #[test]
    fn roundtrip_executes_identically() {
        let mut b = FunctionBuilder::new("exec");
        let x = b.array("x", 5, ArrayKind::Input, Scalar::F64);
        let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
        b.for_loop_step("i", 1i64, 5i64, 2, |b, i| {
            let v = b.load(x, i);
            let s = b.sin(v);
            let c = b.load_cell(loss);
            let a = b.fadd(c, s);
            b.store_cell(loss, a);
        });
        let f = b.finish();
        let g = parse(&pretty(&f).to_string()).unwrap();
        let data = [0.3, 0.6, 0.9, 1.2, 1.5];
        let run = |f: &Function| {
            let mut mem = Memory::for_function(f);
            mem.set_f64(ArrayId::new(0), &data);
            crate::interp::run(f, &mut mem).unwrap();
            mem.get_f64_at(ArrayId::new(1), 0)
        };
        assert_eq!(run(&f), run(&g));
    }

    #[test]
    fn streamed_tape_form_roundtrips() {
        let text = r"func @st {
  array @0 x : f64[8] (Input)
  array @1 R0 : f64[8] (Tape)
  for i in 0..4 step 1 {
    %0 = load @0 i
    tape.store @1 +0 i %0
    stream.outc @1 2x8 i i 2i
  }
  barrier
  for r in 0..4 step 1 {
    %1 = tape.load @1 x2 +0 r r
    stream.inc @1 2x8 r r 2i
  }
}";
        let f = parse(text).unwrap();
        let ops: Vec<_> = f.insts().iter().map(|i| i.op).collect();
        assert!(ops.contains(&crate::Op::TapeStore {
            array: ArrayId::new(1),
            off: 0
        }));
        assert!(ops.contains(&crate::Op::TapeLoad {
            array: ArrayId::new(1),
            rsize: 2,
            off: 0
        }));
        assert!(ops.contains(&crate::Op::StreamOutC {
            array: ArrayId::new(1),
            struct_elems: 2,
            struct_bytes: 8
        }));
        let text2 = pretty(&f).to_string();
        let text3 = pretty(&parse(&text2).unwrap()).to_string();
        assert_eq!(text2, text3, "pretty → parse → pretty is a fixpoint");
    }

    #[test]
    fn reports_undefined_value() {
        let bad = "func @f {\n  %0 = fadd %7 %7\n}";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn reports_unknown_mnemonic() {
        let bad = "func @f {\n  %0 = warp 1 2\n}";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("unknown mnemonic"), "{err}");
    }

    #[test]
    fn reports_missing_brace() {
        let bad = "func @f {\n  barrier\n";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("missing"), "{err}");
    }

    #[test]
    fn range_annotations_roundtrip() {
        let text = r"func @r {
  array @0 x : f64[4] (Input) in[-1,1] quantized
  array @1 t : f64[4] (Input) in[-0.5,0.5]
  array @2 k : i64[4] (Input) in[0,9]
  array @3 out : f64[4] (Output)
  for i in 0..4 step 1 {
    %0 = load @0 i
    store @3 i %0
  }
}";
        let f = parse(text).unwrap();
        use crate::function::DeclRange;
        assert_eq!(
            f.arrays()[0].range,
            Some(DeclRange::Float {
                lo: -1.0,
                hi: 1.0,
                quantized: true
            })
        );
        assert_eq!(
            f.arrays()[1].range,
            Some(DeclRange::Float {
                lo: -0.5,
                hi: 0.5,
                quantized: false
            })
        );
        assert_eq!(f.arrays()[2].range, Some(DeclRange::Int { lo: 0, hi: 9 }));
        assert_eq!(f.arrays()[3].range, None);
        let text2 = pretty(&f).to_string();
        let text3 = pretty(&parse(&text2).unwrap()).to_string();
        assert_eq!(text2, text3, "ranges survive the pretty/parse fixpoint");
    }

    #[test]
    fn malformed_range_annotations_are_rejected() {
        let cases = [
            (
                "array @0 x : f64[4] (Input) in[1]",
                "malformed range annotation",
            ),
            (
                "array @0 x : f64[4] (Input) in(1,2)",
                "malformed range annotation",
            ),
            (
                "array @0 x : f64[4] (Input) in[a,b]",
                "bad float range bound",
            ),
            (
                "array @0 k : i64[4] (Input) in[a,b]",
                "bad integer range bound",
            ),
            (
                "array @0 k : i64[4] (Input) in[0,9] quantized",
                "only valid on f64",
            ),
            (
                "array @0 x : f64[4] (Input) in[0,1] bogus",
                "unexpected token",
            ),
            (
                "array @0 x : f64[4] (Input) in[0,1] quantized extra",
                "malformed array declaration",
            ),
        ];
        for (decl, want) in cases {
            let text = format!("func @bad {{\n  {decl}\n}}");
            let err = parse(&text).unwrap_err();
            assert!(
                err.message.contains(want),
                "{decl:?}: expected {want:?} in {err}"
            );
            assert_eq!(err.line, 2, "{decl:?}");
        }
    }

    #[test]
    fn nested_loops_and_value_bounds() {
        let text = r"func @n {
  array @0 x : f64[16] (Input)
  %0 = iadd 2i 2i
  for i in 0..4 step 1 {
    for j in 0..%0 step 1 {
      %1 = imul i 4i
      %2 = iadd %1 j
      %3 = load @0 %2
    }
  }
}";
        let f = parse(text).unwrap();
        assert_eq!(f.loops().len(), 2);
        let mut mem = Memory::for_function(&f);
        mem.set_f64(ArrayId::new(0), &[1.0; 16]);
        assert!(crate::interp::run(&f, &mut mem).is_ok());
    }
}
