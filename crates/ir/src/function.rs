//! The [`Function`] container: arrays, SSA values, instructions, loops and
//! the structured statement tree.

use crate::ids::{ArrayId, InstId, LoopId, ValueId};
use crate::ops::Op;
use crate::types::{Const, Scalar};

/// The role an array (memory object) plays in a function.
///
/// The classification mirrors Figure 1.3 of the paper, which splits the
/// reverse pass's working set into *inputs* (immutable state), *outputs*
/// (mutable results), *tape* (SSA values passed FWD → REV) — plus the
/// shadow (gradient) arrays the AD transform introduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// Read-only function input. The reverse pass may re-load from it
    /// instead of taping (Enzyme's cache-avoidance heuristic).
    Input,
    /// Mutable function output.
    Output,
    /// Read-write function state.
    InOut,
    /// Function-local scratch, including one-element accumulator cells.
    Temp,
    /// A gradient-tape array introduced by `tapeflow-autodiff`.
    ///
    /// One array per taped SSA value yields Enzyme's struct-of-arrays
    /// layout; Pass 1 of `tapeflow-core` merges these into
    /// array-of-structs regions.
    Tape,
    /// A shadow (adjoint) array introduced by `tapeflow-autodiff`, e.g.
    /// `d_x` for an active input `x`.
    Shadow,
}

impl ArrayKind {
    /// True for arrays the function body may not write to.
    #[inline]
    pub fn is_read_only(self) -> bool {
        matches!(self, ArrayKind::Input)
    }

    /// True for gradient-tape arrays.
    #[inline]
    pub fn is_tape(self) -> bool {
        matches!(self, ArrayKind::Tape)
    }
}

/// A declared value range for an input array's contents: a contract the
/// caller makes about every element the function will observe.
///
/// The range feeds the value-range analysis ([`crate::vra::value_ranges`]),
/// which seeds the array's content domain from it; the dynamic soundness
/// oracle ([`crate::interp::RangeRecorder`]) checks observed values against
/// the derived static ranges at run time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeclRange {
    /// Every element is an `i64` in `[lo, hi]`.
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Every element is a *finite* `f64` in `[lo, hi]`. When `quantized`
    /// is set, every element is additionally an exact integer (quantized
    /// data such as pixel levels or cost grids), so the value survives a
    /// narrow integer wire format losslessly.
    Float {
        /// Inclusive lower bound (finite).
        lo: f64,
        /// Inclusive upper bound (finite).
        hi: f64,
        /// All elements are exactly integer-valued.
        quantized: bool,
    },
}

/// Declaration of an array: a contiguous memory object.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    /// Human-readable name (`x`, `T0`, `d_w`, ...).
    pub name: String,
    /// Number of elements.
    pub len: usize,
    /// Role of the array.
    pub kind: ArrayKind,
    /// Element type.
    pub elem: Scalar,
    /// Declared content range, if the caller contracts one (inputs only).
    pub range: Option<DeclRange>,
}

impl ArrayDecl {
    /// Total size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.len as u64 * self.elem.size_bytes()
    }
}

/// How an SSA value comes into existence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueDef {
    /// A compile-time constant.
    Const(Const),
    /// The induction variable of a loop.
    Iv(LoopId),
    /// The result of an instruction.
    Inst(InstId),
}

/// Type and definition of an SSA value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueInfo {
    /// Scalar type of the value.
    pub ty: Scalar,
    /// Defining entity.
    pub def: ValueDef,
}

/// A single instruction: opcode, operands, optional result value.
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    /// The opcode.
    pub op: Op,
    /// Operand values; length must equal `op.arity()`.
    pub args: Vec<ValueId>,
    /// The defined value, if the op produces one.
    pub result: Option<ValueId>,
}

/// Compile-time provenance of one instruction: which source op it
/// descends from, where the layering pass placed it, and which pass put
/// it there.
///
/// Every [`Function`] keeps one record per instruction in a table
/// parallel to [`Function::insts`] — [`Function::add_inst`] appends a
/// record unconditionally, so the table can never go missing an entry
/// (the invariant [`crate::verify::verify_provenance`] checks). Source-
/// built IR (builder, parser) self-stamps: each instruction is its own
/// originating source op. Passes that emit or rewrite instructions
/// scope a template via [`Function::set_prov_ctx`] or stamp records
/// post-hoc via [`Function::set_prov`] / [`Function::mark_rewritten`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// The originating source-level instruction, in the id space of the
    /// function the current pass chain started from (the post-`opt`
    /// source function for gradient IR). `None` when an instruction is
    /// pure pass scaffolding with no single source op (e.g. stream
    /// index arithmetic).
    pub source: Option<InstId>,
    /// Tape region (Pass 1 index) this instruction belongs to, once
    /// region formation / the streams lowering has placed it.
    pub region: Option<u32>,
    /// Layer within the region's schedule, once known.
    pub layer: Option<u32>,
    /// The pass that created the instruction (`"source"` for
    /// builder/parser-built IR, else a registered pass name).
    pub created_by: &'static str,
    /// The last pass that rewrote or relocated the instruction after
    /// creation, if any.
    pub rewritten_by: Option<&'static str>,
}

impl Provenance {
    /// Provenance of source-level IR before any pass ran. `source` is
    /// filled with the instruction's own id by [`Function::add_inst`].
    pub const SOURCE: Provenance = Provenance {
        source: None,
        region: None,
        layer: None,
        created_by: "source",
        rewritten_by: None,
    };

    /// A record for an instruction freshly created by `pass`.
    pub const fn created_by(pass: &'static str) -> Self {
        Provenance {
            source: None,
            region: None,
            layer: None,
            created_by: pass,
            rewritten_by: None,
        }
    }

    /// Same record with the originating source op set.
    pub const fn with_source(mut self, source: InstId) -> Self {
        self.source = Some(source);
        self
    }

    /// Same record with the region set.
    pub const fn with_region(mut self, region: u32) -> Self {
        self.region = Some(region);
        self
    }

    /// Same record with the layer set.
    pub const fn with_layer(mut self, layer: u32) -> Self {
        self.layer = Some(layer);
        self
    }

    /// Same record marked as rewritten by `pass`.
    pub const fn rewritten(mut self, pass: &'static str) -> Self {
        self.rewritten_by = Some(pass);
        self
    }
}

/// A loop bound: either a compile-time constant or a value computed before
/// the loop is entered (used by Pass 2's tiling for partial tiles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Bound {
    /// Compile-time-constant bound.
    Const(i64),
    /// Bound computed at runtime (an `i64` SSA value).
    Value(ValueId),
}

impl From<i64> for Bound {
    fn from(v: i64) -> Self {
        Bound::Const(v)
    }
}

impl From<ValueId> for Bound {
    fn from(v: ValueId) -> Self {
        Bound::Value(v)
    }
}

impl Bound {
    /// Returns the constant payload, if statically known.
    #[inline]
    pub fn as_const(self) -> Option<i64> {
        match self {
            Bound::Const(c) => Some(c),
            Bound::Value(_) => None,
        }
    }
}

/// Loop metadata. Iteration semantics: the induction variable starts at
/// `start`; while `iv < end` (for `step > 0`) or `iv > end` (for
/// `step < 0`), the body runs and `iv += step`.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopInfo {
    /// Debug name of the loop (`i`, `rev_i`, `i.tile`, ...).
    pub name: String,
    /// The induction variable value.
    pub iv: ValueId,
    /// Initial induction value.
    pub start: Bound,
    /// Exclusive terminal bound.
    pub end: Bound,
    /// Signed stride; must be non-zero.
    pub step: i64,
}

impl LoopInfo {
    /// Compile-time trip count, if both bounds are constants.
    pub fn trip_count(&self) -> Option<u64> {
        let (s, e) = (self.start.as_const()?, self.end.as_const()?);
        Some(trip_count(s, e, self.step))
    }
}

/// Trip count of a `(start, end, step)` loop under the IR's semantics.
pub fn trip_count(start: i64, end: i64, step: i64) -> u64 {
    assert!(step != 0, "loop step must be non-zero");
    if step > 0 {
        if end <= start {
            0
        } else {
            ((end - start) as u64).div_ceil(step as u64)
        }
    } else if end >= start {
        0
    } else {
        ((start - end) as u64).div_ceil(step.unsigned_abs())
    }
}

/// A node of the structured statement tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Execute one instruction.
    Inst(InstId),
    /// A counted loop over `body`.
    For {
        /// Loop metadata index.
        loop_id: LoopId,
        /// Statements executed each iteration.
        body: Vec<Stmt>,
    },
}

/// A function: the unit of compilation, differentiation and simulation.
///
/// Construct with [`crate::FunctionBuilder`]; compiler passes extend it
/// through the `add_*` methods and rebuild [`Function::body`].
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    arrays: Vec<ArrayDecl>,
    values: Vec<ValueInfo>,
    insts: Vec<Inst>,
    loops: Vec<LoopInfo>,
    /// Per-instruction provenance, parallel to `insts`.
    prov: Vec<Provenance>,
    /// Template stamped onto instructions created while it is set;
    /// `None` means "source-level IR" (self-stamping).
    prov_ctx: Option<Provenance>,
    /// Top-level statement sequence.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Creates an empty function. Prefer [`crate::FunctionBuilder`].
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            arrays: Vec::new(),
            values: Vec::new(),
            insts: Vec::new(),
            loops: Vec::new(),
            prov: Vec::new(),
            prov_ctx: None,
            body: Vec::new(),
        }
    }

    // ---- read access -----------------------------------------------------

    /// All array declarations, indexable by [`ArrayId`].
    #[inline]
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Declaration of `id`.
    #[inline]
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// All value infos, indexable by [`ValueId`].
    #[inline]
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// Info for value `id`.
    #[inline]
    pub fn value(&self, id: ValueId) -> ValueInfo {
        self.values[id.index()]
    }

    /// All instructions, indexable by [`InstId`].
    #[inline]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Instruction `id`.
    #[inline]
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// All loop infos, indexable by [`LoopId`].
    #[inline]
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Loop metadata for `id`.
    #[inline]
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    /// Iterator over array ids of a given kind.
    pub fn arrays_of_kind(&self, kind: ArrayKind) -> impl Iterator<Item = ArrayId> + '_ {
        self.arrays
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.kind == kind)
            .map(|(i, _)| ArrayId::new(i))
    }

    /// Looks an array up by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(ArrayId::new)
    }

    /// Provenance record of instruction `id`.
    #[inline]
    pub fn prov(&self, id: InstId) -> Provenance {
        self.prov[id.index()]
    }

    /// All provenance records, parallel to [`Function::insts`].
    #[inline]
    pub fn provs(&self) -> &[Provenance] {
        &self.prov
    }

    // ---- construction / pass mutation -------------------------------------

    /// Declares a new array and returns its id.
    pub fn add_array(
        &mut self,
        name: impl Into<String>,
        len: usize,
        kind: ArrayKind,
        elem: Scalar,
    ) -> ArrayId {
        let id = ArrayId::new(self.arrays.len());
        self.arrays.push(ArrayDecl {
            name: name.into(),
            len,
            kind,
            elem,
            range: None,
        });
        id
    }

    /// Attaches a declared content range to array `id`.
    /// [`crate::verify::verify`] enforces that only `Input` arrays carry
    /// one and that the range matches the element type.
    pub fn set_array_range(&mut self, id: ArrayId, range: DeclRange) {
        self.arrays[id.index()].range = Some(range);
    }

    /// Drops every declared content range. Declared ranges are a
    /// transparent codec — they may only change what the traffic model
    /// charges, never compiled semantics — and tests prove it by
    /// compiling a program with and without its annotations.
    pub fn clear_array_ranges(&mut self) {
        for a in &mut self.arrays {
            a.range = None;
        }
    }

    /// Interns a constant as a value (not deduplicated; the builder dedups).
    pub fn add_const(&mut self, c: Const) -> ValueId {
        let id = ValueId::new(self.values.len());
        self.values.push(ValueInfo {
            ty: c.scalar(),
            def: ValueDef::Const(c),
        });
        id
    }

    /// Creates an instruction; allocates its result value when the op
    /// produces one.
    ///
    /// `result_ty` is consulted only for context-typed ops
    /// ([`Op::Load`]'s element type is derived from the array; for
    /// [`Op::Select`] pass the branch type).
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != op.arity()`.
    pub fn add_inst(&mut self, op: Op, args: Vec<ValueId>) -> (InstId, Option<ValueId>) {
        assert_eq!(
            args.len(),
            op.arity(),
            "wrong operand count for {}",
            op.mnemonic()
        );
        let result_ty = match op.fixed_result() {
            Some(t) => t,
            None => match op {
                Op::Load(a) => Some(self.arrays[a.index()].elem),
                Op::Select => Some(self.values[args[1].index()].ty),
                _ => unreachable!("only Load/Select are context-typed"),
            },
        };
        let inst_id = InstId::new(self.insts.len());
        let result = result_ty.map(|ty| {
            let v = ValueId::new(self.values.len());
            self.values.push(ValueInfo {
                ty,
                def: ValueDef::Inst(inst_id),
            });
            v
        });
        self.insts.push(Inst { op, args, result });
        self.prov.push(
            self.prov_ctx
                .unwrap_or(Provenance::SOURCE.with_source(inst_id)),
        );
        (inst_id, result)
    }

    /// Sets the provenance template stamped onto every instruction
    /// created until the next [`Function::set_prov_ctx`] /
    /// [`Function::clear_prov_ctx`]; returns the previous template so
    /// nested emitters can restore it.
    pub fn set_prov_ctx(&mut self, ctx: Provenance) -> Option<Provenance> {
        self.prov_ctx.replace(ctx)
    }

    /// Restores self-stamping "source" provenance for newly created
    /// instructions (or reinstates a template saved by
    /// [`Function::set_prov_ctx`]).
    pub fn clear_prov_ctx(&mut self) -> Option<Provenance> {
        self.prov_ctx.take()
    }

    /// The active provenance template, if a pass set one.
    #[inline]
    pub fn prov_ctx(&self) -> Option<Provenance> {
        self.prov_ctx
    }

    /// Overwrites the provenance of instruction `id` (post-hoc stamping
    /// by passes that learn placement after emission, e.g. layering).
    #[inline]
    pub fn set_prov(&mut self, id: InstId, p: Provenance) {
        self.prov[id.index()] = p;
    }

    /// Marks instruction `id` as rewritten by `pass`, keeping the rest
    /// of its record.
    #[inline]
    pub fn mark_rewritten(&mut self, id: InstId, pass: &'static str) {
        self.prov[id.index()].rewritten_by = Some(pass);
    }

    /// Mutable access to instruction `id`, for passes that rewrite operands
    /// in place. The caller is responsible for keeping the instruction
    /// well-formed; run [`crate::verify::verify`] afterwards.
    #[inline]
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Creates a loop and its induction-variable value.
    pub fn add_loop(
        &mut self,
        name: impl Into<String>,
        start: Bound,
        end: Bound,
        step: i64,
    ) -> (LoopId, ValueId) {
        assert!(step != 0, "loop step must be non-zero");
        let loop_id = LoopId::new(self.loops.len());
        let iv = ValueId::new(self.values.len());
        self.values.push(ValueInfo {
            ty: Scalar::I64,
            def: ValueDef::Iv(loop_id),
        });
        self.loops.push(LoopInfo {
            name: name.into(),
            iv,
            start,
            end,
            step,
        });
        (loop_id, iv)
    }

    // ---- traversal helpers -------------------------------------------------

    /// Visits every statement in program order, passing the loop-nest depth.
    pub fn visit_stmts<'a>(&'a self, mut f: impl FnMut(&'a Stmt, usize)) {
        fn walk<'a>(stmts: &'a [Stmt], depth: usize, f: &mut impl FnMut(&'a Stmt, usize)) {
            for s in stmts {
                f(s, depth);
                if let Stmt::For { body, .. } = s {
                    walk(body, depth + 1, f);
                }
            }
        }
        walk(&self.body, 0, &mut f);
    }

    /// Counts instructions of each opcode class (static, not dynamic).
    pub fn static_inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Total bytes of all declared arrays of a given kind.
    pub fn bytes_of_kind(&self, kind: ArrayKind) -> u64 {
        self.arrays
            .iter()
            .filter(|a| a.kind == kind)
            .map(|a| a.size_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_counts() {
        assert_eq!(trip_count(0, 10, 1), 10);
        assert_eq!(trip_count(0, 10, 3), 4);
        assert_eq!(trip_count(9, -1, -1), 10);
        assert_eq!(trip_count(9, -1, -3), 4);
        assert_eq!(trip_count(5, 5, 1), 0);
        assert_eq!(trip_count(5, 5, -1), 0);
        assert_eq!(trip_count(5, 2, 1), 0);
    }

    #[test]
    fn add_inst_allocates_result() {
        let mut f = Function::new("t");
        let a = f.add_const(Const::F64(1.0));
        let b = f.add_const(Const::F64(2.0));
        let (_, r) = f.add_inst(Op::FAdd, vec![a, b]);
        let r = r.unwrap();
        assert_eq!(f.value(r).ty, Scalar::F64);
        let arr = f.add_array("x", 4, ArrayKind::Input, Scalar::I64);
        let i = f.add_const(Const::I64(0));
        let (_, l) = f.add_inst(Op::Load(arr), vec![i]);
        assert_eq!(f.value(l.unwrap()).ty, Scalar::I64);
    }

    #[test]
    fn store_has_no_result() {
        let mut f = Function::new("t");
        let arr = f.add_array("x", 4, ArrayKind::Output, Scalar::F64);
        let i = f.add_const(Const::I64(0));
        let v = f.add_const(Const::F64(3.0));
        let (_, r) = f.add_inst(Op::Store(arr), vec![i, v]);
        assert!(r.is_none());
    }

    #[test]
    #[should_panic(expected = "wrong operand count")]
    fn arity_checked() {
        let mut f = Function::new("t");
        let a = f.add_const(Const::F64(1.0));
        let _ = f.add_inst(Op::FAdd, vec![a]);
    }

    #[test]
    fn provenance_self_stamps_and_follows_ctx() {
        let mut f = Function::new("t");
        let a = f.add_const(Const::F64(1.0));
        // Source-level IR self-stamps: the instruction is its own op.
        let (i0, _) = f.add_inst(Op::FNeg, vec![a]);
        assert_eq!(f.prov(i0).source, Some(i0));
        assert_eq!(f.prov(i0).created_by, "source");
        // A pass-scoped template is stamped verbatim.
        let prev = f.set_prov_ctx(Provenance::created_by("ad").with_source(i0).with_region(3));
        assert!(prev.is_none());
        let (i1, _) = f.add_inst(Op::FNeg, vec![a]);
        assert_eq!(f.prov(i1).source, Some(i0));
        assert_eq!(f.prov(i1).region, Some(3));
        assert_eq!(f.prov(i1).created_by, "ad");
        f.clear_prov_ctx();
        let (i2, _) = f.add_inst(Op::FNeg, vec![a]);
        assert_eq!(f.prov(i2).source, Some(i2));
        // Post-hoc stamping and rewrite marks.
        f.mark_rewritten(i1, "spad-index");
        assert_eq!(f.prov(i1).rewritten_by, Some("spad-index"));
        f.set_prov(i2, Provenance::created_by("streams").with_layer(7));
        assert_eq!(f.prov(i2).layer, Some(7));
        assert_eq!(f.provs().len(), f.insts().len());
    }

    #[test]
    fn loop_iv_typed_i64() {
        let mut f = Function::new("t");
        let (l, iv) = f.add_loop("i", Bound::Const(0), Bound::Const(8), 1);
        assert_eq!(f.value(iv).ty, Scalar::I64);
        assert_eq!(f.loop_info(l).trip_count(), Some(8));
    }
}
