//! Scalar types and constants.

use std::fmt;

/// The scalar types the IR computes with.
///
/// The paper's accelerator is a double-precision CGRA; `I64` exists for
/// index arithmetic, loop induction variables and indirect-index arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scalar {
    /// Double-precision float — the datatype of all tape values.
    F64,
    /// 64-bit signed integer — indices and comparison results (0/1).
    I64,
}

impl Scalar {
    /// Size of one element of this type in bytes.
    ///
    /// Both scalars are 8 bytes wide, matching the paper's 8 B tape and
    /// scratchpad entries.
    #[inline]
    pub fn size_bytes(self) -> u64 {
        8
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::F64 => write!(f, "f64"),
            Scalar::I64 => write!(f, "i64"),
        }
    }
}

/// A compile-time constant value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Const {
    /// An `f64` constant.
    F64(f64),
    /// An `i64` constant.
    I64(i64),
}

impl Const {
    /// The scalar type of the constant.
    #[inline]
    pub fn scalar(self) -> Scalar {
        match self {
            Const::F64(_) => Scalar::F64,
            Const::I64(_) => Scalar::I64,
        }
    }

    /// Returns the `f64` payload, if this is a float constant.
    #[inline]
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Const::F64(v) => Some(v),
            Const::I64(_) => None,
        }
    }

    /// Returns the `i64` payload, if this is an integer constant.
    #[inline]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Const::I64(v) => Some(v),
            Const::F64(_) => None,
        }
    }
}

impl From<f64> for Const {
    fn from(v: f64) -> Self {
        Const::F64(v)
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::I64(v)
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::F64(v) => write!(f, "{v}"),
            Const::I64(v) => write!(f, "{v}i"),
        }
    }
}

/// A runtime scalar value flowing through the interpreter and tracer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// An `f64` runtime value.
    F64(f64),
    /// An `i64` runtime value.
    I64(i64),
}

impl Value {
    /// The scalar type of the value.
    #[inline]
    pub fn scalar(self) -> Scalar {
        match self {
            Value::F64(_) => Scalar::F64,
            Value::I64(_) => Scalar::I64,
        }
    }

    /// Extracts the float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer; the verifier rules this out for
    /// well-typed functions.
    #[inline]
    pub fn expect_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            Value::I64(v) => panic!("expected f64 value, found i64 {v}"),
        }
    }

    /// Extracts the integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float; the verifier rules this out for
    /// well-typed functions.
    #[inline]
    pub fn expect_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            Value::F64(v) => panic!("expected i64 value, found f64 {v}"),
        }
    }

    /// Reinterprets the value as raw bits (for memory storage).
    #[inline]
    pub fn to_bits(self) -> u64 {
        match self {
            Value::F64(v) => v.to_bits(),
            Value::I64(v) => v as u64,
        }
    }

    /// Rebuilds a value of type `ty` from raw bits.
    #[inline]
    pub fn from_bits(ty: Scalar, bits: u64) -> Self {
        match ty {
            Scalar::F64 => Value::F64(f64::from_bits(bits)),
            Scalar::I64 => Value::I64(bits as i64),
        }
    }
}

impl From<Const> for Value {
    fn from(c: Const) -> Self {
        match c {
            Const::F64(v) => Value::F64(v),
            Const::I64(v) => Value::I64(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_accessors() {
        assert_eq!(Const::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Const::F64(1.5).as_i64(), None);
        assert_eq!(Const::I64(-3).as_i64(), Some(-3));
        assert_eq!(Const::from(2.0).scalar(), Scalar::F64);
        assert_eq!(Const::from(2i64).scalar(), Scalar::I64);
    }

    #[test]
    fn value_bits_roundtrip() {
        for v in [
            Value::F64(-0.25),
            Value::I64(i64::MIN),
            Value::F64(f64::NAN),
        ] {
            let back = Value::from_bits(v.scalar(), v.to_bits());
            match (v, back) {
                (Value::F64(a), Value::F64(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Const::F64(2.5).to_string(), "2.5");
        assert_eq!(Const::I64(7).to_string(), "7i");
        assert_eq!(Scalar::F64.to_string(), "f64");
    }
}
