//! # tapeflow-ir
//!
//! A small SSA, structured-loop intermediate representation used by the
//! Tapeflow reproduction. It plays the role LLVM-IR plays in the paper:
//! the substrate on which reverse-mode AD (the Enzyme substitute,
//! `tapeflow-autodiff`) and the four Tapeflow compiler passes
//! (`tapeflow-core`) operate.
//!
//! The IR models exactly the program shapes the paper exercises:
//!
//! * perfect and imperfect loop nests with compile-time trip counts,
//! * scalar SSA arithmetic over `f64` and `i64`,
//! * loads/stores with affine **and indirect** (loaded-index) addressing,
//! * `select`-based data-dependent dataflow,
//! * loop-carried state through memory *cells* (one-element arrays), and
//! * the tape/scratchpad/stream operations the Tapeflow passes introduce
//!   (`ArrayKind::Tape` arrays, [`Op::SpadLoad`], [`Op::StreamOut`], ...).
//!
//! Besides the data structures, the crate ships:
//!
//! * [`FunctionBuilder`] — ergonomic construction of loop nests,
//! * [`verify::verify`] — structural and type checking,
//! * [`interp`] — a reference interpreter (used for finite-difference
//!   gradient checking),
//! * [`trace`] — expansion of a function into its **dynamic dataflow
//!   graph** (the unrolled dataflow the paper's figures characterize and
//!   the simulator executes), and
//! * [`analysis`] — the Chapter-2 tape characterizations (edge
//!   distribution, lifetimes, working set).
//!
//! ## Example
//!
//! ```rust
//! use tapeflow_ir::{FunctionBuilder, ArrayKind, Scalar};
//!
//! // u = sum_i exp(x[i])   (the `logsum` kernel's forward skeleton)
//! let mut b = FunctionBuilder::new("logsum");
//! let x = b.array("x", 16, ArrayKind::Input, Scalar::F64);
//! let u = b.cell_f64("u", 0.0);
//! b.for_loop("i", 0, 16, |b, i| {
//!     let xi = b.load(x, i);
//!     let e = b.exp(xi);
//!     let acc = b.load_cell(u);
//!     let s = b.fadd(acc, e);
//!     b.store_cell(u, s);
//! });
//! let f = b.finish();
//! tapeflow_ir::verify::verify(&f).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod builder;
pub mod function;
pub mod ids;
pub mod interp;
pub mod lint;
pub mod memory;
pub mod ops;
pub mod opt;
pub mod parse;
pub mod pretty;
pub mod trace;
pub mod transform;
pub mod types;
pub mod verify;
pub mod vra;

pub use builder::FunctionBuilder;
pub use function::{
    ArrayDecl, ArrayKind, Bound, DeclRange, Function, Inst, LoopInfo, Provenance, Stmt, ValueDef,
};
pub use ids::{ArrayId, InstId, LoopId, NodeId, TapeGroupId, ValueId};
pub use memory::Memory;
pub use ops::{CmpKind, Op, OpClass};
pub use trace::{Phase, Trace, TraceNode};
pub use types::{Const, Scalar};
