//! Flat memory image backing a function's arrays.
//!
//! Arrays are laid out sequentially in a byte-addressed space, each aligned
//! to a cache block, so the cache model in `tapeflow-sim` sees realistic
//! addresses (and the struct-of-arrays vs array-of-structs layouts differ
//! in block behaviour exactly as in the paper's Figure 2.5).

use crate::function::Function;
use crate::ids::ArrayId;
use crate::types::{Scalar, Value};
use std::fmt;

/// Cache-block alignment for array base addresses, in bytes.
pub const ARRAY_ALIGN: u64 = 64;

/// Base of the DRAM address range. Non-zero so address 0 is never valid.
pub const DRAM_BASE: u64 = 0x1000;

/// Memory image: contents and base addresses for every array of a function.
#[derive(Clone)]
pub struct Memory {
    names: Vec<String>,
    tys: Vec<Scalar>,
    bases: Vec<u64>,
    data: Vec<Vec<u64>>,
    end: u64,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("arrays", &self.names.len())
            .field("bytes", &(self.end - DRAM_BASE))
            .finish()
    }
}

impl Memory {
    /// Builds a zero-initialized image with an address assignment for all
    /// of `func`'s arrays.
    pub fn for_function(func: &Function) -> Self {
        let mut mem = Memory {
            names: Vec::new(),
            tys: Vec::new(),
            bases: Vec::new(),
            data: Vec::new(),
            end: DRAM_BASE,
        };
        for a in func.arrays() {
            mem.names.push(a.name.clone());
            mem.tys.push(a.elem);
            mem.bases.push(mem.end);
            mem.data.push(vec![0u64; a.len]);
            let sz = a.size_bytes();
            mem.end += sz.div_ceil(ARRAY_ALIGN) * ARRAY_ALIGN;
        }
        mem
    }

    /// Number of arrays in the image.
    pub fn array_count(&self) -> usize {
        self.data.len()
    }

    /// Byte address of `array[index]`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn addr_of(&self, array: ArrayId, index: usize) -> u64 {
        let a = array.index();
        assert!(
            index < self.data[a].len(),
            "address of {}[{index}] out of bounds (len {})",
            self.names[a],
            self.data[a].len()
        );
        self.bases[a] + (index as u64) * 8
    }

    /// Length (elements) of an array.
    #[inline]
    pub fn len_of(&self, array: ArrayId) -> usize {
        self.data[array.index()].len()
    }

    /// Reads `array[index]`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds; callers in the executor bound-check first
    /// to produce a proper error.
    #[inline]
    pub fn load(&self, array: ArrayId, index: usize) -> Value {
        let a = array.index();
        Value::from_bits(self.tys[a], self.data[a][index])
    }

    /// Writes `array[index] = value`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn store(&mut self, array: ArrayId, index: usize, value: Value) {
        let a = array.index();
        self.data[a][index] = value.to_bits();
    }

    /// Replaces the contents of an `f64` array.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or the array is not `f64`.
    pub fn set_f64(&mut self, array: ArrayId, values: &[f64]) {
        let a = array.index();
        assert_eq!(self.tys[a], Scalar::F64, "{} is not f64", self.names[a]);
        assert_eq!(
            self.data[a].len(),
            values.len(),
            "length mismatch for {}",
            self.names[a]
        );
        for (slot, v) in self.data[a].iter_mut().zip(values) {
            *slot = v.to_bits();
        }
    }

    /// Replaces the contents of an `i64` array.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or the array is not `i64`.
    pub fn set_i64(&mut self, array: ArrayId, values: &[i64]) {
        let a = array.index();
        assert_eq!(self.tys[a], Scalar::I64, "{} is not i64", self.names[a]);
        assert_eq!(
            self.data[a].len(),
            values.len(),
            "length mismatch for {}",
            self.names[a]
        );
        for (slot, v) in self.data[a].iter_mut().zip(values) {
            *slot = *v as u64;
        }
    }

    /// Copies an `f64` array out.
    ///
    /// # Panics
    ///
    /// Panics if the array is not `f64`.
    pub fn get_f64(&self, array: ArrayId) -> Vec<f64> {
        let a = array.index();
        assert_eq!(self.tys[a], Scalar::F64, "{} is not f64", self.names[a]);
        self.data[a].iter().map(|&b| f64::from_bits(b)).collect()
    }

    /// Copies an `i64` array out.
    ///
    /// # Panics
    ///
    /// Panics if the array is not `i64`.
    pub fn get_i64(&self, array: ArrayId) -> Vec<i64> {
        let a = array.index();
        assert_eq!(self.tys[a], Scalar::I64, "{} is not i64", self.names[a]);
        self.data[a].iter().map(|&b| b as i64).collect()
    }

    /// Reads a single `f64` element.
    pub fn get_f64_at(&self, array: ArrayId, index: usize) -> f64 {
        self.load(array, index).expect_f64()
    }

    /// Writes a single `f64` element.
    pub fn set_f64_at(&mut self, array: ArrayId, index: usize, v: f64) {
        self.store(array, index, Value::F64(v));
    }

    /// Copies one array's contents from another image.
    ///
    /// # Panics
    ///
    /// Panics if the array's length or element type differ between the
    /// two images.
    pub fn clone_array_from(&mut self, src: &Memory, array: ArrayId) {
        let a = array.index();
        assert_eq!(
            self.tys[a], src.tys[a],
            "type mismatch for {}",
            self.names[a]
        );
        assert_eq!(
            self.data[a].len(),
            src.data[a].len(),
            "length mismatch for {}",
            self.names[a]
        );
        self.data[a].copy_from_slice(&src.data[a]);
    }

    /// Name of an array (for diagnostics).
    pub fn name_of(&self, array: ArrayId) -> &str {
        &self.names[array.index()]
    }

    /// One past the highest assigned DRAM byte address.
    pub fn end_addr(&self) -> u64 {
        self.end
    }

    /// Zeroes every [`crate::ArrayKind::Shadow`], [`crate::ArrayKind::Tape`]
    /// and [`crate::ArrayKind::Temp`] array — the state the gradient
    /// function owns — so an image can be reused across runs.
    pub fn reset_transient(&mut self, func: &Function) {
        for (i, a) in func.arrays().iter().enumerate() {
            use crate::function::ArrayKind::*;
            if matches!(a.kind, Shadow | Tape | Temp) {
                self.data[i].iter_mut().for_each(|b| *b = 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;

    fn two_array_fn() -> Function {
        let mut b = FunctionBuilder::new("m");
        let _x = b.array("x", 3, ArrayKind::Input, Scalar::F64);
        let _n = b.array("n", 5, ArrayKind::Input, Scalar::I64);
        b.finish()
    }

    #[test]
    fn layout_is_block_aligned_and_disjoint() {
        let f = two_array_fn();
        let m = Memory::for_function(&f);
        let x = ArrayId::new(0);
        let n = ArrayId::new(1);
        assert_eq!(m.addr_of(x, 0) % ARRAY_ALIGN, 0);
        assert_eq!(m.addr_of(n, 0) % ARRAY_ALIGN, 0);
        // 3 f64s round up to one 64B block.
        assert_eq!(m.addr_of(n, 0), m.addr_of(x, 0) + 64);
        assert_eq!(m.addr_of(x, 2), m.addr_of(x, 0) + 16);
    }

    #[test]
    fn rw_roundtrip() {
        let f = two_array_fn();
        let mut m = Memory::for_function(&f);
        let x = ArrayId::new(0);
        let n = ArrayId::new(1);
        m.set_f64(x, &[1.0, 2.0, 3.0]);
        m.set_i64(n, &[9, 8, 7, 6, 5]);
        assert_eq!(m.get_f64(x), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.get_i64(n), vec![9, 8, 7, 6, 5]);
        m.set_f64_at(x, 1, -4.0);
        assert_eq!(m.get_f64_at(x, 1), -4.0);
    }

    #[test]
    #[should_panic(expected = "not f64")]
    fn type_confusion_panics() {
        let f = two_array_fn();
        let m = Memory::for_function(&f);
        let _ = m.get_f64(ArrayId::new(1));
    }

    #[test]
    fn reset_transient_clears_tape() {
        let mut b = FunctionBuilder::new("m");
        let x = b.array("x", 2, ArrayKind::Input, Scalar::F64);
        let t = b.array("t", 2, ArrayKind::Tape, Scalar::F64);
        let f = b.finish();
        let mut m = Memory::for_function(&f);
        m.set_f64(x, &[1.0, 1.0]);
        m.set_f64(t, &[5.0, 5.0]);
        m.reset_transient(&f);
        assert_eq!(m.get_f64(t), vec![0.0, 0.0]);
        assert_eq!(m.get_f64(x), vec![1.0, 1.0]);
    }
}
