//! Strongly-typed index newtypes used across the IR.
//!
//! Every IR entity (value, instruction, loop, array, trace node) is referred
//! to by a compact `u32` index wrapped in a dedicated newtype, so mixing up
//! index spaces is a compile-time error (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }

            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id! {
    /// Identifies an SSA value within a [`crate::Function`].
    ValueId, "%"
}
define_id! {
    /// Identifies an instruction within a [`crate::Function`].
    InstId, "inst"
}
define_id! {
    /// Identifies a loop within a [`crate::Function`].
    LoopId, "loop"
}
define_id! {
    /// Identifies an array (memory object) within a [`crate::Function`].
    ArrayId, "@"
}
define_id! {
    /// Identifies a node of a dynamic dataflow graph ([`crate::Trace`]).
    NodeId, "n"
}
define_id! {
    /// Identifies a tape *region group*: the set of tape arrays Pass 1
    /// merges into one array-of-structs region (see `tapeflow-core`).
    TapeGroupId, "region"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = ValueId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v}"), "%42");
        assert_eq!(format!("{v:?}"), "%42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(InstId::new(1) < InstId::new(2));
        assert_eq!(ArrayId::new(7), ArrayId::new(7));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
