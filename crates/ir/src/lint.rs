//! Static tape-safety, scratchpad-hazard and stream-schedule lints.
//!
//! `ir::verify` proves a function is *structurally* well-formed (SSA,
//! types, scheduling); this module proves the properties TapeFlow's whole
//! design rests on: tape accesses stay in bounds of their statically-sized
//! arrays, the FWD pass writes every tape element the REV pass reads,
//! layer allocations fit the scratchpad, and the fill/drain handshake
//! between the compute core and the stream engines cannot deadlock.
//!
//! The analyses are deliberately conservative: an `error` diagnostic means
//! the property is provably violated on some iteration of the (fully
//! static) loop nest; silence means the analysis could not prove a
//! violation, not that none exists. Value ranges come from an interval
//! analysis over `i64` values (loop induction variables get the interval
//! spanned by their bounds), and bank-conflict strides come from an affine
//! decomposition of scratchpad indices over enclosing induction variables.
//!
//! Entry point: [`lint_function`]. Diagnostics are deterministically
//! ordered (severity, then rule, then span) so table and JSON renderings
//! are byte-stable across runs.

use crate::function::{ArrayKind, Bound, Function, Stmt};
use crate::ids::{ArrayId, InstId, LoopId, ValueId};
use crate::ops::Op;
use crate::types::Const;
use crate::ValueDef;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A provable violation of a safety property: the compiled program
    /// would read garbage, corrupt state or hang.
    Error,
    /// A likely performance or hygiene problem that does not threaten
    /// correctness (e.g. a taped value never restored in REV).
    Warning,
}

impl Severity {
    /// Lower-case label used in tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where in the function a diagnostic points: an instruction, an array, or
/// both. Purely positional — human-readable names go in the message.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Index of the offending instruction, if any.
    pub inst: Option<usize>,
    /// Index of the array involved, if any.
    pub array: Option<usize>,
}

impl Span {
    /// Span pointing at one instruction.
    pub fn at_inst(id: InstId) -> Self {
        Span {
            inst: Some(id.index()),
            array: None,
        }
    }

    /// Span pointing at an instruction touching an array.
    pub fn at_inst_array(id: InstId, a: ArrayId) -> Self {
        Span {
            inst: Some(id.index()),
            array: Some(a.index()),
        }
    }

    /// Span pointing at an array declaration.
    pub fn at_array(a: ArrayId) -> Self {
        Span {
            inst: None,
            array: Some(a.index()),
        }
    }

    /// Compact rendering, e.g. `inst12 @3`, `@3`, or `-`.
    pub fn render(&self) -> String {
        match (self.inst, self.array) {
            (Some(i), Some(a)) => format!("inst{i} @{a}"),
            (Some(i), None) => format!("inst{i}"),
            (None, Some(a)) => format!("@{a}"),
            (None, None) => "-".to_string(),
        }
    }
}

/// One finding, tied to a rule from the catalog in DESIGN.md.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (kebab-case), e.g. `"tape-index-oob"`.
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Program location.
    pub span: Span,
    /// Human-readable description with names and concrete numbers.
    pub message: String,
}

impl Diagnostic {
    /// Total order used everywhere diagnostics are emitted: errors first,
    /// then rule name, then span, then message.
    pub fn sort_key(&self) -> (Severity, &'static str, Span, &str) {
        (self.severity, self.rule, self.span, &self.message)
    }
}

/// Sorts a batch of diagnostics into the canonical deterministic order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// Machine parameters the lints check against. Defaults mirror the paper
/// baseline (`CompileOptions::default()` and the simulator's scratchpad):
/// 128 eight-byte entries across 16 banks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LintConfig {
    /// Scratchpad capacity in 8 B entries.
    pub spad_entries: usize,
    /// Number of scratchpad banks (bank = entry index mod banks).
    pub spad_banks: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            spad_entries: 128,
            spad_banks: 16,
        }
    }
}

/// Count of `(errors, warnings)` in a batch of diagnostics.
pub fn counts(diags: &[Diagnostic]) -> (usize, usize) {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    (errors, diags.len() - errors)
}

// ---------------------------------------------------------------------------
// Interval analysis
// ---------------------------------------------------------------------------

/// An inclusive `i64` range. Arithmetic saturates, which is sound for
/// bounds checking (saturation only ever widens the range).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Interval {
    lo: i64,
    hi: i64,
}

impl Interval {
    fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    fn union(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(o.hi),
            hi: self.hi.saturating_sub(o.lo),
        }
    }

    fn corners(self, o: Interval, f: impl Fn(i64, i64) -> i64) -> Interval {
        let cs = [
            f(self.lo, o.lo),
            f(self.lo, o.hi),
            f(self.hi, o.lo),
            f(self.hi, o.hi),
        ];
        Interval {
            lo: cs.iter().copied().min().unwrap(),
            hi: cs.iter().copied().max().unwrap(),
        }
    }

    fn mul(self, o: Interval) -> Interval {
        self.corners(o, i64::saturating_mul)
    }

    /// Truncated division; only defined when the divisor excludes zero
    /// (corner evaluation is then exact for monotonicity reasons).
    fn div(self, o: Interval) -> Option<Interval> {
        if o.lo > 0 || o.hi < 0 {
            Some(self.corners(o, |a, b| a / b))
        } else {
            None
        }
    }

    /// Remainder with a positive divisor range.
    fn rem(self, o: Interval) -> Option<Interval> {
        if o.lo <= 0 {
            return None;
        }
        let mag = o.hi - 1;
        if self.lo >= 0 {
            Some(Interval {
                lo: 0,
                hi: self.hi.min(mag),
            })
        } else {
            Some(Interval { lo: -mag, hi: mag })
        }
    }

    fn min(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    fn max(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

// ---------------------------------------------------------------------------
// Affine analysis (for bank strides)
// ---------------------------------------------------------------------------

/// `konst + Σ coeff · iv` over enclosing induction variables. Coefficient
/// vectors are kept sorted by value id so equality is structural.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Affine {
    coeffs: Vec<(ValueId, i64)>,
    konst: i64,
}

impl Affine {
    fn konst(v: i64) -> Self {
        Affine {
            coeffs: Vec::new(),
            konst: v,
        }
    }

    fn iv(v: ValueId) -> Self {
        Affine {
            coeffs: vec![(v, 1)],
            konst: 0,
        }
    }

    fn combine(&self, o: &Affine, sign: i64) -> Option<Affine> {
        let mut coeffs = self.coeffs.clone();
        for &(v, c) in &o.coeffs {
            match coeffs.binary_search_by_key(&v, |&(w, _)| w) {
                Ok(i) => {
                    coeffs[i].1 = coeffs[i].1.checked_add(c.checked_mul(sign)?)?;
                    if coeffs[i].1 == 0 {
                        coeffs.remove(i);
                    }
                }
                Err(i) => coeffs.insert(i, (v, c.checked_mul(sign)?)),
            }
        }
        Some(Affine {
            coeffs,
            konst: self.konst.checked_add(o.konst.checked_mul(sign)?)?,
        })
    }

    fn scale(&self, k: i64) -> Option<Affine> {
        let mut coeffs = Vec::with_capacity(self.coeffs.len());
        for &(v, c) in &self.coeffs {
            let c = c.checked_mul(k)?;
            if c != 0 {
                coeffs.push((v, c));
            }
        }
        Some(Affine {
            coeffs,
            konst: self.konst.checked_mul(k)?,
        })
    }

    /// Coefficient of induction variable `iv` (0 when absent).
    fn coeff_of(&self, iv: ValueId) -> i64 {
        self.coeffs
            .binary_search_by_key(&iv, |&(w, _)| w)
            .map(|i| self.coeffs[i].1)
            .unwrap_or(0)
    }

    fn as_const(&self) -> Option<i64> {
        self.coeffs.is_empty().then_some(self.konst)
    }
}

// ---------------------------------------------------------------------------
// The analysis walk
// ---------------------------------------------------------------------------

/// Per-function analysis facts shared by all rules: value intervals, affine
/// decompositions, and the linearized program order with loop context.
struct Analysis {
    interval: Vec<Option<Interval>>,
    affine: Vec<Option<Affine>>,
    /// Scheduled instructions in program order, each with the stack of
    /// enclosing loops (outermost first).
    order: Vec<(InstId, Vec<LoopId>)>,
}

impl Analysis {
    fn run(func: &Function) -> Analysis {
        let n = func.values().len();
        let mut a = Analysis {
            interval: vec![None; n],
            affine: vec![None; n],
            order: Vec::new(),
        };
        for (i, v) in func.values().iter().enumerate() {
            if let ValueDef::Const(Const::I64(c)) = v.def {
                a.interval[i] = Some(Interval::point(c));
                a.affine[i] = Some(Affine::konst(c));
            }
        }
        let mut path = Vec::new();
        a.walk(func, &func.body, &mut path);
        a
    }

    fn bound_interval(&self, b: Bound) -> Option<Interval> {
        match b {
            Bound::Const(c) => Some(Interval::point(c)),
            Bound::Value(v) => self.interval[v.index()],
        }
    }

    fn walk(&mut self, func: &Function, stmts: &[Stmt], path: &mut Vec<LoopId>) {
        for s in stmts {
            match s {
                Stmt::Inst(id) => {
                    self.eval(func, *id);
                    self.order.push((*id, path.clone()));
                }
                Stmt::For { loop_id, body } => {
                    let info = func.loop_info(*loop_id);
                    let start = self.bound_interval(info.start);
                    let end = self.bound_interval(info.end);
                    // iv ranges over [start, end) for step > 0 and
                    // (end, start] for step < 0; intermediate steps stay
                    // inside those hulls for any |step|.
                    let iv_range = match (start, end) {
                        (Some(s), Some(e)) if info.step > 0 => Some(Interval {
                            lo: s.lo,
                            hi: e.hi.saturating_sub(1).max(s.lo),
                        }),
                        (Some(s), Some(e)) => Some(Interval {
                            lo: e.lo.saturating_add(1).min(s.hi),
                            hi: s.hi,
                        }),
                        _ => None,
                    };
                    self.interval[info.iv.index()] = iv_range;
                    self.affine[info.iv.index()] = Some(Affine::iv(info.iv));
                    path.push(*loop_id);
                    self.walk(func, body, path);
                    path.pop();
                }
            }
        }
    }

    /// Upper bound on `x + y`, sharper than `hi(x) + hi(y)`: the sum is
    /// decomposed through `iadd`/`isub`/`imul`-by-const definitions into
    /// `konst + Σ coeff·leaf`, like terms are cancelled, and an
    /// `imin`/`imax` leaf branches the evaluation. This recovers the
    /// correlation in the streaming pass's partial-tile transfers
    /// (`base = start·k`, `elems = min(tile, total − start)·k`), where
    /// independent interval bounds of base and length over-approximate.
    /// Arithmetic is checked; `None` means "fall back to intervals".
    fn sum_hi(&self, func: &Function, x: ValueId, y: ValueId) -> Option<i64> {
        self.bound_sum(func, vec![(x, 1), (y, 1)], 0, 8)
    }

    fn bound_sum(
        &self,
        func: &Function,
        mut terms: Vec<(ValueId, i64)>,
        mut konst: i64,
        fuel: u32,
    ) -> Option<i64> {
        // Expand linear definitions and fold constants to a fixpoint.
        // SSA definitions are acyclic, so this terminates.
        loop {
            terms.sort_by_key(|&(v, _)| v);
            let mut merged: Vec<(ValueId, i64)> = Vec::with_capacity(terms.len());
            for (v, c) in terms {
                match merged.last_mut() {
                    Some(last) if last.0 == v => last.1 = last.1.checked_add(c)?,
                    _ => merged.push((v, c)),
                }
            }
            merged.retain(|&(_, c)| c != 0);
            let mut changed = false;
            let mut next: Vec<(ValueId, i64)> = Vec::with_capacity(merged.len());
            for &(v, c) in &merged {
                if let Some(p) = self.interval[v.index()].filter(|p| p.lo == p.hi) {
                    konst = konst.checked_add(c.checked_mul(p.lo)?)?;
                    changed = true;
                    continue;
                }
                if let ValueDef::Inst(id) = func.values()[v.index()].def {
                    let inst = func.inst(id);
                    match inst.op {
                        Op::IAdd => {
                            next.push((inst.args[0], c));
                            next.push((inst.args[1], c));
                            changed = true;
                            continue;
                        }
                        Op::ISub => {
                            next.push((inst.args[0], c));
                            next.push((inst.args[1], c.checked_neg()?));
                            changed = true;
                            continue;
                        }
                        Op::IMul => {
                            let konst_arg = |k: usize| {
                                self.interval[inst.args[k].index()]
                                    .filter(|p| p.lo == p.hi)
                                    .map(|p| p.lo)
                            };
                            if let Some(k) = konst_arg(1) {
                                next.push((inst.args[0], c.checked_mul(k)?));
                                changed = true;
                                continue;
                            }
                            if let Some(k) = konst_arg(0) {
                                next.push((inst.args[1], c.checked_mul(k)?));
                                changed = true;
                                continue;
                            }
                        }
                        _ => {}
                    }
                }
                next.push((v, c));
            }
            terms = next;
            if !changed {
                break;
            }
        }
        // A min with positive weight (or max with negative weight) splits
        // the bound: `u + min(p, q) = min(u + p, u + q)` pointwise.
        if fuel > 0 {
            for (i, &(v, c)) in terms.iter().enumerate() {
                if let ValueDef::Inst(id) = func.values()[v.index()].def {
                    let inst = func.inst(id);
                    if matches!(inst.op, Op::IMin | Op::IMax) {
                        let mut ta = terms.clone();
                        ta[i] = (inst.args[0], c);
                        let mut tb = terms;
                        tb[i] = (inst.args[1], c);
                        let ra = self.bound_sum(func, ta, konst, fuel - 1)?;
                        let rb = self.bound_sum(func, tb, konst, fuel - 1)?;
                        let take_min = (inst.op == Op::IMin) == (c > 0);
                        return Some(if take_min { ra.min(rb) } else { ra.max(rb) });
                    }
                }
            }
        }
        // Residual leaves: bound each with its interval.
        let mut hi = konst;
        for &(v, c) in &terms {
            let iv = self.interval[v.index()]?;
            let bound = if c > 0 { iv.hi } else { iv.lo };
            hi = hi.checked_add(c.checked_mul(bound)?)?;
        }
        Some(hi)
    }

    fn eval(&mut self, func: &Function, id: InstId) {
        let inst = func.inst(id);
        let Some(res) = inst.result else { return };
        let iv = |a: &Analysis, k: usize| a.interval[inst.args[k].index()];
        let af = |a: &Analysis, k: usize| a.affine[inst.args[k].index()].clone();
        let (interval, affine) = match inst.op {
            Op::IAdd => (
                iv(self, 0).zip(iv(self, 1)).map(|(a, b)| a.add(b)),
                af(self, 0)
                    .zip(af(self, 1))
                    .and_then(|(a, b)| a.combine(&b, 1)),
            ),
            Op::ISub => (
                iv(self, 0).zip(iv(self, 1)).map(|(a, b)| a.sub(b)),
                af(self, 0)
                    .zip(af(self, 1))
                    .and_then(|(a, b)| a.combine(&b, -1)),
            ),
            Op::IMul => (
                iv(self, 0).zip(iv(self, 1)).map(|(a, b)| a.mul(b)),
                af(self, 0).zip(af(self, 1)).and_then(|(a, b)| {
                    match (a.as_const(), b.as_const()) {
                        (Some(k), _) => b.scale(k),
                        (_, Some(k)) => a.scale(k),
                        _ => None,
                    }
                }),
            ),
            Op::IDiv => (
                iv(self, 0).zip(iv(self, 1)).and_then(|(a, b)| a.div(b)),
                None,
            ),
            Op::IRem => (
                iv(self, 0).zip(iv(self, 1)).and_then(|(a, b)| a.rem(b)),
                None,
            ),
            Op::IMin => (iv(self, 0).zip(iv(self, 1)).map(|(a, b)| a.min(b)), None),
            Op::IMax => (iv(self, 0).zip(iv(self, 1)).map(|(a, b)| a.max(b)), None),
            Op::ICmp(_) | Op::FCmp(_) => (Some(Interval { lo: 0, hi: 1 }), None),
            Op::Select => (iv(self, 1).zip(iv(self, 2)).map(|(a, b)| a.union(b)), None),
            Op::SAlloc { base, .. } => (
                Some(Interval::point(i64::from(base))),
                Some(Affine::konst(i64::from(base))),
            ),
            _ => (None, None),
        };
        self.interval[res.index()] = interval;
        self.affine[res.index()] = affine;
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Runs every function-level rule and returns the findings in canonical
/// order. The function must already pass [`crate::verify::verify`].
pub fn lint_function(func: &Function, cfg: &LintConfig) -> Vec<Diagnostic> {
    let a = Analysis::run(func);
    let mut diags = Vec::new();
    tape_index_oob(func, &a, &mut diags);
    tape_read_before_write(func, &a, &mut diags);
    spad_capacity(func, &a, cfg, &mut diags);
    spad_oob(func, &a, cfg, &mut diags);
    spad_bank_conflict(func, &a, cfg, &mut diags);
    stream_deadlock(func, &a, cfg, &mut diags);
    tape_never_loaded(func, &a, &mut diags);
    sort_diagnostics(&mut diags);
    diags
}

fn arr_label(func: &Function, a: ArrayId) -> String {
    format!("{a} `{}`", func.array(a).name)
}

/// `tape-index-oob` (error): a tape load/store or stream transfer whose
/// DRAM element range provably leaves `[0, len)`.
fn tape_index_oob(func: &Function, a: &Analysis, diags: &mut Vec<Diagnostic>) {
    for &(id, _) in &a.order {
        let inst = func.inst(id);
        let (arr, range, what) = match inst.op {
            Op::Load(arr) | Op::Store(arr) if func.array(arr).kind.is_tape() => {
                let Some(r) = a.interval[inst.args[0].index()] else {
                    continue;
                };
                let what = if matches!(inst.op, Op::Load(_)) {
                    "load"
                } else {
                    "store"
                };
                (arr, r, what)
            }
            Op::TapeLoad {
                array: arr,
                rsize,
                off,
            } => {
                let Some(lin) = a.interval[inst.args[0].index()] else {
                    continue;
                };
                let r = lin
                    .mul(Interval::point(rsize as i64))
                    .add(Interval::point(off as i64));
                (arr, r, "tape.load")
            }
            Op::StreamIn(arr)
            | Op::StreamOut(arr)
            | Op::StreamInC { array: arr, .. }
            | Op::StreamOutC { array: arr, .. } => {
                let (Some(base), Some(elems)) = (
                    a.interval[inst.args[1].index()],
                    a.interval[inst.args[2].index()],
                ) else {
                    continue;
                };
                if elems.hi <= 0 {
                    continue;
                }
                let hi = match a.sum_hi(func, inst.args[1], inst.args[2]) {
                    Some(end) => end - 1,
                    None => base.hi.saturating_add(elems.hi - 1),
                };
                let r = Interval {
                    lo: base.lo,
                    hi: hi.max(base.lo),
                };
                let what = if matches!(inst.op, Op::StreamIn(_) | Op::StreamInC { .. }) {
                    "stream.in"
                } else {
                    "stream.out"
                };
                (arr, r, what)
            }
            _ => continue,
        };
        let len = func.array(arr).len as i64;
        if range.lo < 0 || range.hi >= len {
            diags.push(Diagnostic {
                rule: "tape-index-oob",
                severity: Severity::Error,
                span: Span::at_inst_array(id, arr),
                message: format!(
                    "{what} touches elements [{}, {}] of tape {} which has {} elements",
                    range.lo,
                    range.hi,
                    arr_label(func, arr),
                    func.array(arr).len
                ),
            });
        }
    }
}

/// `tape-read-before-write` (error): in linear program order, a tape array
/// is read (load / stream.in) before anything has written it.
fn tape_read_before_write(func: &Function, a: &Analysis, diags: &mut Vec<Diagnostic>) {
    let mut written: HashSet<ArrayId> = HashSet::new();
    let mut flagged: HashSet<ArrayId> = HashSet::new();
    for &(id, _) in &a.order {
        let inst = func.inst(id);
        match inst.op {
            Op::Store(arr) | Op::StreamOut(arr) | Op::StreamOutC { array: arr, .. }
                if func.array(arr).kind.is_tape() =>
            {
                written.insert(arr);
            }
            Op::Load(arr)
            | Op::StreamIn(arr)
            | Op::StreamInC { array: arr, .. }
            | Op::TapeLoad { array: arr, .. }
                if func.array(arr).kind.is_tape()
                    && !written.contains(&arr)
                    && flagged.insert(arr) =>
            {
                diags.push(Diagnostic {
                    rule: "tape-read-before-write",
                    severity: Severity::Error,
                    span: Span::at_inst_array(id, arr),
                    message: format!(
                        "tape {} is read before any FWD write reaches it",
                        arr_label(func, arr)
                    ),
                });
            }
            _ => {}
        }
    }
}

/// `spad-capacity` (error): a layer allocation extends past the end of the
/// scratchpad.
fn spad_capacity(func: &Function, a: &Analysis, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for &(id, _) in &a.order {
        if let Op::SAlloc { size, base } = func.inst(id).op {
            let end = base as usize + size as usize;
            if end > cfg.spad_entries {
                diags.push(Diagnostic {
                    rule: "spad-capacity",
                    severity: Severity::Error,
                    span: Span::at_inst(id),
                    message: format!(
                        "salloc of {size} entries at base {base} ends at {end}, \
                         past the {}-entry scratchpad",
                        cfg.spad_entries
                    ),
                });
            }
        }
    }
}

/// Scratchpad entry range an instruction touches, when provable.
fn spad_range(func: &Function, a: &Analysis, id: InstId) -> Option<Interval> {
    let inst = func.inst(id);
    match inst.op {
        Op::SpadLoad | Op::SpadStore | Op::TapeStore { .. } => a.interval[inst.args[0].index()],
        Op::TapeLoad { .. } => a.interval[inst.args[1].index()],
        Op::StreamIn(_) | Op::StreamOut(_) | Op::StreamInC { .. } | Op::StreamOutC { .. } => {
            let base = a.interval[inst.args[0].index()]?;
            let elems = a.interval[inst.args[2].index()]?;
            let hi = match a.sum_hi(func, inst.args[0], inst.args[2]) {
                Some(end) => end - 1,
                None => base.hi.saturating_add(elems.hi.max(1) - 1),
            };
            Some(Interval {
                lo: base.lo,
                hi: hi.max(base.lo),
            })
        }
        _ => None,
    }
}

/// `spad-oob` (error): a scratchpad access or stream transfer provably
/// leaves the scratchpad.
fn spad_oob(func: &Function, a: &Analysis, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for &(id, _) in &a.order {
        let inst = func.inst(id);
        if !matches!(
            inst.op,
            Op::SpadLoad
                | Op::SpadStore
                | Op::TapeStore { .. }
                | Op::TapeLoad { .. }
                | Op::StreamIn(_)
                | Op::StreamOut(_)
                | Op::StreamInC { .. }
                | Op::StreamOutC { .. }
        ) {
            continue;
        }
        let Some(r) = spad_range(func, a, id) else {
            continue;
        };
        if r.lo < 0 || r.hi >= cfg.spad_entries as i64 {
            diags.push(Diagnostic {
                rule: "spad-oob",
                severity: Severity::Error,
                span: Span::at_inst(id),
                message: format!(
                    "{} touches scratchpad entries [{}, {}], outside the \
                     {}-entry scratchpad",
                    func.inst(id).op.mnemonic(),
                    r.lo,
                    r.hi,
                    cfg.spad_entries
                ),
            });
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// `spad-bank-conflict` (warning): consecutive iterations of the innermost
/// enclosing loop hit a strict subset of the banks (stride shares a factor
/// with the bank count), serializing accesses on those banks.
fn spad_bank_conflict(
    func: &Function,
    a: &Analysis,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    if cfg.spad_banks <= 1 {
        return;
    }
    for (id, path) in &a.order {
        let inst = func.inst(*id);
        // TapeStore/TapeLoad carry their (future) scratchpad entry in the
        // same operand Pass 4 redirects them to, so the stride warning is
        // already meaningful on the streams terminal form.
        let entry_arg = match inst.op {
            Op::SpadLoad | Op::SpadStore | Op::TapeStore { .. } => inst.args[0],
            Op::TapeLoad { .. } => inst.args[1],
            _ => continue,
        };
        let Some(innermost) = path.last() else {
            continue;
        };
        let Some(affine) = &a.affine[entry_arg.index()] else {
            continue;
        };
        let info = func.loop_info(*innermost);
        let stride = affine.coeff_of(info.iv).saturating_mul(info.step);
        if stride == 0 {
            continue;
        }
        let g = gcd(stride.unsigned_abs(), cfg.spad_banks as u64);
        if g > 1 {
            diags.push(Diagnostic {
                rule: "spad-bank-conflict",
                severity: Severity::Warning,
                span: Span::at_inst(*id),
                message: format!(
                    "{} strides by {} per iteration of loop `{}`, hitting only \
                     {} of {} banks",
                    inst.op.mnemonic(),
                    stride,
                    info.name,
                    cfg.spad_banks as u64 / g,
                    cfg.spad_banks
                ),
            });
        }
    }
}

/// `stream-deadlock` (error): within one barrier-delimited section, the
/// wait-for graph between the compute core and the stream engines has a
/// cycle.
///
/// The graph has one node per scratchpad access or stream command and four
/// edge kinds, modelling the full/empty handshake bits: (1) the in-order
/// core chains its scratchpad accesses; (2) each stream engine executes its
/// commands in order; (3) a `spad.load` waits on the `stream.in` filling an
/// overlapping range (full bit set by the fill); (4) a `stream.out` waits
/// on the `spad.store` producing an overlapping range. Ranges the interval
/// analysis cannot bound are treated as covering the whole scratchpad.
fn stream_deadlock(func: &Function, a: &Analysis, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Fill,  // stream.in
        Drain, // stream.out
        Load,  // spad.load
        Store, // spad.store
    }
    let full = Interval {
        lo: 0,
        hi: cfg.spad_entries.saturating_sub(1) as i64,
    };
    let mut section: Vec<(InstId, Kind, Interval)> = Vec::new();
    let mut sections: Vec<Vec<(InstId, Kind, Interval)>> = Vec::new();
    for &(id, _) in &a.order {
        let kind = match func.inst(id).op {
            Op::StreamIn(_) | Op::StreamInC { .. } => Kind::Fill,
            Op::StreamOut(_) | Op::StreamOutC { .. } => Kind::Drain,
            Op::SpadLoad | Op::TapeLoad { .. } => Kind::Load,
            Op::SpadStore | Op::TapeStore { .. } => Kind::Store,
            Op::Barrier => {
                sections.push(std::mem::take(&mut section));
                continue;
            }
            _ => continue,
        };
        let range = spad_range(func, a, id).unwrap_or(full);
        section.push((id, kind, range));
    }
    sections.push(section);

    let overlap = |x: Interval, y: Interval| x.lo <= y.hi && y.lo <= x.hi;
    for nodes in &sections {
        let n = nodes.len();
        if n < 2 {
            continue;
        }
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut prev_core: Option<usize> = None;
        let mut prev_stream: Option<usize> = None;
        for (i, (_, kind, range)) in nodes.iter().enumerate() {
            match kind {
                Kind::Load | Kind::Store => {
                    if let Some(p) = prev_core {
                        succ[p].push(i);
                    }
                    prev_core = Some(i);
                }
                Kind::Fill | Kind::Drain => {
                    if let Some(p) = prev_stream {
                        succ[p].push(i);
                    }
                    prev_stream = Some(i);
                }
            }
            for (j, (_, jkind, jrange)) in nodes.iter().enumerate() {
                if i == j || !overlap(*range, *jrange) {
                    continue;
                }
                match (kind, jkind) {
                    // A load blocks until the overlapping fill lands.
                    (Kind::Fill, Kind::Load) => succ[i].push(j),
                    // A drain blocks until the overlapping store lands.
                    (Kind::Store, Kind::Drain) => succ[i].push(j),
                    _ => {}
                }
            }
        }
        if let Some(cycle) = find_cycle(&succ) {
            let names: Vec<String> = cycle
                .iter()
                .map(|&i| {
                    let (id, _, _) = nodes[i];
                    format!("inst{} ({})", id.index(), func.inst(id).op.mnemonic())
                })
                .collect();
            let first = cycle.iter().map(|&i| nodes[i].0).min().unwrap();
            diags.push(Diagnostic {
                rule: "stream-deadlock",
                severity: Severity::Error,
                span: Span::at_inst(first),
                message: format!(
                    "fill/drain handshake cycle: {} -> back to start",
                    names.join(" -> ")
                ),
            });
        }
    }
}

/// First cycle in a successor graph, as node indices in order, or `None`.
fn find_cycle(succ: &[Vec<usize>]) -> Option<Vec<usize>> {
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; succ.len()];
    let mut stack: Vec<usize> = Vec::new();
    fn dfs(
        v: usize,
        succ: &[Vec<usize>],
        color: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color[v] = 1;
        stack.push(v);
        for &w in &succ[v] {
            match color[w] {
                0 => {
                    if let Some(c) = dfs(w, succ, color, stack) {
                        return Some(c);
                    }
                }
                1 => {
                    let from = stack.iter().position(|&x| x == w).unwrap();
                    return Some(stack[from..].to_vec());
                }
                _ => {}
            }
        }
        stack.pop();
        color[v] = 2;
        None
    }
    for v in 0..succ.len() {
        if color[v] == 0 {
            if let Some(c) = dfs(v, succ, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// `tape-never-loaded` (warning): a tape array the FWD pass writes but no
/// REV code ever reads — the min-tape heuristic missed a recompute/reload
/// opportunity, and the stores are pure overhead.
fn tape_never_loaded(func: &Function, a: &Analysis, diags: &mut Vec<Diagnostic>) {
    let mut written: HashMap<ArrayId, InstId> = HashMap::new();
    let mut read: HashSet<ArrayId> = HashSet::new();
    for &(id, _) in &a.order {
        match func.inst(id).op {
            Op::Store(arr)
            | Op::StreamOut(arr)
            | Op::StreamOutC { array: arr, .. }
            | Op::TapeStore { array: arr, .. }
                if func.array(arr).kind.is_tape() =>
            {
                written.entry(arr).or_insert(id);
            }
            Op::Load(arr)
            | Op::StreamIn(arr)
            | Op::StreamInC { array: arr, .. }
            | Op::TapeLoad { array: arr, .. }
                if func.array(arr).kind.is_tape() =>
            {
                read.insert(arr);
            }
            _ => {}
        }
    }
    for arr in func.arrays_of_kind(ArrayKind::Tape) {
        if let Some(&site) = written.get(&arr) {
            if !read.contains(&arr) {
                diags.push(Diagnostic {
                    rule: "tape-never-loaded",
                    severity: Severity::Warning,
                    span: Span {
                        inst: Some(site.index()),
                        array: Some(arr.index()),
                    },
                    message: format!(
                        "tape {} is stored in FWD but never loaded in REV",
                        arr_label(func, arr)
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Renders diagnostics as an aligned text table (empty string for none).
pub fn render_table(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let rows: Vec<[String; 4]> = diags
        .iter()
        .map(|d| {
            [
                d.severity.label().to_string(),
                d.rule.to_string(),
                d.span.render(),
                d.message.clone(),
            ]
        })
        .collect();
    let header = ["severity", "rule", "span", "message"];
    let mut width = [0usize; 3];
    for c in 0..3 {
        width[c] = header[c].len();
        for r in &rows {
            width[c] = width[c].max(r[c].len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<w0$}  {:<w1$}  {:<w2$}  {}\n",
        header[0],
        header[1],
        header[2],
        header[3],
        w0 = width[0],
        w1 = width[1],
        w2 = width[2]
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<w0$}  {:<w1$}  {:<w2$}  {}\n",
            r[0],
            r[1],
            r[2],
            r[3],
            w0 = width[0],
            w1 = width[1],
            w2 = width[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Scalar;
    use crate::verify::verify;

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_function_has_no_findings() {
        let mut b = FunctionBuilder::new("clean");
        let t = b.array("t", 8, ArrayKind::Tape, Scalar::F64);
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.f64(1.0);
            b.store(t, i, v);
        });
        b.for_loop("r", 0, 8, |b, i| {
            let _ = b.load(t, i);
        });
        let f = b.finish();
        verify(&f).unwrap();
        assert!(lint_function(&f, &cfg()).is_empty());
    }

    #[test]
    fn flags_out_of_bounds_tape_indices() {
        let mut b = FunctionBuilder::new("oob");
        let t = b.array("t", 8, ArrayKind::Tape, Scalar::F64);
        b.for_loop("i", 0, 16, |b, i| {
            let v = b.f64(1.0);
            b.store(t, i, v);
        });
        b.for_loop("r", 0, 16, |b, i| {
            let _ = b.load(t, i);
        });
        let f = b.finish();
        verify(&f).unwrap();
        let diags = lint_function(&f, &cfg());
        assert_eq!(rules(&diags), ["tape-index-oob", "tape-index-oob"]);
        assert!(diags[0].message.contains("[0, 15]"), "{}", diags[0].message);
    }

    #[test]
    fn clamped_indices_are_in_bounds() {
        // min/max clamping must be understood by the interval analysis.
        let mut b = FunctionBuilder::new("clamp");
        let t = b.array("t", 8, ArrayKind::Tape, Scalar::F64);
        b.for_loop("i", 0, 16, |b, i| {
            let hi = b.i64(7);
            let idx = b.imin(i, hi);
            let v = b.f64(1.0);
            b.store(t, idx, v);
            let _ = b.load(t, idx);
        });
        let f = b.finish();
        verify(&f).unwrap();
        assert!(lint_function(&f, &cfg()).is_empty());
    }

    #[test]
    fn reversed_loops_get_correct_iv_interval() {
        let mut b = FunctionBuilder::new("rev");
        let t = b.array("t", 8, ArrayKind::Tape, Scalar::F64);
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.f64(1.0);
            b.store(t, i, v);
        });
        b.for_loop_step("r", 7, -1, -1, |b, i| {
            let _ = b.load(t, i);
        });
        let f = b.finish();
        verify(&f).unwrap();
        assert!(lint_function(&f, &cfg()).is_empty());
    }

    #[test]
    fn partial_tile_streams_are_in_bounds() {
        // The streaming pass's last-tile shape: base = tile·2·28 with
        // elems = min(2, 3 − tile·2)·28 over tile in 0..2. Independent
        // interval bounds give end ≤ 56 + 56 = 112 > 84; the correlated
        // sum bound proves end ≤ 84.
        let mut b = FunctionBuilder::new("tiles");
        let t = b.array("t", 84, ArrayKind::Tape, Scalar::F64);
        b.push_inst(Op::SAlloc { size: 64, base: 0 }, vec![]);
        let z = b.i64(0);
        b.for_loop("tile", 0, 2, |b, tile| {
            let two = b.i64(2);
            let three = b.i64(3);
            let k = b.i64(28);
            let start = b.imul(tile, two);
            let left = b.isub(three, start);
            let iters = b.imin(two, left);
            let base = b.imul(start, k);
            let elems = b.imul(iters, k);
            b.push_inst(Op::StreamOut(t), vec![z, base, elems]);
            b.push_inst(Op::Barrier, vec![]);
        });
        b.for_loop("r", 0, 84, |b, i| {
            let _ = b.load(t, i);
        });
        let f = b.finish();
        verify(&f).unwrap();
        assert!(lint_function(&f, &cfg()).is_empty());
    }

    #[test]
    fn flags_read_before_write() {
        let mut b = FunctionBuilder::new("rbw");
        let t = b.array("t", 8, ArrayKind::Tape, Scalar::F64);
        b.for_loop("r", 0, 8, |b, i| {
            let _ = b.load(t, i);
        });
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.f64(1.0);
            b.store(t, i, v);
        });
        let f = b.finish();
        verify(&f).unwrap();
        assert_eq!(
            rules(&lint_function(&f, &cfg())),
            ["tape-read-before-write"]
        );
    }

    #[test]
    fn flags_salloc_past_capacity_and_oob_access() {
        let mut b = FunctionBuilder::new("cap");
        b.push_inst(Op::SAlloc { size: 192, base: 0 }, vec![]);
        let idx = b.i64(191);
        let v = b.f64(1.0);
        b.push_inst(Op::SpadStore, vec![idx, v]);
        let f = b.finish();
        verify(&f).unwrap();
        let diags = lint_function(&f, &cfg());
        assert_eq!(rules(&diags), ["spad-capacity", "spad-oob"]);
    }

    #[test]
    fn flags_power_of_two_stride_bank_conflict() {
        let mut b = FunctionBuilder::new("banks");
        b.push_inst(Op::SAlloc { size: 128, base: 0 }, vec![]);
        b.for_loop("i", 0, 8, |b, i| {
            let k = b.i64(16);
            let idx = b.imul(i, k);
            let _ = b.push_inst(Op::SpadLoad, vec![idx]);
        });
        let f = b.finish();
        verify(&f).unwrap();
        let diags = lint_function(&f, &cfg());
        assert_eq!(rules(&diags), ["spad-bank-conflict"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("1 of 16"), "{}", diags[0].message);
    }

    #[test]
    fn coprime_stride_has_no_bank_conflict() {
        let mut b = FunctionBuilder::new("banks_ok");
        b.push_inst(Op::SAlloc { size: 128, base: 0 }, vec![]);
        b.for_loop("i", 0, 8, |b, i| {
            let k = b.i64(3);
            let idx = b.imul(i, k);
            let _ = b.push_inst(Op::SpadLoad, vec![idx]);
        });
        let f = b.finish();
        verify(&f).unwrap();
        assert!(lint_function(&f, &cfg()).is_empty());
    }

    #[test]
    fn flags_fill_drain_cycle() {
        // stream.out waits on a spad.store that waits (via the core's
        // program order) on a spad.load that waits on a stream.in queued
        // behind the stream.out: classic circular handshake.
        let mut b = FunctionBuilder::new("cycle");
        let t = b.array("t", 8, ArrayKind::Tape, Scalar::F64);
        b.push_inst(Op::SAlloc { size: 8, base: 0 }, vec![]);
        let z = b.i64(0);
        let one = b.i64(1);
        let n = b.i64(8);
        b.push_inst(Op::StreamOut(t), vec![z, z, n]);
        let v = b.push_inst(Op::SpadLoad, vec![z]).unwrap();
        b.push_inst(Op::SpadStore, vec![one, v]);
        b.push_inst(Op::StreamIn(t), vec![z, z, n]);
        b.push_inst(Op::Barrier, vec![]);
        let f = b.finish();
        verify(&f).unwrap();
        let diags = lint_function(&f, &cfg());
        assert_eq!(rules(&diags), ["stream-deadlock"]);
    }

    #[test]
    fn well_ordered_streams_do_not_deadlock() {
        // FWD layer (stores then drain), barrier, REV layer (fill then
        // loads): the shapes the pipeline actually emits.
        let mut b = FunctionBuilder::new("ok");
        let t = b.array("t", 8, ArrayKind::Tape, Scalar::F64);
        b.push_inst(Op::SAlloc { size: 8, base: 0 }, vec![]);
        let z = b.i64(0);
        let n = b.i64(8);
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.f64(2.0);
            b.push_inst(Op::SpadStore, vec![i, v]);
        });
        b.push_inst(Op::StreamOut(t), vec![z, z, n]);
        b.push_inst(Op::Barrier, vec![]);
        b.push_inst(Op::StreamIn(t), vec![z, z, n]);
        b.for_loop("r", 0, 8, |b, i| {
            let _ = b.push_inst(Op::SpadLoad, vec![i]);
        });
        b.push_inst(Op::Barrier, vec![]);
        let f = b.finish();
        verify(&f).unwrap();
        assert!(lint_function(&f, &cfg()).is_empty());
    }

    #[test]
    fn flags_tape_never_loaded() {
        let mut b = FunctionBuilder::new("dead");
        let t = b.array("t", 8, ArrayKind::Tape, Scalar::F64);
        b.for_loop("i", 0, 8, |b, i| {
            let v = b.f64(1.0);
            b.store(t, i, v);
        });
        let f = b.finish();
        verify(&f).unwrap();
        let diags = lint_function(&f, &cfg());
        assert_eq!(rules(&diags), ["tape-never-loaded"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn streamed_tape_form_lints_clean() {
        // The Pass-3 terminal shape: FWD tape.store + stream.out, barrier,
        // REV stream.in + tape.load.
        let mut b = FunctionBuilder::new("st");
        let t = b.array("R0", 16, ArrayKind::Tape, Scalar::F64);
        b.push_inst(Op::SAlloc { size: 16, base: 0 }, vec![]);
        let z = b.i64(0);
        let n = b.i64(16);
        b.for_loop("i", 0, 16, |b, i| {
            let v = b.f64(1.0);
            b.push_inst(Op::TapeStore { array: t, off: 0 }, vec![i, v]);
        });
        b.push_inst(Op::StreamOut(t), vec![z, z, n]);
        b.push_inst(Op::Barrier, vec![]);
        b.push_inst(
            Op::StreamInC {
                array: t,
                struct_elems: 1,
                struct_bytes: 4,
            },
            vec![z, z, n],
        );
        b.for_loop("r", 0, 16, |b, i| {
            let _ = b.push_inst(
                Op::TapeLoad {
                    array: t,
                    rsize: 1,
                    off: 0,
                },
                vec![i, i],
            );
        });
        b.push_inst(Op::Barrier, vec![]);
        let f = b.finish();
        verify(&f).unwrap();
        let diags = lint_function(&f, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn flags_tape_load_oob() {
        let mut b = FunctionBuilder::new("tl_oob");
        let t = b.array("R0", 16, ArrayKind::Tape, Scalar::F64);
        b.for_loop("i", 0, 16, |b, i| {
            let v = b.f64(1.0);
            b.store(t, i, v);
        });
        b.for_loop("r", 0, 16, |b, i| {
            // lin reaches 15, rsize 2 -> element 30 past the 16-entry tape.
            let _ = b.push_inst(
                Op::TapeLoad {
                    array: t,
                    rsize: 2,
                    off: 0,
                },
                vec![i, i],
            );
        });
        let f = b.finish();
        verify(&f).unwrap();
        let diags = lint_function(&f, &cfg());
        assert!(rules(&diags).contains(&"tape-index-oob"), "{diags:?}");
    }

    #[test]
    fn diagnostics_sort_stably() {
        let mk = |rule: &'static str, sev, inst| Diagnostic {
            rule,
            severity: sev,
            span: Span {
                inst: Some(inst),
                array: None,
            },
            message: String::from("m"),
        };
        let mut a = vec![
            mk("b-rule", Severity::Warning, 0),
            mk("a-rule", Severity::Error, 9),
            mk("a-rule", Severity::Error, 2),
        ];
        let mut b = a.clone();
        b.reverse();
        sort_diagnostics(&mut a);
        sort_diagnostics(&mut b);
        assert_eq!(a, b);
        assert_eq!(a[0].span.inst, Some(2));
        assert_eq!(a[2].rule, "b-rule");
    }

    #[test]
    fn table_renders_aligned_columns() {
        let diags = vec![Diagnostic {
            rule: "spad-capacity",
            severity: Severity::Error,
            span: Span::at_inst(InstId::new(3)),
            message: String::from("boom"),
        }];
        let t = render_table(&diags);
        assert!(t.starts_with("severity"), "{t}");
        assert!(t.contains("spad-capacity"), "{t}");
        assert!(t.contains("inst3"), "{t}");
        assert!(render_table(&[]).is_empty());
    }
}
