//! Dynamic dataflow graph (DDG) extraction.
//!
//! Tracing executes a function (with full numeric fidelity — the final
//! [`Memory`] holds the gradients) while recording one node per dynamic
//! instruction and the dependence edges between nodes:
//!
//! * SSA edges — operand produced by an earlier dynamic instruction;
//! * memory edges — RAW, WAR and WAW on every byte address, which is what
//!   carries the FWD → REV tape dependences the paper characterizes;
//! * scratchpad edges — the same, per scratchpad entry, which is how
//!   double-buffered streams naturally serialize against buffer reuse;
//! * barrier edges — layer barriers order compute (but *not* stream
//!   engines, which run ahead, as in the paper's §3.5).
//!
//! The trace is the unrolled dataflow the paper's Chapter 2 figures
//! characterize and the object `tapeflow-sim` schedules cycle by cycle.

use crate::function::Function;
use crate::ids::{InstId, NodeId};
use crate::interp::{execute, ExecError, ExecHook, MemEffect};
use crate::memory::Memory;
use crate::ops::{Op, OpClass};
use std::collections::HashMap;

/// Which half of the gradient program a node belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Forward phase: the original function plus tape stores.
    Fwd,
    /// Reverse phase: adjoint computation plus tape loads.
    Rev,
}

/// Sentinel for "not inside any layer".
pub const NO_LAYER: u32 = u32::MAX;

/// One dynamic instruction instance in the DDG.
#[derive(Clone, Debug)]
pub struct TraceNode {
    /// The static instruction this instance came from.
    pub inst: InstId,
    /// The opcode (copied for cheap access).
    pub op: Op,
    /// FWD or REV phase.
    pub phase: Phase,
    /// Layer index, or [`NO_LAYER`].
    pub layer: u32,
    /// Byte address for DRAM accesses, entry index for scratchpad
    /// accesses, start byte address for streams; 0 otherwise.
    pub addr: u64,
    /// Bytes moved by the node (8 for scalar accesses, `8 × elems` for
    /// streams, 0 for compute).
    pub bytes: u32,
    /// True when the node is a tape access (tape-array load/store, any
    /// scratchpad access, or a stream command).
    pub is_tape: bool,
    /// Nodes this node must wait for.
    pub deps: Vec<NodeId>,
}

impl TraceNode {
    /// Scheduling class of the node.
    #[inline]
    pub fn class(&self) -> OpClass {
        self.op.class()
    }
}

/// The dynamic dataflow graph of one execution.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Name of the traced function.
    pub name: String,
    nodes: Vec<TraceNode>,
    layer_count: u32,
}

impl Trace {
    /// All nodes in execution order (a valid topological order).
    #[inline]
    pub fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    /// Node lookup.
    #[inline]
    pub fn node(&self, id: NodeId) -> &TraceNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the trace recorded nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of layers (SAlloc count); 0 for unlayered programs.
    #[inline]
    pub fn layer_count(&self) -> u32 {
        self.layer_count
    }

    /// Total dependence edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.deps.len()).sum()
    }
}

/// Options controlling trace construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceOptions {
    /// The barrier instruction separating FWD from REV (emitted by
    /// `tapeflow-autodiff`). Nodes executed at or after it are classified
    /// [`Phase::Rev`]; with `None`, everything is FWD.
    pub phase_barrier: Option<InstId>,
}

#[derive(Default)]
struct AddrState {
    last_writer: Option<NodeId>,
    readers: Vec<NodeId>,
}

const SPAD_SPACE: u64 = 1 << 63;

struct Tracer {
    nodes: Vec<TraceNode>,
    val_node: Vec<Option<NodeId>>,
    mem_state: HashMap<u64, AddrState>,
    last_barrier: Option<NodeId>,
    since_barrier: Vec<NodeId>,
    phase: Phase,
    phase_barrier: Option<InstId>,
    layer: u32,
    layer_count: u32,
    scratch_deps: Vec<NodeId>,
}

impl Tracer {
    fn new(func: &Function, opts: TraceOptions) -> Self {
        Tracer {
            nodes: Vec::new(),
            val_node: vec![None; func.values().len()],
            mem_state: HashMap::new(),
            last_barrier: None,
            since_barrier: Vec::new(),
            phase: Phase::Fwd,
            phase_barrier: opts.phase_barrier,
            layer: NO_LAYER,
            layer_count: 0,
            scratch_deps: Vec::new(),
        }
    }

    fn read_addr(&mut self, addr: u64, me: NodeId, deps: &mut Vec<NodeId>) {
        let st = self.mem_state.entry(addr).or_default();
        if let Some(w) = st.last_writer {
            deps.push(w);
        }
        st.readers.push(me);
    }

    fn write_addr(&mut self, addr: u64, me: NodeId, deps: &mut Vec<NodeId>) {
        let st = self.mem_state.entry(addr).or_default();
        if let Some(w) = st.last_writer {
            deps.push(w);
        }
        deps.append(&mut st.readers);
        st.last_writer = Some(me);
    }
}

impl ExecHook for Tracer {
    fn on_inst(&mut self, inst: InstId, func: &Function, effect: &MemEffect) {
        let me = NodeId::new(self.nodes.len());
        let decl = func.inst(inst);
        if self.phase_barrier == Some(inst) {
            self.phase = Phase::Rev;
        }
        if let Op::SAlloc { .. } = decl.op {
            self.layer = self.layer_count;
            self.layer_count += 1;
        }

        let mut deps = std::mem::take(&mut self.scratch_deps);
        deps.clear();
        // SSA operand dependences.
        for &a in &decl.args {
            if let Some(n) = self.val_node[a.index()] {
                deps.push(n);
            }
        }

        let is_stream = matches!(
            decl.op,
            Op::StreamOut(_) | Op::StreamIn(_) | Op::StreamOutC { .. } | Op::StreamInC { .. }
        );
        let is_sync = matches!(decl.op, Op::Barrier | Op::SAlloc { .. });
        // Integer address generation is the decoupled access slice
        // (paper §2.2.3): it runs ahead of layer barriers so the stream
        // engines can prefetch the next layer's tile.
        let is_addr = decl.op.class() == OpClass::Int;
        // Compute serializes behind the latest barrier; stream engines,
        // address generation and allocation pseudo-ops run ahead (double
        // buffering), ordered only by their data dependences.
        if !is_stream && !is_sync && !is_addr {
            if let Some(b) = self.last_barrier {
                deps.push(b);
            }
        }

        let (addr, bytes, is_tape) = match effect {
            MemEffect::None => (0u64, 0u32, false),
            MemEffect::Load { addr, array } => {
                self.read_addr(*addr, me, &mut deps);
                (*addr, 8, func.array(*array).kind.is_tape())
            }
            MemEffect::Store { addr, array } => {
                self.write_addr(*addr, me, &mut deps);
                (*addr, 8, func.array(*array).kind.is_tape())
            }
            MemEffect::SpadLoad { entry } => {
                self.read_addr(SPAD_SPACE | entry, me, &mut deps);
                (*entry, 8, true)
            }
            MemEffect::SpadStore { entry } => {
                self.write_addr(SPAD_SPACE | entry, me, &mut deps);
                (*entry, 8, true)
            }
            MemEffect::Stream {
                spad,
                dram_start,
                elems,
                to_dram,
                ..
            } => {
                for e in spad.clone() {
                    if *to_dram {
                        self.read_addr(SPAD_SPACE | e, me, &mut deps);
                    } else {
                        self.write_addr(SPAD_SPACE | e, me, &mut deps);
                    }
                }
                for k in 0..*elems {
                    let a = dram_start + 8 * k;
                    if *to_dram {
                        self.write_addr(a, me, &mut deps);
                    } else {
                        self.read_addr(a, me, &mut deps);
                    }
                }
                let bytes = match decl.op {
                    // Width-compressed streams move `struct_bytes` bytes per
                    // group of `struct_elems` entries instead of 8 per entry.
                    Op::StreamOutC {
                        struct_elems,
                        struct_bytes,
                        ..
                    }
                    | Op::StreamInC {
                        struct_elems,
                        struct_bytes,
                        ..
                    } => (elems.div_ceil(struct_elems as u64) * struct_bytes as u64) as u32,
                    _ => (*elems as u32) * 8,
                };
                (*dram_start, bytes, true)
            }
        };

        if let Op::Barrier = decl.op {
            // The barrier completes when everything since the previous
            // barrier (and that barrier itself) has.
            deps.append(&mut self.since_barrier);
            if let Some(b) = self.last_barrier {
                deps.push(b);
            }
            self.last_barrier = Some(me);
        }

        deps.sort_unstable();
        deps.dedup();

        if let Some(r) = decl.result {
            self.val_node[r.index()] = Some(me);
        }
        // Streams are decoupled engines: they neither wait for barriers
        // nor hold them back (buffer reuse is ordered by the per-entry
        // scratchpad dependences); everything else joins the barrier set.
        if !matches!(
            decl.op,
            Op::Barrier
                | Op::StreamOut(_)
                | Op::StreamIn(_)
                | Op::StreamOutC { .. }
                | Op::StreamInC { .. }
        ) {
            self.since_barrier.push(me);
        }
        let node = TraceNode {
            inst,
            op: decl.op,
            phase: self.phase,
            layer: self.layer,
            addr,
            bytes,
            is_tape,
            deps,
        };
        self.nodes.push(node);
        self.scratch_deps = Vec::new();
    }
}

/// Executes `func` against `mem`, producing its dynamic dataflow graph.
///
/// `mem` is left holding the final memory state (outputs and gradients),
/// so a single call serves both numerical checking and simulation.
///
/// # Errors
///
/// Propagates any [`ExecError`] from execution.
pub fn trace_function(
    func: &Function,
    mem: &mut Memory,
    opts: TraceOptions,
) -> Result<Trace, ExecError> {
    let (tracer, _count) = execute(func, mem, Tracer::new(func, opts))?;
    Ok(Trace {
        name: func.name.clone(),
        nodes: tracer.nodes,
        layer_count: tracer.layer_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ArrayKind;
    use crate::types::Scalar;

    fn simple_trace() -> (Function, Trace) {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", 4, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 4, |b, i| {
            let v = b.load(x, i);
            let w = b.fmul(v, v);
            b.store(y, i, w);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        mem.set_f64(x, &[1.0, 2.0, 3.0, 4.0]);
        let t = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        assert_eq!(mem.get_f64(y), vec![1.0, 4.0, 9.0, 16.0]);
        (f, t)
    }

    #[test]
    fn node_per_dynamic_inst() {
        let (_, t) = simple_trace();
        // 4 iterations × (load, fmul, store) + 4 index computations? No
        // index arithmetic here: the iv is used directly.
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        assert_eq!(t.layer_count(), 0);
    }

    #[test]
    fn ssa_deps_within_iteration() {
        let (_, t) = simple_trace();
        // Node order per iteration: load, fmul, store.
        let n = t.nodes();
        assert!(n[1].deps.contains(&NodeId::new(0)));
        assert!(n[2].deps.contains(&NodeId::new(1)));
        // Loads of iteration 1 do not depend on iteration 0 (different
        // addresses, no barrier).
        assert!(n[3].deps.is_empty());
    }

    #[test]
    fn raw_dep_through_memory() {
        let mut b = FunctionBuilder::new("m");
        let c = b.cell_f64("c", 0.0);
        let one = b.f64(1.0);
        let v0 = b.load_cell(c);
        let v1 = b.fadd(v0, one);
        b.store_cell(c, v1);
        let v2 = b.load_cell(c);
        let _ = b.fadd(v2, one);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let t = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        // Nodes: load, fadd, store, load, fadd.
        let n = t.nodes();
        assert!(matches!(n[3].op, Op::Load(_)));
        assert!(n[3].deps.contains(&NodeId::new(2)), "RAW through cell");
        // WAR: the store depends on the earlier load of the same address.
        assert!(n[2].deps.contains(&NodeId::new(0)));
    }

    #[test]
    fn phase_split_at_barrier() {
        let mut f = Function::new("p");
        let a = f.add_const(crate::Const::F64(1.0));
        let (i1, _) = f.add_inst(Op::FNeg, vec![a]);
        let (bar, _) = f.add_inst(Op::Barrier, vec![]);
        let (i2, _) = f.add_inst(Op::FNeg, vec![a]);
        f.body = vec![
            crate::Stmt::Inst(i1),
            crate::Stmt::Inst(bar),
            crate::Stmt::Inst(i2),
        ];
        let mut mem = Memory::for_function(&f);
        let t = trace_function(
            &f,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(bar),
            },
        )
        .unwrap();
        assert_eq!(t.nodes()[0].phase, Phase::Fwd);
        assert_eq!(t.nodes()[2].phase, Phase::Rev);
        // Post-barrier compute depends on the barrier; the barrier depends
        // on everything before it.
        assert!(t.nodes()[2].deps.contains(&NodeId::new(1)));
        assert!(t.nodes()[1].deps.contains(&NodeId::new(0)));
    }

    #[test]
    fn compressed_stream_bytes() {
        // A stream.outc of 4 elements at 2 entries / 6 bytes per struct
        // models 12 bytes of traffic instead of 32.
        let mut f = Function::new("c");
        let tape = f.add_array("R0", 4, ArrayKind::Tape, Scalar::F64);
        let mut sched = Vec::new();
        let (al, base) = f.add_inst(Op::SAlloc { size: 4, base: 0 }, vec![]);
        sched.push(crate::Stmt::Inst(al));
        let base = base.unwrap();
        let c0 = f.add_const(crate::Const::I64(0));
        let c4 = f.add_const(crate::Const::I64(4));
        let (so, _) = f.add_inst(
            Op::StreamOutC {
                array: tape,
                struct_elems: 2,
                struct_bytes: 6,
            },
            vec![base, c0, c4],
        );
        sched.push(crate::Stmt::Inst(so));
        f.body = sched;
        let mut mem = Memory::for_function(&f);
        let t = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let sn = t
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::StreamOutC { .. }))
            .unwrap();
        assert_eq!(sn.bytes, 12);
        assert!(sn.is_tape);
    }

    #[test]
    fn tape_accesses_flagged() {
        let mut b = FunctionBuilder::new("tape");
        let tape = b.array("T0", 4, ArrayKind::Tape, Scalar::F64);
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        b.for_loop("i", 0, 4, |b, i| {
            let v = b.load(x, i);
            b.store(tape, i, v);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let t = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let tape_nodes = t.nodes().iter().filter(|n| n.is_tape).count();
        assert_eq!(tape_nodes, 4);
    }
}
