//! Negative-path coverage for `ir::verify` through the public mutation
//! API: every [`VerifyError`] variant is provoked by a hand-built
//! malformed function. Each case starts from a function the verifier
//! accepts and applies the single mutation under test, so the asserted
//! error is attributable to that mutation alone.

use tapeflow_ir::function::{ArrayKind, Bound, Stmt};
use tapeflow_ir::ops::Op;
use tapeflow_ir::verify::{verify, VerifyError};
use tapeflow_ir::{Const, Function, FunctionBuilder, Scalar};

/// A small well-formed function: `y[i] = -x[i]` over 4 elements.
fn well_formed() -> Function {
    let mut b = FunctionBuilder::new("base");
    let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
    let y = b.array("y", 4, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, 4, |b, i| {
        let v = b.load(x, i);
        let n = b.fneg(v);
        b.store(y, i, n);
    });
    let f = b.finish();
    verify(&f).expect("baseline function must verify");
    f
}

#[test]
fn use_before_def_from_reordered_body() {
    // Swapping two top-level statements makes the consumer run first.
    let mut f = Function::new("bad");
    let c = f.add_const(Const::F64(2.0));
    let (producer, v) = f.add_inst(Op::FNeg, vec![c]);
    let (consumer, _) = f.add_inst(Op::FAbs, vec![v.unwrap()]);
    f.body.push(Stmt::Inst(consumer));
    f.body.push(Stmt::Inst(producer));
    assert_eq!(
        verify(&f),
        Err(VerifyError::UseBeforeDef {
            value: v.unwrap(),
            inst: consumer,
        })
    );
}

#[test]
fn type_mismatch_from_operand_rewrite() {
    // inst_mut lets a pass replace an operand; replacing the f64 input
    // of the fneg with an i64 constant must be diagnosed at operand 0.
    let mut f = well_formed();
    let bad = f.add_const(Const::I64(7));
    let fneg = (0..f.insts().len())
        .map(tapeflow_ir::InstId::new)
        .find(|&i| matches!(f.inst(i).op, Op::FNeg))
        .expect("baseline has an fneg");
    f.inst_mut(fneg).args[0] = bad;
    assert!(
        matches!(
            verify(&f),
            Err(VerifyError::TypeMismatch {
                inst,
                operand: 0,
                expected: Scalar::F64,
                found: Scalar::I64,
            }) if inst == fneg
        ),
        "got {:?}",
        verify(&f)
    );
}

#[test]
fn bad_arity_from_dropped_operand() {
    // `add_inst` asserts arity at construction; a buggy pass can still
    // shrink the operand vector afterwards.
    let mut f = well_formed();
    let fneg = (0..f.insts().len())
        .map(tapeflow_ir::InstId::new)
        .find(|&i| matches!(f.inst(i).op, Op::FNeg))
        .expect("baseline has an fneg");
    f.inst_mut(fneg).args.pop();
    assert_eq!(verify(&f), Err(VerifyError::BadArity { inst: fneg }));
}

#[test]
fn duplicate_inst_from_rescheduling() {
    let mut f = Function::new("bad");
    let c = f.add_const(Const::F64(1.0));
    let (i, _) = f.add_inst(Op::FNeg, vec![c]);
    f.body.push(Stmt::Inst(i));
    f.body.push(Stmt::Inst(i));
    assert_eq!(verify(&f), Err(VerifyError::DuplicateInst(i)));
}

#[test]
fn unreachable_inst_from_dropped_statement() {
    // Deleting the schedule entry strands the instruction in the table.
    let mut f = Function::new("bad");
    let c = f.add_const(Const::F64(1.0));
    let (kept, _) = f.add_inst(Op::FNeg, vec![c]);
    let (dropped, _) = f.add_inst(Op::FAbs, vec![c]);
    f.body.push(Stmt::Inst(kept));
    assert_eq!(verify(&f), Err(VerifyError::UnreachableInst(dropped)));
}

#[test]
fn bad_loop_bound_on_float_value() {
    // A loop bound must be an i64 value defined before the loop; an f64
    // constant satisfies neither the type nor (thus) the contract.
    let mut f = Function::new("bad");
    let fbound = f.add_const(Const::F64(4.0));
    let (lid, _) = f.add_loop("i", Bound::Const(0), Bound::Value(fbound), 1);
    f.body.push(Stmt::For {
        loop_id: lid,
        body: vec![],
    });
    assert_eq!(
        verify(&f),
        Err(VerifyError::BadLoopBound {
            loop_name: "i".to_string(),
        })
    );
}

#[test]
fn select_branch_mismatch() {
    // select's branches must agree in type; i64 cond with f64/i64
    // branches is caught as a branch mismatch, not a plain type error.
    let mut f = Function::new("bad");
    let cond = f.add_const(Const::I64(1));
    let t = f.add_const(Const::F64(1.0));
    let e = f.add_const(Const::I64(0));
    let (sel, _) = f.add_inst(Op::Select, vec![cond, t, e]);
    f.body.push(Stmt::Inst(sel));
    assert_eq!(verify(&f), Err(VerifyError::SelectBranchMismatch(sel)));
}

#[test]
fn store_to_read_only_array() {
    let mut f = Function::new("bad");
    let x = f.add_array("x", 4, ArrayKind::Input, Scalar::F64);
    let idx = f.add_const(Const::I64(0));
    let v = f.add_const(Const::F64(3.0));
    let (s, _) = f.add_inst(Op::Store(x), vec![idx, v]);
    f.body.push(Stmt::Inst(s));
    assert_eq!(verify(&f), Err(VerifyError::StoreToReadOnly(s)));
}

#[test]
fn first_error_in_program_order_wins() {
    // Two defects: a use-before-def at the top and an unscheduled inst.
    // The verifier reports the scheduled-code defect first.
    let mut f = Function::new("bad");
    let c = f.add_const(Const::F64(2.0));
    let (producer, v) = f.add_inst(Op::FNeg, vec![c]);
    let (consumer, _) = f.add_inst(Op::FAbs, vec![v.unwrap()]);
    let (stranded, _) = f.add_inst(Op::Sqrt, vec![c]);
    let _ = stranded;
    f.body.push(Stmt::Inst(consumer));
    f.body.push(Stmt::Inst(producer));
    assert!(matches!(verify(&f), Err(VerifyError::UseBeforeDef { .. })));
}
