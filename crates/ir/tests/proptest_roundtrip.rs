//! Randomized tests across the IR's front-end facilities: random programs
//! must survive pretty→parse round-trips and the optimizer bit-exactly.
//! Deterministic in-tree xorshift generation (the container has no
//! network access to fetch `proptest`), so every run exercises the same
//! cases.

use tapeflow_ir::{
    parse, pretty, ArrayId, ArrayKind, CmpKind, Function, FunctionBuilder, Memory, Scalar, ValueId,
};

/// Tiny deterministic xorshift64 RNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[derive(Clone, Debug)]
enum E {
    X,
    K(i8),
    Add(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Tanh(Box<E>),
    Sin(Box<E>),
    Min(Box<E>, Box<E>),
    Sel(Box<E>, Box<E>),
}

/// Random expression, recursion bounded by `depth` (mirrors the original
/// proptest strategy: leaves are `X` or small constants).
fn gen_expr(r: &mut Rng, depth: u32) -> E {
    if depth == 0 || r.below(4) == 0 {
        return if r.bool() {
            E::X
        } else {
            E::K(r.below(7) as i8 - 3)
        };
    }
    match r.below(6) {
        0 => {
            let (x, y) = (gen_expr(r, depth - 1), gen_expr(r, depth - 1));
            E::Add(Box::new(x), Box::new(y))
        }
        1 => {
            let (x, y) = (gen_expr(r, depth - 1), gen_expr(r, depth - 1));
            E::Mul(Box::new(x), Box::new(y))
        }
        2 => E::Tanh(Box::new(gen_expr(r, depth - 1))),
        3 => E::Sin(Box::new(gen_expr(r, depth - 1))),
        4 => {
            let (x, y) = (gen_expr(r, depth - 1), gen_expr(r, depth - 1));
            E::Min(Box::new(x), Box::new(y))
        }
        _ => {
            let (x, y) = (gen_expr(r, depth - 1), gen_expr(r, depth - 1));
            E::Sel(Box::new(x), Box::new(y))
        }
    }
}

fn emit(b: &mut FunctionBuilder, e: &E, x: ArrayId, i: ValueId) -> ValueId {
    match e {
        E::X => b.load(x, i),
        E::K(k) => b.f64(*k as f64 * 0.4 + 0.05),
        E::Add(a, c) => {
            let (va, vc) = (emit(b, a, x, i), emit(b, c, x, i));
            b.fadd(va, vc)
        }
        E::Mul(a, c) => {
            let (va, vc) = (emit(b, a, x, i), emit(b, c, x, i));
            b.fmul(va, vc)
        }
        E::Tanh(a) => {
            let v = emit(b, a, x, i);
            b.tanh(v)
        }
        E::Sin(a) => {
            let v = emit(b, a, x, i);
            b.sin(v)
        }
        E::Min(a, c) => {
            let (va, vc) = (emit(b, a, x, i), emit(b, c, x, i));
            b.fmin(va, vc)
        }
        E::Sel(a, c) => {
            let (va, vc) = (emit(b, a, x, i), emit(b, c, x, i));
            let cond = b.fcmp(CmpKind::Lt, va, vc);
            b.select(cond, va, vc)
        }
    }
}

fn build(e: &E, n: usize) -> Function {
    let mut b = FunctionBuilder::new("roundtrip");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let out = b.array("out", n, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let v = emit(b, e, x, i);
        b.store(out, i, v);
    });
    b.finish()
}

fn run(f: &Function, data: &[f64]) -> Vec<f64> {
    let mut mem = Memory::for_function(f);
    mem.set_f64(ArrayId::new(0), data);
    tapeflow_ir::interp::run(f, &mut mem).unwrap();
    mem.get_f64(ArrayId::new(1))
}

fn data(r: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| r.f64_in(-1.5, 1.5)).collect()
}

#[test]
fn pretty_parse_executes_identically() {
    for case in 0..128u64 {
        let mut r = Rng::new(case);
        let e = gen_expr(&mut r, 3);
        let d = data(&mut r, 5);
        let f = build(&e, d.len());
        let text = pretty::pretty(&f).to_string();
        let parsed = parse::parse(&text).unwrap_or_else(|err| panic!("{err}\n{text}"));
        assert_eq!(run(&f, &d), run(&parsed, &d), "case {case}: {e:?}");
    }
}

#[test]
fn parse_reaches_textual_fixpoint() {
    for case in 0..128u64 {
        let mut r = Rng::new(0xF1A9 ^ case);
        let e = gen_expr(&mut r, 3);
        let f = build(&e, 4);
        let t1 = pretty::pretty(&f).to_string();
        let t2 = pretty::pretty(&parse::parse(&t1).unwrap()).to_string();
        let t3 = pretty::pretty(&parse::parse(&t2).unwrap()).to_string();
        assert_eq!(t2, t3, "case {case}: {e:?}");
    }
}

#[test]
fn optimizer_preserves_random_programs() {
    for case in 0..128u64 {
        let mut r = Rng::new(0x0B7 ^ case);
        let e = gen_expr(&mut r, 3);
        let d = data(&mut r, 6);
        let f = build(&e, d.len());
        let (g, _) = tapeflow_ir::opt::optimize(&f);
        tapeflow_ir::verify::verify(&g).unwrap();
        assert_eq!(run(&f, &d), run(&g, &d), "case {case}: {e:?}");
    }
}

#[test]
fn unrolling_preserves_random_programs() {
    for case in 0..128u64 {
        let mut r = Rng::new(0x4012 ^ case);
        let e = gen_expr(&mut r, 3);
        let d = data(&mut r, 12);
        let factor = [2u64, 3, 4, 6][r.below(4) as usize];
        let f = build(&e, d.len());
        let u = tapeflow_ir::transform::unroll_loop(&f, "i", factor).unwrap();
        tapeflow_ir::verify::verify(&u).unwrap();
        assert_eq!(run(&f, &d), run(&u, &d), "case {case} u{factor}: {e:?}");
    }
}
