//! Property tests across the IR's front-end facilities: random programs
//! must survive pretty→parse round-trips and the optimizer bit-exactly.

use proptest::prelude::*;
use tapeflow_ir::{parse, pretty, ArrayId, ArrayKind, CmpKind, Function, FunctionBuilder, Memory, Scalar, ValueId};

#[derive(Clone, Debug)]
enum E {
    X,
    K(i8),
    Add(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Tanh(Box<E>),
    Sin(Box<E>),
    Min(Box<E>, Box<E>),
    Sel(Box<E>, Box<E>),
}

fn expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::X), (-3i8..=3).prop_map(E::K)];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Tanh(Box::new(a))),
            inner.clone().prop_map(|a| E::Sin(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Sel(Box::new(a), Box::new(b))),
        ]
    })
}

fn emit(b: &mut FunctionBuilder, e: &E, x: ArrayId, i: ValueId) -> ValueId {
    match e {
        E::X => b.load(x, i),
        E::K(k) => b.f64(*k as f64 * 0.4 + 0.05),
        E::Add(a, c) => {
            let (va, vc) = (emit(b, a, x, i), emit(b, c, x, i));
            b.fadd(va, vc)
        }
        E::Mul(a, c) => {
            let (va, vc) = (emit(b, a, x, i), emit(b, c, x, i));
            b.fmul(va, vc)
        }
        E::Tanh(a) => {
            let v = emit(b, a, x, i);
            b.tanh(v)
        }
        E::Sin(a) => {
            let v = emit(b, a, x, i);
            b.sin(v)
        }
        E::Min(a, c) => {
            let (va, vc) = (emit(b, a, x, i), emit(b, c, x, i));
            b.fmin(va, vc)
        }
        E::Sel(a, c) => {
            let (va, vc) = (emit(b, a, x, i), emit(b, c, x, i));
            let cond = b.fcmp(CmpKind::Lt, va, vc);
            b.select(cond, va, vc)
        }
    }
}

fn build(e: &E, n: usize) -> Function {
    let mut b = FunctionBuilder::new("roundtrip");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let out = b.array("out", n, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let v = emit(b, e, x, i);
        b.store(out, i, v);
    });
    b.finish()
}

fn run(f: &Function, data: &[f64]) -> Vec<f64> {
    let mut mem = Memory::for_function(f);
    mem.set_f64(ArrayId::new(0), data);
    tapeflow_ir::interp::run(f, &mut mem).unwrap();
    mem.get_f64(ArrayId::new(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pretty_parse_executes_identically(
        e in expr(),
        data in proptest::collection::vec(-1.5f64..1.5, 5..=5),
    ) {
        let f = build(&e, data.len());
        let text = pretty::pretty(&f).to_string();
        let parsed = parse::parse(&text)
            .unwrap_or_else(|err| panic!("{err}\n{text}"));
        prop_assert_eq!(run(&f, &data), run(&parsed, &data));
    }

    #[test]
    fn parse_reaches_textual_fixpoint(e in expr()) {
        let f = build(&e, 4);
        let t1 = pretty::pretty(&f).to_string();
        let t2 = pretty::pretty(&parse::parse(&t1).unwrap()).to_string();
        let t3 = pretty::pretty(&parse::parse(&t2).unwrap()).to_string();
        prop_assert_eq!(t2, t3);
    }

    #[test]
    fn optimizer_preserves_random_programs(
        e in expr(),
        data in proptest::collection::vec(-1.5f64..1.5, 6..=6),
    ) {
        let f = build(&e, data.len());
        let (g, _) = tapeflow_ir::opt::optimize(&f);
        tapeflow_ir::verify::verify(&g).unwrap();
        prop_assert_eq!(run(&f, &data), run(&g, &data));
    }

    #[test]
    fn unrolling_preserves_random_programs(
        e in expr(),
        data in proptest::collection::vec(-1.5f64..1.5, 12..=12),
        factor in prop_oneof![Just(2u64), Just(3), Just(4), Just(6)],
    ) {
        let f = build(&e, data.len());
        let u = tapeflow_ir::transform::unroll_loop(&f, "i", factor).unwrap();
        tapeflow_ir::verify::verify(&u).unwrap();
        prop_assert_eq!(run(&f, &data), run(&u, &data));
    }
}
