//! Checkpointing / recomputation — the tape-size-reduction technique the
//! paper's related work (§2.2.1) contrasts Tapeflow against.
//!
//! Instead of taping every intermediate of a `steps`-long simulation,
//! only the **state** at each step boundary is checkpointed; the reverse
//! sweep restores a checkpoint, re-runs one step's forward pass (taping
//! just that step) and reverses it. Peak tape memory drops from
//! `steps × per-step tape` to `one step's tape`, at the cost of
//! re-executing every forward step once — the recompute-vs-store
//! trade-off of Gist/vDNN and compiler checkpointing.
//!
//! The driver works over a *step function* `state' = f(state; params)`
//! and a *loss function* `loss = g(state)` built over the **same array
//! declarations** (ids must match; build both with the same
//! [`tapeflow_ir::FunctionBuilder`] preamble). Shadow semantics make the
//! chaining exact: seeding a state array's shadow before running the
//! step's gradient yields the adjoint w.r.t. the *pre-step* state in the
//! same shadow, so adjoints flow backwards step by step while parameter
//! shadows accumulate.

use crate::gradcheck::LossSpec;
use crate::{differentiate, AdError, AdOptions, TapePolicy};
use tapeflow_ir::interp::{run, ExecError};
use tapeflow_ir::{ArrayId, Function, Memory};

/// Result of a checkpointed gradient computation.
#[derive(Clone, Debug)]
pub struct CheckpointResult {
    /// Final loss value.
    pub loss: f64,
    /// Gradients of the loss w.r.t. each `wrt` array, in order.
    pub wrt_grads: Vec<Vec<f64>>,
    /// Bytes of checkpoint storage (state × steps).
    pub checkpoint_bytes: u64,
    /// Peak tape bytes alive at any instant (one step's tape).
    pub peak_tape_bytes: u64,
    /// Tape bytes a fully-taped run of the same simulation would need.
    pub full_tape_bytes: u64,
}

/// Errors from [`gradient_with_checkpointing`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Differentiating the step or loss function failed.
    Ad(AdError),
    /// Executing a phase failed.
    Exec(ExecError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Ad(e) => write!(f, "differentiation failed: {e}"),
            CheckpointError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<AdError> for CheckpointError {
    fn from(e: AdError) -> Self {
        CheckpointError::Ad(e)
    }
}

impl From<ExecError> for CheckpointError {
    fn from(e: ExecError) -> Self {
        CheckpointError::Exec(e)
    }
}

/// Computes `d g(f^steps(state_0; params)) / d params` with step-boundary
/// checkpointing.
///
/// * `step` — the per-step function (reads and writes `state`, reads
///   `wrt` parameters);
/// * `loss_fn` — maps the final state to a scalar loss (same array ids);
/// * `state` — arrays carried across steps;
/// * `wrt` — parameter arrays to differentiate with respect to;
/// * `init` — memory holding the initial state and parameters.
///
/// # Errors
///
/// See [`CheckpointError`].
pub fn gradient_with_checkpointing(
    step: &Function,
    loss_fn: &Function,
    state: &[ArrayId],
    wrt: &[ArrayId],
    steps: usize,
    loss: LossSpec,
    init: &Memory,
) -> Result<CheckpointResult, CheckpointError> {
    // Differentiate the step w.r.t. parameters AND incoming state (the
    // state's adjoint is what chains across steps), seeding from the
    // state's own shadows (the step's "outputs" are the state arrays).
    let mut step_wrt: Vec<ArrayId> = wrt.to_vec();
    step_wrt.extend_from_slice(state);
    let step_grad = differentiate(
        step,
        &AdOptions::new(step_wrt, state.to_vec()).with_policy(TapePolicy::Conservative),
    )?;
    let loss_grad = differentiate(
        loss_fn,
        &AdOptions::new(state.to_vec(), vec![loss.array]).with_policy(TapePolicy::Conservative),
    )?;

    // ---- forward sweep: run steps, checkpointing the state ----------------
    let mut mem = init.clone();
    let mut checkpoints: Vec<Vec<Vec<f64>>> = Vec::with_capacity(steps);
    let mut checkpoint_bytes = 0u64;
    for _ in 0..steps {
        let snap: Vec<Vec<f64>> = state.iter().map(|&a| mem.get_f64(a)).collect();
        checkpoint_bytes += snap.iter().map(|v| v.len() as u64 * 8).sum::<u64>();
        checkpoints.push(snap);
        run(step, &mut mem)?;
    }

    // ---- loss + its adjoint w.r.t. the final state -------------------------
    let mut lmem = loss_grad.prepare_memory(loss_fn, &mem);
    lmem.set_f64_at(
        loss_grad.shadow_of(loss.array).expect("loss shadow"),
        loss.index,
        1.0,
    );
    run(&loss_grad.func, &mut lmem)?;
    let loss_value = lmem.get_f64_at(loss.array, loss.index);
    let mut d_state: Vec<Vec<f64>> = state
        .iter()
        .map(|&a| lmem.get_f64(loss_grad.shadow_of(a).expect("state shadow")))
        .collect();
    let mut d_wrt: Vec<Vec<f64>> = wrt.iter().map(|&a| vec![0.0; init.len_of(a)]).collect();

    // ---- reverse sweep: restore, re-run one step with tape, reverse --------
    for s in (0..steps).rev() {
        let mut gmem = step_grad.prepare_memory(step, init);
        // Parameters are already in `init`; restore the checkpointed state.
        for (&a, snap) in state.iter().zip(&checkpoints[s]) {
            gmem.set_f64(a, snap);
        }
        // Seed the state shadows with the downstream adjoint.
        for (&a, adj) in state.iter().zip(&d_state) {
            gmem.set_f64(step_grad.shadow_of(a).expect("state shadow"), adj);
        }
        run(&step_grad.func, &mut gmem)?;
        // Collect the pre-step state adjoint and accumulate parameters.
        for (slot, &a) in d_state.iter_mut().zip(state.iter()) {
            *slot = gmem.get_f64(step_grad.shadow_of(a).expect("state shadow"));
        }
        for (acc, &a) in d_wrt.iter_mut().zip(wrt.iter()) {
            for (dst, src) in acc
                .iter_mut()
                .zip(gmem.get_f64(step_grad.shadow_of(a).expect("wrt shadow")))
            {
                *dst += src;
            }
        }
    }

    let peak = step_grad.stats.tape_bytes;
    Ok(CheckpointResult {
        loss: loss_value,
        wrt_grads: d_wrt,
        checkpoint_bytes,
        peak_tape_bytes: peak,
        full_tape_bytes: peak * steps as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_ir::{ArrayKind, FunctionBuilder, Scalar};

    /// Step: u[i] += dt * k[i] * tanh(u[i]); loss: Σ u².
    /// Returns (step, loss_fn, u, k, loss_array) sharing array ids.
    fn fixture(n: usize) -> (Function, Function, ArrayId, ArrayId, ArrayId) {
        let declare = |b: &mut FunctionBuilder| {
            let u = b.array("u", n, ArrayKind::InOut, Scalar::F64);
            let k = b.array("k", n, ArrayKind::Input, Scalar::F64);
            let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
            (u, k, loss)
        };
        let mut b = FunctionBuilder::new("step");
        let (u, k, _) = declare(&mut b);
        b.for_loop("i", 0, n as i64, |b, i| {
            let ui = b.load(u, i);
            let ki = b.load(k, i);
            let t = b.tanh(ui);
            let f = b.fmul(ki, t);
            let dt = b.f64(0.1);
            let du = b.fmul(dt, f);
            let nu = b.fadd(ui, du);
            b.store(u, i, nu);
        });
        let step = b.finish();
        let mut b = FunctionBuilder::new("loss");
        let (u2, _, loss) = declare(&mut b);
        b.for_loop("i", 0, n as i64, |b, i| {
            let ui = b.load(u2, i);
            let sq = b.fmul(ui, ui);
            let c = b.load_cell(loss);
            let s = b.fadd(c, sq);
            b.store_cell(loss, s);
        });
        (step, b.finish(), u, k, loss)
    }

    /// The same simulation as one fully-taped function.
    fn monolithic(n: usize, steps: usize) -> (Function, ArrayId, ArrayId, ArrayId) {
        let mut b = FunctionBuilder::new("mono");
        let u = b.array("u", n, ArrayKind::InOut, Scalar::F64);
        let k = b.array("k", n, ArrayKind::Input, Scalar::F64);
        let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
        b.for_loop("s", 0, steps as i64, |b, _| {
            b.for_loop("i", 0, n as i64, |b, i| {
                let ui = b.load(u, i);
                let ki = b.load(k, i);
                let t = b.tanh(ui);
                let f = b.fmul(ki, t);
                let dt = b.f64(0.1);
                let du = b.fmul(dt, f);
                let nu = b.fadd(ui, du);
                b.store(u, i, nu);
            });
        });
        b.for_loop("i", 0, n as i64, |b, i| {
            let ui = b.load(u, i);
            let sq = b.fmul(ui, ui);
            let c = b.load_cell(loss);
            let s = b.fadd(c, sq);
            b.store_cell(loss, s);
        });
        (b.finish(), u, k, loss)
    }

    #[test]
    fn matches_fully_taped_gradient_bitwise() {
        let (n, steps) = (6, 5);
        let (step, loss_fn, u, k, loss) = fixture(n);
        let mut init = Memory::for_function(&step);
        let u0: Vec<f64> = (0..n).map(|i| 0.2 + 0.1 * i as f64).collect();
        let kv: Vec<f64> = (0..n).map(|i| 0.5 - 0.07 * i as f64).collect();
        init.set_f64(u, &u0);
        init.set_f64(k, &kv);

        let ck = gradient_with_checkpointing(
            &step,
            &loss_fn,
            &[u],
            &[k],
            steps,
            LossSpec::cell(loss),
            &init,
        )
        .unwrap();

        // Reference: fully-taped monolithic gradient.
        let (mono, mu, mk, mloss) = monolithic(n, steps);
        let g = differentiate(
            &mono,
            &AdOptions::new(vec![mk], vec![mloss]).with_policy(TapePolicy::Conservative),
        )
        .unwrap();
        let mut mem = Memory::for_function(&g.func);
        mem.set_f64(mu, &u0);
        mem.set_f64(mk, &kv);
        mem.set_f64_at(g.shadow_of(mloss).unwrap(), 0, 1.0);
        run(&g.func, &mut mem).unwrap();
        let want = mem.get_f64(g.shadow_of(mk).unwrap());

        assert_eq!(ck.wrt_grads[0], want, "checkpointed == fully taped");
        assert!((ck.loss - mem.get_f64_at(mloss, 0)).abs() < 1e-12);
        // The memory trade-off: one step's tape vs steps x that.
        assert_eq!(ck.full_tape_bytes, ck.peak_tape_bytes * steps as u64);
        assert!(ck.peak_tape_bytes < g.stats.tape_bytes);
    }

    #[test]
    fn initial_state_gradient_also_flows() {
        // d loss / d u0 is the final d_state after the reverse sweep; we
        // check it through the wrt mechanism by treating u as both state
        // and parameter? Instead verify against finite differences of the
        // monolithic program w.r.t. u.
        let (n, steps) = (4, 3);
        let (step, loss_fn, u, k, loss) = fixture(n);
        let mut init = Memory::for_function(&step);
        let u0: Vec<f64> = vec![0.3, -0.2, 0.5, 0.1];
        let kv: Vec<f64> = vec![0.4, 0.6, -0.3, 0.2];
        init.set_f64(u, &u0);
        init.set_f64(k, &kv);
        let ck = gradient_with_checkpointing(
            &step,
            &loss_fn,
            &[u],
            &[k],
            steps,
            LossSpec::cell(loss),
            &init,
        )
        .unwrap();
        // Finite differences on k through the monolithic program.
        let (mono, mu, mk, mloss) = monolithic(n, steps);
        let mut base = Memory::for_function(&mono);
        base.set_f64(mu, &u0);
        base.set_f64(mk, &kv);
        let fd =
            crate::gradcheck::finite_diff_gradient(&mono, &base, mk, LossSpec::cell(mloss), 1e-6)
                .unwrap();
        for (a, b) in ck.wrt_grads[0].iter().zip(&fd) {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }
}
