//! Finite-difference gradient checking.
//!
//! The test suite's ground truth: run the *original* function under the
//! interpreter with central differences and compare against the shadow
//! arrays the gradient function produces.

use crate::Gradient;
use std::error::Error;
use std::fmt;
use tapeflow_ir::interp::{run, ExecError};
use tapeflow_ir::{ArrayId, Function, Memory};

/// Designates the scalar loss the gradient is taken of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossSpec {
    /// The output array holding the loss.
    pub array: ArrayId,
    /// Element index of the loss within that array.
    pub index: usize,
}

impl LossSpec {
    /// Loss at `array[0]` — the common case of a loss cell.
    pub fn cell(array: ArrayId) -> Self {
        LossSpec { array, index: 0 }
    }
}

/// A mismatch reported by [`check_gradient`].
#[derive(Clone, Debug)]
pub enum GradCheckError {
    /// Execution of either function failed.
    Exec(ExecError),
    /// The analytic and numeric gradients disagree.
    Mismatch {
        /// Which `wrt` array disagreed.
        array_name: String,
        /// Element index of the worst disagreement.
        index: usize,
        /// Analytic (AD) value.
        analytic: f64,
        /// Numeric (finite-difference) value.
        numeric: f64,
        /// Relative error at that element.
        rel_err: f64,
    },
}

impl fmt::Display for GradCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GradCheckError::Exec(e) => write!(f, "execution failed during gradient check: {e}"),
            GradCheckError::Mismatch {
                array_name,
                index,
                analytic,
                numeric,
                rel_err,
            } => write!(
                f,
                "gradient mismatch at d_{array_name}[{index}]: AD {analytic} vs FD {numeric} (rel err {rel_err:.3e})"
            ),
        }
    }
}

impl Error for GradCheckError {}

impl From<ExecError> for GradCheckError {
    fn from(e: ExecError) -> Self {
        GradCheckError::Exec(e)
    }
}

/// Numeric gradient of `loss` w.r.t. every element of `wrt`, by central
/// differences of the **original** function.
///
/// `base` must hold the inputs; it is cloned for every probe, so Temp
/// and Output arrays may hold anything.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn finite_diff_gradient(
    func: &Function,
    base: &Memory,
    wrt: ArrayId,
    loss: LossSpec,
    eps: f64,
) -> Result<Vec<f64>, ExecError> {
    let n = base.len_of(wrt);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let x0 = base.get_f64_at(wrt, i);
        let probe = |x: f64| -> Result<f64, ExecError> {
            let mut m = base.clone();
            m.set_f64_at(wrt, i, x);
            run(func, &mut m)?;
            Ok(m.get_f64_at(loss.array, loss.index))
        };
        let hi = probe(x0 + eps)?;
        let lo = probe(x0 - eps)?;
        out.push((hi - lo) / (2.0 * eps));
    }
    Ok(out)
}

/// Runs the gradient function once (seeding `d_loss = 1`) and returns the
/// shadow contents for each `wrt` array, in `grad`-declared order.
///
/// # Errors
///
/// Propagates interpreter failures.
///
/// # Panics
///
/// Panics if a `wrt` array has no shadow (it was not in the
/// [`crate::AdOptions::wrt`] list when differentiating).
pub fn analytic_gradient(
    orig: &Function,
    grad: &Gradient,
    base: &Memory,
    wrt: &[ArrayId],
    loss: LossSpec,
) -> Result<Vec<Vec<f64>>, ExecError> {
    let mut mem = grad.prepare_memory(orig, base);
    let d_loss = grad
        .shadow_of(loss.array)
        .expect("loss array must be a seed");
    mem.set_f64_at(d_loss, loss.index, 1.0);
    run(&grad.func, &mut mem)?;
    Ok(wrt
        .iter()
        .map(|&w| mem.get_f64(grad.shadow_of(w).expect("wrt array has a shadow")))
        .collect())
}

/// Compares AD and finite differences on every element of every `wrt`
/// array.
///
/// The tolerance test is `|ad - fd| <= atol + rtol * max(|ad|, |fd|)`.
///
/// # Errors
///
/// Returns the worst mismatch if any element exceeds the tolerance, or an
/// execution error.
#[allow(clippy::too_many_arguments)]
pub fn check_gradient(
    orig: &Function,
    grad: &Gradient,
    base: &Memory,
    wrt: &[ArrayId],
    loss: LossSpec,
    eps: f64,
    rtol: f64,
    atol: f64,
) -> Result<(), GradCheckError> {
    let analytic = analytic_gradient(orig, grad, base, wrt, loss)?;
    let mut worst: Option<GradCheckError> = None;
    let mut worst_err = 0.0;
    for (wi, &w) in wrt.iter().enumerate() {
        let numeric = finite_diff_gradient(orig, base, w, loss, eps)?;
        for (i, (&ad, &fd)) in analytic[wi].iter().zip(&numeric).enumerate() {
            let scale = ad.abs().max(fd.abs());
            let err = (ad - fd).abs();
            if err > atol + rtol * scale {
                let rel = if scale > 0.0 { err / scale } else { err };
                if rel > worst_err {
                    worst_err = rel;
                    worst = Some(GradCheckError::Mismatch {
                        array_name: orig.array(w).name.clone(),
                        index: i,
                        analytic: ad,
                        numeric: fd,
                        rel_err: rel,
                    });
                }
            }
        }
    }
    match worst {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{differentiate, AdOptions};
    use tapeflow_ir::{ArrayKind, FunctionBuilder, Scalar};

    #[test]
    fn quadratic_gradient_checks() {
        let mut b = FunctionBuilder::new("q");
        let x = b.array("x", 3, ArrayKind::Input, Scalar::F64);
        let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 3, |b, i| {
            let v = b.load(x, i);
            let sq = b.fmul(v, v);
            let c = b.load_cell(loss);
            let s = b.fadd(c, sq);
            b.store_cell(loss, s);
        });
        let f = b.finish();
        let grad = differentiate(&f, &AdOptions::new(vec![x], vec![loss])).unwrap();
        let mut base = Memory::for_function(&f);
        base.set_f64(x, &[0.5, -1.5, 2.0]);
        check_gradient(
            &f,
            &grad,
            &base,
            &[x],
            LossSpec::cell(loss),
            1e-6,
            1e-5,
            1e-8,
        )
        .unwrap();
    }

    #[test]
    fn mismatch_is_reported() {
        // A "gradient" that is wrong on purpose: differentiate f(x)=x^2 but
        // compare against finite differences of g(x)=x^3.
        let build = |p: i32| {
            let mut b = FunctionBuilder::new("f");
            let x = b.array("x", 1, ArrayKind::Input, Scalar::F64);
            let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
            let v = b.load_cell(x);
            let e = b.f64(p as f64);
            let w = b.fpow(v, e);
            b.store_cell(loss, w);
            (b.finish(), x, loss)
        };
        let (f2, x, loss) = build(2);
        let (f3, _, _) = build(3);
        let grad = differentiate(&f2, &AdOptions::new(vec![x], vec![loss])).unwrap();
        let mut base = Memory::for_function(&f2);
        base.set_f64(x, &[1.7]);
        let err = check_gradient(
            &f3,
            &grad,
            &base,
            &[x],
            LossSpec::cell(loss),
            1e-6,
            1e-6,
            1e-9,
        );
        assert!(matches!(err, Err(GradCheckError::Mismatch { .. })));
    }
}
