//! Gradient-function generation: FWD clone with tape stores, phase
//! barrier, and the mirrored REV phase.

use crate::activity::{self, Activity};
use crate::plan::{self, Decision, TapePlan};
use crate::{AdError, AdOptions, AdStats, Gradient, Span, SpanTable, TapeArrayInfo};
use std::collections::HashMap;
use tapeflow_ir::function::{ArrayKind, Bound, Stmt, ValueDef};
use tapeflow_ir::{
    ArrayId, CmpKind, Const, Function, InstId, LoopId, Op, Provenance, Scalar, ValueId,
};

/// Differentiates `src` in reverse mode, producing the gradient function
/// and the compile-time tape maps (see [`Gradient`]).
///
/// # Errors
///
/// * [`AdError::Invalid`] — `src` fails verification;
/// * [`AdError::NotAPureFunction`] — `src` already contains tape,
///   scratchpad or stream operations;
/// * [`AdError::DynamicLoopBound`] — a loop the reverse pass must mirror
///   has a runtime-computed bound.
pub fn differentiate(src: &Function, opts: &AdOptions) -> Result<Gradient, AdError> {
    tapeflow_ir::verify::verify(src)?;
    for (i, inst) in src.insts().iter().enumerate() {
        let impure = match inst.op {
            Op::SAlloc { .. }
            | Op::SpadLoad
            | Op::SpadStore
            | Op::StreamOut(_)
            | Op::StreamIn(_)
            | Op::Barrier => true,
            Op::Load(a) | Op::Store(a) => src.array(a).kind.is_tape(),
            _ => false,
        };
        if impure {
            return Err(AdError::NotAPureFunction(InstId::new(i)));
        }
    }
    for &w in &opts.wrt {
        assert_eq!(
            src.array(w).elem,
            Scalar::F64,
            "wrt array {} must be f64",
            src.array(w).name
        );
    }
    let act = activity::analyze(src, opts);
    let plan = plan::build(src, &act, opts)?;
    let mut gen = Gen::new(src, opts, act, plan);
    gen.run()
}

struct FwdFrame {
    grad_iv: ValueId,
    start: i64,
    step: i64,
    trip: u64,
    lin: Option<ValueId>,
}

#[derive(Default)]
struct RevFrame {
    /// Original loop this frame mirrors (`None` for the root frame).
    orig_loop: Option<LoopId>,
    /// The generated REV loop of this frame (`None` for the root frame).
    rev_loop: Option<LoopId>,
    /// REV ordinal induction variable.
    ord_iv: Option<ValueId>,
    start: i64,
    step: i64,
    trip: u64,
    /// Lazily reconstructed original induction value.
    fwd_iv: Option<ValueId>,
    /// Materialized FWD values (original value id → grad value id).
    memo: HashMap<ValueId, ValueId>,
    /// SSA adjoint accumulators for values defined in this body.
    adj_ssa: HashMap<ValueId, ValueId>,
    /// Linearized tape indices per innermost path loop.
    lin: HashMap<Option<LoopId>, ValueId>,
}

struct Gen<'a> {
    src: &'a Function,
    act: Activity,
    plan: TapePlan,
    g: Function,
    vmap: Vec<Option<ValueId>>,
    consts: HashMap<(bool, u64), ValueId>,
    shadows: HashMap<ArrayId, ArrayId>,
    tape_meta: Vec<TapeArrayInfo>,
    tape_slot: HashMap<ValueId, usize>,
    loop_map: HashMap<LoopId, LoopId>,
    fwd_loop_of: HashMap<LoopId, LoopId>,
    adj_cells: HashMap<ValueId, ArrayId>,
    stats: AdStats,
    fwd_stack: Vec<(LoopId, FwdFrame)>,
    rev_stack: Vec<RevFrame>,
    spans: SpanTable,
}

impl<'a> Gen<'a> {
    fn new(src: &'a Function, opts: &AdOptions, act: Activity, plan: TapePlan) -> Self {
        let mut g = Function::new(format!("grad_{}", src.name));
        for a in src.arrays() {
            let id = g.add_array(a.name.clone(), a.len, a.kind, a.elem);
            if let Some(r) = a.range {
                g.set_array_range(id, r);
            }
        }
        let mut shadows = HashMap::new();
        // Shadows for wrt (gradient outputs) and seeds (reverse inputs)
        // are created eagerly so callers can address them.
        for &a in opts.wrt.iter().chain(&opts.seeds) {
            shadows.entry(a).or_insert_with(|| {
                let d = src.array(a);
                g.add_array(
                    format!("d_{}", d.name),
                    d.len,
                    ArrayKind::Shadow,
                    Scalar::F64,
                )
            });
        }
        Gen {
            src,
            act,
            plan,
            g,
            vmap: vec![None; src.values().len()],
            consts: HashMap::new(),
            shadows,
            tape_meta: Vec::new(),
            tape_slot: HashMap::new(),
            loop_map: HashMap::new(),
            fwd_loop_of: HashMap::new(),
            adj_cells: HashMap::new(),
            stats: AdStats::default(),
            fwd_stack: Vec::new(),
            rev_stack: Vec::new(),
            spans: SpanTable::default(),
        }
    }

    fn run(&mut self) -> Result<Gradient, AdError> {
        // Everything this generator emits is AD-created; the per-source-
        // statement walks below refine the template with the primal
        // instruction each emission descends from.
        self.g.set_prov_ctx(Provenance::created_by("ad"));
        let src_body = self.src.body.clone();
        let mut body = Vec::new();
        self.gen_fwd(&src_body, &mut body);
        // The phase barrier belongs to no single primal op.
        self.g.set_prov_ctx(Provenance::created_by("ad"));
        let (bar, _) = self.g.add_inst(Op::Barrier, vec![]);
        body.push(Stmt::Inst(bar));
        self.rev_stack.push(RevFrame::default());
        let mut rev = Vec::new();
        self.gen_rev(&src_body, &mut rev);
        self.rev_stack.pop();
        body.extend(rev);
        self.g.body = body;
        self.stats.recomputed_values = self.plan.count(Decision::Recompute);
        self.stats.adjoint_cells = self.adj_cells.len();
        tapeflow_ir::verify::verify(&self.g)?;
        Ok(Gradient {
            func: std::mem::replace(&mut self.g, Function::new("")),
            phase_barrier: bar,
            shadows: std::mem::take(&mut self.shadows),
            tapes: std::mem::take(&mut self.tape_meta),
            loop_map: std::mem::take(&mut self.loop_map),
            spans: std::mem::take(&mut self.spans),
            stats: self.stats,
        })
    }

    // ---- small emission helpers -----------------------------------------

    fn emit(&mut self, out: &mut Vec<Stmt>, op: Op, args: Vec<ValueId>) -> Option<ValueId> {
        let (i, r) = self.g.add_inst(op, args);
        out.push(Stmt::Inst(i));
        r
    }

    fn emit_r(&mut self, out: &mut Vec<Stmt>, op: Op, args: Vec<ValueId>) -> ValueId {
        self.emit(out, op, args).expect("op defines a result")
    }

    fn cf(&mut self, v: f64) -> ValueId {
        let key = (true, v.to_bits());
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.g.add_const(Const::F64(v));
        self.consts.insert(key, id);
        id
    }

    fn ci(&mut self, v: i64) -> ValueId {
        let key = (false, v as u64);
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.g.add_const(Const::I64(v));
        self.consts.insert(key, id);
        id
    }

    fn shadow(&mut self, arr: ArrayId) -> ArrayId {
        if let Some(&s) = self.shadows.get(&arr) {
            return s;
        }
        let d = self.src.array(arr);
        let s = self.g.add_array(
            format!("d_{}", d.name),
            d.len,
            ArrayKind::Shadow,
            Scalar::F64,
        );
        self.shadows.insert(arr, s);
        s
    }

    // ---- forward phase -----------------------------------------------------

    fn fwd_val(&mut self, v: ValueId) -> ValueId {
        match self.src.value(v).def {
            ValueDef::Const(Const::F64(c)) => self.cf(c),
            ValueDef::Const(Const::I64(c)) => self.ci(c),
            ValueDef::Iv(l) => {
                self.fwd_stack
                    .iter()
                    .find(|(ol, _)| *ol == l)
                    .expect("induction variable in scope")
                    .1
                    .grad_iv
            }
            ValueDef::Inst(_) => self.vmap[v.index()].expect("FWD value already cloned"),
        }
    }

    fn fwd_bound(&mut self, b: Bound) -> Bound {
        match b {
            Bound::Const(c) => Bound::Const(c),
            Bound::Value(v) => Bound::Value(self.fwd_val(v)),
        }
    }

    fn gen_fwd(&mut self, stmts: &[Stmt], out: &mut Vec<Stmt>) {
        let body_key = self.fwd_stack.last().map(|(ol, _)| self.fwd_loop_of[ol]);
        let mut spans = Vec::with_capacity(stmts.len());
        for (src_stmt, s) in stmts.iter().enumerate() {
            let start = out.len();
            match s {
                Stmt::Inst(id) => {
                    self.g
                        .set_prov_ctx(Provenance::created_by("ad").with_source(*id));
                    let inst = self.src.inst(*id).clone();
                    let args: Vec<ValueId> = inst.args.iter().map(|&a| self.fwd_val(a)).collect();
                    let (nid, res) = self.g.add_inst(inst.op, args);
                    out.push(Stmt::Inst(nid));
                    if let (Some(r0), Some(r)) = (inst.result, res) {
                        self.vmap[r0.index()] = Some(r);
                        match self.plan.decision(r0) {
                            Decision::Tape => self.emit_tape_store(r0, false, out),
                            Decision::TapeAsInt => self.emit_tape_store(r0, true, out),
                            _ => {}
                        }
                    }
                }
                Stmt::For { loop_id, body } => {
                    let info = self.src.loop_info(*loop_id).clone();
                    let start = self.fwd_bound(info.start);
                    let end = self.fwd_bound(info.end);
                    let (nlid, niv) = self.g.add_loop(info.name.clone(), start, end, info.step);
                    self.fwd_loop_of.insert(*loop_id, nlid);
                    self.fwd_stack.push((
                        *loop_id,
                        FwdFrame {
                            grad_iv: niv,
                            start: info.start.as_const().unwrap_or(0),
                            step: info.step,
                            trip: info.trip_count().unwrap_or(0),
                            lin: None,
                        },
                    ));
                    let mut inner = Vec::new();
                    self.gen_fwd(body, &mut inner);
                    self.fwd_stack.pop();
                    out.push(Stmt::For {
                        loop_id: nlid,
                        body: inner,
                    });
                }
            }
            spans.push(Span {
                src_stmt,
                start,
                end: out.len(),
            });
        }
        self.spans.fwd.insert(body_key, spans);
    }

    /// Emits the ordinal of the loop at `depth` of the FWD stack.
    fn fwd_ordinal(&mut self, depth: usize, out: &mut Vec<Stmt>) -> ValueId {
        let (_, f) = &self.fwd_stack[depth];
        let (iv, start, step) = (f.grad_iv, f.start, f.step);
        if start == 0 && step == 1 {
            return iv;
        }
        let s = self.ci(start);
        let d = self.emit_r(out, Op::ISub, vec![iv, s]);
        if step == 1 {
            d
        } else {
            let st = self.ci(step);
            self.emit_r(out, Op::IDiv, vec![d, st])
        }
    }

    /// Linearized tape index for the current FWD nest (memoized per body).
    fn fwd_lin(&mut self, out: &mut Vec<Stmt>) -> ValueId {
        if self.fwd_stack.is_empty() {
            return self.ci(0);
        }
        if let Some(l) = self.fwd_stack.last().unwrap().1.lin {
            return l;
        }
        let mut lin = self.fwd_ordinal(0, out);
        for d in 1..self.fwd_stack.len() {
            let trip = self.fwd_stack[d].1.trip as i64;
            let t = self.ci(trip);
            let m = self.emit_r(out, Op::IMul, vec![lin, t]);
            let o = self.fwd_ordinal(d, out);
            lin = self.emit_r(out, Op::IAdd, vec![m, o]);
        }
        self.fwd_stack.last_mut().unwrap().1.lin = Some(lin);
        lin
    }

    fn emit_tape_store(&mut self, orig: ValueId, as_int: bool, out: &mut Vec<Stmt>) {
        let trip_product: u64 = self.fwd_stack.iter().map(|(_, f)| f.trip.max(1)).product();
        let n = self.tape_meta.len();
        let arr = self.g.add_array(
            format!("T{n}"),
            trip_product as usize,
            ArrayKind::Tape,
            Scalar::F64,
        );
        let idx = self.fwd_lin(out);
        let mut val = self.vmap[orig.index()].expect("taped value cloned");
        if as_int {
            val = self.emit_r(out, Op::IToF, vec![val]);
        }
        let (store, _) = self.g.add_inst(Op::Store(arr), vec![idx, val]);
        out.push(Stmt::Inst(store));
        let fwd_loop_path = self.fwd_loop_of_path();
        self.tape_meta.push(TapeArrayInfo {
            array: arr,
            store,
            loads: Vec::new(),
            fwd_loop_path,
            trip_product,
            as_int,
        });
        self.tape_slot.insert(orig, n);
        self.stats.taped_values += 1;
        self.stats.tape_bytes += trip_product * 8;
    }

    fn fwd_loop_of_path(&self) -> Vec<LoopId> {
        self.fwd_stack
            .iter()
            .map(|(ol, _)| self.fwd_loop_of[ol])
            .collect()
    }

    // ---- reverse phase ---------------------------------------------------------

    fn gen_rev(&mut self, stmts: &[Stmt], out: &mut Vec<Stmt>) {
        let body_key = self.rev_stack.last().and_then(|f| f.rev_loop);
        let mut spans = Vec::with_capacity(stmts.len());
        let n = stmts.len();
        for (rev_pos, s) in stmts.iter().rev().enumerate() {
            let src_stmt = n - 1 - rev_pos;
            let start = out.len();
            match s {
                Stmt::For { loop_id, body } => {
                    if !plan::subtree_relevant(self.src, &self.act, &self.plan, body) {
                        continue;
                    }
                    let info = self.src.loop_info(*loop_id).clone();
                    let trip = info
                        .trip_count()
                        .expect("plan validated static trips for relevant loops");
                    if trip == 0 {
                        continue;
                    }
                    let (rlid, ord) = self.g.add_loop(
                        format!("r{}", info.name),
                        Bound::Const(trip as i64 - 1),
                        Bound::Const(-1),
                        -1,
                    );
                    if let Some(&flid) = self.fwd_loop_of.get(loop_id) {
                        self.loop_map.insert(flid, rlid);
                    }
                    self.rev_stack.push(RevFrame {
                        orig_loop: Some(*loop_id),
                        rev_loop: Some(rlid),
                        ord_iv: Some(ord),
                        start: info.start.as_const().expect("static"),
                        step: info.step,
                        trip,
                        ..RevFrame::default()
                    });
                    let mut inner = Vec::new();
                    self.gen_rev(body, &mut inner);
                    self.rev_stack.pop();
                    out.push(Stmt::For {
                        loop_id: rlid,
                        body: inner,
                    });
                }
                Stmt::Inst(id) => self.rev_inst(*id, out),
            }
            spans.push(Span {
                src_stmt,
                start,
                end: out.len(),
            });
        }
        self.spans.rev.insert(body_key, spans);
    }

    fn rev_inst(&mut self, id: InstId, out: &mut Vec<Stmt>) {
        // Adjoint code (including tape reloads and recomputation chains
        // emitted on its behalf) descends from the primal it reverses.
        self.g
            .set_prov_ctx(Provenance::created_by("ad").with_source(id));
        let inst = self.src.inst(id).clone();
        match inst.op {
            Op::Store(arr) => {
                if !self.act.array(arr) {
                    return;
                }
                let sh = self.shadow(arr);
                let idx = self.rev_val(inst.args[0], out);
                let cur = self.emit_r(out, Op::Load(sh), vec![idx]);
                let zero = self.cf(0.0);
                self.emit(out, Op::Store(sh), vec![idx, zero]);
                if self.act.value(inst.args[1]) {
                    self.accumulate(inst.args[1], cur, out);
                }
            }
            Op::Load(arr) => {
                let Some(r) = inst.result else { return };
                if !self.act.value(r) {
                    return;
                }
                let Some(a) = self.final_adjoint(r, out) else {
                    return;
                };
                let sh = self.shadow(arr);
                let idx = self.rev_val(inst.args[0], out);
                let cur = self.emit_r(out, Op::Load(sh), vec![idx]);
                let s = self.emit_r(out, Op::FAdd, vec![cur, a]);
                self.emit(out, Op::Store(sh), vec![idx, s]);
            }
            _ => {
                let Some(r) = inst.result else { return };
                if self.src.value(r).ty != Scalar::F64 || !self.act.value(r) {
                    return;
                }
                let Some(a) = self.final_adjoint(r, out) else {
                    return;
                };
                self.propagate(id, a, out);
            }
        }
    }

    /// Chain-rule propagation for one pure instruction with adjoint `a`.
    fn propagate(&mut self, id: InstId, a: ValueId, out: &mut Vec<Stmt>) {
        let inst = self.src.inst(id).clone();
        let args = inst.args.clone();
        let z = inst.result;
        use Op::*;
        macro_rules! active {
            ($v:expr) => {
                self.act.value($v)
            };
        }
        match inst.op {
            FAdd => {
                if active!(args[0]) {
                    self.accumulate(args[0], a, out);
                }
                if active!(args[1]) {
                    self.accumulate(args[1], a, out);
                }
            }
            FSub => {
                if active!(args[0]) {
                    self.accumulate(args[0], a, out);
                }
                if active!(args[1]) {
                    let n = self.emit_r(out, FNeg, vec![a]);
                    self.accumulate(args[1], n, out);
                }
            }
            FNeg => {
                if active!(args[0]) {
                    let n = self.emit_r(out, FNeg, vec![a]);
                    self.accumulate(args[0], n, out);
                }
            }
            FAbs => {
                if active!(args[0]) {
                    let rx = self.rev_val(args[0], out);
                    let zero = self.cf(0.0);
                    let one = self.cf(1.0);
                    let neg1 = self.cf(-1.0);
                    let c = self.emit_r(out, FCmp(CmpKind::Ge), vec![rx, zero]);
                    let sign = self.emit_r(out, Select, vec![c, one, neg1]);
                    let d = self.emit_r(out, FMul, vec![a, sign]);
                    self.accumulate(args[0], d, out);
                }
            }
            FMul => {
                if active!(args[0]) {
                    let ry = self.rev_val(args[1], out);
                    let d = self.emit_r(out, FMul, vec![a, ry]);
                    self.accumulate(args[0], d, out);
                }
                if active!(args[1]) {
                    let rx = self.rev_val(args[0], out);
                    let d = self.emit_r(out, FMul, vec![a, rx]);
                    self.accumulate(args[1], d, out);
                }
            }
            FDiv => {
                let ry = self.rev_val(args[1], out);
                if active!(args[0]) {
                    let d = self.emit_r(out, FDiv, vec![a, ry]);
                    self.accumulate(args[0], d, out);
                }
                if active!(args[1]) {
                    let rz = self.rev_val(z.expect("div has result"), out);
                    let az = self.emit_r(out, FMul, vec![a, rz]);
                    let q = self.emit_r(out, FDiv, vec![az, ry]);
                    let n = self.emit_r(out, FNeg, vec![q]);
                    self.accumulate(args[1], n, out);
                }
            }
            FMin | FMax => {
                let rx = self.rev_val(args[0], out);
                let ry = self.rev_val(args[1], out);
                let kind = if matches!(inst.op, FMin) {
                    CmpKind::Le
                } else {
                    CmpKind::Ge
                };
                let c = self.emit_r(out, FCmp(kind), vec![rx, ry]);
                let zero = self.cf(0.0);
                if active!(args[0]) {
                    let d = self.emit_r(out, Select, vec![c, a, zero]);
                    self.accumulate(args[0], d, out);
                }
                if active!(args[1]) {
                    let d = self.emit_r(out, Select, vec![c, zero, a]);
                    self.accumulate(args[1], d, out);
                }
            }
            Select => {
                let rc = self.rev_val(args[0], out);
                let zero = self.cf(0.0);
                if active!(args[1]) {
                    let d = self.emit_r(out, Select, vec![rc, a, zero]);
                    self.accumulate(args[1], d, out);
                }
                if active!(args[2]) {
                    let d = self.emit_r(out, Select, vec![rc, zero, a]);
                    self.accumulate(args[2], d, out);
                }
            }
            Sqrt => {
                if active!(args[0]) {
                    let rz = self.rev_val(z.expect("sqrt result"), out);
                    let two = self.cf(2.0);
                    let dz2 = self.emit_r(out, FMul, vec![two, rz]);
                    let d = self.emit_r(out, FDiv, vec![a, dz2]);
                    self.accumulate(args[0], d, out);
                }
            }
            Sin => {
                if active!(args[0]) {
                    let rx = self.rev_val(args[0], out);
                    let c = self.emit_r(out, Cos, vec![rx]);
                    let d = self.emit_r(out, FMul, vec![a, c]);
                    self.accumulate(args[0], d, out);
                }
            }
            Cos => {
                if active!(args[0]) {
                    let rx = self.rev_val(args[0], out);
                    let s = self.emit_r(out, Sin, vec![rx]);
                    let m = self.emit_r(out, FMul, vec![a, s]);
                    let d = self.emit_r(out, FNeg, vec![m]);
                    self.accumulate(args[0], d, out);
                }
            }
            Exp => {
                if active!(args[0]) {
                    let rz = self.rev_val(z.expect("exp result"), out);
                    let d = self.emit_r(out, FMul, vec![a, rz]);
                    self.accumulate(args[0], d, out);
                }
            }
            Ln => {
                if active!(args[0]) {
                    let rx = self.rev_val(args[0], out);
                    let d = self.emit_r(out, FDiv, vec![a, rx]);
                    self.accumulate(args[0], d, out);
                }
            }
            Tanh => {
                if active!(args[0]) {
                    let rz = self.rev_val(z.expect("tanh result"), out);
                    let one = self.cf(1.0);
                    let zz = self.emit_r(out, FMul, vec![rz, rz]);
                    let s = self.emit_r(out, FSub, vec![one, zz]);
                    let d = self.emit_r(out, FMul, vec![a, s]);
                    self.accumulate(args[0], d, out);
                }
            }
            FPow => {
                let rx = self.rev_val(args[0], out);
                let ry = self.rev_val(args[1], out);
                if active!(args[0]) {
                    let one = self.cf(1.0);
                    let ym1 = self.emit_r(out, FSub, vec![ry, one]);
                    let p = self.emit_r(out, FPow, vec![rx, ym1]);
                    let yp = self.emit_r(out, FMul, vec![ry, p]);
                    let d = self.emit_r(out, FMul, vec![a, yp]);
                    self.accumulate(args[0], d, out);
                }
                if active!(args[1]) {
                    let rz = self.rev_val(z.expect("pow result"), out);
                    let lx = self.emit_r(out, Ln, vec![rx]);
                    let zl = self.emit_r(out, FMul, vec![rz, lx]);
                    let d = self.emit_r(out, FMul, vec![a, zl]);
                    self.accumulate(args[1], d, out);
                }
            }
            // Integer ops, conversions from/to int, comparisons: no f64
            // adjoint flows through them.
            _ => {}
        }
    }

    // ---- adjoint accumulation --------------------------------------------------

    fn accumulate(&mut self, orig: ValueId, contrib: ValueId, out: &mut Vec<Stmt>) {
        if !matches!(self.src.value(orig).def, ValueDef::Inst(_)) {
            return; // constants and induction variables take no adjoint
        }
        if !self.act.value(orig) {
            return;
        }
        if self.plan.cell_needed(orig) {
            let cell = self.adj_cell(orig);
            let zero = self.ci(0);
            let cur = self.emit_r(out, Op::Load(cell), vec![zero]);
            let s = self.emit_r(out, Op::FAdd, vec![cur, contrib]);
            self.emit(out, Op::Store(cell), vec![zero, s]);
        } else {
            let frame = self.rev_stack.last_mut().expect("open rev frame");
            match frame.adj_ssa.get(&orig).copied() {
                None => {
                    frame.adj_ssa.insert(orig, contrib);
                }
                Some(cur) => {
                    let s = self.emit_r(out, Op::FAdd, vec![cur, contrib]);
                    self.rev_stack
                        .last_mut()
                        .expect("open rev frame")
                        .adj_ssa
                        .insert(orig, s);
                }
            }
        }
    }

    fn final_adjoint(&mut self, orig: ValueId, out: &mut Vec<Stmt>) -> Option<ValueId> {
        if self.plan.cell_needed(orig) {
            let cell = *self.adj_cells.get(&orig)?;
            let zero = self.ci(0);
            let cur = self.emit_r(out, Op::Load(cell), vec![zero]);
            let zf = self.cf(0.0);
            self.emit(out, Op::Store(cell), vec![zero, zf]);
            Some(cur)
        } else {
            self.rev_stack
                .last_mut()
                .expect("open rev frame")
                .adj_ssa
                .remove(&orig)
        }
    }

    fn adj_cell(&mut self, orig: ValueId) -> ArrayId {
        if let Some(&c) = self.adj_cells.get(&orig) {
            return c;
        }
        let n = self.adj_cells.len();
        let c = self
            .g
            .add_array(format!("adj{n}"), 1, ArrayKind::Shadow, Scalar::F64);
        self.adj_cells.insert(orig, c);
        c
    }

    // ---- FWD value materialization in REV -----------------------------------

    fn rev_val(&mut self, orig: ValueId, out: &mut Vec<Stmt>) -> ValueId {
        match self.src.value(orig).def {
            ValueDef::Const(Const::F64(c)) => return self.cf(c),
            ValueDef::Const(Const::I64(c)) => return self.ci(c),
            ValueDef::Iv(l) => return self.rev_iv(l, out),
            ValueDef::Inst(_) => {}
        }
        for f in self.rev_stack.iter().rev() {
            if let Some(&v) = f.memo.get(&orig) {
                return v;
            }
        }
        let v = match self.plan.decision(orig) {
            Decision::Recompute => self.rev_recompute(orig, out),
            Decision::Tape => self.rev_tape_load(orig, false, out),
            Decision::TapeAsInt => self.rev_tape_load(orig, true, out),
            Decision::NotNeeded => {
                panic!("value {orig} required by REV but not planned (autodiff bug)")
            }
        };
        self.rev_stack
            .last_mut()
            .expect("open rev frame")
            .memo
            .insert(orig, v);
        v
    }

    fn rev_iv(&mut self, l: LoopId, out: &mut Vec<Stmt>) -> ValueId {
        let pos = self
            .rev_stack
            .iter()
            .position(|f| f.orig_loop == Some(l))
            .expect("loop mirrored in REV");
        if let Some(v) = self.rev_stack[pos].fwd_iv {
            return v;
        }
        let (ord, start, step) = {
            let f = &self.rev_stack[pos];
            (f.ord_iv.expect("rev loop has ordinal"), f.start, f.step)
        };
        let v = if start == 0 && step == 1 {
            ord
        } else {
            let st = self.ci(step);
            let m = self.emit_r(out, Op::IMul, vec![ord, st]);
            let s = self.ci(start);
            self.emit_r(out, Op::IAdd, vec![m, s])
        };
        self.rev_stack[pos].fwd_iv = Some(v);
        v
    }

    fn rev_recompute(&mut self, orig: ValueId, out: &mut Vec<Stmt>) -> ValueId {
        let ValueDef::Inst(i) = self.src.value(orig).def else {
            unreachable!("recompute of non-inst handled earlier")
        };
        let inst = self.src.inst(i).clone();
        let args: Vec<ValueId> = inst.args.iter().map(|&x| self.rev_val(x, out)).collect();
        self.emit_r(out, inst.op, args)
    }

    /// Loads a taped value back; `as_int` converts it with `ftoi`.
    fn rev_tape_load(&mut self, orig: ValueId, as_int: bool, out: &mut Vec<Stmt>) -> ValueId {
        let slot = *self
            .tape_slot
            .get(&orig)
            .unwrap_or_else(|| panic!("taped value {orig} has no tape array (autodiff bug)"));
        let path: Vec<LoopId> = {
            let ValueDef::Inst(i) = self.src.value(orig).def else {
                unreachable!("taped values are inst-defined")
            };
            self.plan.path_of(i).to_vec()
        };
        let idx = self.rev_lin(&path, out);
        let arr = self.tape_meta[slot].array;
        let (load, res) = self.g.add_inst(Op::Load(arr), vec![idx]);
        out.push(Stmt::Inst(load));
        self.tape_meta[slot].loads.push(load);
        let mut v = res.expect("load result");
        if as_int {
            v = self.emit_r(out, Op::FToI, vec![v]);
        }
        v
    }

    /// Linearized tape index from REV ordinals for an original loop path.
    fn rev_lin(&mut self, path: &[LoopId], out: &mut Vec<Stmt>) -> ValueId {
        let key = path.last().copied();
        for f in self.rev_stack.iter().rev() {
            if let Some(&v) = f.lin.get(&key) {
                return v;
            }
        }
        let v = if path.is_empty() {
            self.ci(0)
        } else {
            let frame_of = |me: &Self, l: LoopId| -> (ValueId, u64) {
                let f = me
                    .rev_stack
                    .iter()
                    .find(|f| f.orig_loop == Some(l))
                    .expect("path loop mirrored");
                (f.ord_iv.expect("ordinal"), f.trip)
            };
            let (mut lin, _) = frame_of(self, path[0]);
            for &l in &path[1..] {
                let (o, trip) = frame_of(self, l);
                let t = self.ci(trip as i64);
                let m = self.emit_r(out, Op::IMul, vec![lin, t]);
                lin = self.emit_r(out, Op::IAdd, vec![m, o]);
            }
            lin
        };
        self.rev_stack
            .last_mut()
            .expect("open rev frame")
            .lin
            .insert(key, v);
        v
    }
}
