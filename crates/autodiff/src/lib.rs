//! # tapeflow-autodiff
//!
//! Reverse-mode automatic differentiation over the Tapeflow IR — the
//! repository's substitute for [Enzyme] in the paper *Tapeflow: Streaming
//! Gradient Tapes in Automatic Differentiation*.
//!
//! Given a pure forward function, [`differentiate`] produces a **gradient
//! function** with the exact structure the paper's Figure 1.2 describes:
//!
//! 1. a **forward phase (FWD)** — the original body, augmented with
//!    *tape stores* that save the SSA intermediates the reverse phase
//!    will need (one struct-of-arrays tape array per taped value, exactly
//!    Enzyme's baseline layout that Tapeflow's Pass 1 later rewrites);
//! 2. a phase **barrier**;
//! 3. a **reverse phase (REV)** — mirrored loops running backwards,
//!    computing adjoints with the chain rule, reading tape values back
//!    and accumulating gradients into *shadow* arrays (`d_x`).
//!
//! Like Enzyme at `-O3 -mem2reg`, the transform minimizes the tape: values
//! that can be *recomputed* in REV (constants, induction variables,
//! integer address arithmetic, loads from read-only inputs and pure
//! chains over those) are rematerialized instead of taped
//! ([`TapePolicy::Minimal`]); only genuinely forward-only state hits the
//! tape. [`TapePolicy::All`] tapes every needed value, modelling
//! operator-overloading-style AD for ablations.
//!
//! The crate also exports the `FtoR`-style maps the Tapeflow compiler
//! passes require (FWD loop → REV loop, tape store → tape loads) and a
//! finite-difference [gradient checker](gradcheck) used pervasively by
//! the test suite.
//!
//! ## Example
//!
//! ```rust
//! use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar};
//! use tapeflow_autodiff::{differentiate, AdOptions};
//!
//! // loss = sum_i x[i]^2
//! let mut b = FunctionBuilder::new("sumsq");
//! let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
//! let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
//! b.for_loop("i", 0, 4, |b, i| {
//!     let v = b.load(x, i);
//!     let sq = b.fmul(v, v);
//!     let z = b.i64(0);
//!     let cur = b.load(loss, z);
//!     let s = b.fadd(cur, sq);
//!     b.store(loss, z, s);
//! });
//! let f = b.finish();
//!
//! let grad = differentiate(&f, &AdOptions::new(vec![x], vec![loss])).unwrap();
//! let mut mem = Memory::for_function(&grad.func);
//! mem.set_f64(x, &[1.0, 2.0, 3.0, 4.0]);
//! mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0); // seed d_loss = 1
//! tapeflow_ir::interp::run(&grad.func, &mut mem).unwrap();
//! let d_x = mem.get_f64(grad.shadow_of(x).unwrap());
//! assert_eq!(d_x, vec![2.0, 4.0, 6.0, 8.0]); // d/dx_i = 2 x_i
//! ```
//!
//! [Enzyme]: https://enzyme.mit.edu

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod checkpoint;
pub mod gradcheck;
pub mod plan;
pub mod reverse;

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tapeflow_ir::{ArrayId, Function, InstId, LoopId};

/// How aggressively to keep values off the tape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TapePolicy {
    /// Ideal-alias-analysis minimization: recompute/reload whatever is
    /// cheap (constants, induction variables, integer chains, read-only
    /// input loads); tape only forward-only floating-point state.
    #[default]
    Minimal,
    /// Enzyme-realistic: recompute index math, induction variables and
    /// constants, but **tape** needed floating-point loads instead of
    /// re-loading them — what Enzyme's conservative aliasing does in
    /// practice (the paper's Figure 3.2 tapes SSA values over read-only
    /// inputs). The benchmarks default to this.
    Conservative,
    /// Tape every value the reverse pass needs, even recomputable ones —
    /// models operator-overloading AD; used for ablations.
    All,
}

/// Options for [`differentiate`].
#[derive(Clone, Debug)]
pub struct AdOptions {
    /// Arrays to differentiate **with respect to**; each gets a shadow
    /// output `d_<name>`.
    pub wrt: Vec<ArrayId>,
    /// Output arrays whose shadows **seed** the reverse pass (the caller
    /// sets e.g. `d_loss[0] = 1` before running the gradient function).
    pub seeds: Vec<ArrayId>,
    /// Tape policy.
    pub policy: TapePolicy,
}

impl AdOptions {
    /// Differentiate w.r.t. `wrt`, seeding from the shadows of `seeds`,
    /// with the default [`TapePolicy::Minimal`].
    pub fn new(wrt: Vec<ArrayId>, seeds: Vec<ArrayId>) -> Self {
        AdOptions {
            wrt,
            seeds,
            policy: TapePolicy::Minimal,
        }
    }

    /// Overrides the tape policy.
    pub fn with_policy(mut self, policy: TapePolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Metadata about one tape array (one taped SSA value), consumed by the
/// Tapeflow compiler's Pass 1 when merging struct-of-arrays tapes into
/// array-of-structs regions.
#[derive(Clone, Debug)]
pub struct TapeArrayInfo {
    /// The tape array in the gradient function.
    pub array: ArrayId,
    /// The FWD tape-store instruction (gradient function ids).
    pub store: InstId,
    /// The REV tape-load instructions (one per consuming scope).
    pub loads: Vec<InstId>,
    /// The FWD loop nest enclosing the store, outermost first (gradient
    /// function loop ids). Empty for top-level stores.
    pub fwd_loop_path: Vec<LoopId>,
    /// Product of the nest's trip counts (= the tape array's length).
    pub trip_product: u64,
    /// True when the taped value is an integer stored through `itof`.
    pub as_int: bool,
}

/// Statistics about the transform, for reporting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdStats {
    /// Values stored to the tape.
    pub taped_values: usize,
    /// Values the reverse pass rematerializes instead of taping.
    pub recomputed_values: usize,
    /// Total tape bytes allocated.
    pub tape_bytes: u64,
    /// Adjoint accumulator cells spilled to memory (cross-scope adjoints).
    pub adjoint_cells: usize,
}

/// A contiguous range of generated statements that one source statement
/// expanded into (tape stores ride along with their defining statement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Index of the statement in the *source* function's body (at the
    /// same nesting level).
    pub src_stmt: usize,
    /// Start index (inclusive) in the generated body.
    pub start: usize,
    /// End index (exclusive) in the generated body.
    pub end: usize,
}

/// Statement-correspondence tables between the source body and the
/// generated FWD/REV bodies, keyed by the generated loop enclosing the
/// body (`None` = function root). Used by `tapeflow-core`'s Pass 2 to cut
/// layers at mirrored statement boundaries.
#[derive(Clone, Debug, Default)]
pub struct SpanTable {
    /// Spans of each FWD body, in emission (= source) order.
    pub fwd: HashMap<Option<LoopId>, Vec<Span>>,
    /// Spans of each REV body, in emission (= reversed source) order.
    pub rev: HashMap<Option<LoopId>, Vec<Span>>,
}

/// The result of [`differentiate`]: the gradient function plus the
/// compile-time maps the paper's passes rely on ("the compiler has
/// perfect alias information about the tape", Obs 2.1).
#[derive(Clone, Debug)]
pub struct Gradient {
    /// The gradient function. Array ids of the original function are
    /// preserved; shadow and tape arrays are appended after them.
    pub func: Function,
    /// The barrier instruction separating FWD from REV (pass it to
    /// [`tapeflow_ir::trace::TraceOptions`]'s `phase_barrier`).
    pub phase_barrier: InstId,
    /// Original array → shadow array.
    pub shadows: HashMap<ArrayId, ArrayId>,
    /// Tape metadata, one entry per taped SSA value.
    pub tapes: Vec<TapeArrayInfo>,
    /// FWD loop → REV loop (gradient-function loop ids): the loop half of
    /// the paper's `FtoR` map.
    pub loop_map: HashMap<LoopId, LoopId>,
    /// Statement correspondence between source, FWD and REV bodies.
    pub spans: SpanTable,
    /// Transform statistics.
    pub stats: AdStats,
}

impl Gradient {
    /// Shadow array of an original array, if one was created.
    pub fn shadow_of(&self, original: ArrayId) -> Option<ArrayId> {
        self.shadows.get(&original).copied()
    }

    /// Builds a memory image for the gradient function, copying the
    /// contents of every original array from `orig_mem` (valid because
    /// original array ids are preserved).
    pub fn prepare_memory(
        &self,
        orig_func: &Function,
        orig_mem: &tapeflow_ir::Memory,
    ) -> tapeflow_ir::Memory {
        let mut mem = tapeflow_ir::Memory::for_function(&self.func);
        for i in 0..orig_func.arrays().len() {
            mem.clone_array_from(orig_mem, ArrayId::new(i));
        }
        mem
    }

    /// Total tape elements across all tape arrays.
    pub fn tape_elems(&self) -> u64 {
        self.tapes.iter().map(|t| t.trip_product).sum()
    }
}

/// Errors raised by [`differentiate`].
#[derive(Clone, Debug, PartialEq)]
pub enum AdError {
    /// A loop that must be reversed or taped has a runtime-computed bound.
    DynamicLoopBound {
        /// Loop name in the original function.
        loop_name: String,
    },
    /// The input already contains tape/scratchpad/stream operations.
    NotAPureFunction(InstId),
    /// The input failed verification.
    Invalid(tapeflow_ir::verify::VerifyError),
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdError::DynamicLoopBound { loop_name } => write!(
                f,
                "loop {loop_name} has a runtime bound; reverse-mode AD requires static trip counts"
            ),
            AdError::NotAPureFunction(i) => {
                write!(
                    f,
                    "instruction {i} is a tape/scratchpad/stream op; differentiate pure functions only"
                )
            }
            AdError::Invalid(e) => write!(f, "input function is invalid: {e}"),
        }
    }
}

impl Error for AdError {}

impl From<tapeflow_ir::verify::VerifyError> for AdError {
    fn from(e: tapeflow_ir::verify::VerifyError) -> Self {
        AdError::Invalid(e)
    }
}

pub use reverse::differentiate;
