//! Activity analysis: which values and arrays carry derivative
//! information from the `wrt` inputs.
//!
//! Forward data-flow fixpoint over the whole function (statements inside
//! loops can activate earlier loads through memory, so the body is swept
//! until stable). Conservative in the Enzyme sense: over-approximating
//! activity only grows the tape, never breaks correctness.

use crate::AdOptions;
use tapeflow_ir::function::{Stmt, ValueDef};
use tapeflow_ir::{ArrayId, Function, Op, Scalar, ValueId};

/// Result of activity analysis.
#[derive(Clone, Debug)]
pub struct Activity {
    value_active: Vec<bool>,
    array_active: Vec<bool>,
}

impl Activity {
    /// True when derivative information can flow through `v`.
    #[inline]
    pub fn value(&self, v: ValueId) -> bool {
        self.value_active[v.index()]
    }

    /// True when the array can hold active data.
    #[inline]
    pub fn array(&self, a: ArrayId) -> bool {
        self.array_active[a.index()]
    }

    /// Number of active values (for tests/reporting).
    pub fn active_value_count(&self) -> usize {
        self.value_active.iter().filter(|&&b| b).count()
    }
}

/// Runs the fixpoint. Only `f64` values can be active; integer values
/// never carry derivatives.
pub fn analyze(func: &Function, opts: &AdOptions) -> Activity {
    let mut act = Activity {
        value_active: vec![false; func.values().len()],
        array_active: vec![false; func.arrays().len()],
    };
    for &a in &opts.wrt {
        act.array_active[a.index()] = true;
    }
    loop {
        let mut changed = false;
        sweep(func, &func.body, &mut act, &mut changed);
        if !changed {
            break;
        }
    }
    act
}

fn sweep(func: &Function, stmts: &[Stmt], act: &mut Activity, changed: &mut bool) {
    for s in stmts {
        match s {
            Stmt::For { body, .. } => sweep(func, body, act, changed),
            Stmt::Inst(id) => {
                let inst = func.inst(*id);
                match inst.op {
                    Op::Load(arr) => {
                        if act.array_active[arr.index()] {
                            if let Some(r) = inst.result {
                                set(&mut act.value_active, r, changed);
                            }
                        }
                    }
                    Op::Store(arr) => {
                        if act.value_active[inst.args[1].index()] && !act.array_active[arr.index()]
                        {
                            act.array_active[arr.index()] = true;
                            *changed = true;
                        }
                    }
                    _ => {
                        let Some(r) = inst.result else { continue };
                        if func.value(r).ty != Scalar::F64 {
                            continue;
                        }
                        // Select's condition (i64) cannot be active;
                        // activity flows from the f64 branches only.
                        let any_active = inst.args.iter().any(|a| act.value_active[a.index()]);
                        if any_active {
                            set(&mut act.value_active, r, changed);
                        }
                    }
                }
            }
        }
    }
}

fn set(slots: &mut [bool], v: ValueId, changed: &mut bool) {
    if !slots[v.index()] {
        slots[v.index()] = true;
        *changed = true;
    }
}

/// True when `v` is defined by an instruction (not a constant or an
/// induction variable), i.e. can receive an adjoint.
pub fn is_inst_defined(func: &Function, v: ValueId) -> bool {
    matches!(func.value(v).def, ValueDef::Inst(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_ir::{ArrayKind, FunctionBuilder};

    #[test]
    fn activity_flows_through_memory() {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", 4, ArrayKind::Input, Scalar::F64);
        let tmp = b.array("tmp", 4, ArrayKind::Temp, Scalar::F64);
        let out = b.array("out", 4, ArrayKind::Output, Scalar::F64);
        let mut loaded_y = None;
        let mut through = None;
        b.for_loop("i", 0, 4, |b, i| {
            let v = b.load(x, i);
            b.store(tmp, i, v);
        });
        b.for_loop("j", 0, 4, |b, j| {
            let t = b.load(tmp, j);
            through = Some(t);
            let yv = b.load(y, j);
            loaded_y = Some(yv);
            let s = b.fmul(t, yv);
            b.store(out, j, s);
        });
        let f = b.finish();
        let act = analyze(&f, &AdOptions::new(vec![x], vec![out]));
        // x -> tmp -> t -> s -> out is active even though the store to tmp
        // appears before the load in a later loop.
        assert!(act.array(tmp));
        assert!(act.array(out));
        assert!(act.value(through.unwrap()));
        // y was not in wrt: its loads are inactive.
        assert!(!act.array(y));
        assert!(!act.value(loaded_y.unwrap()));
    }

    #[test]
    fn cycles_through_cells_converge() {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        let acc = b.cell_f64("acc", 0.0);
        b.for_loop("i", 0, 4, |b, i| {
            let v = b.load(x, i);
            let c = b.load_cell(acc);
            let s = b.fadd(c, v);
            b.store_cell(acc, s);
        });
        let f = b.finish();
        let act = analyze(&f, &AdOptions::new(vec![x], vec![acc]));
        assert!(act.array(acc));
    }

    #[test]
    fn integers_never_active() {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        let mut idx = None;
        b.for_loop("i", 0, 4, |b, i| {
            let two = b.i64(2);
            let j = b.imul(i, two);
            idx = Some(j);
            let four = b.i64(4);
            let j4 = b.irem(j, four);
            let _ = b.load(x, j4);
        });
        let f = b.finish();
        let act = analyze(&f, &AdOptions::new(vec![x], vec![]));
        assert!(!act.value(idx.unwrap()));
    }
}
