//! Tape planning: which forward values the reverse pass needs, and
//! whether each is **taped** or **recomputed**.
//!
//! This is the Enzyme-substitute's "minimize the tape" stage (paper
//! §2.2.1): address arithmetic, induction variables, constants and loads
//! from read-only inputs are rematerialized in REV; genuinely
//! forward-only floating-point state is taped, one struct-of-arrays tape
//! array per value.

use crate::activity::Activity;
use crate::{AdError, AdOptions, TapePolicy};
use tapeflow_ir::function::{Stmt, ValueDef};
use tapeflow_ir::{Function, InstId, LoopId, Op, Scalar, ValueId};

/// Per-value reverse-pass plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Decision {
    /// Not needed by the reverse pass.
    #[default]
    NotNeeded,
    /// Rematerialized in the reverse pass (constants, induction
    /// variables, integer chains, read-only input loads).
    Recompute,
    /// Stored to a tape array in FWD, loaded in REV.
    Tape,
    /// An `i64` value stored to the `f64` tape through `itof` and
    /// restored with `ftoi`.
    TapeAsInt,
}

/// Output of [`build`].
#[derive(Clone, Debug)]
pub struct TapePlan {
    decisions: Vec<Decision>,
    cell_needed: Vec<bool>,
    /// Loop path (original loop ids, outermost first) of each instruction.
    inst_paths: Vec<Vec<LoopId>>,
}

impl TapePlan {
    /// The plan for one value.
    #[inline]
    pub fn decision(&self, v: ValueId) -> Decision {
        self.decisions[v.index()]
    }

    /// True when the value's adjoint must be accumulated in a memory cell
    /// (it has uses in scopes deeper than its definition).
    #[inline]
    pub fn cell_needed(&self, v: ValueId) -> bool {
        self.cell_needed[v.index()]
    }

    /// Loop path of an instruction (original loop ids, outermost first).
    #[inline]
    pub fn path_of(&self, i: InstId) -> &[LoopId] {
        &self.inst_paths[i.index()]
    }

    /// Count of values with a given decision.
    pub fn count(&self, d: Decision) -> usize {
        self.decisions.iter().filter(|&&x| x == d).count()
    }
}

struct Walker<'f> {
    func: &'f Function,
    /// Body id in which each value is defined (values defined at depth 0
    /// get body 0; constants stay `u32::MAX` = everywhere).
    def_body: Vec<u32>,
    cell_needed: Vec<bool>,
    inst_paths: Vec<Vec<LoopId>>,
    next_body: u32,
}

impl Walker<'_> {
    fn walk(&mut self, stmts: &[Stmt], body: u32, path: &mut Vec<LoopId>) {
        for s in stmts {
            match s {
                Stmt::Inst(id) => {
                    let inst = self.func.inst(*id);
                    self.inst_paths[id.index()] = path.clone();
                    for &a in &inst.args {
                        // A use in a body other than the def body forces a
                        // memory cell for the adjoint accumulator.
                        if matches!(self.func.value(a).def, ValueDef::Inst(_))
                            && self.def_body[a.index()] != u32::MAX
                            && self.def_body[a.index()] != body
                        {
                            self.cell_needed[a.index()] = true;
                        }
                    }
                    if let Some(r) = inst.result {
                        self.def_body[r.index()] = body;
                    }
                }
                Stmt::For { loop_id, body: b } => {
                    let id = self.next_body;
                    self.next_body += 1;
                    path.push(*loop_id);
                    self.walk(b, id, path);
                    path.pop();
                }
            }
        }
    }
}

/// Values the adjoint of `inst` (with an active result / active array)
/// reads from the forward execution — refined by operand activity so
/// e.g. `z = c * x` with inactive `c` tapes nothing (the partial into
/// `x` is just `dz * c`).
fn formula_needs(func: &Function, act: &Activity, id: InstId, needs: &mut Vec<ValueId>) {
    let inst = func.inst(id);
    let a = &inst.args;
    let active = |v: ValueId| act.value(v);
    use Op::*;
    match inst.op {
        FMul => {
            if active(a[0]) {
                needs.push(a[1]);
            }
            if active(a[1]) {
                needs.push(a[0]);
            }
        }
        // Routing needs the predicate over both operand values.
        FMin | FMax if active(a[0]) || active(a[1]) => needs.extend([a[0], a[1]]),
        FDiv => {
            if active(a[0]) {
                needs.push(a[1]);
            }
            if active(a[1]) {
                needs.push(a[1]);
                needs.extend(inst.result);
            }
        }
        Select if active(a[1]) || active(a[2]) => needs.push(a[0]),
        Sqrt | Exp | Tanh if active(a[0]) => needs.extend(inst.result),
        Sin | Cos | Ln | FAbs if active(a[0]) => needs.push(a[0]),
        FPow => {
            if active(a[0]) {
                needs.extend([a[0], a[1]]);
            }
            if active(a[1]) {
                needs.push(a[0]);
                needs.extend(inst.result);
            }
        }
        Load(_) | Store(_) => needs.push(a[0]), // the index
        _ => {}
    }
}

fn can_recompute(func: &Function, v: ValueId, allow_reload: bool, memo: &mut [i8]) -> bool {
    match memo[v.index()] {
        1 => return true,
        -1 => return false,
        _ => {}
    }
    let ok = match func.value(v).def {
        ValueDef::Const(_) | ValueDef::Iv(_) => true,
        ValueDef::Inst(i) => {
            let inst = func.inst(i);
            use Op::*;
            match inst.op {
                // Reload unmodified memory (only under ideal aliasing;
                // integer index arrays are always reloadable — indices
                // cannot live on the f64 tape anyway).
                Load(arr) => {
                    let decl = func.array(arr);
                    (allow_reload || decl.elem == Scalar::I64)
                        && decl.kind.is_read_only()
                        && can_recompute(func, inst.args[0], allow_reload, memo)
                }
                // Address/integer chains and comparisons over recomputable
                // operands.
                IAdd | ISub | IMul | IDiv | IRem | IMin | IMax | ICmp(_) | FCmp(_) | IToF
                | FToI => inst
                    .args
                    .iter()
                    .all(|&x| can_recompute(func, x, allow_reload, memo)),
                _ => false,
            }
        }
    };
    memo[v.index()] = if ok { 1 } else { -1 };
    ok
}

/// Builds the tape plan.
///
/// # Errors
///
/// Returns [`AdError::DynamicLoopBound`] when a loop that encloses
/// reverse-relevant work has a runtime bound.
pub fn build(func: &Function, act: &Activity, opts: &AdOptions) -> Result<TapePlan, AdError> {
    let nvals = func.values().len();
    let mut walker = Walker {
        func,
        def_body: vec![u32::MAX; nvals],
        cell_needed: vec![false; nvals],
        inst_paths: vec![Vec::new(); func.insts().len()],
        next_body: 1,
    };
    let mut path = Vec::new();
    walker.walk(&func.body, 0, &mut path);
    let Walker {
        cell_needed,
        inst_paths,
        ..
    } = walker;

    // Collect the needed set.
    let mut needed = vec![false; nvals];
    for (i, inst) in func.insts().iter().enumerate() {
        let id = InstId::new(i);
        let relevant = match inst.op {
            Op::Store(arr) => act.array(arr),
            _ => inst.result.is_some_and(|r| act.value(r)),
        };
        if !relevant {
            continue;
        }
        let mut needs = Vec::new();
        formula_needs(func, act, id, &mut needs);
        for v in needs {
            needed[v.index()] = true;
        }
    }

    // Decide tape vs recompute.
    let allow_reload = opts.policy == TapePolicy::Minimal;
    let mut memo = vec![0i8; nvals];
    let mut decisions = vec![Decision::NotNeeded; nvals];
    for v in 0..nvals {
        if !needed[v] {
            continue;
        }
        let vid = ValueId::new(v);
        let rec = can_recompute(func, vid, allow_reload, &mut memo);
        let is_inst = matches!(func.value(vid).def, ValueDef::Inst(_));
        decisions[v] = match (opts.policy, rec, func.value(vid).ty) {
            // `All` tapes every inst-defined f64, recomputable or not.
            (TapePolicy::All, _, Scalar::F64) if is_inst => Decision::Tape,
            (_, true, _) => Decision::Recompute,
            (_, false, Scalar::F64) => Decision::Tape,
            (_, false, Scalar::I64) => Decision::TapeAsInt,
        };
    }

    // Close the plan over recomputation: the reverse pass materializes a
    // Recompute value by re-emitting its defining chain, so every
    // transitive operand of a recomputed value needs a plan too (always
    // Recompute — the closure property of `can_recompute` guarantees it).
    let mut work: Vec<ValueId> = decisions
        .iter()
        .enumerate()
        .filter(|(_, d)| **d == Decision::Recompute)
        .map(|(i, _)| ValueId::new(i))
        .collect();
    while let Some(v) = work.pop() {
        let ValueDef::Inst(i) = func.value(v).def else {
            continue;
        };
        for &a in &func.inst(i).args {
            if matches!(func.value(a).def, ValueDef::Inst(_))
                && decisions[a.index()] == Decision::NotNeeded
            {
                debug_assert!(can_recompute(func, a, allow_reload, &mut memo));
                decisions[a.index()] = Decision::Recompute;
                work.push(a);
            }
        }
    }

    // Validate static trip counts: every loop enclosing either a taped
    // store site or reverse-relevant work must have a constant trip count.
    let plan = TapePlan {
        decisions,
        cell_needed,
        inst_paths,
    };
    validate_static_trips(func, act, &plan, &func.body)?;
    Ok(plan)
}

fn validate_static_trips(
    func: &Function,
    act: &Activity,
    plan: &TapePlan,
    stmts: &[Stmt],
) -> Result<(), AdError> {
    for s in stmts {
        if let Stmt::For { loop_id, body } = s {
            let info = func.loop_info(*loop_id);
            if info.trip_count().is_none() && subtree_relevant(func, act, plan, body) {
                return Err(AdError::DynamicLoopBound {
                    loop_name: info.name.clone(),
                });
            }
            validate_static_trips(func, act, plan, body)?;
        }
    }
    Ok(())
}

/// True when the reverse pass must mirror this subtree.
pub fn subtree_relevant(func: &Function, act: &Activity, plan: &TapePlan, stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Inst(id) => {
            let inst = func.inst(*id);
            match inst.op {
                Op::Store(arr) => act.array(arr),
                _ => inst.result.is_some_and(|r| {
                    act.value(r) || matches!(plan.decision(r), Decision::Tape | Decision::TapeAsInt)
                }),
            }
        }
        Stmt::For { body, .. } => subtree_relevant(func, act, plan, body),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity;
    use tapeflow_ir::{ArrayKind, Bound, FunctionBuilder};

    #[test]
    fn mul_operands_are_taped_input_loads_recomputed() {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        let out = b.array("o", 4, ArrayKind::Output, Scalar::F64);
        let mut captured = (None, None);
        b.for_loop("i", 0, 4, |b, i| {
            let v = b.load(x, i);
            let e = b.exp(v);
            let sq = b.fmul(e, e);
            captured = (Some(v), Some(e));
            b.store(out, i, sq);
        });
        let f = b.finish();
        let opts = AdOptions::new(vec![x], vec![out]);
        let act = activity::analyze(&f, &opts);
        let plan = build(&f, &act, &opts).unwrap();
        let (v, e) = (captured.0.unwrap(), captured.1.unwrap());
        // exp's result is needed (adjoint of exp and of the mul): taped.
        assert_eq!(plan.decision(e), Decision::Tape);
        // The input load is needed by exp's adjoint? exp needs its result,
        // not its argument — so v is needed only if some formula asks; the
        // mul needs e (taped). v itself: NotNeeded or Recompute.
        assert_ne!(plan.decision(v), Decision::Tape);
    }

    #[test]
    fn indices_recomputed_not_taped() {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 16, ArrayKind::Input, Scalar::F64);
        let out = b.array("o", 16, ArrayKind::Output, Scalar::F64);
        let mut idx = None;
        b.for_loop("i", 0, 4, |b, i| {
            b.for_loop("j", 0, 4, |b, j| {
                let k = b.idx2(i, 4, j);
                idx = Some(k);
                let v = b.load(x, k);
                let w = b.fmul(v, v);
                b.store(out, k, w);
            });
        });
        let f = b.finish();
        let opts = AdOptions::new(vec![x], vec![out]);
        let act = activity::analyze(&f, &opts);
        let plan = build(&f, &act, &opts).unwrap();
        assert_eq!(plan.decision(idx.unwrap()), Decision::Recompute);
    }

    #[test]
    fn policy_all_tapes_recomputable_f64() {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        let out = b.array("o", 4, ArrayKind::Output, Scalar::F64);
        let mut captured = None;
        b.for_loop("i", 0, 4, |b, i| {
            let v = b.load(x, i);
            captured = Some(v);
            let w = b.fmul(v, v);
            b.store(out, i, w);
        });
        let f = b.finish();
        let opts_min = AdOptions::new(vec![x], vec![out]);
        let opts_all = opts_min.clone().with_policy(TapePolicy::All);
        let act = activity::analyze(&f, &opts_min);
        let v = captured.unwrap();
        let pmin = build(&f, &act, &opts_min).unwrap();
        let pall = build(&f, &act, &opts_all).unwrap();
        assert_eq!(pmin.decision(v), Decision::Recompute, "input reload");
        assert_eq!(pall.decision(v), Decision::Tape, "All policy tapes");
    }

    #[test]
    fn dynamic_bound_rejected_when_relevant() {
        let mut b = FunctionBuilder::new("t");
        let n = b.array("n", 1, ArrayKind::Input, Scalar::I64);
        let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
        let out = b.array("o", 1, ArrayKind::Output, Scalar::F64);
        let bound = b.load_cell(n);
        b.for_loop_step("i", Bound::Const(0), bound, 1, |b, i| {
            let v = b.load(x, i);
            let w = b.fmul(v, v);
            let z = b.i64(0);
            let c = b.load(out, z);
            let s = b.fadd(c, w);
            b.store(out, z, s);
        });
        let f = b.finish();
        let opts = AdOptions::new(vec![x], vec![out]);
        let act = activity::analyze(&f, &opts);
        assert!(matches!(
            build(&f, &act, &opts),
            Err(AdError::DynamicLoopBound { .. })
        ));
    }

    #[test]
    fn dynamic_bound_fine_when_inactive() {
        let mut b = FunctionBuilder::new("t");
        let n = b.array("n", 1, ArrayKind::Input, Scalar::I64);
        let scratch = b.array("s", 8, ArrayKind::Temp, Scalar::F64);
        let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
        let bound = b.load_cell(n);
        // An inactive warm-up loop with a dynamic bound is allowed.
        b.for_loop_step("i", Bound::Const(0), bound, 1, |b, i| {
            let z = b.f64(0.0);
            b.store(scratch, i, z);
        });
        let _ = x;
        let f = b.finish();
        let opts = AdOptions::new(vec![x], vec![]);
        let act = activity::analyze(&f, &opts);
        assert!(build(&f, &act, &opts).is_ok());
    }

    #[test]
    fn cross_scope_use_needs_cell() {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 1, ArrayKind::Input, Scalar::F64);
        let out = b.array("o", 4, ArrayKind::Output, Scalar::F64);
        let v0 = b.load_cell(x);
        let hoisted = b.fmul(v0, v0);
        b.for_loop("i", 0, 4, |b, i| {
            let w = b.fmul(hoisted, hoisted);
            b.store(out, i, w);
        });
        let f = b.finish();
        let opts = AdOptions::new(vec![x], vec![out]);
        let act = activity::analyze(&f, &opts);
        let plan = build(&f, &act, &opts).unwrap();
        assert!(plan.cell_needed(hoisted), "used in deeper scope");
        assert!(!plan.cell_needed(v0), "only used at def scope");
    }
}
