//! Randomized gradient checking: random expression programs,
//! differentiated and compared against central finite differences.
//! Deterministic in-tree xorshift generation (the container has no
//! network access to fetch `proptest`), so every run exercises the same
//! cases.

use tapeflow_autodiff::gradcheck::{check_gradient, LossSpec};
use tapeflow_autodiff::{differentiate, AdOptions, TapePolicy};
use tapeflow_ir::{ArrayKind, CmpKind, FunctionBuilder, Memory, Scalar, ValueId};

/// Tiny deterministic xorshift64 RNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A recipe for one random expression node.
#[derive(Clone, Debug)]
enum ExprOp {
    LoadX,
    LoadY,
    Konst(i8),
    IvAsF64,
    Add(Box<ExprOp>, Box<ExprOp>),
    Sub(Box<ExprOp>, Box<ExprOp>),
    Mul(Box<ExprOp>, Box<ExprOp>),
    /// `a / (1.5 + |b|)` — division with a safely bounded denominator.
    SafeDiv(Box<ExprOp>, Box<ExprOp>),
    Tanh(Box<ExprOp>),
    Sin(Box<ExprOp>),
    Cos(Box<ExprOp>),
    /// `exp(tanh(a))` — exp with a bounded argument.
    SafeExp(Box<ExprOp>),
    Min(Box<ExprOp>, Box<ExprOp>),
    Max(Box<ExprOp>, Box<ExprOp>),
    /// `a < b ? a*2 : b*0.5`.
    SelectCmp(Box<ExprOp>, Box<ExprOp>),
}

fn gen_leaf(r: &mut Rng) -> ExprOp {
    match r.below(4) {
        0 => ExprOp::LoadX,
        1 => ExprOp::LoadY,
        2 => ExprOp::Konst(r.below(7) as i8 - 3),
        _ => ExprOp::IvAsF64,
    }
}

/// Random expression, recursion bounded by `depth` (mirrors the original
/// proptest strategy's operator mix).
fn gen_expr(r: &mut Rng, depth: u32) -> ExprOp {
    if depth == 0 || r.below(4) == 0 {
        return gen_leaf(r);
    }
    let two = |r: &mut Rng| {
        (
            Box::new(gen_expr(r, depth - 1)),
            Box::new(gen_expr(r, depth - 1)),
        )
    };
    match r.below(11) {
        0 => {
            let (a, b) = two(r);
            ExprOp::Add(a, b)
        }
        1 => {
            let (a, b) = two(r);
            ExprOp::Sub(a, b)
        }
        2 => {
            let (a, b) = two(r);
            ExprOp::Mul(a, b)
        }
        3 => {
            let (a, b) = two(r);
            ExprOp::SafeDiv(a, b)
        }
        4 => ExprOp::Tanh(Box::new(gen_expr(r, depth - 1))),
        5 => ExprOp::Sin(Box::new(gen_expr(r, depth - 1))),
        6 => ExprOp::Cos(Box::new(gen_expr(r, depth - 1))),
        7 => ExprOp::SafeExp(Box::new(gen_expr(r, depth - 1))),
        8 => {
            let (a, b) = two(r);
            ExprOp::Min(a, b)
        }
        9 => {
            let (a, b) = two(r);
            ExprOp::Max(a, b)
        }
        _ => {
            let (a, b) = two(r);
            ExprOp::SelectCmp(a, b)
        }
    }
}

fn emit(
    b: &mut FunctionBuilder,
    e: &ExprOp,
    x: tapeflow_ir::ArrayId,
    y: tapeflow_ir::ArrayId,
    i: ValueId,
) -> ValueId {
    match e {
        ExprOp::LoadX => b.load(x, i),
        ExprOp::LoadY => b.load(y, i),
        ExprOp::Konst(k) => b.f64(*k as f64 * 0.35 + 0.1),
        ExprOp::IvAsF64 => {
            let f = b.itof(i);
            let scale = b.f64(0.21);
            b.fmul(f, scale)
        }
        ExprOp::Add(a, c) => {
            let (va, vc) = (emit(b, a, x, y, i), emit(b, c, x, y, i));
            b.fadd(va, vc)
        }
        ExprOp::Sub(a, c) => {
            let (va, vc) = (emit(b, a, x, y, i), emit(b, c, x, y, i));
            b.fsub(va, vc)
        }
        ExprOp::Mul(a, c) => {
            let (va, vc) = (emit(b, a, x, y, i), emit(b, c, x, y, i));
            b.fmul(va, vc)
        }
        ExprOp::SafeDiv(a, c) => {
            let (va, vc) = (emit(b, a, x, y, i), emit(b, c, x, y, i));
            let ab = b.fabs(vc);
            let c15 = b.f64(1.5);
            let den = b.fadd(c15, ab);
            b.fdiv(va, den)
        }
        ExprOp::Tanh(a) => {
            let va = emit(b, a, x, y, i);
            b.tanh(va)
        }
        ExprOp::Sin(a) => {
            let va = emit(b, a, x, y, i);
            b.sin(va)
        }
        ExprOp::Cos(a) => {
            let va = emit(b, a, x, y, i);
            b.cos(va)
        }
        ExprOp::SafeExp(a) => {
            let va = emit(b, a, x, y, i);
            let t = b.tanh(va);
            b.exp(t)
        }
        ExprOp::Min(a, c) => {
            let (va, vc) = (emit(b, a, x, y, i), emit(b, c, x, y, i));
            b.fmin(va, vc)
        }
        ExprOp::Max(a, c) => {
            let (va, vc) = (emit(b, a, x, y, i), emit(b, c, x, y, i));
            b.fmax(va, vc)
        }
        ExprOp::SelectCmp(a, c) => {
            let (va, vc) = (emit(b, a, x, y, i), emit(b, c, x, y, i));
            let cond = b.fcmp(CmpKind::Lt, va, vc);
            let two = b.f64(2.0);
            let half = b.f64(0.5);
            let hi = b.fmul(va, two);
            let lo = b.fmul(vc, half);
            b.select(cond, hi, lo)
        }
    }
}

fn run_case(e: &ExprOp, xs: &[f64], ys: &[f64], stateful: bool, policy: TapePolicy) {
    let n = xs.len();
    let mut b = FunctionBuilder::new("rand");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let y = b.array("y", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let state = b.cell_f64("state", 0.2);
    b.for_loop("i", 0, n as i64, |b, i| {
        let v = emit(b, e, x, y, i);
        let v = if stateful {
            // u = 0.5*u + v; contribution = tanh(u)
            let u = b.load_cell(state);
            let half = b.f64(0.5);
            let hu = b.fmul(u, half);
            let nu = b.fadd(hu, v);
            b.store_cell(state, nu);
            b.tanh(nu)
        } else {
            v
        };
        let c = b.load_cell(loss);
        let s = b.fadd(c, v);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    tapeflow_ir::verify::verify(&func).expect("generated function verifies");
    let grad = differentiate(
        &func,
        &AdOptions::new(vec![x, y], vec![loss]).with_policy(policy),
    )
    .expect("differentiate");
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, xs);
    mem.set_f64(y, ys);
    // min/max/select kinks: finite differences straddle them with error
    // O(1); tolerate by rejecting only large relative errors and using a
    // loose atol. Random inputs make exact ties measure-zero, but nearby
    // kinks still add FD noise.
    check_gradient(
        &func,
        &grad,
        &mem,
        &[x, y],
        LossSpec::cell(loss),
        5e-7,
        2e-2,
        2e-4,
    )
    .unwrap_or_else(|err| panic!("policy {policy:?}: {err}\nexpr: {e:?}\nx={xs:?}\ny={ys:?}"));
}

fn vec_in(r: &mut Rng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| r.f64_in(lo, hi)).collect()
}

#[test]
fn random_programs_gradcheck() {
    for case in 0..96u64 {
        let mut r = Rng::new(case);
        let e = gen_expr(&mut r, 3);
        let xs = vec_in(&mut r, 4, -0.95, 0.95);
        let ys = vec_in(&mut r, 4, -0.95, 0.95);
        let stateful = r.bool();
        run_case(&e, &xs, &ys, stateful, TapePolicy::Minimal);
    }
}

#[test]
fn random_programs_gradcheck_tape_all() {
    for case in 0..96u64 {
        let mut r = Rng::new(0xA11 ^ case);
        let e = gen_expr(&mut r, 3);
        let xs = vec_in(&mut r, 4, -0.95, 0.95);
        let ys = vec_in(&mut r, 4, -0.95, 0.95);
        run_case(&e, &xs, &ys, true, TapePolicy::All);
    }
}

#[test]
fn policies_agree_exactly() {
    for case in 0..96u64 {
        let mut r = Rng::new(0xA62EE ^ case);
        let e = gen_expr(&mut r, 3);
        let xs = vec_in(&mut r, 3, -0.9, 0.9);
        let ys = vec_in(&mut r, 3, -0.9, 0.9);
        // Minimal and All tape policies must produce bit-identical
        // gradients: they compute the same math, only the storage differs.
        let n = xs.len();
        let mut b = FunctionBuilder::new("agree");
        let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", n, ArrayKind::Input, Scalar::F64);
        let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, n as i64, |b, i| {
            let v = emit(b, &e, x, y, i);
            let c = b.load_cell(loss);
            let s = b.fadd(c, v);
            b.store_cell(loss, s);
        });
        let func = b.finish();
        let mut mem = Memory::for_function(&func);
        mem.set_f64(x, &xs);
        mem.set_f64(y, &ys);
        let grads: Vec<Vec<f64>> = [
            TapePolicy::Minimal,
            TapePolicy::Conservative,
            TapePolicy::All,
        ]
        .into_iter()
        .map(|p| {
            let g =
                differentiate(&func, &AdOptions::new(vec![x], vec![loss]).with_policy(p)).unwrap();
            let mut m = g.prepare_memory(&func, &mem);
            m.set_f64_at(g.shadow_of(loss).unwrap(), 0, 1.0);
            tapeflow_ir::interp::run(&g.func, &mut m).unwrap();
            m.get_f64(g.shadow_of(x).unwrap())
        })
        .collect();
        assert_eq!(&grads[0], &grads[1], "case {case}: {e:?}");
        assert_eq!(&grads[1], &grads[2], "case {case}: {e:?}");
    }
}
