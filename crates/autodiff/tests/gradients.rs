//! End-to-end gradient correctness: every structural feature the paper's
//! benchmarks rely on, checked against central finite differences.

use tapeflow_autodiff::gradcheck::{check_gradient, LossSpec};
use tapeflow_autodiff::{differentiate, AdOptions, TapePolicy};
use tapeflow_ir::{ArrayId, ArrayKind, Function, FunctionBuilder, Memory, Scalar};

const EPS: f64 = 1e-6;
const RTOL: f64 = 1e-4;
const ATOL: f64 = 1e-7;

struct Case {
    func: Function,
    wrt: Vec<ArrayId>,
    loss: LossSpec,
    mem: Memory,
}

impl Case {
    fn check(self) {
        self.check_with(TapePolicy::Minimal);
    }

    fn check_with(&self, policy: TapePolicy) {
        let opts = AdOptions::new(self.wrt.clone(), vec![self.loss.array]).with_policy(policy);
        let grad = differentiate(&self.func, &opts).expect("differentiate");
        tapeflow_ir::verify::verify(&grad.func).expect("gradient verifies");
        check_gradient(
            &self.func, &grad, &self.mem, &self.wrt, self.loss, EPS, RTOL, ATOL,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", self.func.name));
    }

    fn check_both_policies(self) {
        self.check_with(TapePolicy::Minimal);
        self.check_with(TapePolicy::All);
    }
}

fn ramp(n: usize, lo: f64, step: f64) -> Vec<f64> {
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[test]
fn dot_product() {
    let n = 8;
    let mut b = FunctionBuilder::new("dot");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let y = b.array("y", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let yi = b.load(y, i);
        let p = b.fmul(xi, yi);
        let c = b.load_cell(loss);
        let s = b.fadd(c, p);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &ramp(n, 0.3, 0.7));
    mem.set_f64(y, &ramp(n, -1.0, 0.45));
    Case {
        func,
        wrt: vec![x, y],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn transcendental_chain() {
    // loss = sum tanh(exp(sin(x)) / (1 + x^2))
    let n = 6;
    let mut b = FunctionBuilder::new("chain");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let s = b.sin(xi);
        let e = b.exp(s);
        let x2 = b.fmul(xi, xi);
        let one = b.f64(1.0);
        let denom = b.fadd(one, x2);
        let q = b.fdiv(e, denom);
        let t = b.tanh(q);
        let c = b.load_cell(loss);
        let s2 = b.fadd(c, t);
        b.store_cell(loss, s2);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &ramp(n, -1.2, 0.5));
    Case {
        func,
        wrt: vec![x],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn sqrt_ln_pow_cos_abs() {
    // loss = sum |cos(x)| + sqrt(x+3) + ln(x+3) + x^3
    let n = 5;
    let mut b = FunctionBuilder::new("unaries");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let c = b.cos(xi);
        let ac = b.fabs(c);
        let three = b.f64(3.0);
        let sh = b.fadd(xi, three);
        let sq = b.sqrt(sh);
        let l = b.ln(sh);
        let e3 = b.f64(3.0);
        let p = b.fpow(xi, e3);
        let t1 = b.fadd(ac, sq);
        let t2 = b.fadd(l, p);
        let t = b.fadd(t1, t2);
        let cu = b.load_cell(loss);
        let s = b.fadd(cu, t);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &[0.4, 1.3, 2.2, 0.9, 1.7]);
    Case {
        func,
        wrt: vec![x],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check();
}

#[test]
fn min_max_select_routing() {
    // pathfinder-style: loss = sum min(x[i], y[i]) + max(x[i], 0.5) and a
    // select on a comparison.
    let n = 7;
    let mut b = FunctionBuilder::new("minmax");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let y = b.array("y", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let yi = b.load(y, i);
        let mn = b.fmin(xi, yi);
        let half = b.f64(0.5);
        let mx = b.fmax(xi, half);
        let c = b.fcmp(tapeflow_ir::CmpKind::Lt, xi, yi);
        let sel = b.select(c, mx, mn);
        let t = b.fadd(mn, sel);
        let cu = b.load_cell(loss);
        let s = b.fadd(cu, t);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    // Avoid ties (non-differentiable points).
    mem.set_f64(x, &[0.1, 0.9, -0.4, 1.4, 0.7, -1.2, 2.0]);
    mem.set_f64(y, &[0.6, 0.2, 0.3, -0.9, 1.5, 0.8, -0.5]);
    Case {
        func,
        wrt: vec![x, y],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn nested_loops_matvec() {
    // loss = || A v ||^2, wrt A and v: exercises 2-D tape indices.
    let (m, n) = (4usize, 3usize);
    let mut b = FunctionBuilder::new("matvec");
    let a = b.array("A", m * n, ArrayKind::Input, Scalar::F64);
    let v = b.array("v", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, m as i64, |b, i| {
        let acc = b.cell_f64(format!("row{}", "acc"), 0.0);
        let zero = b.f64(0.0);
        b.store_cell(acc, zero);
        b.for_loop("j", 0, n as i64, |b, j| {
            let idx = b.idx2(i, n as i64, j);
            let aij = b.load(a, idx);
            let vj = b.load(v, j);
            let p = b.fmul(aij, vj);
            let c = b.load_cell(acc);
            let s = b.fadd(c, p);
            b.store_cell(acc, s);
        });
        let r = b.load_cell(acc);
        let r2 = b.fmul(r, r);
        let cu = b.load_cell(loss);
        let s = b.fadd(cu, r2);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(a, &ramp(m * n, -0.8, 0.23));
    mem.set_f64(v, &ramp(n, 0.5, -0.4));
    Case {
        func,
        wrt: vec![a, v],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn loop_carried_overwrites() {
    // u is overwritten every iteration: exercises the shadow-kill path.
    // u_{k+1} = u_k * x[k] + x[k]^2, loss = u_N.
    let n = 5;
    let mut b = FunctionBuilder::new("carry");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let u = b.cell_f64("u", 1.0);
    b.for_loop("k", 0, n as i64, |b, k| {
        let xk = b.load(x, k);
        let cu = b.load_cell(u);
        let m = b.fmul(cu, xk);
        let x2 = b.fmul(xk, xk);
        let nu = b.fadd(m, x2);
        b.store_cell(u, nu);
    });
    let fin = b.load_cell(u);
    b.store_cell(loss, fin);
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &[1.1, 0.7, -0.9, 1.3, 0.4]);
    Case {
        func,
        wrt: vec![x],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn hoisted_value_used_in_loop_needs_cell_adjoint() {
    // t = w[0]*w[1] computed once, consumed by every iteration: the
    // adjoint of t accumulates across the mirrored loop via a cell.
    let n = 6;
    let mut b = FunctionBuilder::new("hoist");
    let w = b.array("w", 2, ArrayKind::Input, Scalar::F64);
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let z = b.i64(0);
    let o = b.i64(1);
    let w0 = b.load(w, z);
    let w1 = b.load(w, o);
    let t = b.fmul(w0, w1);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let p = b.fmul(t, xi);
        let e = b.exp(p);
        let c = b.load_cell(loss);
        let s = b.fadd(c, e);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(w, &[0.8, -0.6]);
    mem.set_f64(x, &ramp(n, -0.5, 0.3));
    Case {
        func,
        wrt: vec![w, x],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn indirect_indexing_mass_spring_style() {
    // Springs connect particle pairs through integer index arrays (the
    // paper's mass-spring benchmark shape): force = k*(x[a]-x[b])^2.
    let np = 6;
    let ns = 8;
    let mut b = FunctionBuilder::new("springs");
    let x = b.array("x", np, ArrayKind::Input, Scalar::F64);
    let ia = b.array("ia", ns, ArrayKind::Input, Scalar::I64);
    let ib = b.array("ib", ns, ArrayKind::Input, Scalar::I64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("s", 0, ns as i64, |b, s| {
        let a = b.load(ia, s);
        let bb = b.load(ib, s);
        let xa = b.load(x, a);
        let xb = b.load(x, bb);
        let d = b.fsub(xa, xb);
        let d2 = b.fmul(d, d);
        let c = b.load_cell(loss);
        let s2 = b.fadd(c, d2);
        b.store_cell(loss, s2);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &ramp(np, -1.0, 0.62));
    mem.set_i64(ia, &[0, 1, 2, 3, 4, 5, 0, 2]);
    mem.set_i64(ib, &[1, 2, 3, 4, 5, 0, 3, 5]);
    Case {
        func,
        wrt: vec![x],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn imperfect_nest_with_mid_loop_code() {
    // Code before, between and after an inner loop (imperfect nest).
    let (m, n) = (3usize, 4usize);
    let mut b = FunctionBuilder::new("imperfect");
    let x = b.array("x", m * n, ArrayKind::Input, Scalar::F64);
    let g = b.array("g", m, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, m as i64, |b, i| {
        let gi = b.load(g, i);
        let scale = b.exp(gi);
        let acc = b.cell_f64("acc2", 0.0);
        let zero = b.f64(0.0);
        b.store_cell(acc, zero);
        b.for_loop("j", 0, n as i64, |b, j| {
            let idx = b.idx2(i, n as i64, j);
            let v = b.load(x, idx);
            let sv = b.fmul(scale, v);
            let t = b.tanh(sv);
            let c = b.load_cell(acc);
            let s = b.fadd(c, t);
            b.store_cell(acc, s);
        });
        let a = b.load_cell(acc);
        let a2 = b.fmul(a, gi);
        let cu = b.load_cell(loss);
        let s = b.fadd(cu, a2);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &ramp(m * n, -0.7, 0.19));
    mem.set_f64(g, &[0.3, -0.2, 0.5]);
    Case {
        func,
        wrt: vec![x, g],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn inout_array_overwritten_in_place() {
    // The wrt array itself is overwritten (InOut), like a physics state
    // advanced in place over timesteps.
    let n = 4;
    let steps = 3;
    let mut b = FunctionBuilder::new("inplace");
    let x0 = b.array("x0", n, ArrayKind::Input, Scalar::F64);
    let x = b.array("x", n, ArrayKind::InOut, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let v = b.load(x0, i);
        b.store(x, i, v);
    });
    b.for_loop("t", 0, steps, |b, _t| {
        b.for_loop("i", 0, n as i64, |b, i| {
            let v = b.load(x, i);
            let v2 = b.fmul(v, v);
            let tenth = b.f64(0.1);
            let dv = b.fmul(tenth, v2);
            let nv = b.fadd(v, dv);
            b.store(x, i, nv);
        });
    });
    b.for_loop("i", 0, n as i64, |b, i| {
        let v = b.load(x, i);
        let c = b.load_cell(loss);
        let s = b.fadd(c, v);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x0, &[0.5, -0.3, 0.8, 0.1]);
    Case {
        func,
        wrt: vec![x0],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn non_unit_stride_and_offset_loops() {
    let mut b = FunctionBuilder::new("strided");
    let x = b.array("x", 16, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop_step("i", 2i64, 14i64, 3, |b, i| {
        let v = b.load(x, i);
        let e = b.exp(v);
        let c = b.load_cell(loss);
        let s = b.fadd(c, e);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &ramp(16, -0.9, 0.13));
    Case {
        func,
        wrt: vec![x],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check_both_policies();
}

#[test]
fn taped_select_condition_roundtrips_through_f64_tape() {
    // The select condition depends on a value that is overwritten, so it
    // cannot be recomputed in REV: it must round-trip through the f64
    // tape (TapeAsInt).
    let n = 5;
    let mut b = FunctionBuilder::new("tapedcond");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let state = b.cell_f64("state", 0.0);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let st = b.load_cell(state);
        // cond depends on mutable state -> not recomputable.
        let thresh = b.f64(0.9);
        let c = b.fcmp(tapeflow_ir::CmpKind::Lt, st, thresh);
        let two = b.f64(2.0);
        let half = b.f64(0.5);
        let hi = b.fmul(two, xi);
        let lo = b.fmul(half, xi);
        let sel = b.select(c, hi, lo);
        let ns = b.fadd(st, xi);
        b.store_cell(state, ns);
        let cu = b.load_cell(loss);
        let s = b.fadd(cu, sel);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &[0.4, 0.3, 0.35, 0.2, 0.6]);
    let opts = AdOptions::new(vec![x], vec![loss]);
    let grad = differentiate(&func, &opts).unwrap();
    // At least one tape array must be an int round-trip.
    assert!(
        grad.tapes.iter().any(|t| t.as_int),
        "expected a TapeAsInt array"
    );
    Case {
        func,
        wrt: vec![x],
        loss: LossSpec::cell(loss),
        mem,
    }
    .check();
}

#[test]
fn tape_metadata_is_consistent() {
    let n = 8;
    let mut b = FunctionBuilder::new("meta");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let e = b.exp(xi);
        let sq = b.fmul(e, e);
        let c = b.load_cell(loss);
        let s = b.fadd(c, sq);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let grad = differentiate(&func, &AdOptions::new(vec![x], vec![loss])).unwrap();
    assert!(!grad.tapes.is_empty(), "exp result must be taped");
    for t in &grad.tapes {
        assert_eq!(t.trip_product, n as u64);
        assert_eq!(grad.func.array(t.array).len, n);
        assert_eq!(grad.func.array(t.array).kind, ArrayKind::Tape);
        assert!(!t.loads.is_empty(), "every tape store has a consumer");
        assert_eq!(t.fwd_loop_path.len(), 1);
    }
    assert!(!grad.loop_map.is_empty());
    assert_eq!(grad.stats.taped_values, grad.tapes.len());
    assert_eq!(grad.stats.tape_bytes, grad.tape_elems() * 8);
}

#[test]
fn seed_scaling_is_linear() {
    // Seeding d_loss = 2 must exactly double the gradient.
    let n = 4;
    let mut b = FunctionBuilder::new("linear_seed");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let v = b.load(x, i);
        let e = b.exp(v);
        let c = b.load_cell(loss);
        let s = b.fadd(c, e);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let grad = differentiate(&func, &AdOptions::new(vec![x], vec![loss])).unwrap();
    let mut base = Memory::for_function(&func);
    base.set_f64(x, &[0.1, 0.2, 0.3, 0.4]);
    let run_with_seed = |seed: f64| {
        let mut m = grad.prepare_memory(&func, &base);
        m.set_f64_at(grad.shadow_of(loss).unwrap(), 0, seed);
        tapeflow_ir::interp::run(&grad.func, &mut m).unwrap();
        m.get_f64(grad.shadow_of(x).unwrap())
    };
    let g1 = run_with_seed(1.0);
    let g2 = run_with_seed(2.0);
    for (a, b2) in g1.iter().zip(&g2) {
        assert!((2.0 * a - b2).abs() < 1e-12);
    }
}
