//! The previous scalar per-cycle scheduler, kept verbatim for one
//! release behind the `--engine legacy` escape hatch.
//!
//! The event-driven core in [`crate::engine`] replaced this loop; the
//! cross-engine equivalence suite (and the `--engine legacy` CLI flag)
//! runs both and asserts byte-identical reports, stall attributions and
//! timelines. Remove this module once a release has shipped on the new
//! core.

use crate::cache::Cache;
use crate::config::{EnergyTable, SystemConfig};
use crate::engine::{Dram, SimOptions};
use crate::error::SimError;
use crate::prep::PreparedSim;
use crate::probe::{CacheAccessEvent, NoProbe, ProbeGeometry, SimProbe};
use crate::report::{EnergyReport, SimReport};
use std::collections::{BinaryHeap, VecDeque};
use tapeflow_ir::trace::Phase;
use tapeflow_ir::{Op, OpClass, Trace};

/// How many queued accesses a banked resource may inspect per cycle.
const SPAD_SCAN_WINDOW: usize = 64;

/// Simulates `trace` on `cfg` with the legacy scalar loop.
pub fn try_simulate(
    trace: &Trace,
    cfg: &SystemConfig,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    try_simulate_probed(trace, cfg, opts, &mut NoProbe)
}

/// Probed variant of [`try_simulate`]. The loop body below is the
/// pre-rework scheduler, unchanged; only the up-front index-width guard
/// (which the old code lacked — node ids silently truncated to `u32`)
/// was added.
pub fn try_simulate_probed<P: SimProbe>(
    trace: &Trace,
    cfg: &SystemConfig,
    opts: &SimOptions,
    probe: &mut P,
) -> Result<SimReport, SimError> {
    PreparedSim::check_limits(trace.len(), trace.edge_count())?;
    let n = trace.len();
    let mut report = SimReport::default();
    if n == 0 {
        return Ok(report);
    }

    // Successor lists in CSR form + indegrees.
    let mut indeg = vec![0u32; n];
    let mut succ_cnt = vec![0u32; n];
    for node in trace.nodes() {
        for d in &node.deps {
            succ_cnt[d.index()] += 1;
        }
    }
    let mut succ_off = vec![0u32; n + 1];
    for i in 0..n {
        succ_off[i + 1] = succ_off[i] + succ_cnt[i];
    }
    let mut succ_dat = vec![0u32; succ_off[n] as usize];
    let mut fill = succ_off.clone();
    for (i, node) in trace.nodes().iter().enumerate() {
        indeg[i] = node.deps.len() as u32;
        for d in &node.deps {
            let di = d.index();
            succ_dat[fill[di] as usize] = i as u32;
            fill[di] += 1;
        }
    }

    let mut ready_time = vec![0u64; n];
    let mut finish = vec![0u64; n];
    // Future-ready events.
    let mut events: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    for (i, d) in indeg.iter().enumerate() {
        if *d == 0 {
            events.push(std::cmp::Reverse((0, i as u32)));
        }
    }

    // Per-class in-order wait queues.
    let mut q_fp: VecDeque<u32> = VecDeque::new();
    let mut q_int: VecDeque<u32> = VecDeque::new();
    let mut q_mem: VecDeque<u32> = VecDeque::new();
    let mut q_spad: VecDeque<u32> = VecDeque::new();
    let mut q_stream: [VecDeque<u32>; 2] = [VecDeque::new(), VecDeque::new()];

    let mut cache = Cache::new(cfg.cache);
    // Byte accounting must use the geometry the cache actually built
    // (`Cache::new` normalizes degenerate line sizes).
    let line_bytes = cache.config().line_bytes as u64;
    // MSHR free times: a demand miss needs a slot, else the memory queue
    // stalls at its head.
    let mut mshr: Vec<u64> = vec![0; cfg.cache.mshrs.max(1)];
    let mut dram = Dram::new(cfg);
    let mut stream_free = [0u64; 2];

    let phase_barrier_idx = trace.nodes().iter().position(|nd| nd.phase == Phase::Rev);
    probe.on_start(&ProbeGeometry::of(cfg, phase_barrier_idx.is_some()));

    let mut now: u64 = 0;
    let mut completed: usize = 0;
    let mut max_finish: u64 = 0;

    // Completion bookkeeping shared by all issue paths.
    macro_rules! complete {
        ($id:expr, $fin:expr) => {{
            let id = $id as usize;
            let fin: u64 = $fin;
            finish[id] = fin;
            max_finish = max_finish.max(fin);
            completed += 1;
            if phase_barrier_idx == Some(id) {
                probe.on_phase_barrier(fin);
            }
            for s in &succ_dat[succ_off[id] as usize..succ_off[id + 1] as usize] {
                let si = *s as usize;
                ready_time[si] = ready_time[si].max(fin);
                indeg[si] -= 1;
                if indeg[si] == 0 {
                    if phase_barrier_idx == Some(si) {
                        probe.on_barrier_ready(now, ready_time[si], *s);
                    }
                    events.push(std::cmp::Reverse((ready_time[si], *s)));
                }
            }
        }};
    }

    while completed < n {
        probe.on_cycle_start(now);
        // Drain events that became ready.
        while let Some(&std::cmp::Reverse((t, id))) = events.peek() {
            if t > now {
                break;
            }
            events.pop();
            let node = &trace.nodes()[id as usize];
            match node.class() {
                OpClass::Sync => {
                    // Barriers and SAlloc cost nothing by themselves.
                    complete!(id, now);
                }
                OpClass::FpAlu | OpClass::FpMul | OpClass::FpLong => q_fp.push_back(id),
                OpClass::Int => q_int.push_back(id),
                OpClass::MemLoad | OpClass::MemStore => q_mem.push_back(id),
                OpClass::SpadLoad | OpClass::SpadStore => q_spad.push_back(id),
                OpClass::Stream => {
                    let dir = usize::from(matches!(node.op, Op::StreamIn(_)));
                    q_stream[dir].push_back(id);
                }
            }
        }

        // Issue FP ops.
        let mut fp_left = cfg.pe.fp_issue;
        while fp_left > 0 {
            let Some(id) = q_fp.pop_front() else { break };
            fp_left -= 1;
            report.fp_ops += 1;
            let class = trace.nodes()[id as usize].class();
            let lat = match class {
                OpClass::FpAlu => cfg.pe.fp_alu_latency,
                OpClass::FpMul => cfg.pe.fp_mul_latency,
                _ => cfg.pe.fp_long_latency,
            };
            probe.on_fp_issue(now, now + lat, class, id);
            complete!(id, now + lat);
        }

        // Issue integer ops.
        let mut int_left = cfg.pe.int_issue;
        while int_left > 0 {
            let Some(id) = q_int.pop_front() else { break };
            int_left -= 1;
            report.int_ops += 1;
            probe.on_int_issue(now, now + cfg.pe.int_latency, id);
            complete!(id, now + cfg.pe.int_latency);
        }

        // Issue cache accesses through the limited ports. A miss needs a
        // free MSHR; when none is free the queue stalls at its head
        // (in-order memory queue, the "reactive fill" bottleneck).
        let mut ports_left = cfg.cache.ports;
        while ports_left > 0 {
            let Some(&id) = q_mem.front() else { break };
            let node = &trace.nodes()[id as usize];
            let is_write = node.class() == OpClass::MemStore;
            // Peek whether this would miss without an MSHR available.
            let mshr_slot = mshr
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(i, _)| i)
                .expect("mshr vec non-empty");
            let res = cache.access(node.addr, is_write);
            if !res.hit && mshr[mshr_slot] > now {
                // Undo nothing: the line was allocated, but the request
                // still pays the stall — model the stall by waiting.
                // (Allocation-on-stall slightly favours the baseline.)
                report.cache.misses += 1;
                report.cache.tape_misses += u64::from(node.is_tape);
                report.cache.rev_misses += u64::from(node.phase == Phase::Rev);
                report.dram_fill_bytes += line_bytes;
                if res.writeback.is_some() {
                    report.cache.writebacks += 1;
                    report.dram_writeback_bytes += line_bytes;
                    let _ = dram.transfer(now, line_bytes);
                }
                let start = mshr[mshr_slot];
                let (_, fin) = dram.transfer(start, line_bytes);
                mshr[mshr_slot] = fin;
                q_mem.pop_front();
                probe.on_mshr_stall(now, node.is_tape, id);
                probe.on_cache_access(&CacheAccessEvent {
                    node: id,
                    now,
                    fin: fin + cfg.cache.hit_latency,
                    port: cfg.cache.ports - ports_left,
                    hit: false,
                    is_tape: node.is_tape,
                    is_rev: node.phase == Phase::Rev,
                    is_write,
                });
                complete!(id, fin + cfg.cache.hit_latency);
                // Head-of-line: nothing else issues behind a stalled miss.
                break;
            }
            q_mem.pop_front();
            ports_left -= 1;
            let (is_tape, is_rev) = (node.is_tape, node.phase == Phase::Rev);
            let port = cfg.cache.ports - ports_left - 1;
            if res.hit {
                report.cache.hits += 1;
                report.cache.tape_hits += u64::from(is_tape);
                report.cache.rev_hits += u64::from(is_rev);
                probe.on_cache_access(&CacheAccessEvent {
                    node: id,
                    now,
                    fin: now + cfg.cache.hit_latency,
                    port,
                    hit: true,
                    is_tape,
                    is_rev,
                    is_write,
                });
                complete!(id, now + cfg.cache.hit_latency);
            } else {
                report.cache.misses += 1;
                report.cache.tape_misses += u64::from(is_tape);
                report.cache.rev_misses += u64::from(is_rev);
                report.dram_fill_bytes += line_bytes;
                if res.writeback.is_some() {
                    report.cache.writebacks += 1;
                    report.dram_writeback_bytes += line_bytes;
                    let _ = dram.transfer(now, line_bytes);
                }
                let (_, fin) = dram.transfer(now, line_bytes);
                mshr[mshr_slot] = fin;
                probe.on_cache_access(&CacheAccessEvent {
                    node: id,
                    now,
                    fin: fin + cfg.cache.hit_latency,
                    port,
                    hit: false,
                    is_tape,
                    is_rev,
                    is_write,
                });
                complete!(id, fin + cfg.cache.hit_latency);
            }
        }

        // Issue scratchpad accesses, one per bank per cycle, scanning a
        // bounded window past bank conflicts.
        let mut banks_used: u64 = 0;
        let mut stash: Vec<u32> = Vec::new();
        let mut scanned = 0;
        while scanned < SPAD_SCAN_WINDOW {
            let Some(id) = q_spad.pop_front() else { break };
            scanned += 1;
            let node = &trace.nodes()[id as usize];
            let bank = (node.addr as usize) % cfg.spad.banks.max(1);
            if banks_used & (1u64 << bank) == 0 {
                banks_used |= 1u64 << bank;
                report.spad_accesses += 1;
                probe.on_spad_access(now, now + cfg.spad.latency, bank, id);
                complete!(id, now + cfg.spad.latency);
            } else {
                probe.on_spad_conflict(now, bank, id);
                stash.push(id);
            }
        }
        for id in stash.into_iter().rev() {
            q_spad.push_front(id);
        }

        // Issue streams: one in flight per engine.
        for dir in 0..2 {
            if stream_free[dir] <= now {
                if let Some(id) = q_stream[dir].pop_front() {
                    let node = &trace.nodes()[id as usize];
                    let bytes = node.bytes as u64;
                    report.stream_cmds += 1;
                    report.dram_stream_bytes += bytes;
                    let (bw_done, fin) = dram.transfer(now, bytes);
                    stream_free[dir] = bw_done;
                    probe.on_stream(now, bw_done, fin, dir, bytes, id);
                    complete!(id, fin);
                }
            }
        }

        let queues_busy = !q_fp.is_empty()
            || !q_int.is_empty()
            || !q_mem.is_empty()
            || !q_spad.is_empty()
            || !q_stream[0].is_empty()
            || !q_stream[1].is_empty();
        probe.on_cycle_end(now, queues_busy);
        if completed >= n {
            break;
        }
        // Advance time: to the next event if idle, else one cycle.
        if queues_busy {
            now += 1;
        } else if let Some(&std::cmp::Reverse((t, _))) = events.peek() {
            now = now.max(t);
        } else {
            // Nothing queued and no events: all in-flight work completes
            // by itself (should not happen — everything is issued
            // synchronously), guard against livelock.
            now += 1;
        }
    }

    report.cycles = max_finish;
    report.fwd_cycles = phase_barrier_idx.map_or(max_finish, |i| finish[i]);
    probe.on_finish(max_finish);

    // Cool-down: lines still dirty when the run ends must reach DRAM
    // eventually. Charge those write-backs to traffic exactly once — this
    // happens before energy accounting so the DRAM energy sees them too —
    // otherwise small working sets hide store traffic by never evicting.
    let flushed = cache.flush_dirty();
    report.cache.writebacks += flushed;
    report.cache.flush_writebacks = flushed;
    report.dram_writeback_bytes += flushed * line_bytes;

    // Energy accounting.
    let cache_access_pj = EnergyTable::cache_pj(cfg.cache.size_bytes);
    report.energy = EnergyReport {
        cache_pj: report.cache.accesses() as f64 * cache_access_pj,
        spad_pj: report.spad_accesses as f64 * cfg.energy.spad_pj,
        stream_pj: (report.dram_stream_bytes as f64 / 8.0) * cfg.energy.stream_elem_pj,
        dram_pj: report.dram_bytes() as f64 * cfg.energy.dram_pj_per_byte,
    };
    if opts.record_node_times {
        report.node_finish = Some(finish);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_ir::trace::{trace_function, TraceOptions};
    use tapeflow_ir::{FunctionBuilder, Memory};

    #[test]
    fn legacy_loop_still_runs() {
        let cfg = SystemConfig::default();
        let mut b = FunctionBuilder::new("t");
        let one = b.f64(1.0);
        let mut v = b.f64(0.0);
        for _ in 0..10 {
            v = b.fadd(v, one);
        }
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let r = try_simulate(&trace, &cfg, &SimOptions::default()).unwrap();
        assert_eq!(r.fp_ops, 10);
        assert_eq!(r.cycles, 10 * cfg.pe.fp_alu_latency);
    }
}
