//! Simulation results.

/// Cache access counters, split the way the paper's figures need them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Hits on tape-array accesses.
    pub tape_hits: u64,
    /// Misses on tape-array accesses.
    pub tape_misses: u64,
    /// Hits issued by the reverse phase.
    pub rev_hits: u64,
    /// Misses issued by the reverse phase.
    pub rev_misses: u64,
    /// Dirty lines written back to DRAM.
    pub writebacks: u64,
    /// Of `writebacks`, the dirty lines flushed once at end of
    /// simulation (the cool-down). Subtract these to get steady-state
    /// eviction traffic.
    pub flush_writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Overall hit rate in `[0, 1]`. An idle cache reports 0 (not the
    /// NaN the ratio would give, and not the fake 100% this used to
    /// return); check [`Self::accesses`] — surfaced as the JSON `idle`
    /// flag — to tell "never accessed" apart from "always missed".
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Reverse-phase hit rate (Figure 4.1's right axis); 0 when the
    /// reverse phase never touched the cache (JSON flag `rev_idle`).
    pub fn rev_hit_rate(&self) -> f64 {
        let acc = self.rev_hits + self.rev_misses;
        if acc == 0 {
            0.0
        } else {
            self.rev_hits as f64 / acc as f64
        }
    }
}

/// Energy broken down by structure, in picojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// Cache array energy.
    pub cache_pj: f64,
    /// Scratchpad array energy.
    pub spad_pj: f64,
    /// Stream-engine energy.
    pub stream_pj: f64,
    /// Off-chip DRAM energy (reported, but *not* part of on-chip).
    pub dram_pj: f64,
}

impl EnergyReport {
    /// On-chip energy: cache + scratchpad + stream engines (the paper's
    /// Figures 4.4–4.6 metric).
    pub fn on_chip_pj(&self) -> f64 {
        self.cache_pj + self.spad_pj + self.stream_pj
    }
}

/// Full result of one simulation.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Total cycles to drain the dataflow.
    pub cycles: u64,
    /// Cycles until the FWD/REV phase barrier completed.
    pub fwd_cycles: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Scratchpad accesses.
    pub spad_accesses: u64,
    /// Stream commands executed.
    pub stream_cmds: u64,
    /// Bytes filled from DRAM on cache misses.
    pub dram_fill_bytes: u64,
    /// Bytes written back to DRAM on dirty evictions.
    pub dram_writeback_bytes: u64,
    /// Bytes moved by stream engines.
    pub dram_stream_bytes: u64,
    /// Floating-point operations executed.
    pub fp_ops: u64,
    /// Integer operations executed.
    pub int_ops: u64,
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Per-node completion cycles (present when
    /// [`crate::SimOptions::record_node_times`] was set) — feeds the
    /// lifetime analyses of Figures 2.7/2.8.
    pub node_finish: Option<Vec<u64>>,
}

impl SimReport {
    /// Cycles spent in the reverse phase.
    pub fn rev_cycles(&self) -> u64 {
        self.cycles.saturating_sub(self.fwd_cycles)
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_fill_bytes + self.dram_writeback_bytes + self.dram_stream_bytes
    }

    /// Total DRAM accesses in 64 B-transfer units (Figure 4.2's metric).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_bytes().div_ceil(64)
    }

    /// Instruction-level parallelism: executed operations per cycle.
    pub fn ilp(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.fp_ops + self.int_ops) as f64 / self.cycles as f64
        }
    }

    /// Speedup of `self` relative to `baseline` (higher = faster).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// The report as a JSON object (the experiment harness's
    /// machine-readable schema). Counters stay integers; derived rates
    /// are floats. `node_finish` is deliberately omitted — it is an
    /// analysis intermediate, not a result.
    pub fn to_json(&self) -> crate::json::Value {
        use crate::json::Value;
        let mut cache = Value::object();
        cache
            .set("hits", self.cache.hits)
            .set("misses", self.cache.misses)
            .set("tape_hits", self.cache.tape_hits)
            .set("tape_misses", self.cache.tape_misses)
            .set("rev_hits", self.cache.rev_hits)
            .set("rev_misses", self.cache.rev_misses)
            .set("writebacks", self.cache.writebacks)
            .set("flush_writebacks", self.cache.flush_writebacks)
            .set("hit_rate", self.cache.hit_rate())
            .set("rev_hit_rate", self.cache.rev_hit_rate())
            .set("idle", Value::Bool(self.cache.accesses() == 0))
            .set(
                "rev_idle",
                Value::Bool(self.cache.rev_hits + self.cache.rev_misses == 0),
            );
        let mut energy = Value::object();
        energy
            .set("cache_pj", self.energy.cache_pj)
            .set("spad_pj", self.energy.spad_pj)
            .set("stream_pj", self.energy.stream_pj)
            .set("dram_pj", self.energy.dram_pj)
            .set("on_chip_pj", self.energy.on_chip_pj());
        let mut o = Value::object();
        o.set("cycles", self.cycles)
            .set("fwd_cycles", self.fwd_cycles)
            .set("rev_cycles", self.rev_cycles())
            .set("cache", cache)
            .set("spad_accesses", self.spad_accesses)
            .set("stream_cmds", self.stream_cmds)
            .set("dram_fill_bytes", self.dram_fill_bytes)
            .set("dram_writeback_bytes", self.dram_writeback_bytes)
            .set("dram_stream_bytes", self.dram_stream_bytes)
            .set("dram_bytes", self.dram_bytes())
            .set("dram_accesses", self.dram_accesses())
            .set("fp_ops", self.fp_ops)
            .set("int_ops", self.int_ops)
            .set("ilp", self.ilp());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_ratios() {
        let c = CacheStats {
            hits: 75,
            misses: 25,
            rev_hits: 10,
            rev_misses: 30,
            ..CacheStats::default()
        };
        assert_eq!(c.accesses(), 100);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert!((c.rev_hit_rate() - 0.25).abs() < 1e-12);
        // An idle cache must not report a fake 100% hit rate.
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().rev_hit_rate(), 0.0);
    }

    #[test]
    fn idle_cache_flagged_in_json() {
        let j = SimReport::default().to_json();
        let cache = j.get("cache").unwrap();
        assert_eq!(cache.get("idle").unwrap().as_bool(), Some(true));
        assert_eq!(cache.get("rev_idle").unwrap().as_bool(), Some(true));
        assert_eq!(cache.get("hit_rate").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn report_accessors() {
        let r = SimReport {
            cycles: 200,
            fwd_cycles: 80,
            dram_fill_bytes: 640,
            dram_writeback_bytes: 64,
            dram_stream_bytes: 256,
            fp_ops: 300,
            int_ops: 100,
            ..SimReport::default()
        };
        assert_eq!(r.rev_cycles(), 120);
        assert_eq!(r.dram_bytes(), 960);
        assert_eq!(r.dram_accesses(), 15);
        assert!((r.ilp() - 2.0).abs() < 1e-12);
        let slow = SimReport {
            cycles: 400,
            ..SimReport::default()
        };
        assert!((r.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_keeps_counters_integral() {
        let r = SimReport {
            cycles: u64::MAX / 3,
            dram_fill_bytes: 640,
            fp_ops: 300,
            ..SimReport::default()
        };
        let j = r.to_json();
        assert_eq!(j.get("cycles").unwrap().as_u64(), Some(u64::MAX / 3));
        assert_eq!(j.get("dram_bytes").unwrap().as_u64(), Some(640));
        let text = j.render();
        let back = crate::json::Value::parse(&text).unwrap();
        assert_eq!(back, j, "schema round-trips through text");
    }

    #[test]
    fn on_chip_excludes_dram() {
        let e = EnergyReport {
            cache_pj: 10.0,
            spad_pj: 5.0,
            stream_pj: 1.0,
            dram_pj: 1000.0,
        };
        assert!((e.on_chip_pj() - 16.0).abs() < 1e-12);
    }
}
