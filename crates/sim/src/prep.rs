//! Config-independent simulation arena.
//!
//! Everything the scheduler needs from a [`Trace`] that does not depend
//! on the [`crate::SystemConfig`] is flattened here once: the dependence
//! CSR, initial indegrees, root set, and a struct-of-arrays copy of the
//! per-node scheduling metadata (class, address, byte count, flags). The
//! hot loop then never chases the trace's per-node `deps` vectors or
//! 80-byte node structs, and a parameter sweep that only perturbs
//! cache/scratchpad/DRAM settings re-simulates from this shared prefix
//! instead of rebuilding it per configuration (the bench harness keys the
//! arena by program and the simulation result by the
//! `SystemConfig::fingerprint` memo).

use crate::error::SimError;
use tapeflow_ir::trace::Phase;
use tapeflow_ir::{Op, OpClass, Trace};

/// Node flag: access targets a tape array.
pub(crate) const FLAG_TAPE: u8 = 1 << 0;
/// Node flag: node belongs to the reverse phase.
pub(crate) const FLAG_REV: u8 = 1 << 1;
/// Node flag: stream command moves data inward (`StreamIn`, engine 1).
pub(crate) const FLAG_STREAM_IN: u8 = 1 << 2;

/// Per-node mutable scheduling state, fused into one 16-byte entry so the
/// completion walk touches a single cache line per successor (the old
/// layout split `ready_time` and `indeg` across two arrays and paid two
/// random accesses per dependence edge). A run starts from the arena's
/// [`PreparedSim::pend0`] template with one `memcpy`.
#[derive(Clone, Copy, Debug)]
#[repr(C)]
pub(crate) struct NodeState {
    /// Latest dependence finish time seen so far.
    pub(crate) ready: u64,
    /// Dependences still outstanding.
    pub(crate) indeg: u32,
}

/// A [`Trace`] preprocessed for simulation: dependence CSR plus
/// struct-of-arrays node metadata, independent of any `SystemConfig`.
///
/// Build once with [`PreparedSim::new`], then run any number of
/// configurations through [`crate::engine::simulate_prepared`].
#[derive(Clone, Debug)]
pub struct PreparedSim {
    pub(crate) n: usize,
    /// Scheduling class per node.
    pub(crate) class: Vec<OpClass>,
    /// `FLAG_*` bits per node.
    pub(crate) flags: Vec<u8>,
    /// Byte address per node (scratchpad entries carry the spad-space bit).
    pub(crate) addr: Vec<u64>,
    /// Transfer size per node (stream commands).
    pub(crate) bytes: Vec<u32>,
    /// Initial scheduling state per node (`ready = 0`, indegree from the
    /// trace) — the template each simulation run clones.
    pub(crate) pend0: Vec<NodeState>,
    /// CSR successor offsets (`n + 1` entries).
    pub(crate) succ_off: Vec<u32>,
    /// CSR successor payload.
    pub(crate) succ_dat: Vec<u32>,
    /// Nodes with no dependences, in id order.
    pub(crate) roots: Vec<u32>,
    /// Index of the FWD/REV phase barrier, if the trace has one.
    pub(crate) phase_barrier_idx: Option<usize>,
    /// Whether any node touches the scratchpad. Together with
    /// [`PreparedSim::has_stream`] this decides which engine backend
    /// applies and which `SystemConfig` parameter classes are relevant
    /// to the trace at all (a sweep session chains across changes to a
    /// subsystem the trace never exercises).
    pub(crate) has_spad: bool,
    /// Whether any node is a stream-engine command.
    pub(crate) has_stream: bool,
    /// Number of cache-access nodes (`MemLoad`/`MemStore`) — the length
    /// of a sweep recording's outcome stream, precomputed so sessions
    /// don't rescan the class array.
    pub(crate) n_mem: usize,
}

impl PreparedSim {
    /// Rejects traces whose node or edge count would overflow the
    /// scheduler's 32-bit indices (event heap ids, CSR offsets). Kept
    /// separate from [`PreparedSim::new`] so the guard is testable
    /// without materializing a four-billion-node trace.
    pub fn check_limits(nodes: usize, edges: usize) -> Result<(), SimError> {
        // Node ids are stored as `u32` in the event heap and CSR payload.
        const NODE_LIMIT: usize = u32::MAX as usize - 1;
        // CSR offsets are cumulative `u32` edge counts.
        const EDGE_LIMIT: usize = u32::MAX as usize;
        if nodes > NODE_LIMIT {
            return Err(SimError::TraceTooLarge {
                what: "nodes",
                count: nodes,
                limit: NODE_LIMIT,
            });
        }
        if edges > EDGE_LIMIT {
            return Err(SimError::TraceTooLarge {
                what: "dependence edges",
                count: edges,
                limit: EDGE_LIMIT,
            });
        }
        Ok(())
    }

    /// Flattens `trace` into the arena. Fails (instead of silently
    /// truncating ids) when the trace exceeds the 32-bit index limits.
    pub fn new(trace: &Trace) -> Result<Self, SimError> {
        let n = trace.len();
        Self::check_limits(n, trace.edge_count())?;

        let mut class = Vec::with_capacity(n);
        let mut flags = Vec::with_capacity(n);
        let mut addr = Vec::with_capacity(n);
        let mut bytes = Vec::with_capacity(n);
        let mut pend0 = vec![NodeState { ready: 0, indeg: 0 }; n];
        let mut succ_cnt = vec![0u32; n];
        let mut phase_barrier_idx = None;
        let mut has_spad = false;
        let mut has_stream = false;
        let mut n_mem = 0usize;
        for (i, node) in trace.nodes().iter().enumerate() {
            let c = node.class();
            has_spad |= matches!(c, OpClass::SpadLoad | OpClass::SpadStore);
            has_stream |= matches!(c, OpClass::Stream);
            n_mem += usize::from(matches!(c, OpClass::MemLoad | OpClass::MemStore));
            class.push(c);
            let mut f = 0u8;
            f |= FLAG_TAPE * u8::from(node.is_tape);
            f |= FLAG_REV * u8::from(node.phase == Phase::Rev);
            f |= FLAG_STREAM_IN
                * u8::from(matches!(node.op, Op::StreamIn(_) | Op::StreamInC { .. }));
            flags.push(f);
            addr.push(node.addr);
            bytes.push(node.bytes);
            if phase_barrier_idx.is_none() && node.phase == Phase::Rev {
                phase_barrier_idx = Some(i);
            }
            pend0[i].indeg = node.deps.len() as u32;
            for d in &node.deps {
                succ_cnt[d.index()] += 1;
            }
        }

        let mut succ_off = vec![0u32; n + 1];
        for i in 0..n {
            succ_off[i + 1] = succ_off[i] + succ_cnt[i];
        }
        let mut succ_dat = vec![0u32; succ_off[n] as usize];
        let mut fill = succ_off.clone();
        for (i, node) in trace.nodes().iter().enumerate() {
            for d in &node.deps {
                let di = d.index();
                succ_dat[fill[di] as usize] = i as u32;
                fill[di] += 1;
            }
        }

        let roots = (0..n as u32)
            .filter(|&i| pend0[i as usize].indeg == 0)
            .collect();
        Ok(PreparedSim {
            n,
            class,
            flags,
            addr,
            bytes,
            pend0,
            succ_off,
            succ_dat,
            roots,
            phase_barrier_idx,
            has_spad,
            has_stream,
            n_mem,
        })
    }

    /// Whether any node touches the scratchpad or a stream engine. When
    /// none do, the engine's pure event loop applies (no per-cycle
    /// iteration; see `engine::run_dataflow`).
    pub(crate) fn spad_or_stream(&self) -> bool {
        self.has_spad || self.has_stream
    }

    /// Number of nodes in the prepared trace.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the prepared trace is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Approximate heap footprint in bytes (for capacity planning).
    pub fn arena_bytes(&self) -> usize {
        self.class.len() * std::mem::size_of::<OpClass>()
            + self.flags.len()
            + self.addr.len() * 8
            + self.bytes.len() * 4
            + self.pend0.len() * std::mem::size_of::<NodeState>()
            + (self.succ_off.len() + self.succ_dat.len() + self.roots.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_ir::trace::{trace_function, TraceOptions};
    use tapeflow_ir::{FunctionBuilder, Memory};

    #[test]
    fn limits_reject_oversized_counts_without_building() {
        assert_eq!(PreparedSim::check_limits(0, 0), Ok(()));
        assert_eq!(PreparedSim::check_limits(1 << 20, 1 << 22), Ok(()));
        let huge = u32::MAX as usize;
        assert!(matches!(
            PreparedSim::check_limits(huge, 0),
            Err(SimError::TraceTooLarge { what: "nodes", .. })
        ));
        assert!(matches!(
            PreparedSim::check_limits(16, huge + 1),
            Err(SimError::TraceTooLarge {
                what: "dependence edges",
                ..
            })
        ));
    }

    #[test]
    fn arena_mirrors_the_trace() {
        let mut b = FunctionBuilder::new("t");
        let one = b.f64(1.0);
        let mut v = b.f64(0.0);
        for _ in 0..5 {
            v = b.fadd(v, one);
        }
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let prep = PreparedSim::new(&trace).unwrap();
        assert_eq!(prep.len(), trace.len());
        assert_eq!(prep.succ_dat.len(), trace.edge_count());
        assert_eq!(prep.phase_barrier_idx, None);
        // Every root really has indegree zero and the CSR covers all edges.
        for &r in &prep.roots {
            assert_eq!(prep.pend0[r as usize].indeg, 0);
        }
        assert_eq!(prep.succ_off[prep.len()] as usize, trace.edge_count());
        assert!(prep.arena_bytes() > 0);
    }
}
