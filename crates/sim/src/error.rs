//! Structured simulator errors.

use std::fmt;

/// Why a trace could not be simulated.
///
/// The scheduler indexes nodes with `u32` (event heap entries, successor
/// CSR payloads) and stores CSR offsets as `u32`; traces beyond those
/// limits used to truncate silently and corrupt the schedule. They are
/// now rejected up front with this error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The trace exceeds a scheduler index width.
    TraceTooLarge {
        /// What overflowed: `"nodes"` or `"dependence edges"`.
        what: &'static str,
        /// How many the trace has.
        count: usize,
        /// The largest count the scheduler can index.
        limit: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TraceTooLarge { what, count, limit } => write!(
                f,
                "trace too large: {count} {what} exceed the scheduler's \
                 32-bit index limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_overflowing_dimension() {
        let e = SimError::TraceTooLarge {
            what: "nodes",
            count: 5_000_000_000,
            limit: u32::MAX as usize - 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("trace too large"), "{msg}");
        assert!(msg.contains("nodes"), "{msg}");
        assert!(msg.contains("5000000000"), "{msg}");
    }
}
