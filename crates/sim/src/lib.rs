//! # tapeflow-sim
//!
//! A cycle-level simulator for the paper's target hardware — the
//! gem5-SALAM substitute. It executes the dynamic dataflow graph
//! ([`tapeflow_ir::Trace`]) of a gradient program on a model of the
//! spatial accelerator from §3.1 / Table 4.2:
//!
//! * a 4×4 grid of processing elements with dual double-precision FPUs
//!   (dataflow issue, operation latencies per class);
//! * a set-associative, write-back/write-allocate **cache** with a limited
//!   number of ports, for all non-tape accesses (and for tape accesses in
//!   the Enzyme baseline);
//! * a banked **scratchpad** (16 banks × 8 entries in the paper's
//!   baseline) serving Tapeflow's tape accesses;
//! * two decoupled **stream engines** (`FWD-Stream`, `REV-Stream`) moving
//!   tape tiles between scratchpad and DRAM;
//! * a bandwidth/latency **DRAM** model shared by cache fills, write-backs
//!   and streams;
//! * a CACTI-style per-access **energy** table seeded from Table 4.2.
//!
//! The same datapath is used for every memory configuration, which is the
//! paper's apples-to-apples methodology: only the memory model changes
//! between `Enzyme_N` and `Tflow_N`.
//!
//! ```rust
//! use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar};
//! use tapeflow_ir::trace::{trace_function, TraceOptions};
//! use tapeflow_sim::{simulate, SimOptions, SystemConfig};
//!
//! let mut b = FunctionBuilder::new("axpy");
//! let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
//! let y = b.array("y", 64, ArrayKind::InOut, Scalar::F64);
//! let a = b.f64(3.0);
//! b.for_loop("i", 0, 64, |b, i| {
//!     let xi = b.load(x, i);
//!     let yi = b.load(y, i);
//!     let t = b.fmul(a, xi);
//!     let s = b.fadd(t, yi);
//!     b.store(y, i, s);
//! });
//! let f = b.finish();
//! let mut mem = Memory::for_function(&f);
//! let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
//! let report = simulate(&trace, &SystemConfig::with_cache_bytes(1024), &SimOptions::default());
//! assert!(report.cycles > 0);
//! assert_eq!(report.cache.accesses(), 192); // 128 loads + 64 stores
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod error;
pub mod json;
pub mod legacy;
pub mod prep;
pub mod probe;
pub mod report;
pub mod sweep;

pub use cache::{Cache, ReplacementPolicy};
pub use config::{
    CacheConfig, ClassPrints, DramConfig, EnergyTable, PeConfig, SpadConfig, SystemConfig,
};
pub use engine::{
    simulate, simulate_prepared, simulate_prepared_probed, simulate_probed, try_simulate,
    try_simulate_probed, try_simulate_probed_with, Engine, SimOptions,
};
pub use error::SimError;
pub use prep::PreparedSim;
pub use probe::{
    AttributionProbe, CycleBreakdown, InstBreakdown, NoProbe, ProbeGeometry, SamplingProbe,
    SimProbe, StallKind, TraceRecorder,
};
pub use report::{CacheStats, EnergyReport, SimReport};
pub use sweep::{plan_order, run_group, SweepSession};

// The bench harness shares configurations and reports across worker
// threads; keep them thread-safe by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SystemConfig>();
    assert_send_sync::<SimReport>();
    assert_send_sync::<SimOptions>();
    // The prepared-sim arena is shared (`Arc`) across sweep workers.
    assert_send_sync::<PreparedSim>();
    assert_send_sync::<SimError>();
};
