//! Incremental re-simulation across parameter sweeps.
//!
//! A sweep re-runs the *same* prepared trace under configurations that
//! differ in a few machine parameters; the schedule of two such runs is
//! identical up to the first cache access whose outcome (hit/miss,
//! dirty eviction) differs — provided every parameter the replay itself
//! cannot validate is unchanged. [`SweepSession`] exploits that:
//!
//! 1. The first configuration runs fully, recording the cache access
//!    stream with outcomes and taking periodic scheduler checkpoints
//!    ([`crate::engine::Recording`]). Traces served by the pure event
//!    loop record through it; scratchpad/stream traces record through
//!    the per-cycle core ([`crate::engine::core_loop`]), whose complete
//!    state is equally snapshottable — so *every* nonempty trace gets a
//!    session, not just the cache-only ones.
//! 2. Each later configuration **replays** the recorded address stream
//!    through its own cold cache — pure `Cache::access` calls, no
//!    scheduler at all — comparing outcomes against the record.
//!    * Outcomes match to the end: the schedule is provably identical,
//!      so the recorded report is reused wholesale; only the end-of-run
//!      dirty flush (read off the replayed cache) and the
//!      size-dependent energy terms are recomputed.
//!    * First mismatch at access *k*: the run resumes from the last
//!      checkpoint at or before *k* — scheduler state from the
//!      checkpoint, cache state from the replay — and re-simulates
//!      only the tail, re-recording it for the next configuration.
//!
//! Ordering a ladder from large caches to small maximizes shared
//! prefixes (neighbouring sizes behave identically until capacity
//! pressure bites); [`plan_order`] encodes that policy for arbitrary
//! config sets. Correctness never depends on the order, only the
//! amount of reuse does; every report is byte-identical to a fresh
//! simulation, which the determinism suite and the harness's golden
//! JSON pin down.
//!
//! ## What may change between chained configurations
//!
//! Compatibility is keyed on the per-parameter-class fingerprints of
//! [`crate::config::ClassPrints`] rather than the whole-config memo
//! fingerprint:
//!
//! * **Cache geometry** (size/assoc/policy) — free: the replay
//!   validates it directly through outcomes.
//! * **Scratchpad bank count** — validated *structurally*: the bank of
//!   a scratchpad access is `addr % banks`, a pure per-address
//!   function, so two counts chain iff they assign every scratchpad
//!   address in the trace the same bank ([`spad_map_equal`]); traces
//!   without scratchpad nodes chain across any bank count.
//! * **Energy table** — free: energy is recomputed from final counters.
//! * Everything else — cache timing (line/ports/latency/MSHRs),
//!   scratchpad latency, the DRAM/stream model, the datapath — feeds
//!   timing without leaving a per-access record and forces a fresh
//!   recording when a *relevant* class changes (classes the trace never
//!   exercises don't gate).

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::engine::{
    core_loop, dataflow_loop, dataflow_ok, finalize_core, finalize_dataflow, recompute_energy,
    simulate_prepared, CoreState, DfState, Recording, SimOptions, Snap, REC_ADDR_MASK, REC_HIT,
    REC_SHIFT, REC_WB, REC_WRITE,
};
use crate::prep::PreparedSim;
use crate::probe::NoProbe;
use crate::report::SimReport;
use std::sync::Arc;
use tapeflow_ir::OpClass;

/// Total checkpoint memory budget in bytes per session; large arenas
/// get fewer checkpoints (possibly none — incremental reuse then
/// degrades to "replay or re-run from scratch", still exact).
const CKPT_BUDGET: usize = 256 << 20;
/// Conservative per-node snapshot cost estimate in bytes (fused
/// pend/finish state plus queue and event entries; the per-cycle
/// core's snapshots are the larger variant).
const CKPT_NODE_BYTES: usize = 40;
/// Earliest checkpoint position in accesses — below this the snapshot
/// costs more than the prefix it saves.
const FIRST_CKPT: u64 = 64;
/// Hard cap on checkpoints per recording, independent of the budget
/// (each doubling past this covers so much stream that more snapshots
/// stop paying for themselves).
const CKPT_HARD_CAP: usize = 16;
/// Measured cost of one scheduler snapshot relative to a full cold
/// simulation of the same trace, in percent. Both scale linearly with
/// node count (the snapshot memcpys the per-node scheduler state, the
/// simulation visits every node), so the ratio is roughly
/// scale-invariant; ~30% holds for both the event-loop and per-cycle
/// core variants. A checkpoint at access *a* can save at most the
/// `a / n_mem` prefix of one future resume, so re-records only take
/// as many snapshots as their expected resume savings can repay.
const CKPT_COST_PCT: usize = 30;
/// How much earlier the *next* divergence lands relative to the one
/// that triggered a re-record, as a divisor on the expected resume
/// savings. On descending cache ladders successive divergences cluster
/// toward the start of the stream (measured roughly a third of the
/// previous position across the canonical sweeps), so a re-record
/// after a divergence at `d` should expect future resumes to reuse
/// only about `d / 3` of its prefix, not all of it.
const DIV_SHRINK: usize = 3;
/// Lookahead value meaning "unknown number of future configurations"
/// ([`SweepSession::simulate`] without a plan): checkpoint as if many
/// consumers may resume, i.e. the cost model caps on schedule span
/// and budget alone.
const MANY: usize = usize::MAX;

/// The checkpoint plan for a trace: first-checkpoint position (in
/// accesses) and checkpoint count, sized so the doubling schedule
/// spans the whole access stream while total snapshot memory stays
/// under [`CKPT_BUDGET`] **regardless of trace length** — the count
/// shrinks as the per-snapshot cost (`~CKPT_NODE_BYTES * nodes`)
/// grows. Invariant (pinned by a unit test):
/// `max_ckpts * CKPT_NODE_BYTES * nodes <= CKPT_BUDGET`, and
/// `interval << max_ckpts >= n_mem` (the schedule reaches the end).
pub(crate) fn ckpt_plan(nodes: usize, n_mem: usize) -> (u64, usize) {
    // Checkpoints wanted: enough doublings from FIRST_CKPT to span the
    // access stream (a short trace needs few; zero accesses need none).
    let mut wanted = 0usize;
    let mut pos = FIRST_CKPT;
    while pos < n_mem as u64 && wanted < CKPT_HARD_CAP {
        pos = pos.saturating_mul(2);
        wanted += 1;
    }
    if n_mem > 0 {
        wanted = wanted.max(1);
    }
    let per_ckpt = CKPT_NODE_BYTES * nodes.max(1);
    let max_ckpts = (CKPT_BUDGET / per_ckpt).min(wanted);
    // Anchor the first checkpoint so `max_ckpts` doublings span the
    // stream even when the budget granted fewer than `wanted`.
    let interval = ((n_mem as u64) >> max_ckpts).max(FIRST_CKPT);
    (interval, max_ckpts)
}

/// A sweep-scoped simulation session over one prepared trace: same
/// results as calling [`simulate_prepared`] per configuration, but
/// configurations whose differences the replay can validate (cache
/// geometry, scratchpad bank maps, energy tables) reuse the unchanged
/// warm-up prefix of the previous run instead of re-simulating it.
pub struct SweepSession {
    prep: Arc<PreparedSim>,
    opts: SimOptions,
    /// First-checkpoint position (accesses), derived from the trace's
    /// memory-node count; later checkpoints double from here.
    interval: u64,
    max_ckpts: usize,
    /// Memory accesses in the trace (recording buffer preallocation).
    n_mem: usize,
    /// Whether any chained configuration has diverged yet. Checkpoints
    /// are only worth their snapshot memcpys once a divergence has
    /// actually been observed — an all-match ladder (working set fits
    /// every size) records checkpoint-free.
    diverged: bool,
    base: Option<BaseRec>,
}

/// The most recent recorded run: its configuration, access record with
/// checkpoints, and final report.
struct BaseRec {
    cfg: SystemConfig,
    rec: Recording,
    report: SimReport,
}

impl std::fmt::Debug for SweepSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepSession")
            .field("nodes", &self.prep.len())
            .field("interval", &self.interval)
            .field("recorded", &self.base.is_some())
            .finish()
    }
}

impl SweepSession {
    /// A session over `prep`. `opts` applies to every run.
    pub fn new(prep: Arc<PreparedSim>, opts: SimOptions) -> SweepSession {
        let n_mem = prep.n_mem;
        let (interval, max_ckpts) = ckpt_plan(prep.len(), n_mem);
        SweepSession {
            prep,
            opts,
            interval,
            max_ckpts,
            n_mem,
            diverged: false,
            base: None,
        }
    }

    /// Simulates `cfg`, reusing the previous run's prefix when the
    /// configurations are sweep-compatible. Byte-identical to
    /// [`simulate_prepared`] on the same inputs.
    pub fn simulate(&mut self, cfg: &SystemConfig) -> SimReport {
        self.simulate_lookahead(cfg, MANY)
    }

    /// [`Self::simulate`] with a lookahead hint: `remaining` is the
    /// number of configurations still to run through this session
    /// after this one. The hint only tunes the recording effort —
    /// results stay byte-identical to [`simulate_prepared`] for any
    /// value:
    ///
    /// * `remaining == 0`: nothing can consume a recording, so a run
    ///   that must re-simulate does it cold (no access recording, no
    ///   snapshots); full-match replays still reuse the base wholesale.
    /// * otherwise: re-records after a divergence take only as many
    ///   checkpoints as `remaining` future resumes could plausibly
    ///   repay under the [`CKPT_COST_PCT`] cost model.
    ///
    /// [`run_group`] drives sessions through this entry point with the
    /// exact plan tail length; callers without a plan can use
    /// [`Self::simulate`], which assumes many consumers follow.
    pub fn simulate_lookahead(&mut self, cfg: &SystemConfig, remaining: usize) -> SimReport {
        if self.prep.is_empty() {
            // Nothing to record or replay.
            return simulate_prepared(&self.prep, cfg, &self.opts);
        }
        let chains = matches!(&self.base, Some(b) if self.chains_with(&b.cfg, cfg));
        if chains {
            self.incremental(*cfg, remaining)
        } else {
            self.record_fresh(*cfg, remaining, None)
        }
    }

    /// Whether `b` can chain off a recording made under `a`: every
    /// parameter class the replay cannot validate must be unchanged —
    /// unless the trace never exercises that subsystem at all. The
    /// gated classes (cache timing, datapath) also pin the backend
    /// choice ([`dataflow_ok`]), so a chained pair always resumes on
    /// the checkpoint variant it recorded.
    fn chains_with(&self, a: &SystemConfig, b: &SystemConfig) -> bool {
        let (pa, pb) = (a.class_prints(), b.class_prints());
        if pa.cache_timing != pb.cache_timing || pa.pe != pb.pe {
            return false;
        }
        // The DRAM model serves cache fills and stream transfers; a
        // trace with neither never consults it.
        if (self.n_mem > 0 || self.prep.has_stream) && pa.stream != pb.stream {
            return false;
        }
        if self.prep.has_spad {
            if pa.spad_timing != pb.spad_timing {
                return false;
            }
            if pa.spad_geometry != pb.spad_geometry
                && !spad_map_equal(&self.prep, a.spad.banks, b.spad.banks)
            {
                return false;
            }
        }
        true
    }

    /// Full run with recording; becomes the new base. Checkpoints are
    /// taken only once this session has seen a divergence — before
    /// that, the snapshots would be pure overhead on ladders whose
    /// outcome streams all match — and even then only as many as the
    /// remaining plan can repay: with a known divergence position
    /// `div`, each of the `remaining` future runs can save at most the
    /// `div / n_mem` prefix of one cold run by resuming, while every
    /// snapshot costs ~[`CKPT_COST_PCT`]% of a cold run up front. With
    /// nothing left in the plan (`remaining == 0`) the run skips
    /// recording entirely and leaves the existing base untouched — it
    /// still truthfully describes its own configuration, so a stray
    /// later call can keep chaining off it. Dispatches to whichever
    /// core serves this trace/config pair.
    fn record_fresh(&mut self, cfg: SystemConfig, remaining: usize, div: Option<u64>) -> SimReport {
        if remaining == 0 || (self.diverged && remaining == 1) {
            // Nothing left in the plan — or one run left right after a
            // divergence. Below the working set every smaller geometry's
            // outcome stream differs from every larger one's near the
            // start, so the post-divergence successor diverges again
            // with near certainty: recording for it would pay the
            // record overhead to enable a replay-match that will not
            // happen. The untouched base still truthfully describes
            // its own configuration, so the successor replays (and
            // early-diverges against) that instead.
            return simulate_prepared(&self.prep, &cfg, &self.opts);
        }
        let (ckpts, limit) = if !self.diverged {
            (0, u64::MAX)
        } else if let Some(div) = div {
            let div_pct = (100 * div / self.n_mem.max(1) as u64) as usize;
            let afford = remaining.min(64) * div_pct / (DIV_SHRINK * CKPT_COST_PCT);
            (afford.min(self.max_ckpts), div.max(1))
        } else {
            (self.max_ckpts, u64::MAX)
        };
        let mut rec = Recording::new(self.interval, ckpts, self.n_mem, limit);
        let mut cache = Cache::new(cfg.cache);
        let report = if dataflow_ok(&self.prep, &cfg) {
            let mut st = DfState::new(&self.prep, &cfg);
            dataflow_loop::<true>(&self.prep, &cfg, &mut st, &mut cache, &mut rec);
            finalize_dataflow(st, cache, &self.prep, &cfg, &self.opts)
        } else {
            let mut st = CoreState::new(&self.prep, &cfg);
            core_loop::<NoProbe, true>(
                &self.prep,
                &cfg,
                &mut st,
                &mut cache,
                &mut rec,
                &mut NoProbe,
            );
            finalize_core(st, cache, &self.prep, &cfg, &self.opts)
        };
        self.base = Some(BaseRec {
            cfg,
            rec,
            report: report.clone(),
        });
        report
    }

    /// Replay the base record through `cfg`'s cache; skip what matches.
    fn incremental(&mut self, cfg: SystemConfig, remaining: usize) -> SimReport {
        let b = self.base.as_mut().expect("incremental requires a base");
        let mut cache = Cache::new(cfg.cache);

        // Pass 1: replay the recorded address stream comparing outcomes.
        // No state is saved along the way — the common full-match case
        // must stay a pure `Cache::access` scan (snapshotting a multi-MB
        // cache at every checkpoint boundary would dwarf the replay).
        let mut div: Option<u64> = None;
        for (i, &word) in b.rec.addrs.iter().enumerate() {
            let m = (word >> REC_SHIFT) as u8;
            let res = cache.access(word & REC_ADDR_MASK, m & REC_WRITE != 0);
            let got = (REC_HIT * u8::from(res.hit)) | (REC_WB * u8::from(res.writeback.is_some()));
            if got != m & (REC_HIT | REC_WB) {
                div = Some(i as u64);
                break;
            }
        }

        let Some(div) = div else {
            // Identical outcome stream end to end: identical schedule,
            // identical counters. Only the end-of-run dirty flush (this
            // geometry's resident dirty lines) and the size-dependent
            // energy terms differ from the recorded report.
            let mut report = b.report.clone();
            let line = cache.config().line_bytes as u64;
            let flushed = cache.dirty_lines();
            report.cache.writebacks =
                report.cache.writebacks - report.cache.flush_writebacks + flushed;
            report.dram_writeback_bytes =
                report.dram_writeback_bytes - report.cache.flush_writebacks * line + flushed * line;
            report.cache.flush_writebacks = flushed;
            recompute_energy(&mut report, &cfg);
            // Chain: the record now equally describes this run.
            b.cfg = cfg;
            b.report = report.clone();
            return report;
        };

        // Resume from the last checkpoint at or before the divergence.
        // Pass 2 (divergence only) rebuilds that boundary's cache by
        // re-replaying the already-validated prefix — every access
        // before `div` matched, so no comparison is needed. With no
        // usable checkpoint, re-record from scratch; the session now
        // knows divergences happen on this ladder, so the re-record
        // takes checkpoints.
        self.diverged = true;
        let usable = b.rec.ckpts.partition_point(|c| c.snap.accesses() <= div);
        let Some(j) = usable.checked_sub(1) else {
            return self.record_fresh(cfg, remaining, Some(div));
        };
        let keep = b.rec.ckpts[j].snap.accesses() as usize;
        let mut tail_cache = Cache::new(cfg.cache);
        for &word in &b.rec.addrs[..keep] {
            tail_cache.access(
                word & REC_ADDR_MASK,
                (word >> REC_SHIFT) as u8 & REC_WRITE != 0,
            );
        }
        // Restore scheduler state on whichever core recorded the run
        // (a chained pair always agrees on the backend).
        enum Resumed {
            Df(Box<DfState>),
            Core(Box<CoreState>),
        }
        let resumed = match &b.rec.ckpts[j].snap {
            Snap::Df(s) => Resumed::Df(Box::new(DfState::restore(s, &cfg))),
            Snap::Core(s) => Resumed::Core(s.clone()),
        };
        if remaining <= 1 {
            // Last run of the plan — or the next-to-last right after
            // this divergence, whose successor will again diverge early
            // (see `record_fresh`) rather than replay-match this tail.
            // Either way nobody profits from a recorded tail, so it
            // runs unrecorded, and the base — untouched — keeps
            // truthfully describing the previous configuration.
            return match resumed {
                Resumed::Df(st) => {
                    let mut st = *st;
                    let mut rec = Recording::disabled();
                    dataflow_loop::<false>(&self.prep, &cfg, &mut st, &mut tail_cache, &mut rec);
                    finalize_dataflow(st, tail_cache, &self.prep, &cfg, &self.opts)
                }
                Resumed::Core(st) => {
                    let mut st = *st;
                    let mut rec = Recording::disabled();
                    core_loop::<NoProbe, false>(
                        &self.prep,
                        &cfg,
                        &mut st,
                        &mut tail_cache,
                        &mut rec,
                        &mut NoProbe,
                    );
                    finalize_core(st, tail_cache, &self.prep, &cfg, &self.opts)
                }
            };
        }
        b.rec.truncate_to(j);
        let report = match resumed {
            Resumed::Df(st) => {
                let mut st = *st;
                dataflow_loop::<true>(&self.prep, &cfg, &mut st, &mut tail_cache, &mut b.rec);
                finalize_dataflow(st, tail_cache, &self.prep, &cfg, &self.opts)
            }
            Resumed::Core(st) => {
                let mut st = *st;
                core_loop::<NoProbe, true>(
                    &self.prep,
                    &cfg,
                    &mut st,
                    &mut tail_cache,
                    &mut b.rec,
                    &mut NoProbe,
                );
                finalize_core(st, tail_cache, &self.prep, &cfg, &self.opts)
            }
        };
        b.cfg = cfg;
        b.report = report.clone();
        report
    }
}

/// Whether bank counts `b1` and `b2` assign every scratchpad address in
/// the trace the same bank (`addr % banks`, the engine's static bank
/// map). A pure trace property — no recording needed — so a session
/// can chain across bank-count changes whenever it holds, and a trace
/// with no scratchpad nodes trivially chains across any count.
pub(crate) fn spad_map_equal(prep: &PreparedSim, b1: usize, b2: usize) -> bool {
    let (b1, b2) = (b1.max(1), b2.max(1));
    if b1 == b2 {
        return true;
    }
    prep.class.iter().zip(&prep.addr).all(|(c, &a)| {
        !matches!(c, OpClass::SpadLoad | OpClass::SpadStore)
            || (a as usize) % b1 == (a as usize) % b2
    })
}

/// The order in which to run `cfgs` through one [`SweepSession`] to
/// maximize replay-prefix reuse: configurations whose timing classes
/// match (the chainability requirement) land adjacent, bank-count
/// variants cluster within a timing group, and cache sizes descend
/// within a group — on a descending ladder each smaller configuration
/// diverges *earlier*, so prefix checkpoints from the larger run keep
/// serving. Deterministic: ties break on the caller's index.
pub fn plan_order(cfgs: &[SystemConfig]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..cfgs.len()).collect();
    idx.sort_by_key(|&i| {
        let p = cfgs[i].class_prints();
        (
            p.chain_key(),
            p.spad_geometry,
            std::cmp::Reverse(cfgs[i].cache.size_bytes),
            i,
        )
    });
    idx
}

/// Runs every configuration through one [`SweepSession`] in
/// [`plan_order`], returning reports in the **caller's** order. The
/// session-per-trace building block of the sweep planner (the bench
/// harness groups arbitrary config sets by trace and fans the groups
/// out in parallel).
pub fn run_group(
    prep: Arc<PreparedSim>,
    opts: SimOptions,
    cfgs: &[SystemConfig],
) -> Vec<SimReport> {
    let mut sess = SweepSession::new(prep, opts);
    let mut out: Vec<Option<SimReport>> = (0..cfgs.len()).map(|_| None).collect();
    let order = plan_order(cfgs);
    for (k, &i) in order.iter().enumerate() {
        // The plan tail length lets the session skip recording work no
        // later run can consume (nothing on the last visit).
        out[i] = Some(sess.simulate_lookahead(&cfgs[i], order.len() - k - 1));
    }
    out.into_iter()
        .map(|r| r.expect("plan_order visits every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use tapeflow_ir::trace::{trace_function, TraceOptions};
    use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Op, Scalar, Trace};

    fn mixed_trace(arrays: usize, len: i64) -> Trace {
        // Loads over several arrays with FP reductions and stores —
        // enough working set that small caches diverge from large ones.
        let mut b = FunctionBuilder::new("sweep");
        let xs: Vec<_> = (0..arrays)
            .map(|k| b.array(format!("x{k}"), len as usize, ArrayKind::InOut, Scalar::F64))
            .collect();
        let mut acc = b.f64(0.0);
        for &x in &xs {
            b.for_loop("i", 0, len, |b, i| {
                let v = b.load(x, i);
                let w = b.fmul(v, v);
                b.store(x, i, w);
            });
            let z = b.i64(0);
            let v0 = b.load(x, z);
            acc = b.fadd(acc, v0);
        }
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        trace_function(&f, &mut mem, TraceOptions::default()).unwrap()
    }

    /// A trace exercising the scratchpad, stream engines *and* the
    /// cache — forced onto the per-cycle core.
    fn spad_stream_trace(len: i64) -> Trace {
        let mut b = FunctionBuilder::new("spadsweep");
        let x = b.array("x", len as usize, ArrayKind::Input, Scalar::F64);
        let tape = b.array("tape", len as usize, ArrayKind::Tape, Scalar::F64);
        let base = b
            .push_inst(
                Op::SAlloc {
                    size: len as u32,
                    base: 0,
                },
                vec![],
            )
            .unwrap();
        let zero = b.i64(0);
        let elems = b.i64(len);
        b.push_inst(Op::StreamOut(tape), vec![base, zero, elems]);
        let v = b.f64(1.0);
        b.for_loop("i", 0, len, |b, i| {
            let w = b.load(x, i);
            let s = b.fadd(w, v);
            b.push_inst(Op::SpadStore, vec![i, s]);
            let _ = b.push_inst(Op::SpadLoad, vec![i]);
        });
        b.push_inst(Op::StreamIn(tape), vec![base, zero, elems]);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        trace_function(&f, &mut mem, TraceOptions::default()).unwrap()
    }

    #[test]
    fn session_matches_fresh_simulation_in_any_order() {
        let trace = mixed_trace(4, 128);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        // Descending (the intended ladder), ascending, and zig-zag: the
        // session must be byte-identical to fresh runs regardless.
        let ladders: [&[usize]; 3] = [
            &[131072, 32768, 8192, 2048, 1024],
            &[1024, 2048, 8192, 32768, 131072],
            &[32768, 1024, 131072, 2048, 32768],
        ];
        for ladder in ladders {
            let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
            for &bytes in ladder {
                let cfg = SystemConfig::with_cache_bytes(bytes);
                let inc = sess.simulate(&cfg);
                let fresh = simulate(&trace, &cfg, &SimOptions::default());
                assert_eq!(
                    inc.to_json().render(),
                    fresh.to_json().render(),
                    "sweep diverged at cache={bytes} in ladder {ladder:?}"
                );
            }
        }
    }

    #[test]
    fn session_reuses_identical_outcome_streams() {
        // Two huge cache sizes over a small working set: the second run
        // must be served from the record (no tail re-simulation), which
        // we observe through the record keeping its original config's
        // report but still matching a fresh simulation bit for bit.
        let trace = mixed_trace(2, 64);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
        let big = SystemConfig::with_cache_bytes(1 << 20);
        let bigger = SystemConfig::with_cache_bytes(2 << 20);
        let first = sess.simulate(&big);
        let second = sess.simulate(&bigger);
        assert_eq!(first.cycles, second.cycles, "fits-in-cache: same schedule");
        let fresh = simulate(&trace, &bigger, &SimOptions::default());
        assert_eq!(second.to_json().render(), fresh.to_json().render());
    }

    #[test]
    fn incompatible_configs_rerecord_instead_of_chaining() {
        let trace = mixed_trace(2, 64);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
        let a = SystemConfig::with_cache_bytes(32768);
        let mut b = SystemConfig::with_cache_bytes(32768);
        b.cache.mshrs = 1; // timing-relevant: must not chain
        b.cache.hit_latency = 5;
        let _ = sess.simulate(&a);
        let rb = sess.simulate(&b);
        let fresh = simulate(&trace, &b, &SimOptions::default());
        assert_eq!(rb.to_json().render(), fresh.to_json().render());
    }

    #[test]
    fn node_times_survive_incremental_reuse() {
        let trace = mixed_trace(2, 64);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let opts = SimOptions {
            record_node_times: true,
        };
        let mut sess = SweepSession::new(Arc::clone(&prep), opts);
        for bytes in [1 << 20, 2 << 20, 1024] {
            let cfg = SystemConfig::with_cache_bytes(bytes);
            let inc = sess.simulate(&cfg);
            let fresh = simulate(&trace, &cfg, &opts);
            assert_eq!(inc.node_finish, fresh.node_finish, "cache={bytes}");
        }
    }

    #[test]
    fn spad_stream_traces_run_on_the_session_core() {
        // The per-cycle-core backend: cache ladders over a trace with
        // scratchpad and stream nodes must chain (not fall back to cold
        // runs) and stay byte-identical to fresh simulations in any
        // order.
        let trace = spad_stream_trace(192);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        assert!(prep.has_spad && prep.has_stream);
        let ladders: [&[usize]; 2] = [&[131072, 32768, 2048, 1024], &[1024, 131072, 2048, 32768]];
        for ladder in ladders {
            let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
            for &bytes in ladder {
                let cfg = SystemConfig::with_cache_bytes(bytes);
                let inc = sess.simulate(&cfg);
                let fresh = simulate(&trace, &cfg, &SimOptions::default());
                assert_eq!(
                    inc.to_json().render(),
                    fresh.to_json().render(),
                    "core-backend sweep diverged at cache={bytes}"
                );
            }
        }
    }

    #[test]
    fn bank_count_changes_chain_when_the_map_agrees() {
        // All scratchpad addresses in this trace are < 16, so 16 and 32
        // banks assign identical banks (addr % 16 == addr % 32 for
        // addr < 16): the bank-map check must chain them. 8 banks remap
        // (addr 8 lands on bank 0) and must re-record. Either way the
        // reports match fresh runs.
        let trace = spad_stream_trace(16);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let spad_addrs: Vec<u64> = prep
            .class
            .iter()
            .zip(&prep.addr)
            .filter(|(c, _)| matches!(c, OpClass::SpadLoad | OpClass::SpadStore))
            .map(|(_, &a)| a)
            .collect();
        assert!(!spad_addrs.is_empty());
        assert!(spad_addrs.iter().all(|&a| a < 16));
        assert!(spad_map_equal(&prep, 16, 32));
        assert!(!spad_map_equal(&prep, 16, 8));

        let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
        for banks in [16usize, 32, 8] {
            let mut cfg = SystemConfig::default();
            cfg.spad.banks = banks;
            let inc = sess.simulate(&cfg);
            let fresh = simulate(&trace, &cfg, &SimOptions::default());
            assert_eq!(
                inc.to_json().render(),
                fresh.to_json().render(),
                "bank sweep diverged at banks={banks}"
            );
        }
    }

    #[test]
    fn stream_model_changes_gate_chaining_correctly() {
        // DRAM bandwidth/latency feed both stream transfers and cache
        // fills: changing them must re-record, and the results must
        // still match fresh runs.
        let trace = spad_stream_trace(64);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
        let a = SystemConfig::default();
        let mut b = SystemConfig::default();
        b.dram.bytes_per_cycle = 4.8;
        b.dram.latency = 200;
        for cfg in [&a, &b, &a] {
            let inc = sess.simulate(cfg);
            let fresh = simulate(&trace, cfg, &SimOptions::default());
            assert_eq!(inc.to_json().render(), fresh.to_json().render());
        }
    }

    #[test]
    fn energy_table_changes_never_force_a_rerecord() {
        // Energy is recomputed at finalize; two configs differing only
        // in the energy table must chain with a full-match replay.
        let trace = mixed_trace(2, 64);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
        let a = SystemConfig::default();
        let mut b = SystemConfig::default();
        b.energy.dram_pj_per_byte *= 2.0;
        let _ = sess.simulate(&a);
        let rb = sess.simulate(&b);
        let fresh = simulate(&trace, &b, &SimOptions::default());
        assert_eq!(rb.to_json().render(), fresh.to_json().render());
    }

    #[test]
    fn ckpt_plan_bounds_memory_for_any_trace_size() {
        // The adaptive plan's contract: snapshot memory stays under the
        // budget regardless of trace length, and the doubling schedule
        // spans the access stream.
        for nodes in [0usize, 1, 100, 1 << 16, 1 << 24, 1 << 30] {
            for n_mem in [0usize, 1, 64, 4096, 1 << 20, 1 << 28] {
                let (interval, max_ckpts) = ckpt_plan(nodes, n_mem);
                assert!(
                    max_ckpts * CKPT_NODE_BYTES * nodes.max(1) <= CKPT_BUDGET,
                    "budget blown: nodes={nodes} n_mem={n_mem} -> {max_ckpts} ckpts"
                );
                assert!(max_ckpts <= CKPT_HARD_CAP);
                assert!(interval >= FIRST_CKPT);
                if max_ckpts > 0 {
                    assert!(
                        (interval << max_ckpts) >= n_mem as u64,
                        "schedule falls short: nodes={nodes} n_mem={n_mem}"
                    );
                }
            }
        }
        // Zero memory accesses: no checkpoints at all.
        assert_eq!(ckpt_plan(1000, 0).1, 0);
    }

    #[test]
    fn zero_memory_access_trace_builds_a_trivial_session() {
        // A pure-FP trace records an empty access stream; every later
        // config must full-match (trivially) and reuse the report.
        let mut b = FunctionBuilder::new("fponly");
        let one = b.f64(1.0);
        let mut v = b.f64(0.0);
        for _ in 0..32 {
            v = b.fadd(v, one);
        }
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
        for bytes in [1024usize, 32768, 131072] {
            let cfg = SystemConfig::with_cache_bytes(bytes);
            let inc = sess.simulate(&cfg);
            let fresh = simulate(&trace, &cfg, &SimOptions::default());
            assert_eq!(inc.to_json().render(), fresh.to_json().render());
        }
    }

    #[test]
    fn run_group_returns_reports_in_caller_order() {
        let trace = mixed_trace(3, 96);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        // A deliberately shuffled mixed set: cache ladder + an MSHR
        // variant that cannot chain.
        let mut mshr1 = SystemConfig::with_cache_bytes(8192);
        mshr1.cache.mshrs = 1;
        let cfgs = vec![
            SystemConfig::with_cache_bytes(1024),
            mshr1,
            SystemConfig::with_cache_bytes(131072),
            SystemConfig::with_cache_bytes(8192),
        ];
        let got = run_group(Arc::clone(&prep), SimOptions::default(), &cfgs);
        assert_eq!(got.len(), cfgs.len());
        for (i, cfg) in cfgs.iter().enumerate() {
            let fresh = simulate(&trace, cfg, &SimOptions::default());
            assert_eq!(
                got[i].to_json().render(),
                fresh.to_json().render(),
                "run_group slot {i} diverged"
            );
        }
        // The plan is deterministic and visits every index once.
        let order = plan_order(&cfgs);
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(order, plan_order(&cfgs));
    }
}
