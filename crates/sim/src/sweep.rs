//! Incremental re-simulation across a cache-parameter sweep.
//!
//! A sweep that only perturbs the cache geometry (the paper's
//! cache-size sensitivity ladders) re-runs the *same* prepared trace
//! with the *same* datapath timing over and over; the schedule of two
//! such runs is identical up to the first cache access whose outcome
//! (hit/miss, dirty eviction) differs. [`SweepSession`] exploits that:
//!
//! 1. The first configuration runs fully, recording the cache access
//!    stream with outcomes and taking periodic scheduler checkpoints
//!    ([`crate::engine::Recording`]).
//! 2. Each later configuration **replays** the recorded address stream
//!    through its own cold cache — pure `Cache::access` calls, no
//!    scheduler at all — comparing outcomes against the record.
//!    * Outcomes match to the end: the schedule is provably identical,
//!      so the recorded report is reused wholesale; only the end-of-run
//!      dirty flush (read off the replayed cache) and the
//!      size-dependent energy terms are recomputed.
//!    * First mismatch at access *k*: the run resumes from the last
//!      checkpoint at or before *k* — scheduler state from the
//!      checkpoint, cache state from the replay — and re-simulates
//!      only the tail, re-recording it for the next configuration.
//!
//! Ordering a ladder from large caches to small maximizes shared
//! prefixes (neighbouring sizes behave identically until capacity
//! pressure bites). Correctness never depends on the order, only the
//! amount of reuse does; every report is byte-identical to a fresh
//! simulation, which the determinism suite and the harness's golden
//! JSON pin down.
//!
//! Compatibility is keyed off the [`SystemConfig::fingerprint`] memo:
//! two configurations chain if their fingerprints agree after
//! normalizing the cache fields the replay itself validates
//! (`size_bytes`, `assoc`, replacement policy). Everything else —
//! line size, ports, hit latency, MSHRs, datapath, DRAM — feeds timing
//! directly and forces a fresh recording when it changes. Traces the
//! pure event loop cannot serve (scratchpad/stream nodes) fall back to
//! [`simulate_prepared`] per configuration, unchanged.

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::engine::{
    dataflow_loop, dataflow_ok, finalize_dataflow, recompute_energy, simulate_prepared, DfState,
    Recording, SimOptions, REC_HIT, REC_WB, REC_WRITE,
};
use crate::prep::PreparedSim;
use crate::report::SimReport;
use std::sync::Arc;
use tapeflow_ir::OpClass;

/// Hard cap on scheduler checkpoints per recording (each costs ~24
/// bytes per trace node).
const MAX_CKPTS: usize = 8;
/// Total checkpoint memory budget in bytes; large arenas get fewer
/// checkpoints (possibly none — incremental reuse then degrades to
/// "replay or re-run from scratch", still exact).
const CKPT_BUDGET: usize = 256 << 20;

/// A sweep-scoped simulation session over one prepared trace: same
/// results as calling [`simulate_prepared`] per configuration, but
/// configurations that only differ in cache geometry reuse the
/// unchanged warm-up prefix of the previous run instead of
/// re-simulating it.
pub struct SweepSession {
    prep: Arc<PreparedSim>,
    opts: SimOptions,
    /// First-checkpoint position (accesses), derived from the trace's
    /// memory-node count; later checkpoints double from here.
    interval: u64,
    max_ckpts: usize,
    /// Memory accesses in the trace (recording buffer preallocation).
    n_mem: usize,
    /// Whether any chained configuration has diverged yet. Checkpoints
    /// are only worth their snapshot memcpys once a divergence has
    /// actually been observed — an all-match ladder (working set fits
    /// every size) records checkpoint-free.
    diverged: bool,
    base: Option<BaseRec>,
}

/// The most recent recorded run: its configuration, access record with
/// checkpoints, and final report.
struct BaseRec {
    cfg: SystemConfig,
    rec: Recording,
    report: SimReport,
}

impl std::fmt::Debug for SweepSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepSession")
            .field("nodes", &self.prep.len())
            .field("interval", &self.interval)
            .field("recorded", &self.base.is_some())
            .finish()
    }
}

impl SweepSession {
    /// A session over `prep`. `opts` applies to every run.
    pub fn new(prep: Arc<PreparedSim>, opts: SimOptions) -> SweepSession {
        let n_mem = prep
            .class
            .iter()
            .filter(|c| matches!(c, OpClass::MemLoad | OpClass::MemStore))
            .count() as u64;
        // First checkpoint after `interval` accesses, then doubling
        // (geometric, early-biased — see [`crate::engine::Recording`]).
        // Anchored so MAX_CKPTS doublings roughly span the whole access
        // stream; never closer than 64 accesses (diminishing returns
        // below that). Fewer checkpoints when the per-checkpoint state
        // would blow the memory budget.
        let interval = (n_mem >> MAX_CKPTS).max(64);
        let per_ckpt = 24 * prep.len().max(1);
        let max_ckpts = (CKPT_BUDGET / per_ckpt).min(MAX_CKPTS);
        SweepSession {
            prep,
            opts,
            interval,
            max_ckpts,
            n_mem: n_mem as usize,
            diverged: false,
            base: None,
        }
    }

    /// Simulates `cfg`, reusing the previous run's prefix when the
    /// configurations are sweep-compatible. Byte-identical to
    /// [`simulate_prepared`] on the same inputs.
    pub fn simulate(&mut self, cfg: &SystemConfig) -> SimReport {
        if !dataflow_ok(&self.prep, cfg) {
            // Scratchpad/stream traces (or exotic configs) don't run on
            // the event loop; no recording to reuse.
            self.base = None;
            return simulate_prepared(&self.prep, cfg, &self.opts);
        }
        let chains = matches!(&self.base, Some(b) if sweep_compatible(&b.cfg, cfg));
        if chains {
            self.incremental(*cfg)
        } else {
            self.record_fresh(*cfg)
        }
    }

    /// Full run with recording; becomes the new base. Checkpoints are
    /// taken only once this session has seen a divergence — before
    /// that, the snapshots would be pure overhead on ladders whose
    /// outcome streams all match.
    fn record_fresh(&mut self, cfg: SystemConfig) -> SimReport {
        let ckpts = if self.diverged { self.max_ckpts } else { 0 };
        let mut st = DfState::new(&self.prep, &cfg);
        let mut cache = Cache::new(cfg.cache);
        let mut rec = Recording::new(self.interval, ckpts, self.n_mem);
        dataflow_loop::<true>(&self.prep, &cfg, &mut st, &mut cache, &mut rec);
        let report = finalize_dataflow(st, cache, &self.prep, &cfg, &self.opts);
        self.base = Some(BaseRec {
            cfg,
            rec,
            report: report.clone(),
        });
        report
    }

    /// Replay the base record through `cfg`'s cache; skip what matches.
    fn incremental(&mut self, cfg: SystemConfig) -> SimReport {
        let b = self.base.as_mut().expect("incremental requires a base");
        let mut cache = Cache::new(cfg.cache);

        // Pass 1: replay the recorded address stream comparing outcomes.
        // No state is saved along the way — the common full-match case
        // must stay a pure `Cache::access` scan (snapshotting a multi-MB
        // cache at every checkpoint boundary would dwarf the replay).
        let mut div: Option<u64> = None;
        for (i, (&addr, &m)) in b.rec.addrs.iter().zip(&b.rec.meta).enumerate() {
            let res = cache.access(addr, m & REC_WRITE != 0);
            let got = (REC_HIT * u8::from(res.hit)) | (REC_WB * u8::from(res.writeback.is_some()));
            if got != m & (REC_HIT | REC_WB) {
                div = Some(i as u64);
                break;
            }
        }

        let Some(div) = div else {
            // Identical outcome stream end to end: identical schedule,
            // identical counters. Only the end-of-run dirty flush (this
            // geometry's resident dirty lines) and the size-dependent
            // energy terms differ from the recorded report.
            let mut report = b.report.clone();
            let line = cache.config().line_bytes as u64;
            let flushed = cache.dirty_lines();
            report.cache.writebacks =
                report.cache.writebacks - report.cache.flush_writebacks + flushed;
            report.dram_writeback_bytes =
                report.dram_writeback_bytes - report.cache.flush_writebacks * line + flushed * line;
            report.cache.flush_writebacks = flushed;
            recompute_energy(&mut report, &cfg);
            // Chain: the record now equally describes this run.
            b.cfg = cfg;
            b.report = report.clone();
            return report;
        };

        // Resume from the last checkpoint at or before the divergence.
        // Pass 2 (divergence only) rebuilds that boundary's cache by
        // re-replaying the already-validated prefix — every access
        // before `div` matched, so no comparison is needed. With no
        // usable checkpoint, re-record from scratch; the session now
        // knows divergences happen on this ladder, so the re-record
        // takes checkpoints.
        self.diverged = true;
        let usable = b.rec.ckpts.partition_point(|c| c.snap.accesses <= div);
        let Some(j) = usable.checked_sub(1) else {
            return self.record_fresh(cfg);
        };
        let snap = &b.rec.ckpts[j].snap;
        let mut tail_cache = Cache::new(cfg.cache);
        for i in 0..snap.accesses as usize {
            tail_cache.access(b.rec.addrs[i], b.rec.meta[i] & REC_WRITE != 0);
        }
        let mut st = DfState::restore(snap, &cfg);
        b.rec.truncate_to(j);
        dataflow_loop::<true>(&self.prep, &cfg, &mut st, &mut tail_cache, &mut b.rec);
        let report = finalize_dataflow(st, tail_cache, &self.prep, &cfg, &self.opts);
        b.cfg = cfg;
        b.report = report.clone();
        report
    }
}

/// Whether `b` can chain off `a`'s recording: identical fingerprints
/// once the replay-validated cache fields are normalized away.
fn sweep_compatible(a: &SystemConfig, b: &SystemConfig) -> bool {
    let mut b2 = *b;
    b2.cache.size_bytes = a.cache.size_bytes;
    b2.cache.assoc = a.cache.assoc;
    b2.cache.policy = a.cache.policy;
    b2.fingerprint() == a.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use tapeflow_ir::trace::{trace_function, TraceOptions};
    use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar, Trace};

    fn mixed_trace(arrays: usize, len: i64) -> Trace {
        // Loads over several arrays with FP reductions and stores —
        // enough working set that small caches diverge from large ones.
        let mut b = FunctionBuilder::new("sweep");
        let xs: Vec<_> = (0..arrays)
            .map(|k| b.array(format!("x{k}"), len as usize, ArrayKind::InOut, Scalar::F64))
            .collect();
        let mut acc = b.f64(0.0);
        for &x in &xs {
            b.for_loop("i", 0, len, |b, i| {
                let v = b.load(x, i);
                let w = b.fmul(v, v);
                b.store(x, i, w);
            });
            let z = b.i64(0);
            let v0 = b.load(x, z);
            acc = b.fadd(acc, v0);
        }
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        trace_function(&f, &mut mem, TraceOptions::default()).unwrap()
    }

    #[test]
    fn session_matches_fresh_simulation_in_any_order() {
        let trace = mixed_trace(4, 128);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        // Descending (the intended ladder), ascending, and zig-zag: the
        // session must be byte-identical to fresh runs regardless.
        let ladders: [&[usize]; 3] = [
            &[131072, 32768, 8192, 2048, 1024],
            &[1024, 2048, 8192, 32768, 131072],
            &[32768, 1024, 131072, 2048, 32768],
        ];
        for ladder in ladders {
            let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
            for &bytes in ladder {
                let cfg = SystemConfig::with_cache_bytes(bytes);
                let inc = sess.simulate(&cfg);
                let fresh = simulate(&trace, &cfg, &SimOptions::default());
                assert_eq!(
                    inc.to_json().render(),
                    fresh.to_json().render(),
                    "sweep diverged at cache={bytes} in ladder {ladder:?}"
                );
            }
        }
    }

    #[test]
    fn session_reuses_identical_outcome_streams() {
        // Two huge cache sizes over a small working set: the second run
        // must be served from the record (no tail re-simulation), which
        // we observe through the record keeping its original config's
        // report but still matching a fresh simulation bit for bit.
        let trace = mixed_trace(2, 64);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
        let big = SystemConfig::with_cache_bytes(1 << 20);
        let bigger = SystemConfig::with_cache_bytes(2 << 20);
        let first = sess.simulate(&big);
        let second = sess.simulate(&bigger);
        assert_eq!(first.cycles, second.cycles, "fits-in-cache: same schedule");
        let fresh = simulate(&trace, &bigger, &SimOptions::default());
        assert_eq!(second.to_json().render(), fresh.to_json().render());
    }

    #[test]
    fn incompatible_configs_rerecord_instead_of_chaining() {
        let trace = mixed_trace(2, 64);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let mut sess = SweepSession::new(Arc::clone(&prep), SimOptions::default());
        let a = SystemConfig::with_cache_bytes(32768);
        let mut b = SystemConfig::with_cache_bytes(32768);
        b.cache.mshrs = 1; // timing-relevant: must not chain
        b.cache.hit_latency = 5;
        let _ = sess.simulate(&a);
        let rb = sess.simulate(&b);
        let fresh = simulate(&trace, &b, &SimOptions::default());
        assert_eq!(rb.to_json().render(), fresh.to_json().render());
    }

    #[test]
    fn node_times_survive_incremental_reuse() {
        let trace = mixed_trace(2, 64);
        let prep = Arc::new(PreparedSim::new(&trace).unwrap());
        let opts = SimOptions {
            record_node_times: true,
        };
        let mut sess = SweepSession::new(Arc::clone(&prep), opts);
        for bytes in [1 << 20, 2 << 20, 1024] {
            let cfg = SystemConfig::with_cache_bytes(bytes);
            let inc = sess.simulate(&cfg);
            let fresh = simulate(&trace, &cfg, &opts);
            assert_eq!(inc.node_finish, fresh.node_finish, "cache={bytes}");
        }
    }
}
