//! Cycle-attribution probes: the simulator's observability layer.
//!
//! [`crate::engine::simulate_probed`] is generic over a [`SimProbe`] and
//! calls a hook at every issue, stall and completion site. Every hook has
//! an empty `#[inline]` default body, so the probe-less entry point
//! ([`crate::simulate`], which passes [`NoProbe`]) monomorphizes to the
//! exact pre-probe hot loop — observability is zero-cost when off.
//!
//! Two probes are provided:
//!
//! * [`AttributionProbe`] charges **every simulated PE-cycle** to exactly
//!   one cause (FP busy, INT busy, MSHR head-of-line stall, scratchpad
//!   bank conflict, tape-miss stall, non-tape miss stall, stream wait,
//!   phase-barrier drain, idle), maintaining the invariant
//!   `sum(attributed) == cycles * PEs`, plus a per-PE occupancy histogram
//!   and per-bank scratchpad access/conflict counters.
//! * [`TraceRecorder`] records a Chrome trace-event timeline (one track
//!   per PE, cache port, stream engine and scratchpad bank) loadable in
//!   `chrome://tracing` or Perfetto, serialized with [`crate::json`].
//!
//! Probes compose: `(&mut A, &mut B)`-style composition is provided via
//! the tuple implementation, so one simulation can feed both.

use crate::config::SystemConfig;
use crate::json::Value;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tapeflow_ir::OpClass;

/// Machine geometry the probe needs to attribute cycles, derived from the
/// [`SystemConfig`] once per simulation.
#[derive(Clone, Copy, Debug)]
pub struct ProbeGeometry {
    /// Processing elements in the grid.
    pub pes: usize,
    /// FP issue slots per PE (`fp_issue / pes`, rounded up).
    pub fp_slots_per_pe: usize,
    /// Integer issue slots per PE.
    pub int_slots_per_pe: usize,
    /// Scratchpad banks.
    pub spad_banks: usize,
    /// Cache ports.
    pub cache_ports: usize,
    /// Whether the trace has a FWD/REV phase barrier.
    pub has_phase_barrier: bool,
}

impl ProbeGeometry {
    /// Derives the geometry for `cfg`.
    pub fn of(cfg: &SystemConfig, has_phase_barrier: bool) -> Self {
        let pes = cfg.pe.pes.max(1);
        ProbeGeometry {
            pes,
            fp_slots_per_pe: cfg.pe.fp_issue.div_ceil(pes).max(1),
            int_slots_per_pe: cfg.pe.int_issue.div_ceil(pes).max(1),
            spad_banks: cfg.spad.banks.max(1),
            cache_ports: cfg.cache.ports.max(1),
            has_phase_barrier,
        }
    }
}

/// Sentinel trace-node id meaning "no node responsible" (used for
/// representative charging when a cause has no in-flight carrier).
pub const NO_NODE: u32 = u32::MAX;

/// One cache access as seen by the probe.
#[derive(Clone, Copy, Debug)]
pub struct CacheAccessEvent {
    /// Trace node that issued the access.
    pub node: u32,
    /// Issue cycle.
    pub now: u64,
    /// Cycle the value is available to dependents.
    pub fin: u64,
    /// Port the access went through (the would-be port for a stalled
    /// miss, which blocks the queue head without consuming a port).
    pub port: usize,
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the access targets a tape array.
    pub is_tape: bool,
    /// Whether the access was issued by the reverse phase.
    pub is_rev: bool,
    /// Whether the access is a store.
    pub is_write: bool,
}

/// Observation hooks called by [`crate::engine::simulate_probed`].
///
/// Every method has an empty inline default so an unused hook compiles
/// away entirely; [`NoProbe`] overrides nothing.
pub trait SimProbe {
    /// Promise that every hook on this probe is a no-op. The engine uses
    /// this to take *schedule-preserving* shortcuts that do not announce
    /// individual issues/stalls (reports stay byte-identical; only the
    /// hook call sequence differs, which a no-op probe cannot observe).
    /// Only set this to `true` when all hooks keep their empty defaults.
    const IS_NOOP: bool = false;

    /// Called once before the first cycle.
    #[inline]
    fn on_start(&mut self, _geom: &ProbeGeometry) {}
    /// Called at the top of each scheduler iteration for cycle `_now`.
    /// Cycles skipped between iterations (the engine jumps over gaps with
    /// no issue work) are *not* announced individually; probes attribute
    /// them from in-flight state.
    #[inline]
    fn on_cycle_start(&mut self, _now: u64) {}
    /// An FP operation of `_class` (trace node `_node`) issued at `_now`,
    /// finishing at `_fin`.
    #[inline]
    fn on_fp_issue(&mut self, _now: u64, _fin: u64, _class: OpClass, _node: u32) {}
    /// An integer operation (trace node `_node`) issued at `_now`,
    /// finishing at `_fin`.
    #[inline]
    fn on_int_issue(&mut self, _now: u64, _fin: u64, _node: u32) {}
    /// A cache access issued (or, for `hit == false` after
    /// [`Self::on_mshr_stall`], a stalled miss resolved at the queue head).
    #[inline]
    fn on_cache_access(&mut self, _ev: &CacheAccessEvent) {}
    /// The memory queue stalled at its head: a demand miss by trace node
    /// `_node` found no free MSHR this cycle.
    #[inline]
    fn on_mshr_stall(&mut self, _now: u64, _is_tape: bool, _node: u32) {}
    /// A scratchpad access by trace node `_node` was serviced by `_bank`.
    #[inline]
    fn on_spad_access(&mut self, _now: u64, _fin: u64, _bank: usize, _node: u32) {}
    /// A scratchpad access by trace node `_node` was deferred by a
    /// conflict on `_bank`.
    #[inline]
    fn on_spad_conflict(&mut self, _now: u64, _bank: usize, _node: u32) {}
    /// A stream command (trace node `_node`) started on engine `_dir`
    /// (0 = out/FWD-Stream, 1 = in/REV-Stream); bandwidth frees at
    /// `_bw_done`, data lands at `_fin`.
    #[inline]
    fn on_stream(
        &mut self,
        _now: u64,
        _bw_done: u64,
        _fin: u64,
        _dir: usize,
        _bytes: u64,
        _node: u32,
    ) {
    }
    /// The phase barrier's (trace node `_node`) last dependence completed
    /// at `_now`; the barrier itself completes at `_at`. The half-open
    /// window `[_now, _at)` is the FWD→REV drain.
    #[inline]
    fn on_barrier_ready(&mut self, _now: u64, _at: u64, _node: u32) {}
    /// The phase barrier completed at `_at`.
    #[inline]
    fn on_phase_barrier(&mut self, _at: u64) {}
    /// End of the scheduler iteration for cycle `_now`; `_queues_busy` is
    /// whether any issue queue still holds work.
    #[inline]
    fn on_cycle_end(&mut self, _now: u64, _queues_busy: bool) {}
    /// Simulation done; `_cycles` is the final cycle count.
    #[inline]
    fn on_finish(&mut self, _cycles: u64) {}
}

/// The probe that observes nothing — [`crate::simulate`]'s default. With
/// it, `simulate_probed` monomorphizes to the unprobed hot loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl SimProbe for NoProbe {
    const IS_NOOP: bool = true;
}

macro_rules! forward_both {
    ($(fn $name:ident(&mut self $(, $arg:ident : $ty:ty)*);)*) => {
        $(
            #[inline]
            fn $name(&mut self $(, $arg: $ty)*) {
                self.0.$name($($arg),*);
                self.1.$name($($arg),*);
            }
        )*
    };
}

/// Probes compose pairwise: `(&mut attribution, &mut recorder)` feeds one
/// simulation into both.
impl<A: SimProbe, B: SimProbe> SimProbe for (A, B) {
    const IS_NOOP: bool = A::IS_NOOP && B::IS_NOOP;
    forward_both! {
        fn on_start(&mut self, geom: &ProbeGeometry);
        fn on_cycle_start(&mut self, now: u64);
        fn on_fp_issue(&mut self, now: u64, fin: u64, class: OpClass, node: u32);
        fn on_int_issue(&mut self, now: u64, fin: u64, node: u32);
        fn on_cache_access(&mut self, ev: &CacheAccessEvent);
        fn on_mshr_stall(&mut self, now: u64, is_tape: bool, node: u32);
        fn on_spad_access(&mut self, now: u64, fin: u64, bank: usize, node: u32);
        fn on_spad_conflict(&mut self, now: u64, bank: usize, node: u32);
        fn on_stream(&mut self, now: u64, bw_done: u64, fin: u64, dir: usize, bytes: u64, node: u32);
        fn on_barrier_ready(&mut self, now: u64, at: u64, node: u32);
        fn on_phase_barrier(&mut self, at: u64);
        fn on_cycle_end(&mut self, now: u64, queues_busy: bool);
        fn on_finish(&mut self, cycles: u64);
    }
}

macro_rules! forward_some {
    ($(fn $name:ident(&mut self $(, $arg:ident : $ty:ty)*);)*) => {
        $(
            #[inline]
            fn $name(&mut self $(, $arg: $ty)*) {
                if let Some(p) = self {
                    p.$name($($arg),*);
                }
            }
        )*
    };
}

/// `None` observes nothing; `Some(probe)` forwards — lets callers attach
/// a probe behind a runtime flag without duplicating the call site.
impl<P: SimProbe> SimProbe for Option<P> {
    const IS_NOOP: bool = P::IS_NOOP;
    forward_some! {
        fn on_start(&mut self, geom: &ProbeGeometry);
        fn on_cycle_start(&mut self, now: u64);
        fn on_fp_issue(&mut self, now: u64, fin: u64, class: OpClass, node: u32);
        fn on_int_issue(&mut self, now: u64, fin: u64, node: u32);
        fn on_cache_access(&mut self, ev: &CacheAccessEvent);
        fn on_mshr_stall(&mut self, now: u64, is_tape: bool, node: u32);
        fn on_spad_access(&mut self, now: u64, fin: u64, bank: usize, node: u32);
        fn on_spad_conflict(&mut self, now: u64, bank: usize, node: u32);
        fn on_stream(&mut self, now: u64, bw_done: u64, fin: u64, dir: usize, bytes: u64, node: u32);
        fn on_barrier_ready(&mut self, now: u64, at: u64, node: u32);
        fn on_phase_barrier(&mut self, at: u64);
        fn on_cycle_end(&mut self, now: u64, queues_busy: bool);
        fn on_finish(&mut self, cycles: u64);
    }
}

/// The cause a PE-cycle is charged to. Exactly one cause per leftover
/// unit per cycle, so the categories are disjoint by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallKind {
    /// PE units executing FP work (an FP op in flight occupies its unit
    /// for its full latency).
    FpBusy,
    /// PE units executing integer (address-generation) work.
    IntBusy,
    /// Demand miss stalled at the memory-queue head with no free MSHR —
    /// the paper's "reactive fill" head-of-line bottleneck.
    MshrStall,
    /// Scratchpad bank conflict deferred at least one access this cycle.
    SpadConflict,
    /// Waiting on an outstanding cache miss for a *tape* array.
    TapeMissStall,
    /// Waiting on an outstanding cache miss for a non-tape array.
    CacheMissStall,
    /// Waiting on an outstanding stream-engine transfer.
    StreamWait,
    /// Draining the forward phase into the FWD/REV barrier: the barrier's
    /// dependences are all issued but not yet complete.
    PhaseBarrier,
    /// No attributable cause: insufficient parallelism, or short
    /// fixed-latency waits (cache hits, scratchpad reads).
    Idle,
}

impl StallKind {
    /// Every kind, in priority/report order.
    pub const ALL: [StallKind; 9] = [
        StallKind::FpBusy,
        StallKind::IntBusy,
        StallKind::MshrStall,
        StallKind::SpadConflict,
        StallKind::TapeMissStall,
        StallKind::CacheMissStall,
        StallKind::StreamWait,
        StallKind::PhaseBarrier,
        StallKind::Idle,
    ];

    /// Stable machine-readable key (JSON field name).
    pub fn key(self) -> &'static str {
        match self {
            StallKind::FpBusy => "fp_busy",
            StallKind::IntBusy => "int_busy",
            StallKind::MshrStall => "mshr_stall",
            StallKind::SpadConflict => "spad_conflict",
            StallKind::TapeMissStall => "tape_miss_stall",
            StallKind::CacheMissStall => "cache_miss_stall",
            StallKind::StreamWait => "stream_wait",
            StallKind::PhaseBarrier => "phase_barrier",
            StallKind::Idle => "idle",
        }
    }

    /// Human-readable table label.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::FpBusy => "FP busy",
            StallKind::IntBusy => "INT busy",
            StallKind::MshrStall => "MSHR head-of-line stall",
            StallKind::SpadConflict => "spad bank conflict",
            StallKind::TapeMissStall => "cache-miss stall (tape)",
            StallKind::CacheMissStall => "cache-miss stall (non-tape)",
            StallKind::StreamWait => "stream-engine wait",
            StallKind::PhaseBarrier => "phase-barrier drain",
            StallKind::Idle => "idle",
        }
    }
}

const KINDS: usize = StallKind::ALL.len();

/// Where every PE-cycle of a simulation went.
///
/// `sum(units) == cycles * pes` exactly ([`CycleBreakdown::check`]); the
/// per-PE occupancy histogram sums to `cycles`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// PEs the attribution distributed each cycle over.
    pub pes: usize,
    /// Total attributed cycles (== the report's `cycles`).
    pub cycles: u64,
    /// PE-cycles per cause, indexed in [`StallKind::ALL`] order.
    pub units: [u64; KINDS],
    /// `pe_occupancy[k]` = cycles during which exactly `k` PE units were
    /// busy with FP or INT work (length `pes + 1`).
    pub pe_occupancy: Vec<u64>,
    /// Scratchpad accesses serviced per bank.
    pub bank_accesses: Vec<u64>,
    /// Scratchpad conflicts (deferrals) per bank.
    pub bank_conflicts: Vec<u64>,
}

impl CycleBreakdown {
    /// PE-cycles charged to `kind`.
    pub fn get(&self, kind: StallKind) -> u64 {
        self.units[StallKind::ALL.iter().position(|k| *k == kind).unwrap()]
    }

    /// The attribution budget: `cycles * pes`.
    pub fn total_units(&self) -> u64 {
        self.cycles * self.pes as u64
    }

    /// PE-cycles attributed across all causes.
    pub fn attributed(&self) -> u64 {
        self.units.iter().sum()
    }

    /// Mean busy PEs per cycle (FP + INT).
    pub fn avg_busy_pes(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.get(StallKind::FpBusy) + self.get(StallKind::IntBusy)) as f64 / self.cycles as f64
        }
    }

    /// Verifies the accounting invariants; returns a description of the
    /// first violation. Cheap — tests and the profile CLI always run it.
    pub fn check(&self) -> Result<(), String> {
        if self.attributed() != self.total_units() {
            return Err(format!(
                "attributed {} PE-cycles != cycles({}) * pes({}) = {}",
                self.attributed(),
                self.cycles,
                self.pes,
                self.total_units()
            ));
        }
        let occ: u64 = self.pe_occupancy.iter().sum();
        if occ != self.cycles {
            return Err(format!(
                "occupancy histogram sums to {occ}, expected {} cycles",
                self.cycles
            ));
        }
        if self.pe_occupancy.len() != self.pes + 1
            && !(self.pes == 0 && self.pe_occupancy.is_empty())
        {
            return Err(format!(
                "occupancy histogram has {} bins for {} PEs",
                self.pe_occupancy.len(),
                self.pes
            ));
        }
        Ok(())
    }

    /// The per-cause summary as JSON (the bench harness's compact form):
    /// category PE-cycles plus `cycles`, `pes` and the mean occupancy.
    pub fn summary_json(&self) -> Value {
        let mut o = Value::object();
        o.set("cycles", self.cycles).set("pes", self.pes as u64);
        for k in StallKind::ALL {
            o.set(k.key(), self.get(k));
        }
        o.set("avg_busy_pes", self.avg_busy_pes());
        o
    }

    /// The full breakdown as JSON: the summary plus the occupancy
    /// histogram and per-bank scratchpad counters.
    pub fn to_json(&self) -> Value {
        let mut o = self.summary_json();
        o.set(
            "pe_occupancy",
            Value::Arr(self.pe_occupancy.iter().map(|&c| Value::UInt(c)).collect()),
        )
        .set(
            "bank_accesses",
            Value::Arr(self.bank_accesses.iter().map(|&c| Value::UInt(c)).collect()),
        )
        .set(
            "bank_conflicts",
            Value::Arr(
                self.bank_conflicts
                    .iter()
                    .map(|&c| Value::UInt(c))
                    .collect(),
            ),
        );
        o
    }
}

/// Per-instruction PE-cycle attribution: one [`StallKind`] row per IR
/// instruction, plus a final *unattributed* row for cycles no instruction
/// carries (pure idle).
///
/// Built by [`AttributionProbe`] in per-inst mode via representative
/// charging: each cycle's units for a cause are charged to the
/// earliest-finishing in-flight trace node of that cause, mapped to its
/// IR instruction. Column sums therefore equal the per-cause totals of
/// the accompanying [`CycleBreakdown`] *exactly* — the same
/// `sum == cycles * PEs` budget, split one level finer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstBreakdown {
    /// `rows[i]` = PE-cycles charged to instruction `i`, per cause (in
    /// [`StallKind::ALL`] order); `rows[len-1]` is the unattributed row.
    pub rows: Vec<[u64; KINDS]>,
}

impl InstBreakdown {
    /// Number of instruction rows (excluding the unattributed row).
    pub fn insts(&self) -> usize {
        self.rows.len().saturating_sub(1)
    }

    /// PE-cycles charged to instruction `i` for `kind`.
    pub fn get(&self, i: usize, kind: StallKind) -> u64 {
        self.rows[i][StallKind::ALL.iter().position(|k| *k == kind).unwrap()]
    }

    /// Total PE-cycles charged to instruction `i` across all causes.
    pub fn row_total(&self, i: usize) -> u64 {
        self.rows[i].iter().sum()
    }

    /// Verifies that every per-cause column sums exactly to the matching
    /// total in `bd` — the per-inst refinement loses nothing.
    pub fn check_against(&self, bd: &CycleBreakdown) -> Result<(), String> {
        for (ki, kind) in StallKind::ALL.iter().enumerate() {
            let col: u64 = self.rows.iter().map(|r| r[ki]).sum();
            if col != bd.units[ki] {
                return Err(format!(
                    "per-inst {} column sums to {col}, per-cause total is {}",
                    kind.key(),
                    bd.units[ki]
                ));
            }
        }
        Ok(())
    }
}

/// Attributes every simulated PE-cycle to a [`StallKind`].
///
/// FP/INT occupancy is tracked with min-heaps of in-flight finish times
/// (an op occupies its issue slot for `[issue, fin)`); leftover PE units
/// in a cycle are charged to a single cause chosen by priority:
/// MSHR stall > bank conflict > tape miss > non-tape miss > stream wait >
/// phase-barrier drain > idle. Cycles the engine skips (no issue work)
/// are attributed in O(#completions) by walking run-lengths between
/// in-flight finish times, so the probe never makes a long simulation
/// superlinear.
///
/// With [`AttributionProbe::with_inst_map`], the same budget is also
/// split per IR instruction (see [`InstBreakdown`]); without a map the
/// per-inst machinery costs nothing.
#[derive(Debug, Default)]
pub struct AttributionProbe {
    geom: Option<ProbeGeometry>,
    /// Hook events that arrived before [`SimProbe::on_start`] announced
    /// the geometry (a driver bug); dropped rather than panicking.
    pre_geometry_drops: u64,
    first_dropped_hook: Option<&'static str>,
    fp: BinaryHeap<Reverse<(u64, u32)>>,
    int: BinaryHeap<Reverse<(u64, u32)>>,
    fills_tape: BinaryHeap<Reverse<(u64, u32)>>,
    fills_other: BinaryHeap<Reverse<(u64, u32)>>,
    streams: BinaryHeap<Reverse<(u64, u32)>>,
    mshr_stalled: bool,
    mshr_node: u32,
    conflicted: bool,
    conflict_node: u32,
    barrier_window: Option<(u64, u64)>,
    barrier_node: u32,
    /// First cycle not yet committed or walked.
    cursor: u64,
    /// The last processed cycle's record, committed at the next cycle
    /// start (or discarded at finish if it lies beyond the final cycle
    /// count — the engine may process one iteration at `cycles` itself
    /// when the final node is a zero-cost sync).
    pending: Option<(u64, CycleAttr)>,
    bd: CycleBreakdown,
    per_inst: Option<PerInstState>,
}

/// One cycle's attribution: units and busy count (as before), plus the
/// representative trace node per cause ([`NO_NODE`] where unset).
#[derive(Clone, Copy, Debug)]
struct CycleAttr {
    units: [u64; KINDS],
    busy: usize,
    reps: [u32; KINDS],
}

#[derive(Debug)]
struct PerInstState {
    /// Trace node id → instruction row.
    map: Vec<u32>,
    bd: InstBreakdown,
}

impl AttributionProbe {
    /// A fresh probe; pass to [`crate::engine::simulate_probed`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A probe that additionally splits attribution per IR instruction.
    /// `node_to_inst[n]` maps trace node `n` to its instruction index;
    /// `insts` is the instruction count (rows in the result). Nodes that
    /// map out of range, and causes with no carrier node, land in the
    /// extra unattributed row.
    pub fn with_inst_map(node_to_inst: Vec<u32>, insts: usize) -> Self {
        AttributionProbe {
            per_inst: Some(PerInstState {
                map: node_to_inst,
                bd: InstBreakdown {
                    rows: vec![[0; KINDS]; insts + 1],
                },
            }),
            ..Self::default()
        }
    }

    /// The finished breakdown. Meaningful after the simulation ran.
    pub fn breakdown(&self) -> &CycleBreakdown {
        &self.bd
    }

    /// The per-instruction breakdown, if the probe was built with
    /// [`Self::with_inst_map`]. Meaningful after the simulation ran.
    pub fn inst_breakdown(&self) -> Option<&InstBreakdown> {
        self.per_inst.as_ref().map(|p| &p.bd)
    }

    /// Consumes the probe, returning the breakdown.
    pub fn into_breakdown(self) -> CycleBreakdown {
        self.bd
    }

    /// Consumes the probe, returning the per-cause breakdown and the
    /// per-instruction refinement (when enabled).
    pub fn into_parts(self) -> (CycleBreakdown, Option<InstBreakdown>) {
        (self.bd, self.per_inst.map(|p| p.bd))
    }

    fn geom(&self) -> &ProbeGeometry {
        self.geom.as_ref().expect("probe not started")
    }

    /// Marks a hook that fired before geometry was announced. Returns
    /// `false` so the hook can bail out instead of indexing
    /// un-dimensioned state (the old code panicked on an opaque
    /// `unwrap`). See [`Self::pre_geometry_drops`].
    fn started_or_drop(&mut self, hook: &'static str) -> bool {
        if self.geom.is_some() {
            return true;
        }
        self.pre_geometry_drops += 1;
        self.first_dropped_hook.get_or_insert(hook);
        false
    }

    /// Events dropped because they arrived before [`SimProbe::on_start`],
    /// with the first offending hook's name. `None` when the probe was
    /// driven correctly.
    pub fn pre_geometry_drops(&self) -> Option<(&'static str, u64)> {
        self.first_dropped_hook
            .map(|h| (h, self.pre_geometry_drops))
    }

    /// Drops every in-flight entry that finished at or before `c`.
    fn pop_done(&mut self, c: u64) {
        for h in [
            &mut self.fp,
            &mut self.int,
            &mut self.fills_tape,
            &mut self.fills_other,
            &mut self.streams,
        ] {
            while h.peek().is_some_and(|Reverse((t, _))| *t <= c) {
                h.pop();
            }
        }
    }

    /// Attribution for one cycle from current in-flight state; `flags`
    /// carries the per-cycle MSHR/conflict markers (false on walked
    /// gap cycles, which by definition issued nothing).
    fn classify(&self, c: u64, mshr: bool, conflict: bool) -> CycleAttr {
        let g = self.geom();
        let fp_units = (self.fp.len().div_ceil(g.fp_slots_per_pe)).min(g.pes);
        let int_units = (self.int.len().div_ceil(g.int_slots_per_pe)).min(g.pes - fp_units);
        let busy = fp_units + int_units;
        let rest = g.pes - busy;
        let mut units = [0u64; KINDS];
        let mut reps = [NO_NODE; KINDS];
        let rep_of =
            |h: &BinaryHeap<Reverse<(u64, u32)>>| h.peek().map_or(NO_NODE, |Reverse((_, n))| *n);
        units[0] = fp_units as u64; // FpBusy
        reps[0] = rep_of(&self.fp);
        units[1] = int_units as u64; // IntBusy
        reps[1] = rep_of(&self.int);
        if rest > 0 {
            let (kind, rep) = if mshr {
                (StallKind::MshrStall, self.mshr_node)
            } else if conflict {
                (StallKind::SpadConflict, self.conflict_node)
            } else if !self.fills_tape.is_empty() {
                (StallKind::TapeMissStall, rep_of(&self.fills_tape))
            } else if !self.fills_other.is_empty() {
                (StallKind::CacheMissStall, rep_of(&self.fills_other))
            } else if !self.streams.is_empty() {
                (StallKind::StreamWait, rep_of(&self.streams))
            } else if self.barrier_window.is_some_and(|(s, e)| s <= c && c < e) {
                (StallKind::PhaseBarrier, self.barrier_node)
            } else {
                (StallKind::Idle, NO_NODE)
            };
            let ki = StallKind::ALL.iter().position(|k| *k == kind).unwrap();
            units[ki] = rest as u64;
            reps[ki] = rep;
        }
        CycleAttr { units, busy, reps }
    }

    fn commit_span(&mut self, attr: CycleAttr, span: u64) {
        for (acc, u) in self.bd.units.iter_mut().zip(attr.units) {
            *acc += u * span;
        }
        self.bd.pe_occupancy[attr.busy] += span;
        if let Some(pi) = &mut self.per_inst {
            let unattr = pi.bd.rows.len() - 1;
            for (k, &u) in attr.units.iter().enumerate() {
                if u == 0 {
                    continue;
                }
                let row = match attr.reps[k] {
                    NO_NODE => unattr,
                    n => pi
                        .map
                        .get(n as usize)
                        .map_or(unattr, |&r| (r as usize).min(unattr)),
                };
                pi.bd.rows[row][k] += u * span;
            }
        }
    }

    /// Attributes the half-open gap `[from, to)` the engine skipped,
    /// advancing through in-flight completion boundaries run-length-wise.
    fn walk(&mut self, from: u64, to: u64) {
        let mut c = from;
        while c < to {
            self.pop_done(c);
            let attr = self.classify(c, false, false);
            let mut nb = to;
            for h in [
                &self.fp,
                &self.int,
                &self.fills_tape,
                &self.fills_other,
                &self.streams,
            ] {
                if let Some(Reverse((t, _))) = h.peek() {
                    nb = nb.min(*t);
                }
            }
            if let Some((s, e)) = self.barrier_window {
                for edge in [s, e] {
                    if edge > c {
                        nb = nb.min(edge);
                    }
                }
            }
            let nb = nb.clamp(c + 1, to);
            self.commit_span(attr, nb - c);
            c = nb;
        }
    }
}

impl SimProbe for AttributionProbe {
    fn on_start(&mut self, geom: &ProbeGeometry) {
        self.geom = Some(*geom);
        self.bd.pes = geom.pes;
        self.bd.pe_occupancy = vec![0; geom.pes + 1];
        self.bd.bank_accesses = vec![0; geom.spad_banks];
        self.bd.bank_conflicts = vec![0; geom.spad_banks];
    }

    fn on_cycle_start(&mut self, now: u64) {
        if !self.started_or_drop("on_cycle_start") {
            return;
        }
        if let Some((c, attr)) = self.pending {
            if c < now {
                self.pending = None;
                self.commit_span(attr, 1);
                self.cursor = c + 1;
            }
        }
        if self.cursor < now {
            self.walk(self.cursor, now);
            self.cursor = now;
        }
    }

    fn on_fp_issue(&mut self, _now: u64, fin: u64, _class: OpClass, node: u32) {
        self.fp.push(Reverse((fin, node)));
    }

    fn on_int_issue(&mut self, _now: u64, fin: u64, node: u32) {
        self.int.push(Reverse((fin, node)));
    }

    fn on_cache_access(&mut self, ev: &CacheAccessEvent) {
        if !ev.hit {
            if ev.is_tape {
                self.fills_tape.push(Reverse((ev.fin, ev.node)));
            } else {
                self.fills_other.push(Reverse((ev.fin, ev.node)));
            }
        }
    }

    fn on_mshr_stall(&mut self, _now: u64, _is_tape: bool, node: u32) {
        self.mshr_stalled = true;
        self.mshr_node = node;
    }

    fn on_spad_access(&mut self, _now: u64, _fin: u64, bank: usize, _node: u32) {
        if !self.started_or_drop("on_spad_access") {
            return;
        }
        self.bd.bank_accesses[bank] += 1;
    }

    fn on_spad_conflict(&mut self, _now: u64, bank: usize, node: u32) {
        if !self.started_or_drop("on_spad_conflict") {
            return;
        }
        self.bd.bank_conflicts[bank] += 1;
        if !self.conflicted {
            self.conflict_node = node;
        }
        self.conflicted = true;
    }

    fn on_stream(
        &mut self,
        _now: u64,
        _bw_done: u64,
        fin: u64,
        _dir: usize,
        _bytes: u64,
        node: u32,
    ) {
        self.streams.push(Reverse((fin, node)));
    }

    fn on_barrier_ready(&mut self, now: u64, at: u64, node: u32) {
        self.barrier_window = Some((now, at));
        self.barrier_node = node;
    }

    fn on_cycle_end(&mut self, now: u64, _queues_busy: bool) {
        if !self.started_or_drop("on_cycle_end") {
            return;
        }
        self.pop_done(now);
        let attr = self.classify(now, self.mshr_stalled, self.conflicted);
        self.mshr_stalled = false;
        self.conflicted = false;
        self.pending = Some((now, attr));
    }

    fn on_finish(&mut self, cycles: u64) {
        if !self.started_or_drop("on_finish") {
            return;
        }
        if let Some((c, attr)) = self.pending.take() {
            if c < cycles {
                self.commit_span(attr, 1);
                self.cursor = c + 1;
            } else {
                self.cursor = self.cursor.max(c);
            }
        }
        if self.cursor < cycles {
            self.walk(self.cursor, cycles);
            self.cursor = cycles;
        }
        self.bd.cycles = cycles;
        debug_assert_eq!(self.bd.check(), Ok(()));
        if let Some(pi) = &self.per_inst {
            debug_assert_eq!(pi.bd.check_against(&self.bd), Ok(()));
        }
    }
}

/// Records a Chrome trace-event timeline of one simulation.
///
/// Track layout per process (`pid`): one thread per PE (FP/INT ops are
/// placed greedily on the least-recently-busy PE lane), one per cache
/// port, one per stream engine, one per scratchpad bank. Timestamps are
/// cycles rendered as trace microseconds; events on each track are
/// emitted in non-decreasing `ts` order.
#[derive(Debug)]
pub struct TraceRecorder {
    pid: u64,
    name: String,
    geom: Option<ProbeGeometry>,
    /// Per-PE-lane busy-until cycle, for greedy lane assignment.
    lanes: Vec<u64>,
    mshr_pending: bool,
    events: Vec<Value>,
    /// Hook events that arrived before [`SimProbe::on_start`] announced
    /// the geometry (a driver bug); dropped — with a marker in the
    /// rendered trace — rather than panicking on an opaque `unwrap`.
    pre_geometry_drops: u64,
    first_dropped_hook: Option<&'static str>,
}

impl TraceRecorder {
    /// A recorder labelling its process `name` with trace `pid`.
    pub fn new(pid: u64, name: impl Into<String>) -> Self {
        TraceRecorder {
            pid,
            name: name.into(),
            geom: None,
            lanes: Vec::new(),
            mshr_pending: false,
            events: Vec::new(),
            pre_geometry_drops: 0,
            first_dropped_hook: None,
        }
    }

    /// The geometry, or `None` after recording that `hook` fired before
    /// [`SimProbe::on_start`] — the hook then skips the event instead of
    /// indexing tracks that do not exist yet.
    fn geom_or_drop(&mut self, hook: &'static str) -> Option<ProbeGeometry> {
        if self.geom.is_none() {
            self.pre_geometry_drops += 1;
            self.first_dropped_hook.get_or_insert(hook);
        }
        self.geom
    }

    /// Events dropped because they arrived before [`SimProbe::on_start`],
    /// with the first offending hook's name. `None` when the probe was
    /// driven correctly.
    pub fn pre_geometry_drops(&self) -> Option<(&'static str, u64)> {
        self.first_dropped_hook
            .map(|h| (h, self.pre_geometry_drops))
    }

    fn meta(&mut self, which: &str, tid: Option<u64>, name: &str) {
        let mut args = Value::object();
        args.set("name", name);
        let mut e = Value::object();
        e.set("name", which)
            .set("ph", "M")
            .set("pid", self.pid)
            .set("tid", tid.unwrap_or(0));
        e.set("args", args);
        self.events.push(e);
    }

    fn slice(&mut self, tid: u64, name: &str, ts: u64, dur: u64, args: Option<Value>) {
        let mut e = Value::object();
        e.set("name", name)
            .set("ph", "X")
            .set("ts", ts)
            .set("dur", dur.max(1))
            .set("pid", self.pid)
            .set("tid", tid);
        if let Some(a) = args {
            e.set("args", a);
        }
        self.events.push(e);
    }

    fn instant(&mut self, tid: u64, name: &str, ts: u64, scope: &str) {
        let mut e = Value::object();
        e.set("name", name)
            .set("ph", "i")
            .set("ts", ts)
            .set("pid", self.pid)
            .set("tid", tid)
            .set("s", scope);
        self.events.push(e);
    }

    fn tid_cache(g: &ProbeGeometry, port: usize) -> u64 {
        (g.pes + port) as u64
    }

    fn tid_stream(g: &ProbeGeometry, dir: usize) -> u64 {
        (g.pes + g.cache_ports + dir) as u64
    }

    fn tid_bank(g: &ProbeGeometry, bank: usize) -> u64 {
        (g.pes + g.cache_ports + 2 + bank) as u64
    }

    /// The recorded events (metadata first, then the timeline). If any
    /// hook fired before the geometry was announced, a marker instant is
    /// appended so the anomaly is visible in the rendered trace.
    pub fn into_events(mut self) -> Vec<Value> {
        if let Some((hook, n)) = self.pre_geometry_drops() {
            let mut args = Value::object();
            args.set("dropped", n).set("first_hook", hook);
            let mut e = Value::object();
            e.set("name", "pre-geometry events dropped")
                .set("ph", "i")
                .set("ts", 0u64)
                .set("pid", self.pid)
                .set("tid", 0u64)
                .set("s", "p");
            e.set("args", args);
            self.events.push(e);
        }
        self.events
    }

    /// Wraps recorders into one Chrome trace-event document. Load the
    /// rendered text in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace(parts: impl IntoIterator<Item = TraceRecorder>) -> Value {
        let mut events = Vec::new();
        for p in parts {
            events.extend(p.into_events());
        }
        let mut doc = Value::object();
        doc.set("displayTimeUnit", "ns")
            .set("traceEvents", Value::Arr(events));
        doc
    }
}

impl SimProbe for TraceRecorder {
    fn on_start(&mut self, geom: &ProbeGeometry) {
        self.geom = Some(*geom);
        self.lanes = vec![0; geom.pes];
        self.meta("process_name", None, &self.name.clone());
        for p in 0..geom.pes {
            self.meta("thread_name", Some(p as u64), &format!("PE {p}"));
        }
        for c in 0..geom.cache_ports {
            let tid = Self::tid_cache(geom, c);
            self.meta("thread_name", Some(tid), &format!("cache port {c}"));
        }
        for (dir, label) in ["FWD-Stream (out)", "REV-Stream (in)"].iter().enumerate() {
            let tid = Self::tid_stream(geom, dir);
            self.meta("thread_name", Some(tid), label);
        }
        for b in 0..geom.spad_banks {
            let tid = Self::tid_bank(geom, b);
            self.meta("thread_name", Some(tid), &format!("spad bank {b}"));
        }
    }

    fn on_fp_issue(&mut self, now: u64, fin: u64, class: OpClass, _node: u32) {
        if self.geom_or_drop("on_fp_issue").is_none() {
            return;
        }
        let lane = (0..self.lanes.len())
            .min_by_key(|&i| self.lanes[i])
            .unwrap_or(0);
        self.lanes[lane] = self.lanes[lane].max(fin);
        let name = match class {
            OpClass::FpMul => "fp-mul",
            OpClass::FpLong => "fp-long",
            _ => "fp-alu",
        };
        self.slice(lane as u64, name, now, fin - now, None);
    }

    fn on_int_issue(&mut self, now: u64, fin: u64, _node: u32) {
        if self.geom_or_drop("on_int_issue").is_none() {
            return;
        }
        let lane = (0..self.lanes.len())
            .min_by_key(|&i| self.lanes[i])
            .unwrap_or(0);
        self.lanes[lane] = self.lanes[lane].max(fin);
        self.slice(lane as u64, "int", now, fin - now, None);
    }

    fn on_cache_access(&mut self, ev: &CacheAccessEvent) {
        let Some(g) = self.geom_or_drop("on_cache_access") else {
            return;
        };
        let name = match (ev.hit, std::mem::take(&mut self.mshr_pending)) {
            (true, _) => "hit",
            (false, false) => "miss",
            (false, true) => "miss (mshr stall)",
        };
        let mut args = Value::object();
        args.set("tape", Value::Bool(ev.is_tape))
            .set("rev", Value::Bool(ev.is_rev))
            .set("write", Value::Bool(ev.is_write));
        self.slice(
            Self::tid_cache(&g, ev.port),
            name,
            ev.now,
            ev.fin.saturating_sub(ev.now),
            Some(args),
        );
    }

    fn on_mshr_stall(&mut self, _now: u64, _is_tape: bool, _node: u32) {
        self.mshr_pending = true;
    }

    fn on_spad_access(&mut self, now: u64, fin: u64, bank: usize, _node: u32) {
        let Some(g) = self.geom_or_drop("on_spad_access") else {
            return;
        };
        self.slice(Self::tid_bank(&g, bank), "spad", now, fin - now, None);
    }

    fn on_spad_conflict(&mut self, now: u64, bank: usize, _node: u32) {
        let Some(g) = self.geom_or_drop("on_spad_conflict") else {
            return;
        };
        self.instant(Self::tid_bank(&g, bank), "bank conflict", now, "t");
    }

    fn on_stream(&mut self, now: u64, _bw_done: u64, fin: u64, dir: usize, bytes: u64, _node: u32) {
        let Some(g) = self.geom_or_drop("on_stream") else {
            return;
        };
        let mut args = Value::object();
        args.set("bytes", bytes);
        let name = if dir == 0 { "stream-out" } else { "stream-in" };
        self.slice(Self::tid_stream(&g, dir), name, now, fin - now, Some(args));
    }

    fn on_phase_barrier(&mut self, at: u64) {
        self.instant(0, "phase barrier", at, "p");
    }
}

/// A timeline recorder with deterministic 1-in-N window sampling, for
/// `--trace-out` at scales where a full [`TraceRecorder`] timeline would
/// not fit in memory.
///
/// Time is cut into fixed windows of `window` cycles; every `stride`-th
/// window (the ones where `(cycle / window) % stride == 0`, starting with
/// window 0) is recorded in full, the rest are skipped. The schedule is a
/// pure function of the cycle number — fixed stride, no host RNG — so two
/// runs of the same simulation sample identical slices and the rendered
/// trace is byte-stable. Memory is bounded by construction to roughly a
/// `1/stride` fraction of the full timeline.
///
/// Skipped-window events are dropped at the hook, before any allocation.
/// Phase-barrier markers are always kept (there is at most one), and the
/// rendered trace carries a `sampling` metadata instant naming the
/// window, stride and recorded fraction.
#[derive(Debug)]
pub struct SamplingProbe {
    inner: TraceRecorder,
    window: u64,
    stride: u64,
    /// Final cycle count, set at [`SimProbe::on_finish`].
    cycles: u64,
}

impl SamplingProbe {
    /// A sampling recorder labelling its process `name` with trace `pid`.
    /// `window` is the slice length in cycles; `stride` records one
    /// window in every `stride` (both clamped to at least 1 — a stride
    /// of 1 degenerates to a full [`TraceRecorder`]).
    pub fn new(pid: u64, name: impl Into<String>, window: u64, stride: u64) -> Self {
        SamplingProbe {
            inner: TraceRecorder::new(pid, name),
            window: window.max(1),
            stride: stride.max(1),
            cycles: 0,
        }
    }

    #[inline]
    fn sampled(&self, now: u64) -> bool {
        (now / self.window).is_multiple_of(self.stride)
    }

    /// Cycles covered by recorded windows in `[0, cycles)`.
    fn recorded_cycles(&self, cycles: u64) -> u64 {
        let full_periods = cycles / (self.window * self.stride);
        let mut rec = full_periods * self.window;
        let rem = cycles % (self.window * self.stride);
        rec += rem.min(self.window);
        rec
    }

    /// Fraction of simulated cycles that fell in recorded windows
    /// (`1.0` for stride 1; meaningful after the simulation ran).
    pub fn recorded_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        self.recorded_cycles(self.cycles) as f64 / self.cycles as f64
    }

    /// The recorded events, with a `sampling` metadata instant appended
    /// (window, stride, recorded fraction).
    pub fn into_events(self) -> Vec<Value> {
        let mut args = Value::object();
        args.set("window_cycles", self.window)
            .set("stride", self.stride)
            .set("recorded_fraction", self.recorded_fraction());
        let mut e = Value::object();
        e.set("name", "sampling")
            .set("ph", "i")
            .set("ts", 0u64)
            .set("pid", self.inner.pid)
            .set("tid", 0u64)
            .set("s", "p");
        e.set("args", args);
        let mut events = self.inner.into_events();
        events.push(e);
        events
    }

    /// Wraps sampling recorders into one Chrome trace-event document
    /// (same envelope as [`TraceRecorder::chrome_trace`]).
    pub fn chrome_trace(parts: impl IntoIterator<Item = SamplingProbe>) -> Value {
        let mut events = Vec::new();
        for p in parts {
            events.extend(p.into_events());
        }
        let mut doc = Value::object();
        doc.set("displayTimeUnit", "ns")
            .set("traceEvents", Value::Arr(events));
        doc
    }
}

impl SimProbe for SamplingProbe {
    fn on_start(&mut self, geom: &ProbeGeometry) {
        self.inner.on_start(geom);
    }

    fn on_fp_issue(&mut self, now: u64, fin: u64, class: OpClass, node: u32) {
        if self.sampled(now) {
            self.inner.on_fp_issue(now, fin, class, node);
        }
    }

    fn on_int_issue(&mut self, now: u64, fin: u64, node: u32) {
        if self.sampled(now) {
            self.inner.on_int_issue(now, fin, node);
        }
    }

    fn on_cache_access(&mut self, ev: &CacheAccessEvent) {
        if self.sampled(ev.now) {
            self.inner.on_cache_access(ev);
        }
    }

    fn on_mshr_stall(&mut self, now: u64, is_tape: bool, node: u32) {
        if self.sampled(now) {
            self.inner.on_mshr_stall(now, is_tape, node);
        } else {
            // Keep the miss/stall pairing consistent: a stall marker from
            // a skipped window must not re-label the next sampled miss.
            self.inner.mshr_pending = false;
        }
    }

    fn on_spad_access(&mut self, now: u64, fin: u64, bank: usize, node: u32) {
        if self.sampled(now) {
            self.inner.on_spad_access(now, fin, bank, node);
        }
    }

    fn on_spad_conflict(&mut self, now: u64, bank: usize, node: u32) {
        if self.sampled(now) {
            self.inner.on_spad_conflict(now, bank, node);
        }
    }

    fn on_stream(&mut self, now: u64, bw_done: u64, fin: u64, dir: usize, bytes: u64, node: u32) {
        if self.sampled(now) {
            self.inner.on_stream(now, bw_done, fin, dir, bytes, node);
        }
    }

    fn on_phase_barrier(&mut self, at: u64) {
        // Always kept: a single instant, and the FWD→REV boundary is the
        // one landmark a sampled timeline must not lose.
        self.inner.on_phase_barrier(at);
    }

    fn on_finish(&mut self, cycles: u64) {
        self.cycles = cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::engine::{simulate, simulate_probed, SimOptions};
    use tapeflow_ir::trace::{trace_function, TraceOptions};
    use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar};

    fn run_probed(
        build: impl FnOnce(&mut FunctionBuilder),
        cfg: &SystemConfig,
    ) -> (crate::SimReport, CycleBreakdown) {
        let mut b = FunctionBuilder::new("t");
        build(&mut b);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let mut probe = AttributionProbe::new();
        let r = simulate_probed(&trace, cfg, &SimOptions::default(), &mut probe);
        (r, probe.into_breakdown())
    }

    #[test]
    fn empty_trace_attributes_nothing() {
        let (r, bd) = run_probed(|_| {}, &SystemConfig::default());
        assert_eq!(r.cycles, 0);
        assert_eq!(bd.attributed(), 0);
    }

    #[test]
    fn chain_holds_invariant_and_marks_fp() {
        let cfg = SystemConfig::default();
        let (r, bd) = run_probed(
            |b| {
                let one = b.f64(1.0);
                let mut v = b.f64(0.0);
                for _ in 0..40 {
                    v = b.fadd(v, one);
                }
            },
            &cfg,
        );
        bd.check().unwrap();
        assert_eq!(bd.cycles, r.cycles);
        assert_eq!(bd.attributed(), bd.total_units());
        // A serial chain keeps exactly one FP unit busy every cycle.
        assert_eq!(bd.get(StallKind::FpBusy), r.cycles);
        assert_eq!(
            bd.get(StallKind::Idle),
            r.cycles * (bd.pes as u64 - 1),
            "remaining PEs idle: {bd:?}"
        );
        assert_eq!(bd.pe_occupancy[1], r.cycles);
    }

    #[test]
    fn misses_attributed_to_cache_stall() {
        let cfg = SystemConfig::with_cache_bytes(1024);
        let (r, bd) = run_probed(
            |b| {
                let x = b.array("x", 64 * 8, ArrayKind::Input, Scalar::F64);
                for i in 0..64i64 {
                    let idx = b.i64(i * 8);
                    let _ = b.load(x, idx);
                }
            },
            &cfg,
        );
        bd.check().unwrap();
        let miss_units = bd.get(StallKind::CacheMissStall) + bd.get(StallKind::MshrStall);
        assert!(
            miss_units > 0,
            "64 distinct-line misses must show up as miss/MSHR stall: {bd:?}"
        );
        assert_eq!(bd.cycles, r.cycles);
    }

    #[test]
    fn bank_conflicts_counted_per_bank() {
        let cfg = SystemConfig::default();
        let (_, bd) = run_probed(
            |b| {
                use tapeflow_ir::Op;
                b.push_inst(Op::SAlloc { size: 128, base: 0 }, vec![]);
                let v = b.f64(1.0);
                for k in 0..8 {
                    let e = b.i64(k * 16);
                    b.push_inst(Op::SpadStore, vec![e, v]);
                }
            },
            &cfg,
        );
        bd.check().unwrap();
        assert_eq!(bd.bank_accesses[0], 8, "all accesses land in bank 0");
        assert!(
            bd.bank_conflicts[0] >= 7,
            "seven deferrals behind the first access: {:?}",
            bd.bank_conflicts
        );
        assert!(bd.get(StallKind::SpadConflict) > 0);
    }

    #[test]
    fn probed_report_matches_unprobed() {
        let cfg = SystemConfig::with_cache_bytes(2048);
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", 64, ArrayKind::InOut, Scalar::F64);
        let a = b.f64(3.0);
        b.for_loop("i", 0, 64, |b, i| {
            let xi = b.load(x, i);
            let yi = b.load(y, i);
            let t = b.fmul(a, xi);
            let s = b.fadd(t, yi);
            b.store(y, i, s);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let plain = simulate(&trace, &cfg, &SimOptions::default());
        let mut probe = (AttributionProbe::new(), TraceRecorder::new(1, "t"));
        let probed = simulate_probed(&trace, &cfg, &SimOptions::default(), &mut probe);
        assert_eq!(plain.cycles, probed.cycles);
        assert_eq!(plain.cache, probed.cache);
        assert_eq!(plain.fp_ops, probed.fp_ops);
        probe.0.breakdown().check().unwrap();
    }

    #[test]
    fn per_inst_columns_sum_to_per_cause_totals() {
        let cfg = SystemConfig::with_cache_bytes(1024);
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 64 * 8, ArrayKind::Input, Scalar::F64);
        b.for_loop("i", 0, 64, |b, i| {
            let eight = b.i64(8);
            let idx = b.imul(i, eight);
            let v = b.load(x, idx);
            let _ = b.exp(v);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let map: Vec<u32> = trace
            .nodes()
            .iter()
            .map(|n| n.inst.index() as u32)
            .collect();
        let mut probe = AttributionProbe::with_inst_map(map, f.insts().len());
        let r = simulate_probed(&trace, &cfg, &SimOptions::default(), &mut probe);
        let (bd, pi) = probe.into_parts();
        let pi = pi.expect("per-inst mode on");
        bd.check().unwrap();
        pi.check_against(&bd).unwrap();
        assert_eq!(bd.cycles, r.cycles);
        assert_eq!(pi.insts(), f.insts().len());
        // The load instruction carries the miss stalls.
        let loads: u64 = (0..pi.insts())
            .filter(|&i| {
                matches!(
                    f.inst(tapeflow_ir::InstId::new(i)).op,
                    tapeflow_ir::Op::Load(_)
                )
            })
            .map(|i| pi.get(i, StallKind::CacheMissStall) + pi.get(i, StallKind::MshrStall))
            .sum();
        assert!(loads > 0, "miss stalls must land on the load inst: {pi:?}");
        // Per-cause totals are byte-identical to a plain probe's.
        let mut plain = AttributionProbe::new();
        simulate_probed(&trace, &cfg, &SimOptions::default(), &mut plain);
        assert_eq!(plain.into_breakdown(), bd);
    }

    #[test]
    fn breakdown_json_round_trips() {
        let cfg = SystemConfig::default();
        let (_, bd) = run_probed(
            |b| {
                let one = b.f64(1.0);
                let _ = b.fadd(one, one);
            },
            &cfg,
        );
        let j = bd.to_json();
        assert_eq!(j.get("pes").unwrap().as_u64(), Some(bd.pes as u64));
        let text = j.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn recorder_survives_events_before_geometry() {
        // A trace/port event arriving before on_start used to panic on
        // `geom.as_ref().unwrap()`; it is now dropped and counted, with
        // the offending hook named.
        let mut rec = TraceRecorder::new(1, "early");
        rec.on_cache_access(&CacheAccessEvent {
            node: 0,
            now: 0,
            fin: 2,
            port: 0,
            hit: true,
            is_tape: false,
            is_rev: false,
            is_write: false,
        });
        rec.on_fp_issue(0, 3, OpClass::FpAlu, 0);
        rec.on_int_issue(0, 1, 0);
        rec.on_spad_access(0, 1, 0, 0);
        rec.on_spad_conflict(0, 0, 0);
        rec.on_stream(0, 1, 2, 0, 64, 0);
        let (hook, n) = rec.pre_geometry_drops().expect("drops recorded");
        assert_eq!(hook, "on_cache_access", "first offending hook named");
        assert_eq!(n, 6);
        // The rendered trace carries a marker for the anomaly.
        let events = rec.into_events();
        let marker = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("pre-geometry events dropped"))
            .expect("marker instant present");
        let args = marker.get("args").unwrap();
        assert_eq!(args.get("dropped").unwrap().as_u64(), Some(6));
        assert_eq!(
            args.get("first_hook").unwrap().as_str(),
            Some("on_cache_access")
        );
    }

    #[test]
    fn recorder_records_no_marker_when_driven_correctly() {
        let cfg = SystemConfig::default();
        let mut rec = TraceRecorder::new(1, "ok");
        rec.on_start(&ProbeGeometry::of(&cfg, false));
        rec.on_fp_issue(0, 3, OpClass::FpAlu, 0);
        assert_eq!(rec.pre_geometry_drops(), None);
        let events = rec.into_events();
        assert!(events
            .iter()
            .all(|e| e.get("name").and_then(Value::as_str) != Some("pre-geometry events dropped")));
    }

    #[test]
    fn attribution_probe_survives_events_before_geometry() {
        let mut p = AttributionProbe::new();
        p.on_cycle_start(3);
        p.on_spad_access(3, 4, 0, 0);
        p.on_spad_conflict(3, 1, 0);
        p.on_cycle_end(3, true);
        p.on_finish(5);
        let (hook, n) = p.pre_geometry_drops().expect("drops recorded");
        assert_eq!(hook, "on_cycle_start");
        assert_eq!(n, 5);
        assert_eq!(p.breakdown().attributed(), 0, "nothing was attributed");
    }

    #[test]
    fn sampling_probe_is_deterministic_and_bounded() {
        let cfg = SystemConfig::with_cache_bytes(1024);
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 256 * 8, ArrayKind::Input, Scalar::F64);
        b.for_loop("i", 0, 256, |b, i| {
            let eight = b.i64(8);
            let idx = b.imul(i, eight);
            let v = b.load(x, idx);
            let _ = b.exp(v);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let run = |window, stride| {
            let mut p = SamplingProbe::new(1, "s", window, stride);
            simulate_probed(&trace, &cfg, &SimOptions::default(), &mut p);
            let frac = p.recorded_fraction();
            (SamplingProbe::chrome_trace([p]).render(), frac)
        };
        let (full, frac_full) = run(64, 1);
        let (a, frac_a) = run(64, 8);
        let (b2, _) = run(64, 8);
        assert_eq!(a, b2, "sampling schedule must be deterministic");
        assert!(frac_full == 1.0, "stride 1 records everything: {frac_full}");
        assert!(
            frac_a < 0.5,
            "1-in-8 sampling records a small fraction: {frac_a}"
        );
        assert!(
            a.len() < full.len(),
            "sampled trace must be smaller ({} vs {})",
            a.len(),
            full.len()
        );
        // The sampled document is still a well-formed trace with the
        // sampling marker.
        let doc = Value::parse(&a).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let marker = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("sampling"))
            .expect("sampling metadata instant");
        let args = marker.get("args").unwrap();
        assert_eq!(args.get("stride").unwrap().as_u64(), Some(8));
        assert_eq!(args.get("window_cycles").unwrap().as_u64(), Some(64));
    }

    #[test]
    fn trace_recorder_emits_monotonic_tracks() {
        let cfg = SystemConfig::with_cache_bytes(1024);
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
        b.for_loop("i", 0, 32, |b, i| {
            let v = b.load(x, i);
            let _ = b.fadd(v, v);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let mut rec = TraceRecorder::new(7, "unit");
        simulate_probed(&trace, &cfg, &SimOptions::default(), &mut rec);
        let doc = TraceRecorder::chrome_trace([rec]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        let mut last_ts: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
        for e in events {
            if e.get("ph").and_then(Value::as_str) != Some("X") {
                continue;
            }
            let pid = e.get("pid").unwrap().as_u64().unwrap();
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            let prev = last_ts.entry((pid, tid)).or_insert(0);
            assert!(ts >= *prev, "track ({pid},{tid}) went backwards");
            *prev = ts;
        }
    }
}
