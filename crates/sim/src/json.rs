//! A minimal, dependency-free JSON document model.
//!
//! The experiment harness emits machine-readable results
//! (`results/BENCH_experiments.json`); the container image cannot fetch
//! crates, so this module provides the few pieces actually needed: a
//! value tree with distinct integer variants (so counters survive the
//! round-trip without f64 precision loss), a deterministic pretty
//! renderer (object keys keep insertion order), and a small recursive
//! descent parser used by the determinism tests to read documents back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer, rendered without a decimal point.
    Int(i64),
    /// Unsigned integer (cycle counters exceed `i64` in principle).
    UInt(u64),
    /// Finite float; non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order is preserved and is the render order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, val: impl Into<Value>) -> &mut Self {
        let Value::Obj(entries) = self else {
            panic!("Value::set on a non-object");
        };
        let val = val.into();
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = val;
        } else {
            entries.push((key.to_string(), val));
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (any of the three numeric variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned view of the integer variants.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Signed view of the integer variants.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the document with 2-space indentation and a trailing
    /// newline. Output is byte-deterministic for equal trees.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Num(f) => {
                if f.is_finite() {
                    // Shortest round-trip formatting; force a decimal
                    // point so floats stay floats after reparsing.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for documents this module
    /// renders; accepts standard JSON).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::UInt(u)
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::UInt(u as u64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Num(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // documents this module emits.
                            s.push(char::from_u32(hex).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically_and_reparses() {
        let mut doc = Value::object();
        doc.set("name", "bench")
            .set("cycles", 123_456_789_000u64)
            .set("hit_rate", 0.9375)
            .set("neg", -3i64)
            .set("flag", true)
            .set("nested", {
                let mut o = Value::object();
                o.set("items", Value::Arr(vec![Value::UInt(1), Value::Num(2.5)]));
                o
            });
        let text = doc.render();
        assert_eq!(text, Value::parse(&text).unwrap().render());
        let back = Value::parse(&text).unwrap();
        assert_eq!(back.get("cycles").unwrap().as_u64(), Some(123_456_789_000));
        assert_eq!(back.get("hit_rate").unwrap().as_f64(), Some(0.9375));
        assert_eq!(back, doc);
    }

    #[test]
    fn large_u64_counters_survive_roundtrip() {
        let v = Value::UInt(u64::MAX - 7);
        let back = Value::parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX - 7));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let text = Value::Num(2.0).render();
        assert_eq!(text.trim(), "2.0");
        assert_eq!(Value::parse(&text).unwrap(), Value::Num(2.0));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Value::Num(f64::NAN).render().trim(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render().trim(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{\"a\": }").is_err());
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("true false").is_err());
    }
}
