//! Set-associative cache model (write-back, write-allocate).

use crate::config::CacheConfig;

/// Replacement policy within a set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    #[default]
    Lru,
    /// First-in-first-out (insertion order).
    Fifo,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp or FIFO insertion stamp.
    stamp: u64,
}

/// Result of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// True on a hit.
    pub hit: bool,
    /// Dirty line evicted by the fill, if any (its base address).
    pub writeback: Option<u64>,
}

/// The cache.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    tick: u64,
}

impl Cache {
    /// Builds an empty (cold) cache.
    ///
    /// Invalid geometry is normalized rather than rejected (see
    /// [`CacheConfig::normalized`]): `line_bytes` is rounded up to the
    /// next power of two (minimum 8) — the line shift in
    /// [`Cache::access`] silently mis-indexes otherwise — and the
    /// associativity is clamped to the line count.
    pub fn new(cfg: CacheConfig) -> Self {
        let cfg = cfg.normalized();
        let total = cfg.lines();
        let assoc = cfg.assoc.clamp(1, total);
        let sets = (total / assoc).max(1);
        let mut adjusted = cfg;
        adjusted.assoc = assoc;
        Cache {
            cfg: adjusted,
            sets,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    stamp: 0,
                };
                sets * assoc
            ],
            tick: 0,
        }
    }

    /// Geometry used (line size and associativity may have been
    /// normalized; see [`Cache::new`]).
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Performs one access at byte address `addr`.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let line_bits = self.cfg.line_bytes.trailing_zeros();
        let block = addr >> line_bits;
        let set = (block as usize) % self.sets;
        let tag = block / self.sets as u64;
        let base = set * self.cfg.assoc;
        let ways = &mut self.lines[base..base + self.cfg.assoc];
        // Hit?
        for l in ways.iter_mut() {
            if l.valid && l.tag == tag {
                if is_write {
                    l.dirty = true;
                }
                if self.cfg.policy == ReplacementPolicy::Lru {
                    l.stamp = self.tick;
                }
                return AccessResult {
                    hit: true,
                    writeback: None,
                };
            }
        }
        // Miss: pick a victim (invalid first, else lowest stamp).
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.stamp))
            .map(|(i, _)| i)
            .expect("at least one way");
        let v = &mut ways[victim];
        let writeback = if v.valid && v.dirty {
            // Reconstruct the victim's base address.
            let vblock = v.tag * self.sets as u64 + set as u64;
            Some(vblock << line_bits)
        } else {
            None
        };
        *v = Line {
            tag,
            valid: true,
            dirty: is_write,
            stamp: self.tick,
        };
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Flushes all dirty lines, returning how many write-backs occur.
    pub fn flush_dirty(&mut self) -> u64 {
        let mut n = 0;
        for l in &mut self.lines {
            if l.valid && l.dirty {
                n += 1;
                l.dirty = false;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: ReplacementPolicy) -> Cache {
        // 4 lines of 64 B, 2-way: 2 sets.
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 64,
            ports: 2,
            hit_latency: 2,
            mshrs: 4,
            policy,
        })
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut c = tiny(ReplacementPolicy::Lru);
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1008, false).hit);
        assert!(c.access(0x1038, false).hit);
        assert!(!c.access(0x1040, false).hit, "next line misses");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(ReplacementPolicy::Lru);
        // Three blocks mapping to set 0 (set = block % 2 => even blocks).
        let a = 0;
        let b = 2 * 64;
        let d = 4 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // refresh a
        c.access(d, false); // evicts b
        assert!(c.access(a, false).hit, "a stayed");
        assert!(!c.access(b, false).hit, "b was evicted");
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = tiny(ReplacementPolicy::Fifo);
        let a = 0;
        let b = 2 * 64;
        let d = 4 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // touch does not refresh under FIFO
        c.access(d, false); // evicts a (oldest insertion)
        assert!(!c.access(a, false).hit, "a evicted despite recent touch");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(ReplacementPolicy::Lru);
        let a = 0;
        let b = 2 * 64;
        let d = 4 * 64;
        c.access(a, true); // dirty a
        c.access(b, false);
        let r = c.access(d, false); // evicts a
        assert_eq!(r.writeback, Some(a));
    }

    #[test]
    fn conflict_thrashing_between_mapped_blocks() {
        // Classic tape-vs-data conflict: three streams mapping to the same
        // set thrash a 2-way cache.
        let mut c = tiny(ReplacementPolicy::Lru);
        let mut misses = 0;
        for i in 0..30 {
            let block = (i % 3) * 2 * 64; // blocks 0, 2, 4 -> same set
            if !c.access(block, false).hit {
                misses += 1;
            }
        }
        assert_eq!(misses, 30, "every access misses under 3-way pressure");
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access(0, true);
        c.access(64, true);
        c.access(128, false);
        assert_eq!(c.flush_dirty(), 2);
        assert_eq!(c.flush_dirty(), 0);
    }

    #[test]
    fn non_power_of_two_line_rounds_up() {
        // 48 B lines would shift by trailing_zeros(48) = 4 and mis-index;
        // the constructor rounds the line up to 64 B instead.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 384,
            assoc: 2,
            line_bytes: 48,
            ports: 2,
            hit_latency: 2,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        });
        assert_eq!(c.config().line_bytes, 64);
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x103F, false).hit, "same rounded 64 B line");
        assert!(!c.access(0x1040, false).hit, "next line misses");
    }

    #[test]
    fn zero_line_bytes_clamps_to_scalar() {
        let c = Cache::new(CacheConfig {
            size_bytes: 64,
            assoc: 1,
            line_bytes: 0,
            ports: 1,
            hit_latency: 1,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        });
        assert_eq!(c.config().line_bytes, 8, "minimum one f64 per line");
    }

    #[test]
    fn fully_degenerate_sizes_clamp() {
        let c = Cache::new(CacheConfig {
            size_bytes: 64,
            assoc: 8,
            line_bytes: 64,
            ports: 1,
            hit_latency: 1,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        });
        assert_eq!(c.sets(), 1);
        assert_eq!(c.config().assoc, 1);
    }
}
