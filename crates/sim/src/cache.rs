//! Set-associative cache model (write-back, write-allocate).

use crate::config::CacheConfig;

/// Replacement policy within a set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    #[default]
    Lru,
    /// First-in-first-out (insertion order).
    Fifo,
}

/// Tag-word flag: the line holds a block.
const TF_VALID: u64 = 1 << 0;
/// Tag-word flag: the line has been written since it was filled.
const TF_DIRTY: u64 = 1 << 1;

/// Result of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// True on a hit.
    pub hit: bool,
    /// Dirty line evicted by the fill, if any (its base address).
    pub writeback: Option<u64>,
}

/// The cache.
///
/// Line state lives in one all-zero-initial allocation so construction
/// is a single `alloc_zeroed` (fresh zero pages from the OS, faulted in
/// lazily) — a parameter sweep builds one cache per configuration, and
/// a multi-megabyte model whose simulation only touches a few kilobytes
/// of it should not pay a full memset up front nor a full scan at the
/// end ([`Cache::dirty_lines`] is O(1)).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    /// `sets - 1` when the set count is a power of two (the common
    /// case), letting [`Cache::access`] mask instead of divide; zero
    /// otherwise (a one-set cache masks with zero correctly).
    set_mask: usize,
    /// Total lines (`sets * assoc`); also the offset of the stamp half
    /// of `buf`.
    ways: usize,
    /// Two halves of one allocation. `buf[i]` is line *i*'s **tag
    /// word** — the full block number shifted left two with `TF_*`
    /// flag bits below (storing the whole block rather than
    /// `block / sets` keeps the probe division-free: equality within a
    /// set is the same predicate, and the victim's base address is
    /// just the word shifted back). `buf[ways + i]` is its LRU/FIFO
    /// stamp. An 8-way probe therefore scans one contiguous cache line
    /// of tag words with a single masked compare per way.
    buf: Vec<u64>,
    tick: u64,
    /// Count of lines currently valid and dirty, maintained on every
    /// transition so end-of-run flush accounting never scans the array.
    dirty: u64,
}

impl Cache {
    /// Builds an empty (cold) cache.
    ///
    /// Invalid geometry is normalized rather than rejected (see
    /// [`CacheConfig::normalized`]): `line_bytes` is rounded up to the
    /// next power of two (minimum 8) — the line shift in
    /// [`Cache::access`] silently mis-indexes otherwise — and the
    /// associativity is clamped to the line count.
    pub fn new(cfg: CacheConfig) -> Self {
        let cfg = cfg.normalized();
        let total = cfg.lines();
        let assoc = cfg.assoc.clamp(1, total);
        let sets = (total / assoc).max(1);
        let mut adjusted = cfg;
        adjusted.assoc = assoc;
        let n = sets * assoc;
        Cache {
            cfg: adjusted,
            sets,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            ways: n,
            buf: vec![0; 2 * n],
            tick: 0,
            dirty: 0,
        }
    }

    /// Geometry used (line size and associativity may have been
    /// normalized; see [`Cache::new`]).
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Performs one access at byte address `addr`.
    ///
    /// Inlined so a sweep's replay loop — millions of back-to-back
    /// calls — hoists the geometry invariants out of the loop. The
    /// standard associativities dispatch to a const-specialized body
    /// whose way-probe unrolls to straight-line compares.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        match self.cfg.assoc {
            2 => self.access_ways::<2>(addr, is_write),
            4 => self.access_ways::<4>(addr, is_write),
            8 => self.access_ways::<8>(addr, is_write),
            // `0` means "read the associativity at runtime".
            _ => self.access_ways::<0>(addr, is_write),
        }
    }

    #[inline]
    fn access_ways<const A: usize>(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let line_bits = self.cfg.line_bytes.trailing_zeros();
        let block = addr >> line_bits;
        let set = if self.set_mask != 0 || self.sets == 1 {
            (block as usize) & self.set_mask
        } else {
            (block as usize) % self.sets
        };
        let assoc = if A == 0 { self.cfg.assoc } else { A };
        let base = set * assoc;
        let want = (block << 2) | TF_VALID;
        // Hit? One masked compare per way (dirty bit ignored); the
        // slice gives the probe a single bounds check. For the
        // const-specialized associativities the probe is branchless: a
        // match bit per way folded into one word, then find-first-set.
        // Tags are unique within a set, so the first match is the only
        // match and the two formulations agree.
        let set_tags = &self.buf[base..base + assoc];
        let hit_way = if A != 0 {
            let mut m = 0u32;
            for (w, &t) in set_tags.iter().enumerate() {
                m |= u32::from(t & !TF_DIRTY == want) << w;
            }
            (m != 0).then(|| m.trailing_zeros() as usize)
        } else {
            set_tags.iter().position(|&t| t & !TF_DIRTY == want)
        };
        if let Some(w) = hit_way {
            let i = base + w;
            if is_write && self.buf[i] & TF_DIRTY == 0 {
                self.buf[i] |= TF_DIRTY;
                self.dirty += 1;
            }
            if self.cfg.policy == ReplacementPolicy::Lru {
                self.buf[self.ways + i] = self.tick;
            }
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        // Miss: pick a victim (invalid first, else lowest stamp; first
        // way wins ties, matching `min_by_key`'s first-minimum rule).
        let victim = base
            + self.buf[base..base + assoc]
                .iter()
                .zip(&self.buf[self.ways + base..self.ways + base + assoc])
                .map(|(&t, &s)| (t & TF_VALID != 0, s))
                .enumerate()
                .min_by_key(|&(_, k)| k)
                .expect("at least one way")
                .0;
        let vt = self.buf[victim];
        let writeback = if vt & (TF_VALID | TF_DIRTY) == TF_VALID | TF_DIRTY {
            self.dirty -= 1;
            // The tag word holds the victim's full block number.
            Some((vt >> 2) << line_bits)
        } else {
            None
        };
        self.buf[victim] = (block << 2) | TF_VALID | (TF_DIRTY * u64::from(is_write));
        self.buf[self.ways + victim] = self.tick;
        self.dirty += u64::from(is_write);
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Number of lines currently valid and dirty — what an end-of-run
    /// flush would write back. O(1): the count is maintained on every
    /// access, so terminal accounting never scans a multi-megabyte
    /// model to bill a few dirty lines.
    pub fn dirty_lines(&self) -> u64 {
        self.dirty
    }

    /// Flushes all dirty lines, returning how many write-backs occur.
    pub fn flush_dirty(&mut self) -> u64 {
        let n = self.dirty;
        if n > 0 {
            for t in &mut self.buf[..self.ways] {
                *t &= !TF_DIRTY;
            }
            self.dirty = 0;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: ReplacementPolicy) -> Cache {
        // 4 lines of 64 B, 2-way: 2 sets.
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 64,
            ports: 2,
            hit_latency: 2,
            mshrs: 4,
            policy,
        })
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut c = tiny(ReplacementPolicy::Lru);
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1008, false).hit);
        assert!(c.access(0x1038, false).hit);
        assert!(!c.access(0x1040, false).hit, "next line misses");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(ReplacementPolicy::Lru);
        // Three blocks mapping to set 0 (set = block % 2 => even blocks).
        let a = 0;
        let b = 2 * 64;
        let d = 4 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // refresh a
        c.access(d, false); // evicts b
        assert!(c.access(a, false).hit, "a stayed");
        assert!(!c.access(b, false).hit, "b was evicted");
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = tiny(ReplacementPolicy::Fifo);
        let a = 0;
        let b = 2 * 64;
        let d = 4 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // touch does not refresh under FIFO
        c.access(d, false); // evicts a (oldest insertion)
        assert!(!c.access(a, false).hit, "a evicted despite recent touch");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(ReplacementPolicy::Lru);
        let a = 0;
        let b = 2 * 64;
        let d = 4 * 64;
        c.access(a, true); // dirty a
        c.access(b, false);
        let r = c.access(d, false); // evicts a
        assert_eq!(r.writeback, Some(a));
    }

    #[test]
    fn conflict_thrashing_between_mapped_blocks() {
        // Classic tape-vs-data conflict: three streams mapping to the same
        // set thrash a 2-way cache.
        let mut c = tiny(ReplacementPolicy::Lru);
        let mut misses = 0;
        for i in 0..30 {
            let block = (i % 3) * 2 * 64; // blocks 0, 2, 4 -> same set
            if !c.access(block, false).hit {
                misses += 1;
            }
        }
        assert_eq!(misses, 30, "every access misses under 3-way pressure");
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access(0, true);
        c.access(64, true);
        c.access(128, false);
        assert_eq!(c.flush_dirty(), 2);
        assert_eq!(c.flush_dirty(), 0);
    }

    #[test]
    fn non_power_of_two_line_rounds_up() {
        // 48 B lines would shift by trailing_zeros(48) = 4 and mis-index;
        // the constructor rounds the line up to 64 B instead.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 384,
            assoc: 2,
            line_bytes: 48,
            ports: 2,
            hit_latency: 2,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        });
        assert_eq!(c.config().line_bytes, 64);
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x103F, false).hit, "same rounded 64 B line");
        assert!(!c.access(0x1040, false).hit, "next line misses");
    }

    #[test]
    fn zero_line_bytes_clamps_to_scalar() {
        let c = Cache::new(CacheConfig {
            size_bytes: 64,
            assoc: 1,
            line_bytes: 0,
            ports: 1,
            hit_latency: 1,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        });
        assert_eq!(c.config().line_bytes, 8, "minimum one f64 per line");
    }

    #[test]
    fn fully_degenerate_sizes_clamp() {
        let c = Cache::new(CacheConfig {
            size_bytes: 64,
            assoc: 8,
            line_bytes: 64,
            ports: 1,
            hit_latency: 1,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        });
        assert_eq!(c.sets(), 1);
        assert_eq!(c.config().assoc, 1);
    }
}
