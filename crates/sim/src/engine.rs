//! The cycle-level dataflow scheduler (event-driven core).
//!
//! Executes a [`Trace`] (dynamic dataflow graph) against the modelled
//! datapath: every node issues once its dependences complete and its
//! resource (FPU slots, integer slots, cache ports, scratchpad banks,
//! stream engines) is free that cycle. DRAM is a shared bandwidth server
//! used by cache fills, write-backs and stream transfers; stream engines
//! run decoupled from the compute barriers, which is what lets
//! double-buffered layers overlap streaming with the adjacent layer's
//! compute exactly as in the paper's §3.5.
//!
//! ## Host-throughput architecture
//!
//! The scheduler runs off a [`PreparedSim`] arena — a config-independent
//! struct-of-arrays flattening of the trace (dependence CSR, fused
//! ready/indegree state, per-node class/address/flags) built once and
//! reused across an entire parameter sweep. The hot loop never touches
//! the trace's per-node heap-allocated `deps` vectors, keeps a single
//! reusable conflict scratch buffer instead of a per-cycle allocation,
//! and **gap-skips**: whenever nothing can issue before the next
//! engine-free or node-ready boundary, time jumps straight there instead
//! of crawling cycle by cycle.
//!
//! On top of that, unprobed runs (statically known via
//! [`SimProbe::IS_NOOP`]) serve the in-order FP and integer issue queues
//! *analytically*: the event heap pops ready nodes in exactly the order
//! they would have entered those queues, and a width-limited in-order
//! queue has a two-word closed form ([`IssueSrv`]) that assigns each op
//! its exact issue cycle — contention included — without queue
//! round-trips or per-cycle crawling. Traces that never touch the
//! scratchpad or stream engines (every non-streaming variant) drop the
//! cycle loop entirely and run as a pure event loop ([`run_dataflow`])
//! in which the memory queue is served by the same closed form plus the
//! MSHR stall rule. All of this is schedule-preserving, not
//! approximate: reports, stall attributions and timelines stay
//! byte-identical to the scalar loop (kept in [`crate::legacy`] behind
//! `--engine legacy` and pinned by the cross-engine equivalence suite).
//! Probes are not announced skipped cycles individually;
//! [`crate::probe::AttributionProbe`] attributes them run-length-wise
//! from in-flight state, preserving `sum(attributed) == cycles * PEs`.

use crate::cache::Cache;
use crate::config::{EnergyTable, SystemConfig};
use crate::error::SimError;
use crate::prep::{NodeState, PreparedSim, FLAG_REV, FLAG_STREAM_IN, FLAG_TAPE};
use crate::probe::{CacheAccessEvent, NoProbe, ProbeGeometry, SimProbe};
use crate::report::{EnergyReport, SimReport};
use std::collections::{BinaryHeap, VecDeque};
use tapeflow_ir::{OpClass, Trace};

/// Simulation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimOptions {
    /// Record each node's completion cycle in the report (needed by the
    /// lifetime characterizations; costs one `u64` per node).
    pub record_node_times: bool,
}

/// Which scheduler core to run. The event-driven core is the default;
/// the scalar loop it replaced remains available for one release as an
/// escape hatch (`--engine legacy`) and as the equivalence oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The event-driven, gap-skipping core (this module).
    #[default]
    Event,
    /// The previous scalar per-cycle loop ([`crate::legacy`]).
    Legacy,
}

impl Engine {
    /// Parses a CLI engine name.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "event" => Some(Engine::Event),
            "legacy" => Some(Engine::Legacy),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Event => "event",
            Engine::Legacy => "legacy",
        }
    }
}

/// How many queued accesses a banked resource may inspect per cycle
/// (a bounded scheduling window keeps contended simulations linear).
const SPAD_SCAN_WINDOW: usize = 64;

#[derive(Clone)]
pub(crate) struct Dram {
    busy: f64,
    bytes_per_cycle: f64,
    latency: u64,
}

impl Dram {
    pub(crate) fn new(cfg: &SystemConfig) -> Self {
        Dram {
            busy: 0.0,
            bytes_per_cycle: cfg.dram.bytes_per_cycle,
            latency: cfg.dram.latency,
        }
    }

    /// Reserves bandwidth for `bytes` starting no earlier than `now`;
    /// returns `(bandwidth_done, completion)` — pipelined consumers (the
    /// stream engines) free up at `bandwidth_done` while the data itself
    /// lands at `completion`.
    pub(crate) fn transfer(&mut self, now: u64, bytes: u64) -> (u64, u64) {
        let start = self.busy.max(now as f64);
        self.busy = start + bytes as f64 / self.bytes_per_cycle;
        let bw_done = self.busy.ceil() as u64;
        (bw_done, bw_done + self.latency)
    }
}

/// Simulates `trace` on `cfg`.
///
/// # Panics
/// Panics if the trace exceeds the scheduler's 32-bit index limits; use
/// [`try_simulate`] to handle that case as a [`SimError`].
pub fn simulate(trace: &Trace, cfg: &SystemConfig, opts: &SimOptions) -> SimReport {
    simulate_probed(trace, cfg, opts, &mut NoProbe)
}

/// Simulates `trace` on `cfg`, reporting every issue, stall and
/// completion to `probe` (see [`crate::probe`]). With [`NoProbe`] this
/// monomorphizes to the unprobed hot loop, which is what [`simulate`]
/// calls — observability costs nothing unless a probe asks for it.
///
/// # Panics
/// Panics if the trace exceeds the scheduler's 32-bit index limits; use
/// [`try_simulate_probed`] to handle that case as a [`SimError`].
pub fn simulate_probed<P: SimProbe>(
    trace: &Trace,
    cfg: &SystemConfig,
    opts: &SimOptions,
    probe: &mut P,
) -> SimReport {
    try_simulate_probed(trace, cfg, opts, probe).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`simulate`]: rejects over-large traces instead of
/// panicking (the old scheduler silently truncated node ids to `u32`).
pub fn try_simulate(
    trace: &Trace,
    cfg: &SystemConfig,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    try_simulate_probed(trace, cfg, opts, &mut NoProbe)
}

/// Fallible [`simulate_probed`].
pub fn try_simulate_probed<P: SimProbe>(
    trace: &Trace,
    cfg: &SystemConfig,
    opts: &SimOptions,
    probe: &mut P,
) -> Result<SimReport, SimError> {
    let prep = PreparedSim::new(trace)?;
    Ok(simulate_prepared_probed(&prep, cfg, opts, probe))
}

/// Fallible simulation on the engine selected by `engine` — the CLI's
/// dispatch point for the `--engine` flag.
pub fn try_simulate_probed_with<P: SimProbe>(
    engine: Engine,
    trace: &Trace,
    cfg: &SystemConfig,
    opts: &SimOptions,
    probe: &mut P,
) -> Result<SimReport, SimError> {
    match engine {
        Engine::Event => try_simulate_probed(trace, cfg, opts, probe),
        Engine::Legacy => crate::legacy::try_simulate_probed(trace, cfg, opts, probe),
    }
}

/// Simulates a [`PreparedSim`] arena on `cfg` — the sweep entry point:
/// prepare once, simulate every configuration.
pub fn simulate_prepared(prep: &PreparedSim, cfg: &SystemConfig, opts: &SimOptions) -> SimReport {
    simulate_prepared_probed(prep, cfg, opts, &mut NoProbe)
}

/// Probed variant of [`simulate_prepared`].
pub fn simulate_prepared_probed<P: SimProbe>(
    prep: &PreparedSim,
    cfg: &SystemConfig,
    opts: &SimOptions,
    probe: &mut P,
) -> SimReport {
    // Fast path: when the probe statically observes nothing
    // ([`SimProbe::IS_NOOP`]) and the trace/config pair admits the
    // analytic service disciplines, the per-cycle loop drops away
    // entirely ([`dataflow_loop`]). Probed runs keep the per-cycle core
    // so every hook fires in the legacy order.
    if P::IS_NOOP && dataflow_ok(prep, cfg) {
        let mut st = DfState::new(prep, cfg);
        let mut cache = Cache::new(cfg.cache);
        dataflow_loop::<false>(prep, cfg, &mut st, &mut cache, &mut Recording::disabled());
        return finalize_dataflow(st, cache, prep, cfg, opts);
    }
    run_core(prep, cfg, opts, probe)
}

/// Whether `prep` on `cfg` is served by the pure event loop
/// ([`dataflow_loop`]) when unprobed: no scratchpad or stream nodes, at
/// least one cache port, and the analytic-server preconditions hold.
/// (The empty trace stays on the per-cycle core's trivial early
/// return.)
pub(crate) fn dataflow_ok(prep: &PreparedSim, cfg: &SystemConfig) -> bool {
    prep.n > 0 && !prep.spad_or_stream() && cfg.cache.ports >= 1 && analytic_ok(cfg)
}

/// Whether the analytic issue servers model `cfg` exactly: every
/// compute latency ≥ 1 keeps completions strictly after their drain
/// cycle (so serving at drain time cannot reorder same-cycle queue
/// arrivals), and nonzero widths keep the server recurrence
/// well-defined (a zero-width config livelocks identically on every
/// core, so it stays on the per-cycle loop). The canonical
/// configurations all qualify.
fn analytic_ok(cfg: &SystemConfig) -> bool {
    cfg.pe.fp_issue >= 1
        && cfg.pe.int_issue >= 1
        && cfg.pe.fp_alu_latency >= 1
        && cfg.pe.fp_mul_latency >= 1
        && cfg.pe.fp_long_latency >= 1
        && cfg.pe.int_latency >= 1
        && cfg.cache.hit_latency >= 1
}

/// Analytic in-order issue server for a width-limited resource.
///
/// The event heap pops ready nodes in `(cycle, id)` order — exactly the
/// order they would have entered the corresponding in-order issue queue
/// (the per-cycle loop drains the heap into the queues in that same
/// order, and arrival cycles are non-decreasing over a run). A width-`w`
/// FIFO queue serving up to `w` ops per cycle then has a two-word
/// closed form: `cur` is the cycle the previous op issued and `used` how
/// many ops have issued at `cur`. An op arriving at `at > cur` finds
/// the queue drained and issues immediately; an op arriving at or
/// behind the backlog issues at `cur` if a slot is left there, else
/// opens cycle `cur + 1`. This reproduces the per-cycle loop's
/// schedule exactly, width contention included.
#[derive(Clone, Copy)]
struct IssueSrv {
    cur: u64,
    used: usize,
}

impl IssueSrv {
    fn new() -> Self {
        IssueSrv { cur: 0, used: 0 }
    }

    #[inline]
    fn issue_at(&mut self, at: u64, width: usize) -> u64 {
        if self.cur < at {
            self.cur = at;
            self.used = 1;
        } else if self.used < width {
            self.used += 1;
        } else {
            self.cur += 1;
            self.used = 1;
        }
        self.cur
    }
}

/// The per-cycle scheduler core's complete mutable state — everything
/// the loop touches except the cache, which an incremental
/// re-simulation rebuilds by replaying the recorded access prefix
/// rather than by snapshot (see [`crate::sweep`]). `Clone` *is* the
/// checkpoint: the state is captured at a cycle boundary and
/// [`core_loop`] resumes from the copy with byte-identical results.
#[derive(Clone)]
pub(crate) struct CoreState {
    /// Fused (ready, indeg) state: one memcpy from the arena template,
    /// one random access per dependence edge in the completion walk.
    pend: Vec<NodeState>,
    finish: Vec<u64>,
    events: EventQ,
    /// Per-class in-order wait queues.
    q_fp: VecDeque<u32>,
    q_int: VecDeque<u32>,
    q_mem: VecDeque<u32>,
    q_spad: VecDeque<u32>,
    q_stream: [VecDeque<u32>; 2],
    /// MSHR free times: a demand miss needs a slot, else the memory
    /// queue stalls at its head.
    mshr: Vec<u64>,
    dram: Dram,
    stream_free: [u64; 2],
    report: SimReport,
    now: u64,
    completed: usize,
    max_finish: u64,
    /// Cache accesses served so far — the recording/checkpoint clock.
    pub(crate) accesses: u64,
}

impl CoreState {
    pub(crate) fn new(prep: &PreparedSim, cfg: &SystemConfig) -> Self {
        let mut events = EventQ::new(wheel_slots(prep.n));
        for &r in &prep.roots {
            events.push(0, r);
        }
        CoreState {
            pend: prep.pend0.clone(),
            finish: vec![0u64; prep.n],
            events,
            q_fp: VecDeque::with_capacity(64),
            q_int: VecDeque::with_capacity(64),
            q_mem: VecDeque::with_capacity(64),
            q_spad: VecDeque::with_capacity(64),
            q_stream: [VecDeque::with_capacity(16), VecDeque::with_capacity(16)],
            mshr: vec![0; cfg.cache.mshrs.max(1)],
            dram: Dram::new(cfg),
            stream_free: [0u64; 2],
            report: SimReport::default(),
            now: 0,
            completed: 0,
            max_finish: 0,
            accesses: 0,
        }
    }
}

/// The per-cycle scheduler core: the fully announced loop (every issue
/// reported to `probe`, any probe type), with stream gap-skipping. Runs
/// whatever the pure event loop cannot: probed simulations and traces
/// that touch the scratchpad or stream engines.
fn run_core<P: SimProbe>(
    prep: &PreparedSim,
    cfg: &SystemConfig,
    opts: &SimOptions,
    probe: &mut P,
) -> SimReport {
    if prep.n == 0 {
        return SimReport::default();
    }
    let mut st = CoreState::new(prep, cfg);
    let mut cache = Cache::new(cfg.cache);
    probe.on_start(&ProbeGeometry::of(cfg, prep.phase_barrier_idx.is_some()));
    core_loop::<P, false>(
        prep,
        cfg,
        &mut st,
        &mut cache,
        &mut Recording::disabled(),
        probe,
    );
    probe.on_finish(st.max_finish);
    finalize_core(st, cache, prep, cfg, opts)
}

/// The per-cycle loop itself, resumable from any [`CoreState`] captured
/// at a cycle boundary. With `REC = true` every cache access's address
/// and outcome is appended to `rec` and full-state checkpoints are
/// taken at cycle boundaries — the per-cycle counterpart of
/// [`dataflow_loop`]'s recording mode, which is what lets scratchpad
/// and stream traces join [`crate::sweep`]'s incremental
/// re-simulation. `REC = true` is only ever driven with [`NoProbe`]
/// (the sweep path is unprobed by construction); the recording hooks
/// compile out under `REC = false`.
pub(crate) fn core_loop<P: SimProbe, const REC: bool>(
    prep: &PreparedSim,
    cfg: &SystemConfig,
    st: &mut CoreState,
    cache: &mut Cache,
    rec: &mut Recording,
    probe: &mut P,
) {
    let n = prep.n;
    let class = &prep.class[..n];
    let flags = &prep.flags[..n];
    let addr = &prep.addr[..n];
    let nbytes = &prep.bytes[..n];
    let succ_off = &prep.succ_off[..n + 1];
    let succ_dat = &prep.succ_dat[..];

    // Reusable conflict scratch (the old loop allocated one per cycle).
    // Always drained by the end of a cycle, so it is never part of a
    // checkpoint.
    let mut stash: Vec<u32> = Vec::with_capacity(SPAD_SCAN_WINDOW);
    // Event-drain scratch: one id-sorted batch per occupied cycle plus
    // the side heap for same-cycle Sync-successor insertions (see the
    // drain below). Both empty at every cycle boundary, so neither is
    // part of a checkpoint.
    let mut batch: Vec<u32> = Vec::with_capacity(256);
    let mut side: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();

    // Byte accounting must use the geometry the cache actually built
    // (`Cache::new` normalizes degenerate line sizes).
    let line_bytes = cache.config().line_bytes as u64;

    let phase_barrier_idx = prep.phase_barrier_idx;

    // Completion bookkeeping shared by all issue paths. The three-arg
    // form is used only while draining the `t == now` batch: a Sync
    // completing there readies same-cycle successors that must
    // interleave into the batch by id (the heap this replaced popped
    // them that way); everywhere else same-cycle readiness goes through
    // the wheel and is picked up by a later batch or cycle.
    macro_rules! complete {
        ($id:expr, $fin:expr) => {
            complete!($id, $fin, false)
        };
        ($id:expr, $fin:expr, $merge:expr) => {{
            let id = $id as usize;
            let fin: u64 = $fin;
            st.finish[id] = fin;
            st.max_finish = st.max_finish.max(fin);
            st.completed += 1;
            if phase_barrier_idx == Some(id) {
                probe.on_phase_barrier(fin);
            }
            for s in &succ_dat[succ_off[id] as usize..succ_off[id + 1] as usize] {
                let si = *s as usize;
                let p = &mut st.pend[si];
                if p.ready < fin {
                    p.ready = fin;
                }
                p.indeg -= 1;
                let (ready, indeg) = (p.ready, p.indeg);
                if indeg == 0 {
                    if phase_barrier_idx == Some(si) {
                        probe.on_barrier_ready(st.now, ready, *s);
                    }
                    if $merge && ready == st.now {
                        side.push(std::cmp::Reverse(*s));
                    } else {
                        st.events.push(ready, *s);
                    }
                }
            }
        }};
    }

    while st.completed < n {
        if REC && st.accesses >= rec.next_ckpt {
            rec.take_core_ckpt(st);
        }
        probe.on_cycle_start(st.now);
        // Drain events that became ready, one id-sorted batch per
        // occupied cycle in time order — exactly the (time, id) order
        // the event heap this replaced popped in. Straggler batches
        // (`t < now`, reachable only under zero-latency datapaths)
        // cannot receive same-cycle insertions — a Sync completing at
        // `now` readies successors at `now` or later, which land in a
        // later batch — so only the `t == now` batch merges against the
        // side heap of Sync-successor insertions.
        while let Some(t) = st.events.peek_time() {
            if t > st.now {
                break;
            }
            st.events.take_at(t, &mut batch);
            batch.sort_unstable();
            let merge = t == st.now;
            let mut bi = 0;
            loop {
                let id = if merge {
                    match (batch.get(bi).copied(), side.peek().copied()) {
                        (Some(b), Some(std::cmp::Reverse(s))) => {
                            if s < b {
                                side.pop();
                                s
                            } else {
                                bi += 1;
                                b
                            }
                        }
                        (Some(b), None) => {
                            bi += 1;
                            b
                        }
                        (None, Some(_)) => {
                            let std::cmp::Reverse(s) = side.pop().expect("peeked");
                            s
                        }
                        (None, None) => break,
                    }
                } else {
                    match batch.get(bi).copied() {
                        Some(b) => {
                            bi += 1;
                            b
                        }
                        None => break,
                    }
                };
                match class[id as usize] {
                    OpClass::Sync => {
                        // Barriers and SAlloc cost nothing by themselves.
                        if merge {
                            complete!(id, st.now, true);
                        } else {
                            complete!(id, st.now);
                        }
                    }
                    OpClass::FpAlu | OpClass::FpMul | OpClass::FpLong => st.q_fp.push_back(id),
                    OpClass::Int => st.q_int.push_back(id),
                    OpClass::MemLoad | OpClass::MemStore => st.q_mem.push_back(id),
                    OpClass::SpadLoad | OpClass::SpadStore => st.q_spad.push_back(id),
                    OpClass::Stream => {
                        let dir = usize::from(flags[id as usize] & FLAG_STREAM_IN != 0);
                        st.q_stream[dir].push_back(id);
                    }
                }
            }
            batch.clear();
        }

        // Issue FP and integer ops through the width-limited slots.
        let mut fp_left = cfg.pe.fp_issue;
        while fp_left > 0 {
            let Some(id) = st.q_fp.pop_front() else { break };
            fp_left -= 1;
            st.report.fp_ops += 1;
            let c = class[id as usize];
            let lat = match c {
                OpClass::FpAlu => cfg.pe.fp_alu_latency,
                OpClass::FpMul => cfg.pe.fp_mul_latency,
                _ => cfg.pe.fp_long_latency,
            };
            probe.on_fp_issue(st.now, st.now + lat, c, id);
            complete!(id, st.now + lat);
        }

        let mut int_left = cfg.pe.int_issue;
        while int_left > 0 {
            let Some(id) = st.q_int.pop_front() else {
                break;
            };
            int_left -= 1;
            st.report.int_ops += 1;
            probe.on_int_issue(st.now, st.now + cfg.pe.int_latency, id);
            complete!(id, st.now + cfg.pe.int_latency);
        }

        // Issue cache accesses through the limited ports. A miss needs a
        // free MSHR; when none is free the queue stalls at its head
        // (in-order memory queue, the "reactive fill" bottleneck).
        let mut ports_left = cfg.cache.ports;
        while ports_left > 0 {
            let Some(&id) = st.q_mem.front() else { break };
            let f = flags[id as usize];
            let is_write = class[id as usize] == OpClass::MemStore;
            let (is_tape, is_rev) = (f & FLAG_TAPE != 0, f & FLAG_REV != 0);
            let res = cache.access(addr[id as usize], is_write);
            // A miss claims the first slot with the minimum free time
            // (same pick as the iterator-based scan this replaced);
            // hits never consult the MSHRs, so the scan is skipped for
            // the majority path.
            let mut mshr_slot = 0;
            if !res.hit {
                for i in 1..st.mshr.len() {
                    if st.mshr[i] < st.mshr[mshr_slot] {
                        mshr_slot = i;
                    }
                }
            }
            if REC {
                let m = (REC_WRITE * u8::from(is_write))
                    | (REC_HIT * u8::from(res.hit))
                    | (REC_WB * u8::from(res.writeback.is_some()));
                debug_assert_eq!(addr[id as usize] & !REC_ADDR_MASK, 0);
                rec.addrs
                    .push(addr[id as usize] | (u64::from(m) << REC_SHIFT));
            }
            st.accesses += 1;
            if !res.hit && st.mshr[mshr_slot] > st.now {
                // Undo nothing: the line was allocated, but the request
                // still pays the stall — model the stall by waiting.
                // (Allocation-on-stall slightly favours the baseline.)
                st.report.cache.misses += 1;
                st.report.cache.tape_misses += u64::from(is_tape);
                st.report.cache.rev_misses += u64::from(is_rev);
                st.report.dram_fill_bytes += line_bytes;
                if res.writeback.is_some() {
                    st.report.cache.writebacks += 1;
                    st.report.dram_writeback_bytes += line_bytes;
                    let _ = st.dram.transfer(st.now, line_bytes);
                }
                let start = st.mshr[mshr_slot];
                let (_, fin) = st.dram.transfer(start, line_bytes);
                st.mshr[mshr_slot] = fin;
                st.q_mem.pop_front();
                probe.on_mshr_stall(st.now, is_tape, id);
                probe.on_cache_access(&CacheAccessEvent {
                    node: id,
                    now: st.now,
                    fin: fin + cfg.cache.hit_latency,
                    port: cfg.cache.ports - ports_left,
                    hit: false,
                    is_tape,
                    is_rev,
                    is_write,
                });
                complete!(id, fin + cfg.cache.hit_latency);
                // Head-of-line: nothing else issues behind a stalled miss.
                break;
            }
            st.q_mem.pop_front();
            ports_left -= 1;
            let port = cfg.cache.ports - ports_left - 1;
            if res.hit {
                st.report.cache.hits += 1;
                st.report.cache.tape_hits += u64::from(is_tape);
                st.report.cache.rev_hits += u64::from(is_rev);
                probe.on_cache_access(&CacheAccessEvent {
                    node: id,
                    now: st.now,
                    fin: st.now + cfg.cache.hit_latency,
                    port,
                    hit: true,
                    is_tape,
                    is_rev,
                    is_write,
                });
                complete!(id, st.now + cfg.cache.hit_latency);
            } else {
                st.report.cache.misses += 1;
                st.report.cache.tape_misses += u64::from(is_tape);
                st.report.cache.rev_misses += u64::from(is_rev);
                st.report.dram_fill_bytes += line_bytes;
                if res.writeback.is_some() {
                    st.report.cache.writebacks += 1;
                    st.report.dram_writeback_bytes += line_bytes;
                    let _ = st.dram.transfer(st.now, line_bytes);
                }
                let (_, fin) = st.dram.transfer(st.now, line_bytes);
                st.mshr[mshr_slot] = fin;
                probe.on_cache_access(&CacheAccessEvent {
                    node: id,
                    now: st.now,
                    fin: fin + cfg.cache.hit_latency,
                    port,
                    hit: false,
                    is_tape,
                    is_rev,
                    is_write,
                });
                complete!(id, fin + cfg.cache.hit_latency);
            }
        }

        // Issue scratchpad accesses, one per bank per cycle, scanning a
        // bounded window past bank conflicts.
        if !st.q_spad.is_empty() {
            let mut banks_used: u64 = 0;
            let mut scanned = 0;
            stash.clear();
            while scanned < SPAD_SCAN_WINDOW {
                let Some(id) = st.q_spad.pop_front() else {
                    break;
                };
                scanned += 1;
                let bank = (addr[id as usize] as usize) % cfg.spad.banks.max(1);
                if banks_used & (1u64 << bank) == 0 {
                    banks_used |= 1u64 << bank;
                    st.report.spad_accesses += 1;
                    probe.on_spad_access(st.now, st.now + cfg.spad.latency, bank, id);
                    complete!(id, st.now + cfg.spad.latency);
                } else {
                    probe.on_spad_conflict(st.now, bank, id);
                    stash.push(id);
                }
            }
            for id in stash.drain(..).rev() {
                st.q_spad.push_front(id);
            }
        }

        // Issue streams: one in flight per engine.
        for dir in 0..2 {
            if st.stream_free[dir] <= st.now {
                if let Some(id) = st.q_stream[dir].pop_front() {
                    let bytes = nbytes[id as usize] as u64;
                    st.report.stream_cmds += 1;
                    st.report.dram_stream_bytes += bytes;
                    let (bw_done, fin) = st.dram.transfer(st.now, bytes);
                    st.stream_free[dir] = bw_done;
                    probe.on_stream(st.now, bw_done, fin, dir, bytes, id);
                    complete!(id, fin);
                }
            }
        }

        let compute_busy = !st.q_fp.is_empty()
            || !st.q_int.is_empty()
            || !st.q_mem.is_empty()
            || !st.q_spad.is_empty();
        let queues_busy = compute_busy || !st.q_stream[0].is_empty() || !st.q_stream[1].is_empty();
        probe.on_cycle_end(st.now, queues_busy);
        if st.completed >= n {
            break;
        }
        // Advance time.
        if compute_busy {
            // Memory/scratchpad queues make progress every cycle while
            // non-empty; no cycle may be skipped.
            st.now += 1;
        } else if queues_busy {
            // Gap-skip: only stream commands are pending and every engine
            // holding work is busy. Nothing can issue before the earliest
            // engine-free or node-ready boundary, so jump straight there
            // (at least one cycle, matching the scalar loop's `now += 1`
            // when that boundary is immediate).
            let mut next = u64::MAX;
            for dir in 0..2 {
                if !st.q_stream[dir].is_empty() {
                    next = next.min(st.stream_free[dir]);
                }
            }
            if let Some(t) = st.events.peek_time() {
                next = next.min(t);
            }
            st.now = next.max(st.now + 1);
        } else if let Some(t) = st.events.peek_time() {
            // Idle: jump to the next future-ready node.
            st.now = st.now.max(t);
        } else {
            // Nothing queued and no events: all in-flight work completes
            // by itself (should not happen — everything is issued
            // synchronously), guard against livelock.
            st.now += 1;
        }
    }
}

/// Turns a finished [`CoreState`] into the report — the per-cycle
/// counterpart of [`finalize_dataflow`], sharing the same epilogue.
pub(crate) fn finalize_core(
    st: CoreState,
    cache: Cache,
    prep: &PreparedSim,
    cfg: &SystemConfig,
    opts: &SimOptions,
) -> SimReport {
    let mut report = st.report;
    report.cycles = st.max_finish;
    report.fwd_cycles = prep
        .phase_barrier_idx
        .map_or(st.max_finish, |i| st.finish[i]);
    finalize_report(report, st.finish, cache, cfg, opts)
}

/// Calendar slots in the event wheel: a power of two comfortably above
/// every service latency in the canonical configurations, so almost all
/// events land inside the window and the overflow heap stays tiny.
/// Small traces get a smaller wheel ([`wheel_slots`]) — zeroing the
/// ring costs more than the events it would hold; the overflow heap
/// absorbs the occasional far event either way.
const WHEEL: usize = 4096;

/// The wheel size for an `n`-node trace.
fn wheel_slots(n: usize) -> usize {
    (n / 4).next_power_of_two().clamp(64, WHEEL)
}

/// Sentinel pool index: end of a slot's event chain / empty free list.
const NIL: u32 = u32::MAX;

/// Calendar event queue: a time wheel with a two-level occupancy bitmap
/// plus an overflow heap for events beyond the horizon. Push is O(1);
/// finding the next occupied cycle is at most four find-first-set
/// scans; each occupied cycle drains as one sorted batch. Slot storage
/// is a pooled linked list (`head` + `pool` with a free list) rather
/// than one `Vec` per slot — a per-slot `Vec` costs thousands of
/// mallocs, reallocs and drops per run, which dominated the host
/// profile right after the binary heap it replaced. Shared by the pure
/// event loop and the per-cycle core; `Clone` makes it checkpointable
/// wholesale inside [`CoreState`].
#[derive(Clone)]
struct EventQ {
    /// Slot -> first pool node (`NIL` when empty).
    head: Vec<u32>,
    /// One bit per slot.
    occ: Vec<u64>,
    /// One bit per `occ` word (at most `WHEEL / 64 = 64` words).
    occ_sum: u64,
    /// `(next, id)` chain nodes, recycled through `free` so the pool
    /// stays at the run's peak in-flight event count.
    pool: Vec<(u32, u32)>,
    free: u32,
    over: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    /// Window start: every ring event's time is in `[cur, cur + slots)`
    /// and every overflow event's time is `>= cur + slots`.
    cur: u64,
    /// `slots - 1` (slot count is a power of two).
    mask: usize,
    len: usize,
    /// Memoized earliest queued time, or `u64::MAX` when unknown. The
    /// per-cycle core peeks two or three times per cycle (drain check,
    /// drain re-check, gap-skip); only the first pays the bitmap scan.
    /// Pushes fold into a known value (`min`), drains invalidate it.
    cached: u64,
}

impl EventQ {
    fn new(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two() && (64..=WHEEL).contains(&slots));
        EventQ {
            head: vec![NIL; slots],
            occ: vec![0; slots / 64],
            occ_sum: 0,
            pool: Vec::with_capacity(64),
            free: NIL,
            over: BinaryHeap::new(),
            cur: 0,
            mask: slots - 1,
            len: 0,
            cached: u64::MAX,
        }
    }

    /// Links `id` into the ring slot for `t` (which must lie inside the
    /// window). Does not touch `len` — both [`EventQ::push`] and the
    /// overflow refill route through here.
    #[inline]
    fn ring_insert(&mut self, t: u64, id: u32) {
        let s = t as usize & self.mask;
        let node = if self.free != NIL {
            let node = self.free;
            self.free = self.pool[node as usize].0;
            self.pool[node as usize] = (self.head[s], id);
            node
        } else {
            self.pool.push((self.head[s], id));
            (self.pool.len() - 1) as u32
        };
        self.head[s] = node;
        self.occ[s >> 6] |= 1 << (s & 63);
        self.occ_sum |= 1 << (s >> 6);
    }

    /// Queues `id` at time `t`. Requires `t >= self.cur`: service times
    /// never precede arrival times and the window only moves forward.
    #[inline]
    fn push(&mut self, t: u64, id: u32) {
        self.len += 1;
        if self.cached != u64::MAX && t < self.cached {
            // A known earliest only moves down; unknown stays unknown.
            self.cached = t;
        }
        if t - self.cur <= self.mask as u64 {
            self.ring_insert(t, id);
        } else {
            self.over.push(std::cmp::Reverse((t, id)));
        }
    }

    /// First occupied slot at or after `cur`'s slot in window order
    /// (wrapped slots hold later times than unwrapped ones).
    fn scan(&self) -> Option<usize> {
        let base = self.cur as usize & self.mask;
        let w0 = base >> 6;
        let m = self.occ[w0] & (!0u64 << (base & 63));
        if m != 0 {
            return Some((w0 << 6) | m.trailing_zeros() as usize);
        }
        let hi = if w0 + 1 < 64 {
            self.occ_sum & (!0u64 << (w0 + 1))
        } else {
            0
        };
        if hi != 0 {
            let w = hi.trailing_zeros() as usize;
            return Some((w << 6) | self.occ[w].trailing_zeros() as usize);
        }
        let lo = self.occ_sum & !(!0u64 << w0);
        if lo != 0 {
            let w = lo.trailing_zeros() as usize;
            return Some((w << 6) | self.occ[w].trailing_zeros() as usize);
        }
        let m2 = self.occ[w0] & !(!0u64 << (base & 63));
        if m2 != 0 {
            return Some((w0 << 6) | m2.trailing_zeros() as usize);
        }
        None
    }

    /// Refills the ring from the overflow heap after the window moved.
    fn refill(&mut self) {
        while let Some(&std::cmp::Reverse((t, id))) = self.over.peek() {
            if t - self.cur > self.mask as u64 {
                break;
            }
            self.over.pop();
            self.ring_insert(t, id);
        }
    }

    /// Earliest queued time; advances the window there and refills it
    /// from the overflow heap. `None` when the queue is empty.
    fn next_time(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let c = self.cached;
        if c != u64::MAX {
            // Memoized earliest: jump the window straight there.
            self.cur = c;
        } else if let Some(slot) = self.scan() {
            let base = self.cur as usize & self.mask;
            let delta = (slot + self.mask + 1 - base) & self.mask;
            self.cur += delta as u64;
        } else {
            // Ring empty: jump the window to the overflow minimum.
            let &std::cmp::Reverse((t, _)) = self.over.peek().expect("len > 0 with an empty ring");
            self.cur = t;
        }
        self.refill();
        // Refilling moves events without changing their times, so the
        // earliest stays exactly `cur`.
        self.cached = self.cur;
        Some(self.cur)
    }

    /// Earliest queued time without disturbing the window — the
    /// per-cycle core's replacement for `BinaryHeap::peek` in its
    /// drain and gap-skip decisions. Ring events always precede
    /// overflow events (the overflow holds times beyond the window).
    fn peek_time(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let c = self.cached;
        if c != u64::MAX {
            return Some(c);
        }
        let t = if let Some(slot) = self.scan() {
            let base = self.cur as usize & self.mask;
            let delta = (slot + self.mask + 1 - base) & self.mask;
            self.cur + delta as u64
        } else {
            let &std::cmp::Reverse((t, _)) = self.over.peek().expect("len > 0 with an empty ring");
            t
        };
        self.cached = t;
        Some(t)
    }

    /// Advances the window to `t` (which must be a time
    /// [`EventQ::peek_time`] returned, so nothing occupied is skipped)
    /// and moves every event queued there into `batch`.
    fn take_at(&mut self, t: u64, batch: &mut Vec<u32>) {
        debug_assert!(t >= self.cur);
        if t > self.cur {
            self.cur = t;
            self.refill();
        }
        self.take_into(t, batch);
    }

    /// Moves every event queued at `t` (the value [`EventQ::next_time`]
    /// returned) into `batch`.
    fn take_into(&mut self, t: u64, batch: &mut Vec<u32>) {
        let s = t as usize & self.mask;
        let mut node = self.head[s];
        while node != NIL {
            let (next, id) = self.pool[node as usize];
            batch.push(id);
            self.pool[node as usize].0 = self.free;
            self.free = node;
            self.len -= 1;
            node = next;
        }
        self.head[s] = NIL;
        self.occ[s >> 6] &= !(1 << (s & 63));
        if self.occ[s >> 6] == 0 {
            self.occ_sum &= !(1 << (s >> 6));
        }
        // The drained slot was the earliest; the next one is unknown.
        self.cached = u64::MAX;
    }

    /// Every queued `(time, id)` pair, unordered (for checkpoints).
    fn snapshot(&self) -> Vec<(u64, u32)> {
        let mut out = Vec::with_capacity(self.len);
        let base = self.cur as usize & self.mask;
        let anchor = self.cur - base as u64;
        for s in 0..=self.mask {
            let mut node = self.head[s];
            if node == NIL {
                continue;
            }
            let t = anchor + s as u64 + if s < base { self.mask as u64 + 1 } else { 0 };
            while node != NIL {
                let (next, id) = self.pool[node as usize];
                out.push((t, id));
                node = next;
            }
        }
        for &std::cmp::Reverse(e) in &self.over {
            out.push(e);
        }
        out
    }

    /// Rebuilds a queue whose window starts at `cur` from a snapshot.
    fn restore(cur: u64, events: &[(u64, u32)], slots: usize) -> Self {
        let mut eq = EventQ::new(slots);
        eq.cur = cur;
        for &(t, id) in events {
            eq.push(t, id);
        }
        eq
    }
}

/// The pure event loop's complete scheduler state. Everything the loop
/// mutates lives here except the cache (which an incremental
/// re-simulation rebuilds by replay rather than by snapshot — see
/// [`crate::sweep`]), so a checkpoint is a plain extract and a resume
/// continues mid-run with byte-identical results.
pub(crate) struct DfState {
    pend: Vec<NodeState>,
    finish: Vec<u64>,
    eq: EventQ,
    fp_srv: IssueSrv,
    int_srv: IssueSrv,
    mem_srv: IssueSrv,
    mshr: Vec<u64>,
    dram: Dram,
    report: SimReport,
    completed: usize,
    max_finish: u64,
    /// Cache accesses served so far — the recording/checkpoint clock.
    accesses: u64,
}

impl DfState {
    pub(crate) fn new(prep: &PreparedSim, cfg: &SystemConfig) -> Self {
        let mut eq = EventQ::new(wheel_slots(prep.n));
        for &r in &prep.roots {
            eq.push(0, r);
        }
        DfState {
            pend: prep.pend0.clone(),
            finish: vec![0u64; prep.n],
            eq,
            fp_srv: IssueSrv::new(),
            int_srv: IssueSrv::new(),
            mem_srv: IssueSrv::new(),
            mshr: vec![0; cfg.cache.mshrs.max(1)],
            dram: Dram::new(cfg),
            report: SimReport::default(),
            completed: 0,
            max_finish: 0,
            accesses: 0,
        }
    }

    fn snap(&self) -> DfSnap {
        DfSnap {
            pend: self.pend.clone(),
            finish: self.finish.clone(),
            events: self.eq.snapshot(),
            eq_cur: self.eq.cur,
            eq_slots: self.eq.mask + 1,
            fp_srv: self.fp_srv,
            int_srv: self.int_srv,
            mem_srv: self.mem_srv,
            mshr: self.mshr.clone(),
            dram_busy: self.dram.busy,
            report: self.report.clone(),
            completed: self.completed,
            max_finish: self.max_finish,
            accesses: self.accesses,
        }
    }

    /// Rebuilds the state a checkpoint captured. The caller supplies the
    /// cache separately (replayed up to the same access count).
    pub(crate) fn restore(s: &DfSnap, cfg: &SystemConfig) -> Self {
        let mut dram = Dram::new(cfg);
        dram.busy = s.dram_busy;
        DfState {
            pend: s.pend.clone(),
            finish: s.finish.clone(),
            eq: EventQ::restore(s.eq_cur, &s.events, s.eq_slots),
            fp_srv: s.fp_srv,
            int_srv: s.int_srv,
            mem_srv: s.mem_srv,
            mshr: s.mshr.clone(),
            dram,
            report: s.report.clone(),
            completed: s.completed,
            max_finish: s.max_finish,
            accesses: s.accesses,
        }
    }
}

/// A scheduler-state checkpoint, taken at batch boundaries during a
/// recorded run. Deliberately cache-free: the scheduler's evolution
/// depends on the cache only through per-access outcomes, which the
/// recording captures, so one set of checkpoints serves every geometry
/// whose outcome stream shares the prefix.
pub(crate) struct DfSnap {
    pend: Vec<NodeState>,
    finish: Vec<u64>,
    events: Vec<(u64, u32)>,
    eq_cur: u64,
    eq_slots: usize,
    fp_srv: IssueSrv,
    int_srv: IssueSrv,
    mem_srv: IssueSrv,
    mshr: Vec<u64>,
    dram_busy: f64,
    report: SimReport,
    completed: usize,
    max_finish: u64,
    pub(crate) accesses: u64,
}

/// Recorded access meta bit: the access was a store.
pub(crate) const REC_WRITE: u8 = 1 << 0;
/// Recorded access meta bit: the access hit.
pub(crate) const REC_HIT: u8 = 1 << 1;
/// Recorded access meta bit: the fill evicted a dirty line.
pub(crate) const REC_WB: u8 = 1 << 2;
/// Bit position where a recorded access's meta bits live, packed into
/// the high end of the address word itself: one array push per access
/// on the record path and one load per access on the replay path
/// instead of two. Memory addresses are byte offsets into a traced
/// function's heap image — far below this bit — and scratchpad
/// addresses (which carry `SPAD_SPACE`, bit 63) are never recorded.
pub(crate) const REC_SHIFT: u32 = 61;
/// Mask recovering the address from a packed recording word.
pub(crate) const REC_ADDR_MASK: u64 = (1 << REC_SHIFT) - 1;

/// The record of a dataflow run: the cache access stream in schedule
/// order with each access's outcome, plus periodic scheduler
/// checkpoints. A later run that only changes the cache geometry
/// replays `addrs` through the new cache and compares outcomes; while
/// they match, the schedule is provably identical, so the run can skip
/// straight to the checkpoint before the first divergence.
pub(crate) struct Recording {
    /// Packed access words: address in the low [`REC_SHIFT`] bits,
    /// `REC_*` outcome bits above ([`REC_SHIFT`]).
    pub(crate) addrs: Vec<u64>,
    pub(crate) ckpts: Vec<Ckpt>,
    next_ckpt: u64,
    max_ckpts: usize,
    /// Last access position worth checkpointing: on a monotone ladder
    /// every future divergence lands at or before the one that caused
    /// this recording, so snapshots past it can never be resumed from.
    ckpt_limit: u64,
}

/// A checkpointed scheduler state, from whichever core recorded the
/// run. Both variants are deliberately cache-free: the scheduler's
/// evolution depends on the cache only through per-access outcomes,
/// which the recording captures, so one set of checkpoints serves
/// every geometry whose outcome stream shares the prefix (the resume
/// path rebuilds the cache by replaying the validated prefix).
pub(crate) enum Snap {
    /// Pure event loop state ([`dataflow_loop`]).
    Df(Box<DfSnap>),
    /// Per-cycle core state ([`core_loop`]).
    Core(Box<CoreState>),
}

impl Snap {
    /// Cache accesses already served when the checkpoint was taken.
    pub(crate) fn accesses(&self) -> u64 {
        match self {
            Snap::Df(s) => s.accesses,
            Snap::Core(s) => s.accesses,
        }
    }
}

/// One checkpoint: the scheduler state with `snap.accesses()` cache
/// accesses already served.
pub(crate) struct Ckpt {
    pub(crate) snap: Snap,
}

impl Recording {
    /// A recording that records nothing (the plain-run mode; with
    /// `REC = false` the loop never touches it).
    pub(crate) fn disabled() -> Recording {
        Recording {
            addrs: Vec::new(),
            ckpts: Vec::new(),
            next_ckpt: u64::MAX,
            max_ckpts: 0,
            ckpt_limit: u64::MAX,
        }
    }

    /// A live recording: checkpoints on a geometric (doubling) access
    /// schedule starting at `first`, at most `max_ckpts` of them
    /// (memory bound; zero disables checkpointing while still
    /// recording the outcome stream). The schedule is early-biased on
    /// purpose — on a descending cache-size ladder, each smaller
    /// configuration diverges *earlier* than the last (capacity
    /// pressure bites sooner), so resumes cluster near the start of
    /// the run while late checkpoints go unused. Positions past
    /// `limit` are skipped entirely (a re-record after a divergence at
    /// access *d* passes `limit = d`: no later chained run can diverge
    /// past *d* on a monotone ladder, so snapshots there are dead
    /// weight). `cap` preallocates the access buffers (the trace's
    /// memory-node count).
    pub(crate) fn new(first: u64, max_ckpts: usize, cap: usize, limit: u64) -> Recording {
        let first = first.max(1);
        Recording {
            addrs: Vec::with_capacity(cap),
            ckpts: Vec::new(),
            next_ckpt: if max_ckpts == 0 || first > limit {
                u64::MAX
            } else {
                first
            },
            max_ckpts,
            ckpt_limit: limit,
        }
    }

    fn take_df_ckpt(&mut self, st: &DfState) {
        if self.ckpts.len() >= self.max_ckpts {
            self.next_ckpt = u64::MAX;
            return;
        }
        self.ckpts.push(Ckpt {
            snap: Snap::Df(Box::new(st.snap())),
        });
        self.advance_schedule(st.accesses);
    }

    pub(crate) fn take_core_ckpt(&mut self, st: &CoreState) {
        if self.ckpts.len() >= self.max_ckpts {
            self.next_ckpt = u64::MAX;
            return;
        }
        self.ckpts.push(Ckpt {
            snap: Snap::Core(Box::new(st.clone())),
        });
        self.advance_schedule(st.accesses);
    }

    /// Doubling schedule; catch up past the current clock when a batch
    /// overshot several scheduled points at once, and stop once the
    /// schedule leaves the useful window.
    fn advance_schedule(&mut self, accesses: u64) {
        let mut next = self.next_ckpt;
        while next <= accesses {
            next = next.saturating_mul(2);
        }
        self.next_ckpt = if next > self.ckpt_limit {
            u64::MAX
        } else {
            next
        };
    }

    /// Drops everything past checkpoint `keep` so the tail can be
    /// re-recorded from there. The re-recorded tail takes **no new
    /// checkpoints**: snapshots cost ~24 bytes/node of memcpy each,
    /// and on a monotone ladder every later divergence lands at or
    /// before this one, where the surviving prefix checkpoints
    /// already serve.
    pub(crate) fn truncate_to(&mut self, keep: usize) {
        let cut = self.ckpts[keep].snap.accesses();
        self.ckpts.truncate(keep + 1);
        self.addrs.truncate(cut as usize);
        self.next_ckpt = u64::MAX;
    }
}

/// The pure event loop: no per-cycle iteration at all. Dispatched for
/// no-op probes when [`dataflow_ok`] holds — the trace never touches
/// the scratchpad or stream engines, so the only resources are the
/// FP/INT slots and the cache, all of which have exact closed-form
/// service disciplines once ops are fed in queue-arrival order. The
/// event queue's pop order *is* that order, so cache accesses, DRAM
/// transfers and MSHR assignments happen in exactly the per-cycle
/// loop's sequence with exactly its timestamps; reports are
/// byte-identical. Probe hooks are omitted — the probe is statically a
/// no-op and cannot observe the difference.
///
/// Each occupied cycle drains as one id-sorted batch from the wheel.
/// Zero-cost completions (`Sync`) may ready successors in the *same*
/// cycle; those go to a small side heap merged against the remaining
/// batch, reproducing the event heap's `(time, id)` pop order exactly.
/// All other service latencies are ≥ 1 ([`analytic_ok`]), so their
/// completions are strictly future events.
///
/// With `REC = true` every cache access's address and outcome is
/// appended to `rec` and scheduler checkpoints are taken at batch
/// boundaries — the raw material for [`crate::sweep`]'s incremental
/// re-simulation. The recording hooks compile out under `REC = false`.
pub(crate) fn dataflow_loop<const REC: bool>(
    prep: &PreparedSim,
    cfg: &SystemConfig,
    st: &mut DfState,
    cache: &mut Cache,
    rec: &mut Recording,
) {
    let n = prep.n;
    let class = &prep.class[..n];
    let flags = &prep.flags[..n];
    let addr = &prep.addr[..n];
    let succ_off = &prep.succ_off[..n + 1];
    let succ_dat = &prep.succ_dat[..];
    let line_bytes = cache.config().line_bytes as u64;

    let mut batch: Vec<u32> = Vec::with_capacity(256);
    let mut side: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();

    while st.completed < n {
        if REC && st.accesses >= rec.next_ckpt {
            rec.take_df_ckpt(st);
        }
        // An empty queue before completion means unsatisfiable
        // dependences (not a DAG); stop with a short report instead of
        // spinning — no trace built through the public constructors can
        // get here.
        let Some(t) = st.eq.next_time() else { break };
        st.eq.take_into(t, &mut batch);
        batch.sort_unstable();

        macro_rules! complete {
            ($id:expr, $fin:expr) => {{
                let id = $id as usize;
                let fin: u64 = $fin;
                st.finish[id] = fin;
                if fin > st.max_finish {
                    st.max_finish = fin;
                }
                st.completed += 1;
                for s in &succ_dat[succ_off[id] as usize..succ_off[id + 1] as usize] {
                    let si = *s as usize;
                    let p = &mut st.pend[si];
                    if p.ready < fin {
                        p.ready = fin;
                    }
                    p.indeg -= 1;
                    if p.indeg == 0 {
                        if p.ready == t {
                            side.push(std::cmp::Reverse(*s));
                        } else {
                            st.eq.push(p.ready, *s);
                        }
                    }
                }
            }};
        }

        let mut bi = 0;
        loop {
            let id = match (batch.get(bi).copied(), side.peek().copied()) {
                (Some(b), Some(std::cmp::Reverse(s))) => {
                    if s < b {
                        side.pop();
                        s
                    } else {
                        bi += 1;
                        b
                    }
                }
                (Some(b), None) => {
                    bi += 1;
                    b
                }
                (None, Some(_)) => {
                    let std::cmp::Reverse(s) = side.pop().expect("peeked");
                    s
                }
                (None, None) => break,
            };
            let idu = id as usize;
            match class[idu] {
                // Barriers and SAlloc cost nothing by themselves; their
                // same-cycle successors merge into the batch in id
                // order, exactly as the event heap would interleave
                // them.
                OpClass::Sync => complete!(id, t),
                OpClass::FpAlu | OpClass::FpMul | OpClass::FpLong => {
                    let lat = match class[idu] {
                        OpClass::FpAlu => cfg.pe.fp_alu_latency,
                        OpClass::FpMul => cfg.pe.fp_mul_latency,
                        _ => cfg.pe.fp_long_latency,
                    };
                    st.report.fp_ops += 1;
                    complete!(id, st.fp_srv.issue_at(t, cfg.pe.fp_issue) + lat);
                }
                OpClass::Int => {
                    st.report.int_ops += 1;
                    complete!(
                        id,
                        st.int_srv.issue_at(t, cfg.pe.int_issue) + cfg.pe.int_latency
                    );
                }
                OpClass::MemLoad | OpClass::MemStore => {
                    let is_write = class[idu] == OpClass::MemStore;
                    let f = flags[idu];
                    let (is_tape, is_rev) = (f & FLAG_TAPE != 0, f & FLAG_REV != 0);
                    // The memory queue follows the same closed form
                    // through the cache ports, with one extra rule at
                    // the stall site: a miss with no free MSHR ends its
                    // service cycle (head-of-line).
                    let s = st.mem_srv.issue_at(t, cfg.cache.ports);
                    let res = cache.access(addr[idu], is_write);
                    // Only misses consult the MSHRs; the min-slot scan
                    // is skipped on the majority hit path.
                    let mut mshr_slot = 0;
                    if !res.hit {
                        for i in 1..st.mshr.len() {
                            if st.mshr[i] < st.mshr[mshr_slot] {
                                mshr_slot = i;
                            }
                        }
                    }
                    if REC {
                        let m = (REC_WRITE * u8::from(is_write))
                            | (REC_HIT * u8::from(res.hit))
                            | (REC_WB * u8::from(res.writeback.is_some()));
                        debug_assert_eq!(addr[idu] & !REC_ADDR_MASK, 0);
                        rec.addrs.push(addr[idu] | (u64::from(m) << REC_SHIFT));
                    }
                    st.accesses += 1;
                    if res.hit {
                        st.report.cache.hits += 1;
                        st.report.cache.tape_hits += u64::from(is_tape);
                        st.report.cache.rev_hits += u64::from(is_rev);
                        complete!(id, s + cfg.cache.hit_latency);
                    } else {
                        st.report.cache.misses += 1;
                        st.report.cache.tape_misses += u64::from(is_tape);
                        st.report.cache.rev_misses += u64::from(is_rev);
                        st.report.dram_fill_bytes += line_bytes;
                        if res.writeback.is_some() {
                            st.report.cache.writebacks += 1;
                            st.report.dram_writeback_bytes += line_bytes;
                            let _ = st.dram.transfer(s, line_bytes);
                        }
                        if st.mshr[mshr_slot] > s {
                            // Head-of-line MSHR stall: the fill starts
                            // when a slot frees, and nothing else issues
                            // behind the stalled miss this cycle —
                            // saturate it.
                            let (_, fin) = st.dram.transfer(st.mshr[mshr_slot], line_bytes);
                            st.mshr[mshr_slot] = fin;
                            st.mem_srv.used = cfg.cache.ports;
                            complete!(id, fin + cfg.cache.hit_latency);
                        } else {
                            let (_, fin) = st.dram.transfer(s, line_bytes);
                            st.mshr[mshr_slot] = fin;
                            complete!(id, fin + cfg.cache.hit_latency);
                        }
                    }
                }
                OpClass::SpadLoad | OpClass::SpadStore | OpClass::Stream => {
                    unreachable!("dispatcher guarantees no scratchpad/stream nodes")
                }
            }
        }
        batch.clear();
    }
}

/// Turns a finished [`DfState`] into the report: total/forward cycles,
/// the end-of-run dirty flush, energy, and (on request) per-node finish
/// times. Identical to the per-cycle core's epilogue.
pub(crate) fn finalize_dataflow(
    st: DfState,
    cache: Cache,
    prep: &PreparedSim,
    cfg: &SystemConfig,
    opts: &SimOptions,
) -> SimReport {
    let mut report = st.report;
    report.cycles = st.max_finish;
    report.fwd_cycles = prep
        .phase_barrier_idx
        .map_or(st.max_finish, |i| st.finish[i]);
    finalize_report(report, st.finish, cache, cfg, opts)
}

/// The shared finalize epilogue: end-of-run dirty flush, energy, and
/// (on request) per-node finish times. `report.cycles`/`fwd_cycles`
/// must already be set by the caller.
fn finalize_report(
    mut report: SimReport,
    finish: Vec<u64>,
    cache: Cache,
    cfg: &SystemConfig,
    opts: &SimOptions,
) -> SimReport {
    // Cool-down: lines still dirty when the run ends must reach DRAM
    // eventually. Charge those write-backs to traffic exactly once —
    // this happens before energy accounting so the DRAM energy sees
    // them too — otherwise small working sets hide store traffic by
    // never evicting.
    let line_bytes = cache.config().line_bytes as u64;
    let flushed = cache.dirty_lines();
    report.cache.writebacks += flushed;
    report.cache.flush_writebacks = flushed;
    report.dram_writeback_bytes += flushed * line_bytes;

    recompute_energy(&mut report, cfg);
    if opts.record_node_times {
        report.node_finish = Some(finish);
    }
    report
}

/// (Re)derives the energy block from the report's counters — a pure
/// function of them, which is what lets an incremental re-simulation
/// reuse a recorded report across cache sizes (the table's per-access
/// cache energy is the only size-dependent term).
pub(crate) fn recompute_energy(report: &mut SimReport, cfg: &SystemConfig) {
    let cache_access_pj = EnergyTable::cache_pj(cfg.cache.size_bytes);
    report.energy = EnergyReport {
        cache_pj: report.cache.accesses() as f64 * cache_access_pj,
        spad_pj: report.spad_accesses as f64 * cfg.energy.spad_pj,
        stream_pj: (report.dram_stream_bytes as f64 / 8.0) * cfg.energy.stream_elem_pj,
        dram_pj: report.dram_bytes() as f64 * cfg.energy.dram_pj_per_byte,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use tapeflow_ir::trace::{trace_function, TraceOptions};
    use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar};

    fn trace_of(build: impl FnOnce(&mut FunctionBuilder)) -> Trace {
        let mut b = FunctionBuilder::new("t");
        build(&mut b);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        trace_function(&f, &mut mem, TraceOptions::default()).unwrap()
    }

    fn sim_of(build: impl FnOnce(&mut FunctionBuilder), cfg: &SystemConfig) -> SimReport {
        simulate(&trace_of(build), cfg, &SimOptions::default())
    }

    #[test]
    fn empty_trace_is_zero() {
        let r = sim_of(|_| {}, &SystemConfig::default());
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn dependent_chain_serializes() {
        // A chain of n dependent fadds takes ~n * latency cycles.
        let cfg = SystemConfig::default();
        let n = 50;
        let r = sim_of(
            |b| {
                let one = b.f64(1.0);
                let mut v = b.f64(0.0);
                for _ in 0..n {
                    v = b.fadd(v, one);
                }
            },
            &cfg,
        );
        assert_eq!(r.fp_ops, n);
        assert_eq!(r.cycles, n * cfg.pe.fp_alu_latency);
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        let cfg = SystemConfig::default();
        let n = 64u64; // two issue groups of 32
        let r = sim_of(
            |b| {
                let one = b.f64(1.0);
                let two = b.f64(2.0);
                for _ in 0..n {
                    let _ = b.fadd(one, two);
                }
            },
            &cfg,
        );
        assert_eq!(r.fp_ops, n);
        // 32 issue per cycle -> two issue cycles; last issues at cycle 1.
        assert_eq!(r.cycles, 1 + cfg.pe.fp_alu_latency);
    }

    #[test]
    fn cache_misses_cost_dram_latency() {
        let cfg = SystemConfig::with_cache_bytes(1024);
        // 8 loads of the same address: 1 miss + 7 hits.
        let r = sim_of(
            |b| {
                let x = b.array("x", 8, ArrayKind::Input, Scalar::F64);
                let z = b.i64(0);
                for _ in 0..8 {
                    let _ = b.load(x, z);
                }
            },
            &cfg,
        );
        assert_eq!(r.cache.misses, 1);
        assert_eq!(r.cache.hits, 7);
        assert_eq!(r.dram_fill_bytes, 64);
        assert!(r.cycles >= cfg.dram.latency);
    }

    #[test]
    fn bandwidth_bound_streaming() {
        // 64 loads, each to a distinct line: misses serialize on DRAM
        // bandwidth (64 B / 9.6 B/cyc ≈ 6.7 cycles per line).
        let cfg = SystemConfig::with_cache_bytes(1024);
        let r = sim_of(
            |b| {
                let x = b.array("x", 64 * 8, ArrayKind::Input, Scalar::F64);
                for i in 0..64i64 {
                    let idx = b.i64(i * 8);
                    let _ = b.load(x, idx);
                }
            },
            &cfg,
        );
        assert_eq!(r.cache.misses, 64);
        let min_bw_cycles = (64.0 * 64.0 / cfg.dram.bytes_per_cycle) as u64;
        assert!(
            r.cycles >= min_bw_cycles,
            "{} cycles vs bandwidth floor {min_bw_cycles}",
            r.cycles
        );
    }

    #[test]
    fn spad_bank_conflicts_serialize() {
        let cfg = SystemConfig::default();
        // 8 spad stores all to bank 0 (entries 0, 16, 32, ...).
        let r = sim_of(
            |b| {
                use tapeflow_ir::Op;
                b.push_inst(Op::SAlloc { size: 128, base: 0 }, vec![]);
                let v = b.f64(1.0);
                for k in 0..8 {
                    let e = b.i64(k * 16);
                    b.push_inst(Op::SpadStore, vec![e, v]);
                }
            },
            &cfg,
        );
        assert_eq!(r.spad_accesses, 8);
        // One per cycle through the same bank.
        assert!(r.cycles >= 8, "bank serialization: {} cycles", r.cycles);
    }

    #[test]
    fn conflict_free_spad_is_parallel() {
        let cfg = SystemConfig::default();
        let r = sim_of(
            |b| {
                use tapeflow_ir::Op;
                b.push_inst(Op::SAlloc { size: 16, base: 0 }, vec![]);
                let v = b.f64(1.0);
                for k in 0..8 {
                    let e = b.i64(k); // 8 different banks
                    b.push_inst(Op::SpadStore, vec![e, v]);
                }
            },
            &cfg,
        );
        assert_eq!(r.cycles, cfg.spad.latency, "all banks in one cycle");
    }

    #[test]
    fn fwd_rev_split_at_barrier() {
        let mut b = FunctionBuilder::new("p");
        let x = b.array("x", 4, ArrayKind::Input, Scalar::F64);
        b.for_loop("i", 0, 4, |b, i| {
            let _ = b.load(x, i);
        });
        let bar = b.push_inst(tapeflow_ir::Op::Barrier, vec![]);
        assert!(bar.is_none());
        let bar_id = tapeflow_ir::InstId::new(b.func().insts().len() - 1);
        b.for_loop("j", 0, 4, |b, j| {
            let _ = b.load(x, j);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(
            &f,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(bar_id),
            },
        )
        .unwrap();
        let r = simulate(&trace, &SystemConfig::default(), &SimOptions::default());
        assert!(r.fwd_cycles > 0);
        assert!(r.fwd_cycles < r.cycles);
        assert_eq!(r.rev_cycles(), r.cycles - r.fwd_cycles);
    }

    #[test]
    fn final_flush_charges_writebacks_once() {
        // Two stores to distinct lines in a 32 KB cache: nothing evicts
        // during the run, so without the end-of-run flush the write-backs
        // would never be charged at all.
        let cfg = SystemConfig::default();
        let build = |b: &mut FunctionBuilder| {
            let x = b.array("x", 16, ArrayKind::Output, Scalar::F64);
            let v = b.f64(1.0);
            for i in 0..2i64 {
                let idx = b.i64(i * 8); // byte offsets 0 and 64
                b.store(x, idx, v);
            }
        };
        let r = sim_of(build, &cfg);
        let line = cfg.cache.line_bytes as u64;
        assert_eq!(r.cache.writebacks, 2, "one write-back per dirty line");
        assert_eq!(r.cache.flush_writebacks, 2, "both came from the cool-down");
        assert_eq!(r.dram_writeback_bytes, 2 * line);
        // Energy was computed after the flush, so DRAM energy covers the
        // flushed bytes exactly once.
        let expected_dram_pj = r.dram_bytes() as f64 * cfg.energy.dram_pj_per_byte;
        assert_eq!(r.energy.dram_pj, expected_dram_pj);
        // Deterministic: a second simulation charges the same amount (no
        // accumulation across runs).
        let r2 = sim_of(build, &cfg);
        assert_eq!(r2.cache.writebacks, 2);
        assert_eq!(r2.dram_writeback_bytes, r.dram_writeback_bytes);
    }

    #[test]
    fn node_times_recorded_when_asked() {
        let mut b = FunctionBuilder::new("t");
        let one = b.f64(1.0);
        let _ = b.fadd(one, one);
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let r = simulate(
            &trace,
            &SystemConfig::default(),
            &SimOptions {
                record_node_times: true,
            },
        );
        let times = r.node_finish.unwrap();
        assert_eq!(times.len(), trace.len());
        assert!(times.iter().all(|&t| t > 0));
    }

    #[test]
    fn engine_names_parse_and_round_trip() {
        assert_eq!(Engine::parse("event"), Some(Engine::Event));
        assert_eq!(Engine::parse("legacy"), Some(Engine::Legacy));
        assert_eq!(Engine::parse("warp"), None);
        assert_eq!(Engine::default(), Engine::Event);
        for e in [Engine::Event, Engine::Legacy] {
            assert_eq!(Engine::parse(e.name()), Some(e));
        }
    }

    #[test]
    fn prepared_arena_reuses_across_configs() {
        // One arena, many configs: results match fresh simulations.
        let trace = trace_of(|b| {
            let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
            b.for_loop("i", 0, 64, |b, i| {
                let v = b.load(x, i);
                let _ = b.fmul(v, v);
            });
        });
        let prep = PreparedSim::new(&trace).unwrap();
        for bytes in [1024, 2048, 32768] {
            let cfg = SystemConfig::with_cache_bytes(bytes);
            let from_arena = simulate_prepared(&prep, &cfg, &SimOptions::default());
            let fresh = simulate(&trace, &cfg, &SimOptions::default());
            assert_eq!(from_arena.cycles, fresh.cycles);
            assert_eq!(from_arena.cache, fresh.cache);
            assert_eq!(from_arena.to_json().render(), fresh.to_json().render());
        }
    }

    #[test]
    fn stream_gap_skip_matches_legacy_cycle_for_cycle() {
        // A stream-heavy trace: big transfers leave long engine-busy gaps
        // that the event core skips and the legacy loop crawls. Reports
        // must agree exactly.
        let cfg = SystemConfig::default();
        let trace = trace_of(|b| {
            use tapeflow_ir::Op;
            let tape = b.array("tape", 128, ArrayKind::Tape, Scalar::F64);
            let base = b
                .push_inst(Op::SAlloc { size: 128, base: 0 }, vec![])
                .unwrap();
            let zero = b.i64(0);
            let elems = b.i64(128);
            for _ in 0..4 {
                b.push_inst(Op::StreamOut(tape), vec![base, zero, elems]);
                b.push_inst(Op::StreamIn(tape), vec![base, zero, elems]);
            }
        });
        let new = simulate(&trace, &cfg, &SimOptions::default());
        let old = crate::legacy::try_simulate(&trace, &cfg, &SimOptions::default()).unwrap();
        assert_eq!(new.cycles, old.cycles);
        assert_eq!(new.stream_cmds, old.stream_cmds);
        assert_eq!(new.dram_stream_bytes, old.dram_stream_bytes);
        assert_eq!(new.to_json().render(), old.to_json().render());
        assert!(new.stream_cmds == 8, "all streams executed: {new:?}");
    }

    #[test]
    fn analytic_paths_match_the_probed_core_exactly() {
        // The unprobed fast paths (issue servers, pure event loop) must
        // reproduce the fully announced per-cycle core byte for byte.
        // Build traces that exercise width contention, MSHR stalls, and
        // mixed classes, then compare against a probed run (probed runs
        // always take the exact per-cycle core).
        use crate::probe::AttributionProbe;
        type Build = Box<dyn Fn(&mut FunctionBuilder)>;
        let builds: Vec<Build> = vec![
            // Wide FP bursts: > fp_issue independent ops per cycle.
            Box::new(|b: &mut FunctionBuilder| {
                let one = b.f64(1.0);
                let mut acc = b.f64(0.0);
                for _ in 0..4 {
                    let mut parts = Vec::new();
                    for _ in 0..80 {
                        parts.push(b.fmul(acc, one));
                    }
                    for p in parts {
                        acc = b.fadd(acc, p);
                    }
                }
            }),
            // Miss storm through few MSHRs plus dependent integer work.
            Box::new(|b: &mut FunctionBuilder| {
                let x = b.array("x", 256 * 8, ArrayKind::Input, Scalar::F64);
                let mut acc = b.f64(0.0);
                for i in 0..256i64 {
                    let idx = b.i64((i * 64) % (256 * 8));
                    let v = b.load(x, idx);
                    acc = b.fadd(acc, v);
                }
                let _ = acc;
            }),
        ];
        for build in builds {
            let trace = trace_of(&*build);
            for bytes in [1024, 32768] {
                let cfg = SystemConfig::with_cache_bytes(bytes);
                let fast = simulate(&trace, &cfg, &SimOptions::default());
                let mut probe = AttributionProbe::default();
                let exact = simulate_probed(&trace, &cfg, &SimOptions::default(), &mut probe);
                assert_eq!(
                    fast.to_json().render(),
                    exact.to_json().render(),
                    "fast path diverged at cache={bytes}"
                );
            }
        }
    }
}
