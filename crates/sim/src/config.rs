//! System configuration — the simulator's Table 4.2.

/// Cache replacement policy. The paper's Obs 1.3 argues no policy choice
/// rescues the cache for tape traffic; both are provided so the claim can
/// be tested.
pub use crate::cache::ReplacementPolicy;

/// Cache geometry and timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity (ways).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Concurrent accesses per cycle.
    pub ports: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss-status holding registers: outstanding misses the cache can
    /// track. Demand misses beyond this stall the memory queue — the
    /// "reactive cache fills" the paper's streams eliminate.
    pub mshrs: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// A cache sized like the paper's Table 4.2 rows: 2-way below 32 KB,
    /// 4-way at 32 KB, 8-way above (the paper's "fully" associative 64 KB
    /// entry is approximated with 16 ways to keep simulation tractable).
    pub fn for_bytes(size_bytes: usize) -> Self {
        let assoc = if size_bytes >= 65536 {
            16
        } else if size_bytes >= 32768 {
            4
        } else {
            2
        };
        CacheConfig {
            size_bytes,
            assoc,
            line_bytes: 64,
            ports: 2,
            hit_latency: 2,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        (self.size_bytes / self.line_bytes).max(1)
    }

    /// Returns the configuration with its geometry made self-consistent:
    /// `line_bytes` rounded up to the next power of two (minimum 8, one
    /// f64), `size_bytes` at least one line, `assoc` at least one way.
    /// The cache splits addresses by shifting `line_bytes.trailing_zeros()`
    /// bits, which silently mis-indexes for non-power-of-two lines, so
    /// [`crate::Cache::new`] applies this before building the set array.
    pub fn normalized(mut self) -> Self {
        self.line_bytes = self.line_bytes.max(8).next_power_of_two();
        self.size_bytes = self.size_bytes.max(self.line_bytes);
        self.assoc = self.assoc.max(1);
        self
    }
}

/// Scratchpad geometry (paper baseline: 1 KB, 16 banks of 8 × 8 B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpadConfig {
    /// Banks, each servicing one access per cycle.
    pub banks: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl Default for SpadConfig {
    fn default() -> Self {
        SpadConfig {
            banks: 16,
            latency: 1,
        }
    }
}

/// DRAM bandwidth/latency model (paper: DDR4 19.2 GB/s at a 2 GHz core —
/// 9.6 B per cycle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Sustained bandwidth in bytes per core cycle.
    pub bytes_per_cycle: f64,
    /// Access latency in cycles.
    pub latency: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            bytes_per_cycle: 9.6,
            latency: 100,
        }
    }
}

/// Datapath issue resources (16 PEs with dual FPUs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeConfig {
    /// Processing elements in the grid (the paper's 4×4). Issue slots are
    /// shared across PEs; the cycle-attribution probe distributes
    /// occupancy over this many units.
    pub pes: usize,
    /// Floating-point operations issued per cycle.
    pub fp_issue: usize,
    /// Integer (address-generation) operations issued per cycle.
    pub int_issue: usize,
    /// Latency of short FP ALU ops (add/sub/min/max/select/cmp).
    pub fp_alu_latency: u64,
    /// Latency of FP multiply.
    pub fp_mul_latency: u64,
    /// Latency of long FP ops (div/sqrt/transcendentals).
    pub fp_long_latency: u64,
    /// Latency of integer ops.
    pub int_latency: u64,
}

impl Default for PeConfig {
    fn default() -> Self {
        PeConfig {
            pes: 16,
            fp_issue: 32,
            int_issue: 32,
            fp_alu_latency: 3,
            fp_mul_latency: 4,
            fp_long_latency: 18,
            int_latency: 1,
        }
    }
}

/// Per-access energies in picojoules, seeded from the paper's Table 4.2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyTable {
    /// Scratchpad access (8 B entry).
    pub spad_pj: f64,
    /// Stream-engine overhead per 8 B element moved.
    pub stream_elem_pj: f64,
    /// Off-chip DRAM energy per byte (reported separately from on-chip).
    pub dram_pj_per_byte: f64,
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable {
            spad_pj: 100.0,
            stream_elem_pj: 10.0,
            dram_pj_per_byte: 20.0,
        }
    }
}

impl EnergyTable {
    /// Per-access cache energy from Table 4.2, stepped to the next table
    /// size at or above `size_bytes`.
    pub fn cache_pj(size_bytes: usize) -> f64 {
        const TABLE: [(usize, f64); 8] = [
            (1024, 120.0),
            (2048, 440.0),
            (4096, 450.0),
            (8192, 460.0),
            (16384, 470.0),
            (32768, 2990.0),
            (65536, 10800.0),
            (131072, 11350.0),
        ];
        for (sz, pj) in TABLE {
            if size_bytes <= sz {
                return pj;
            }
        }
        TABLE[TABLE.len() - 1].1
    }
}

/// Complete system configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// Cache serving non-tape accesses (and tape in the Enzyme baseline).
    pub cache: CacheConfig,
    /// Scratchpad serving Tapeflow's tape accesses.
    pub spad: SpadConfig,
    /// DRAM model shared by fills, write-backs and streams.
    pub dram: DramConfig,
    /// Datapath resources.
    pub pe: PeConfig,
    /// Energy model.
    pub energy: EnergyTable,
}

impl SystemConfig {
    /// The paper's 32 KB baseline configuration.
    pub fn baseline_32k() -> Self {
        Self::with_cache_bytes(32768)
    }

    /// A configuration with the given cache size and default everything
    /// else.
    pub fn with_cache_bytes(size_bytes: usize) -> Self {
        SystemConfig {
            cache: CacheConfig::for_bytes(size_bytes),
            spad: SpadConfig::default(),
            dram: DramConfig::default(),
            pe: PeConfig::default(),
            energy: EnergyTable::default(),
        }
    }

    /// Order-stable 64-bit FNV-1a digest over every field, with floats
    /// hashed by bit pattern and the replacement policy by discriminant.
    /// Two configurations that could simulate differently always digest
    /// differently (modulo hash collisions); the bench harness keys its
    /// memoized simulation results on this so that e.g. replacement-policy
    /// or MSHR sweeps never alias a result computed for another
    /// configuration of the same cache size.
    pub fn fingerprint(&self) -> u64 {
        fnv(&[
            self.cache.size_bytes as u64,
            self.cache.assoc as u64,
            self.cache.line_bytes as u64,
            self.cache.ports as u64,
            self.cache.hit_latency,
            self.cache.mshrs as u64,
            policy_bits(self.cache.policy),
            self.spad.banks as u64,
            self.spad.latency,
            self.dram.bytes_per_cycle.to_bits(),
            self.dram.latency,
            self.pe.pes as u64,
            self.pe.fp_issue as u64,
            self.pe.int_issue as u64,
            self.pe.fp_alu_latency,
            self.pe.fp_mul_latency,
            self.pe.fp_long_latency,
            self.pe.int_latency,
            self.energy.spad_pj.to_bits(),
            self.energy.stream_elem_pj.to_bits(),
            self.energy.dram_pj_per_byte.to_bits(),
        ])
    }

    /// The configuration factored into per-parameter-class digests —
    /// what an incremental re-simulation keys replay validity on (see
    /// [`crate::sweep`] and [`ClassPrints`]). The full
    /// [`SystemConfig::fingerprint`] stays the memo key; this split
    /// exists so a sweep can tell *which* subsystem a configuration
    /// change touches instead of re-recording on any difference.
    pub fn class_prints(&self) -> ClassPrints {
        ClassPrints {
            cache_geometry: fnv(&[
                self.cache.size_bytes as u64,
                self.cache.assoc as u64,
                policy_bits(self.cache.policy),
            ]),
            cache_timing: fnv(&[
                self.cache.line_bytes as u64,
                self.cache.ports as u64,
                self.cache.hit_latency,
                self.cache.mshrs as u64,
            ]),
            spad_geometry: fnv(&[self.spad.banks as u64]),
            spad_timing: fnv(&[self.spad.latency]),
            stream: fnv(&[self.dram.bytes_per_cycle.to_bits(), self.dram.latency]),
            pe: fnv(&[
                self.pe.pes as u64,
                self.pe.fp_issue as u64,
                self.pe.int_issue as u64,
                self.pe.fp_alu_latency,
                self.pe.fp_mul_latency,
                self.pe.fp_long_latency,
                self.pe.int_latency,
            ]),
            energy: fnv(&[
                self.energy.spad_pj.to_bits(),
                self.energy.stream_elem_pj.to_bits(),
                self.energy.dram_pj_per_byte.to_bits(),
            ]),
        }
    }
}

/// Order-stable FNV-1a over a word sequence (bytewise, little-endian).
fn fnv(words: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for v in words {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

fn policy_bits(p: ReplacementPolicy) -> u64 {
    match p {
        ReplacementPolicy::Lru => 0,
        ReplacementPolicy::Fifo => 1,
    }
}

/// [`SystemConfig`] factored into per-parameter-class fingerprints.
///
/// An incremental re-simulation ([`crate::sweep::SweepSession`]) can
/// chain two configurations when every class the *replay itself cannot
/// validate* is unchanged (or provably irrelevant to the trace):
///
/// * `cache_geometry` — size, associativity, replacement policy. The
///   replay validates these directly by re-running the recorded access
///   stream through the new cache and comparing outcomes; they never
///   block chaining.
/// * `cache_timing` — line size, ports, hit latency, MSHRs. These feed
///   timing (and, for the line size, addressing) without leaving a
///   per-access trace, so they must match.
/// * `spad_geometry` — bank count. Validated structurally: the bank of
///   a scratchpad access is `addr % banks`, a pure per-address
///   function, so two bank counts chain iff they map every scratchpad
///   address in the trace to the same bank (see
///   `sweep::spad_map_equal`); traces with no scratchpad nodes chain
///   across any bank count.
/// * `spad_timing` — access latency; must match when the trace touches
///   the scratchpad.
/// * `stream` — the DRAM bandwidth/latency model governing stream
///   transfers and cache fills; must match when the trace moves any
///   DRAM traffic.
/// * `pe` — datapath issue widths and latencies; must match.
/// * `energy` — per-access energy table. Never blocks chaining: energy
///   is recomputed from the final counters
///   ([`crate::engine::recompute_energy`]), not accumulated during the
///   run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassPrints {
    /// Cache size/assoc/policy (replay-validated).
    pub cache_geometry: u64,
    /// Cache line/ports/hit-latency/MSHRs (timing; must match).
    pub cache_timing: u64,
    /// Scratchpad bank count (bank-map-validated).
    pub spad_geometry: u64,
    /// Scratchpad latency (timing; must match).
    pub spad_timing: u64,
    /// DRAM bandwidth/latency (timing; must match).
    pub stream: u64,
    /// Datapath widths and latencies (timing; must match).
    pub pe: u64,
    /// Energy table (recomputed at finalize; never blocks chaining).
    pub energy: u64,
}

impl ClassPrints {
    /// Digest of every class that must match *exactly* for two
    /// configurations to chain in a sweep session, regardless of the
    /// trace: the timing classes. Geometry classes (validated by
    /// replay or by the bank map) and the energy table are excluded.
    /// The sweep planner groups and orders configurations by this key
    /// so chainable runs land adjacent in the schedule.
    pub fn chain_key(&self) -> u64 {
        fnv(&[self.cache_timing, self.spad_timing, self.stream, self.pe])
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline_32k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assoc_tracks_table() {
        assert_eq!(CacheConfig::for_bytes(1024).assoc, 2);
        assert_eq!(CacheConfig::for_bytes(32768).assoc, 4);
        assert_eq!(CacheConfig::for_bytes(65536).assoc, 16);
    }

    #[test]
    fn energy_steps() {
        assert_eq!(EnergyTable::cache_pj(1024), 120.0);
        assert_eq!(EnergyTable::cache_pj(2048), 440.0);
        assert_eq!(EnergyTable::cache_pj(32768), 2990.0);
        assert_eq!(EnergyTable::cache_pj(1 << 20), 11350.0);
        // the 6.8x iso-perform claim (2k vs 32k) holds in the table
        let ratio = EnergyTable::cache_pj(32768) / EnergyTable::cache_pj(2048);
        assert!((ratio - 6.795).abs() < 0.01);
    }

    #[test]
    fn lines_counted() {
        assert_eq!(CacheConfig::for_bytes(1024).lines(), 16);
    }

    #[test]
    fn normalized_rounds_line_bytes_up() {
        let mut cfg = CacheConfig::for_bytes(1024);
        cfg.line_bytes = 48;
        assert_eq!(cfg.normalized().line_bytes, 64);
        cfg.line_bytes = 0;
        assert_eq!(cfg.normalized().line_bytes, 8);
        cfg.line_bytes = 64;
        assert_eq!(cfg.normalized(), cfg, "valid geometry is untouched");
    }

    #[test]
    fn fingerprint_distinguishes_full_configuration() {
        let a = SystemConfig::with_cache_bytes(8192);
        let mut by_policy = a;
        by_policy.cache.policy = ReplacementPolicy::Fifo;
        let mut by_mshrs = a;
        by_mshrs.cache.mshrs = 8;
        assert_ne!(a.fingerprint(), by_policy.fingerprint());
        assert_ne!(a.fingerprint(), by_mshrs.fingerprint());
        assert_ne!(by_policy.fingerprint(), by_mshrs.fingerprint());
        assert_eq!(
            a.fingerprint(),
            SystemConfig::with_cache_bytes(8192).fingerprint(),
            "equal configurations digest equally"
        );
    }
}
