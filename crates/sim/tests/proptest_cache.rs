//! Property-based validation of the set-associative cache against a
//! naive reference model.

use proptest::prelude::*;
use tapeflow_sim::{Cache, CacheConfig, ReplacementPolicy};

/// Reference model: per-set vectors with explicit recency ordering.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>, // (tag, dirty), most recent last
    assoc: usize,
    line_bytes: u64,
    policy: ReplacementPolicy,
}

impl RefCache {
    fn new(sets: usize, assoc: usize, line_bytes: u64, policy: ReplacementPolicy) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc,
            line_bytes,
            policy,
        }
    }

    /// Returns (hit, writeback_addr).
    fn access(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        let block = addr / self.line_bytes;
        let nsets = self.sets.len() as u64;
        let set = (block % nsets) as usize;
        let tag = block / nsets;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|(t, _)| *t == tag) {
            let (t, d) = ways[pos];
            let nd = d || is_write;
            match self.policy {
                ReplacementPolicy::Lru => {
                    ways.remove(pos);
                    ways.push((t, nd));
                }
                ReplacementPolicy::Fifo => ways[pos].1 = nd,
            }
            return (true, None);
        }
        let mut wb = None;
        if ways.len() == self.assoc {
            let (vt, vd) = ways.remove(0);
            if vd {
                wb = Some((vt * nsets + set as u64) * self.line_bytes);
            }
        }
        ways.push((tag, is_write));
        (false, wb)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_matches_reference(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..400),
        assoc in 1usize..5,
        sets_log in 0u32..4,
        policy in prop_oneof![Just(ReplacementPolicy::Lru), Just(ReplacementPolicy::Fifo)],
    ) {
        let sets = 1usize << sets_log;
        let line = 64u64;
        let cfg = CacheConfig {
            size_bytes: sets * assoc * line as usize,
            assoc,
            line_bytes: line as usize,
            ports: 1,
            hit_latency: 1,
            mshrs: 4,
            policy,
        };
        let mut dut = Cache::new(cfg);
        let mut reference = RefCache::new(sets, assoc, line, policy);
        for (i, &(block, is_write)) in accesses.iter().enumerate() {
            let addr = block * line + (i as u64 % 8) * 8; // wiggle within line
            let got = dut.access(addr, is_write);
            let (hit, wb) = reference.access(addr, is_write);
            prop_assert_eq!(got.hit, hit, "access {} addr {:#x}", i, addr);
            prop_assert_eq!(got.writeback, wb, "writeback at access {}", i);
        }
    }

    #[test]
    fn hit_rate_monotone_in_associativity_for_cyclic_patterns(
        distinct in 2u64..12,
        rounds in 2usize..8,
    ) {
        // Cyclic access to `distinct` blocks in one set: hit rate must not
        // decrease when the cache can hold all of them.
        let line = 64u64;
        let run = |assoc: usize| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: assoc * line as usize,
                assoc,
                line_bytes: line as usize,
                ports: 1,
                hit_latency: 1,
                mshrs: 4,
                policy: ReplacementPolicy::Lru,
            });
            let mut hits = 0u64;
            for _ in 0..rounds {
                for b in 0..distinct {
                    if c.access(b * line, false).hit {
                        hits += 1;
                    }
                }
            }
            hits
        };
        let small = run(1);
        let big = run(distinct as usize);
        prop_assert!(big >= small);
        // With capacity = distinct blocks, only the cold round misses.
        prop_assert_eq!(big, (rounds as u64 - 1) * distinct);
    }
}
