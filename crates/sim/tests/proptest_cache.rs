//! Randomized validation of the set-associative cache against a naive
//! reference model. Deterministic in-tree xorshift generation (the
//! container has no network access to fetch `proptest`), so every run
//! exercises the same 128 cases.

use tapeflow_sim::{Cache, CacheConfig, ReplacementPolicy};

/// Tiny deterministic xorshift64 RNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Reference model: per-set vectors with explicit recency ordering.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>, // (tag, dirty), most recent last
    assoc: usize,
    line_bytes: u64,
    policy: ReplacementPolicy,
}

impl RefCache {
    fn new(sets: usize, assoc: usize, line_bytes: u64, policy: ReplacementPolicy) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc,
            line_bytes,
            policy,
        }
    }

    /// Returns (hit, writeback_addr).
    fn access(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        let block = addr / self.line_bytes;
        let nsets = self.sets.len() as u64;
        let set = (block % nsets) as usize;
        let tag = block / nsets;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|(t, _)| *t == tag) {
            let (t, d) = ways[pos];
            let nd = d || is_write;
            match self.policy {
                ReplacementPolicy::Lru => {
                    ways.remove(pos);
                    ways.push((t, nd));
                }
                ReplacementPolicy::Fifo => ways[pos].1 = nd,
            }
            return (true, None);
        }
        let mut wb = None;
        if ways.len() == self.assoc {
            let (vt, vd) = ways.remove(0);
            if vd {
                wb = Some((vt * nsets + set as u64) * self.line_bytes);
            }
        }
        ways.push((tag, is_write));
        (false, wb)
    }
}

#[test]
fn cache_matches_reference() {
    for case in 0..128u64 {
        let mut r = Rng::new(case);
        let assoc = 1 + r.below(4) as usize;
        let sets = 1usize << r.below(4);
        let policy = if r.bool() {
            ReplacementPolicy::Lru
        } else {
            ReplacementPolicy::Fifo
        };
        let n_accesses = 1 + r.below(399) as usize;
        let line = 64u64;
        let cfg = CacheConfig {
            size_bytes: sets * assoc * line as usize,
            assoc,
            line_bytes: line as usize,
            ports: 1,
            hit_latency: 1,
            mshrs: 4,
            policy,
        };
        let mut dut = Cache::new(cfg);
        let mut reference = RefCache::new(sets, assoc, line, policy);
        for i in 0..n_accesses {
            let block = r.below(64);
            let is_write = r.bool();
            let addr = block * line + (i as u64 % 8) * 8; // wiggle within line
            let got = dut.access(addr, is_write);
            let (hit, wb) = reference.access(addr, is_write);
            assert_eq!(got.hit, hit, "case {case} access {i} addr {addr:#x}");
            assert_eq!(got.writeback, wb, "case {case} writeback at access {i}");
        }
    }
}

#[test]
fn hit_rate_monotone_in_associativity_for_cyclic_patterns() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0xCAC4E ^ case);
        let distinct = 2 + rng.below(10);
        let rounds = 2 + rng.below(6) as usize;
        // Cyclic access to `distinct` blocks in one set: hit rate must not
        // decrease when the cache can hold all of them.
        let line = 64u64;
        let run = |assoc: usize| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: assoc * line as usize,
                assoc,
                line_bytes: line as usize,
                ports: 1,
                hit_latency: 1,
                mshrs: 4,
                policy: ReplacementPolicy::Lru,
            });
            let mut hits = 0u64;
            for _ in 0..rounds {
                for b in 0..distinct {
                    if c.access(b * line, false).hit {
                        hits += 1;
                    }
                }
            }
            hits
        };
        let small = run(1);
        let big = run(distinct as usize);
        assert!(big >= small, "case {case}");
        // With capacity = distinct blocks, only the cold round misses.
        assert_eq!(big, (rounds as u64 - 1) * distinct, "case {case}");
    }
}
