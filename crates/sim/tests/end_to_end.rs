//! Whole-stack integration: AD → Tapeflow passes → trace → simulation.
//!
//! These tests assert the paper's *qualitative* results on a synthetic
//! irregular workload: under cache pressure the Tapeflow configuration
//! is faster, touches DRAM less, improves REV hit rate and spends less
//! on-chip energy than the Enzyme baseline.

use tapeflow_autodiff::{differentiate, AdOptions, Gradient};
use tapeflow_core::{compile, CompileOptions};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{ArrayId, ArrayKind, Function, FunctionBuilder, Memory, Scalar};
use tapeflow_sim::{simulate, SimOptions, SimReport, SystemConfig};

/// An irregular kernel in the paper's regime: a deep taped chain per
/// iteration makes the tape the dominant share of the working set
/// (Fig 1.3's 2–4× state expansion), while the non-tape state (input +
/// shadow) stays cache-sized.
fn irregular(n: usize) -> (Function, Gradient, Memory, ArrayId) {
    let mut b = FunctionBuilder::new("irregular");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        // Six taped intermediates per iteration.
        let e = b.exp(xi);
        let t = b.tanh(e);
        let m1 = b.fmul(t, e);
        let s1 = b.sqrt(m1);
        let t2 = b.tanh(s1);
        let m2 = b.fmul(t2, t);
        let c = b.load_cell(loss);
        let s = b.fadd(c, m2);
        b.store_cell(loss, s);
    });
    let f = b.finish();
    let grad = differentiate(&f, &AdOptions::new(vec![x], vec![loss])).unwrap();
    let mut mem = Memory::for_function(&f);
    let fill: Vec<f64> = (0..n).map(|i| 0.1 + 0.003 * i as f64).collect();
    mem.set_f64(x, &fill);
    (f, grad, mem, loss)
}

fn run(
    func: &Function,
    orig: &Function,
    grad: &Gradient,
    base: &Memory,
    loss: ArrayId,
    phase_barrier: tapeflow_ir::InstId,
    cfg: &SystemConfig,
) -> SimReport {
    let mut mem = Memory::for_function(func);
    for i in 0..orig.arrays().len() {
        mem.clone_array_from(base, ArrayId::new(i));
    }
    mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    let trace = trace_function(
        func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(phase_barrier),
        },
    )
    .unwrap();
    simulate(&trace, cfg, &SimOptions::default())
}

#[test]
fn tapeflow_beats_enzyme_under_cache_pressure() {
    let n = 512;
    let (orig, grad, base, loss) = irregular(n);
    // The cache comfortably holds the non-tape working set (~8 KB input +
    // shadow) but not the 16 KB tape on top.
    let cfg = SystemConfig::with_cache_bytes(8 * 1024);

    let enzyme = run(
        &grad.func,
        &orig,
        &grad,
        &base,
        loss,
        grad.phase_barrier,
        &cfg,
    );
    let compiled = compile(&grad, &CompileOptions::default()).unwrap();
    let tapeflow = run(
        &compiled.func,
        &orig,
        &grad,
        &base,
        loss,
        compiled.phase_barrier,
        &cfg,
    );

    // The tape goes through the scratchpad: no tape cache traffic left.
    assert_eq!(tapeflow.cache.tape_hits + tapeflow.cache.tape_misses, 0);
    assert!(tapeflow.spad_accesses > 0);
    assert!(tapeflow.stream_cmds > 0);
    // Enzyme's tape accesses are a significant fraction (Obs 1.1).
    let tape_frac =
        (enzyme.cache.tape_hits + enzyme.cache.tape_misses) as f64 / enzyme.cache.accesses() as f64;
    assert!(
        tape_frac > 0.15,
        "tape should be a large share of accesses, got {tape_frac:.2}"
    );

    // Headline direction: faster, less DRAM, better REV hit rate, less
    // on-chip energy.
    let speedup = tapeflow.speedup_over(&enzyme);
    assert!(speedup > 1.0, "speedup {speedup:.2} <= 1");
    assert!(
        tapeflow.dram_bytes() < enzyme.dram_bytes(),
        "DRAM {} vs {}",
        tapeflow.dram_bytes(),
        enzyme.dram_bytes()
    );
    assert!(
        tapeflow.cache.rev_hit_rate() >= enzyme.cache.rev_hit_rate(),
        "REV hit rate {:.3} vs {:.3}",
        tapeflow.cache.rev_hit_rate(),
        enzyme.cache.rev_hit_rate()
    );
    assert!(
        tapeflow.energy.on_chip_pj() < enzyme.energy.on_chip_pj(),
        "on-chip energy {:.0} vs {:.0}",
        tapeflow.energy.on_chip_pj(),
        enzyme.energy.on_chip_pj()
    );
}

#[test]
fn iso_perform_small_cache_stays_competitive() {
    // Tflow with a small cache should stay close to Enzyme with a much
    // larger one (the ISO-perform argument of §4.4.3). Sized so the
    // working set exceeds the 32 KB cache — the regime the paper
    // evaluates; §4.5.2 concedes the cache wins when everything fits.
    let n = 2048;
    let (orig, grad, base, loss) = irregular(n);
    let enzyme_big = run(
        &grad.func,
        &orig,
        &grad,
        &base,
        loss,
        grad.phase_barrier,
        &SystemConfig::with_cache_bytes(32 * 1024),
    );
    let compiled = compile(&grad, &CompileOptions::default()).unwrap();
    let tflow_small = run(
        &compiled.func,
        &orig,
        &grad,
        &base,
        loss,
        compiled.phase_barrier,
        &SystemConfig::with_cache_bytes(8 * 1024),
    );
    let slowdown = enzyme_big.cycles as f64 / tflow_small.cycles as f64;
    assert!(
        slowdown > 0.8,
        "Tflow_8k should be within 25% of Enzyme_32k, ratio {slowdown:.2}"
    );
    // And it must be much cheaper per access on-chip.
    assert!(tflow_small.energy.on_chip_pj() < 0.5 * enzyme_big.energy.on_chip_pj());
}

#[test]
fn larger_scratchpads_do_not_hurt() {
    let n = 256;
    let (orig, grad, base, loss) = irregular(n);
    let cfg = SystemConfig::with_cache_bytes(1024);
    let mut cycles = Vec::new();
    for bytes in [64, 256, 1024] {
        let compiled = compile(&grad, &CompileOptions::with_spad_bytes(bytes)).unwrap();
        let r = run(
            &compiled.func,
            &orig,
            &grad,
            &base,
            loss,
            compiled.phase_barrier,
            &cfg,
        );
        cycles.push(r.cycles);
    }
    // Monotone-ish: the largest scratchpad is at least as fast as the
    // smallest (Fig 4.7's direction).
    assert!(
        cycles[2] <= cycles[0],
        "1 KB spad ({}) should not be slower than 64 B ({})",
        cycles[2],
        cycles[0]
    );
}

#[test]
fn double_buffering_helps_or_ties() {
    let n = 256;
    let (orig, grad, base, loss) = irregular(n);
    let cfg = SystemConfig::with_cache_bytes(1024);
    let mut res = Vec::new();
    for db in [true, false] {
        let opts = CompileOptions {
            double_buffer: db,
            ..CompileOptions::default()
        };
        let compiled = compile(&grad, &opts).unwrap();
        let r = run(
            &compiled.func,
            &orig,
            &grad,
            &base,
            loss,
            compiled.phase_barrier,
            &cfg,
        );
        res.push(r.cycles);
    }
    // Not a strict theorem at every size (single buffering gets bigger
    // tiles), but overlap should keep double buffering competitive.
    let ratio = res[0] as f64 / res[1] as f64;
    assert!(
        ratio < 1.5,
        "double buffering should not be much slower: ratio {ratio:.2}"
    );
}

#[test]
fn gradients_survive_the_whole_stack() {
    // The simulated program is the traced program: its memory image holds
    // gradients identical to the plain interpreter's.
    let n = 128;
    let (orig, grad, base, loss) = irregular(n);
    let compiled = compile(&grad, &CompileOptions::default()).unwrap();
    let x = ArrayId::new(0);

    let mut plain = grad.prepare_memory(&orig, &base);
    plain.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    tapeflow_ir::interp::run(&grad.func, &mut plain).unwrap();

    let mut tf_mem = Memory::for_function(&compiled.func);
    for i in 0..orig.arrays().len() {
        tf_mem.clone_array_from(&base, ArrayId::new(i));
    }
    tf_mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    let _trace = trace_function(&compiled.func, &mut tf_mem, TraceOptions::default()).unwrap();

    assert_eq!(
        plain.get_f64(grad.shadow_of(x).unwrap()),
        tf_mem.get_f64(grad.shadow_of(x).unwrap())
    );
}
