//! Pass-manager tests: the builder's standard pipelines must match the
//! classic `compile()` entry point bit for bit, custom `--passes` orders
//! must reproduce the partial `CompileMode`s, assembly mistakes must be
//! rejected with structured errors, and the `streams` pass's captured
//! intermediate must be verified and gradient-equivalent.

use tapeflow_autodiff::{differentiate, AdOptions, Gradient, TapePolicy};
use tapeflow_core::pipeline::{registered_passes, PipelineBuilder};
use tapeflow_core::{compile, CompileMode, CompileOptions, CoreError};
use tapeflow_ir::{pretty, ArrayId, ArrayKind, Function, FunctionBuilder, Memory, Scalar};

/// `loss = sum_i tanh(exp(x[i]))` — enough taped values for real layers.
fn sample() -> (Function, ArrayId, ArrayId) {
    let mut b = FunctionBuilder::new("pm_sample");
    let x = b.array("x", 96, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, 96, |b, i| {
        let v = b.load(x, i);
        let e = b.exp(v);
        let t = b.tanh(e);
        let sq = b.fmul(t, e);
        let c = b.load_cell(loss);
        let s = b.fadd(c, sq);
        b.store_cell(loss, s);
    });
    (b.finish(), x, loss)
}

fn gradient(func: &Function, x: ArrayId, loss: ArrayId) -> Gradient {
    differentiate(func, &AdOptions::new(vec![x], vec![loss])).unwrap()
}

/// Runs `func` with a ramp input and returns the wrt shadow.
fn shadow_of(
    func: &Function,
    grad: &Gradient,
    orig: &Function,
    x: ArrayId,
    loss: ArrayId,
) -> Vec<f64> {
    let mut mem = Memory::for_function(func);
    let n = orig.arrays()[x.index()].len;
    let ramp: Vec<f64> = (0..n).map(|i| 0.03 * i as f64 - 1.2).collect();
    mem.set_f64(x, &ramp);
    mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    tapeflow_ir::interp::run(func, &mut mem).unwrap();
    mem.get_f64(grad.shadow_of(x).unwrap())
}

#[test]
fn full_builder_matches_classic_compile() {
    let (func, x, loss) = sample();
    // `full` runs opt before ad; feed compile() the same post-opt input.
    let (opted, _) = tapeflow_ir::opt::optimize(&func);
    let grad = gradient(&opted, x, loss);
    let opts = CompileOptions::with_spad_bytes(256);
    let classic = compile(&grad, &opts).unwrap();

    let run = PipelineBuilder::full(opts, AdOptions::new(vec![x], vec![loss]))
        .with_verify(true)
        .run_source(&func)
        .unwrap();
    assert_eq!(
        run.report.pass_names(),
        ["opt", "ad", "regions", "layering", "streams", "spad-index"]
    );
    let built = run.into_compiled().unwrap();
    assert_eq!(built.stats, classic.stats);
    assert_eq!(
        pretty::pretty(&built.func).to_string(),
        pretty::pretty(&classic.func).to_string(),
        "builder and compile() must produce the same program"
    );
}

#[test]
fn custom_order_omitting_streaming_matches_aos_mode() {
    // A `--passes` list that stops after Pass 1's layout change must
    // reproduce CompileMode::AosOnly exactly.
    let (func, x, loss) = sample();
    let grad = gradient(&func, x, loss);
    let aos_opts = CompileOptions {
        mode: CompileMode::AosOnly,
        ..CompileOptions::with_spad_bytes(256)
    };
    let classic = compile(&grad, &aos_opts).unwrap();

    let run = PipelineBuilder::from_names(
        &["ad", "regions", "aos-layout"],
        CompileOptions::with_spad_bytes(256),
        Some(AdOptions::new(vec![x], vec![loss])),
    )
    .unwrap()
    .with_verify(true)
    .run_source(&func)
    .unwrap();
    let built = run.into_compiled().unwrap();
    assert_eq!(built.stats, classic.stats);
    assert_eq!(
        pretty::pretty(&built.func).to_string(),
        pretty::pretty(&classic.func).to_string()
    );
    assert_eq!(built.options.mode, CompileMode::AosOnly);
}

#[test]
fn from_names_rejects_bad_assemblies() {
    let opts = CompileOptions::default();
    let ad = AdOptions::new(vec![], vec![]);
    let err = |names: &[&str], ad: Option<AdOptions>| {
        PipelineBuilder::from_names(names, opts, ad)
            .err()
            .unwrap_or_else(|| panic!("expected error for {names:?}"))
    };

    // Unknown names list the registry (satellite for `--passes` exit 2).
    let unknown = err(&["frobnicate"], None);
    assert!(matches!(unknown, CoreError::UnknownPass { ref name } if name == "frobnicate"));
    let msg = unknown.to_string();
    assert!(msg.contains("unknown pass"), "{msg}");
    assert!(
        msg.contains("tape-compress") && msg.contains("spad-index"),
        "{msg}"
    );

    // Dependency violations name the violated artifact edge.
    let e = err(&["ad", "layering"], Some(ad.clone()));
    assert!(
        matches!(e, CoreError::MissingArtifact { pass: "layering", artifact }
            if artifact.name() == "regions"),
        "{e:?}"
    );
    assert!(e.to_string().contains("requires `regions`"), "{e}");
    assert!(e.to_string().contains("produced by `regions`"), "{e}");

    let e = err(
        &["ad", "regions", "layering", "spad-index"],
        Some(ad.clone()),
    );
    assert!(
        matches!(e, CoreError::MissingArtifact { pass: "spad-index", artifact }
            if artifact.name() == "streams-ir"),
        "{e:?}"
    );
    assert!(e.to_string().contains("produced by `streams`"), "{e}");

    let e = err(&["ad", "regions", "tape-compress"], Some(ad.clone()));
    assert!(
        matches!(e, CoreError::MissingArtifact { pass: "tape-compress", artifact }
            if artifact.name() == "layer-plan"),
        "{e:?}"
    );

    // Conflicts: two terminal lowerings, or a source rewrite after `ad`.
    let e = err(
        &["ad", "regions", "layering", "aos-layout"],
        Some(ad.clone()),
    );
    assert!(
        matches!(
            e,
            CoreError::ArtifactConflict {
                pass: "aos-layout",
                ..
            }
        ),
        "{e:?}"
    );
    assert!(e.to_string().contains("conflicts"), "{e}");
    let e = err(&["ad", "opt"], Some(ad.clone()));
    assert!(
        matches!(e, CoreError::ArtifactConflict { pass: "opt", artifact }
            if artifact.name() == "gradient-ir"),
        "{e:?}"
    );

    // Plain assembly mistakes stay `Pipeline` errors.
    assert!(err(&["regions", "regions"], Some(ad))
        .to_string()
        .contains("twice"));
    assert!(err(&["ad"], None).to_string().contains("no AD options"));
}

#[test]
fn missing_prerequisite_state_is_a_structured_error() {
    // `regions` without `ad` is now caught at assembly time: the
    // artifact simulation sees no producer of `gradient-ir`.
    let e = PipelineBuilder::from_names(&["opt", "regions"], CompileOptions::default(), None)
        .expect_err("assembly must fail");
    assert!(
        matches!(e, CoreError::MissingArtifact { pass: "regions", artifact }
            if artifact.name() == "gradient-ir"),
        "{e:?}"
    );

    // The runtime re-check still guards seeds the simulation cannot see:
    // a gradient-seeded run has no source IR for `opt`.
    let (func, x, loss) = sample();
    let grad = gradient(&func, x, loss);
    let b = PipelineBuilder::from_names(&["opt"], CompileOptions::default(), None).unwrap();
    match b.run_gradient(&grad) {
        Err(CoreError::MissingArtifact {
            pass: "opt",
            artifact,
        }) => {
            assert_eq!(artifact.name(), "source-ir");
        }
        other => panic!("expected MissingArtifact, got {other:?}"),
    }
}

#[test]
fn into_compiled_without_terminal_pass_is_an_error() {
    let (func, _, _) = sample();
    let run = PipelineBuilder::from_names(&["opt"], CompileOptions::default(), None)
        .unwrap()
        .run_source(&func)
        .unwrap();
    match run.into_compiled() {
        Err(CoreError::Pipeline(msg)) => assert!(msg.contains("terminal")),
        other => panic!("expected Pipeline error, got {other:?}"),
    }
}

#[test]
fn streams_terminal_ir_is_verified_and_gradient_equivalent() {
    // The streams pass always materializes the post-Pass-3 program as a
    // first-class artifact (no capture flag, no side-channel): it must
    // verify and compute the same gradients as both the plain gradient
    // function and the final program.
    let (func, x, loss) = sample();
    let grad = gradient(&func, x, loss);
    let run = PipelineBuilder::full(
        CompileOptions::with_spad_bytes(256),
        AdOptions::new(vec![x], vec![loss]),
    )
    .with_verify(true)
    .run_source(&func)
    .unwrap();
    let sp = run.state.streams.clone().expect("streams artifact");
    tapeflow_ir::verify::verify(&sp.func).unwrap();
    let baseline = shadow_of(&grad.func, &grad, &func, x, loss);
    assert_eq!(baseline, shadow_of(&sp.func, &grad, &func, x, loss));
    let final_func = run.into_compiled().unwrap().func;
    assert_eq!(baseline, shadow_of(&final_func, &grad, &func, x, loss));
}

#[test]
fn report_records_timing_verification_and_snapshots() {
    let (func, x, loss) = sample();
    let run = PipelineBuilder::full(
        CompileOptions::default(),
        AdOptions::new(vec![x], vec![loss]),
    )
    .with_verify(true)
    .with_ir_capture(true)
    .run_source(&func)
    .unwrap();
    assert_eq!(run.report.records.len(), 6);
    for r in &run.report.records {
        assert_eq!(r.verified, Some(true), "pass {} not verified", r.name);
        assert!(r.snapshot.is_some(), "pass {} missing snapshot", r.name);
        assert!(r.ir_insts > 0);
    }
    // Stats grow monotonically toward the final program's.
    let last = run.report.records.last().unwrap();
    assert!(last.stats.fwd_layers > 0);
    assert!(run.report.render_timings().contains("spad-index"));
    assert!(run
        .report
        .render_snapshots()
        .contains("// ===== IR after pass 6/6: spad-index"));
}

#[test]
fn registry_lists_all_nine_passes() {
    let names: Vec<&str> = registered_passes().iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        [
            "opt",
            "ad",
            "regions",
            "layering",
            "value-ranges",
            "tape-compress",
            "streams",
            "spad-index",
            "aos-layout"
        ]
    );
}

#[test]
fn compressed_pipeline_keeps_gradients_and_shrinks_tape_bytes() {
    // `loss += exp(v) * v` needs v itself in REV (d/dv = e*v + e), and
    // the Enzyme-realistic Conservative policy tapes the raw x[i] load
    // instead of reloading it — exactly the slot the remat rule elides:
    // the compressed pipeline must shrink the modeled tape traffic while
    // keeping every gradient bit.
    let mut b = FunctionBuilder::new("pm_remat");
    let x = b.array("x", 96, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, 96, |b, i| {
        let v = b.load(x, i);
        let e = b.exp(v);
        let p = b.fmul(e, v);
        let c = b.load_cell(loss);
        let s = b.fadd(c, p);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let loss = func.array_by_name("loss").unwrap();
    let ad = AdOptions::new(vec![x], vec![loss]).with_policy(TapePolicy::Conservative);
    let grad = differentiate(&func, &ad).unwrap();
    let baseline = shadow_of(&grad.func, &grad, &func, x, loss);
    let run = PipelineBuilder::from_names(
        &[
            "opt",
            "ad",
            "regions",
            "layering",
            "value-ranges",
            "tape-compress",
            "streams",
            "spad-index",
        ],
        CompileOptions::with_spad_bytes(256),
        Some(ad),
    )
    .unwrap()
    .with_verify(true)
    .run_source(&func)
    .unwrap();
    assert_eq!(
        run.report.pass_names(),
        [
            "opt",
            "ad",
            "regions",
            "layering",
            "value-ranges",
            "tape-compress",
            "streams",
            "spad-index"
        ]
    );
    let enc = run.state.encoding.clone().expect("tape-compress artifact");
    assert!(enc.elided_slots > 0, "x[i] slot should rematerialize");
    assert!(
        enc.bytes_after < enc.bytes_before,
        "tape bytes {} -> {}",
        enc.bytes_before,
        enc.bytes_after
    );
    let built = run.into_compiled().unwrap();
    assert!(built.encoding.is_some());
    assert_eq!(baseline, shadow_of(&built.func, &grad, &func, x, loss));
}

#[test]
fn per_pass_ir_deltas_chain_and_attribute_growth() {
    let (func, x, loss) = sample();
    let run = PipelineBuilder::full(
        CompileOptions::default(),
        AdOptions::new(vec![x], vec![loss]),
    )
    .run_source(&func)
    .unwrap();
    let recs = &run.report.records;
    for w in recs.windows(2) {
        assert_eq!(
            w[0].ir_after, w[1].ir_before,
            "per-pass counters must chain: {} -> {}",
            w[0].name, w[1].name
        );
    }
    // `ad` emits the reverse sweep: instructions and values must grow,
    // and the conservative tape policy allocates tape capacity.
    let ad = recs.iter().find(|r| r.name == "ad").unwrap();
    assert!(ad.insts_delta() > 0, "ad added {} insts", ad.insts_delta());
    assert!(ad.values_delta() > 0);
    assert!(ad.tape_slots_delta() >= 0, "ad never removes tape capacity");
    for r in recs {
        assert_eq!(r.ir_insts, r.ir_after.insts);
        assert_eq!(
            r.insts_delta(),
            r.ir_after.insts as i64 - r.ir_before.insts as i64
        );
    }
}
