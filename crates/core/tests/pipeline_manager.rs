//! Pass-manager tests: the builder's standard pipelines must match the
//! classic `compile()` entry point bit for bit, custom `--passes` orders
//! must reproduce the partial `CompileMode`s, assembly mistakes must be
//! rejected with structured errors, and the `streams` pass's captured
//! intermediate must be verified and gradient-equivalent.

use tapeflow_autodiff::{differentiate, AdOptions, Gradient};
use tapeflow_core::pipeline::{registered_passes, PipelineBuilder};
use tapeflow_core::{compile, CompileMode, CompileOptions, CoreError};
use tapeflow_ir::{pretty, ArrayId, ArrayKind, Function, FunctionBuilder, Memory, Scalar};

/// `loss = sum_i tanh(exp(x[i]))` — enough taped values for real layers.
fn sample() -> (Function, ArrayId, ArrayId) {
    let mut b = FunctionBuilder::new("pm_sample");
    let x = b.array("x", 96, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, 96, |b, i| {
        let v = b.load(x, i);
        let e = b.exp(v);
        let t = b.tanh(e);
        let sq = b.fmul(t, e);
        let c = b.load_cell(loss);
        let s = b.fadd(c, sq);
        b.store_cell(loss, s);
    });
    (b.finish(), x, loss)
}

fn gradient(func: &Function, x: ArrayId, loss: ArrayId) -> Gradient {
    differentiate(func, &AdOptions::new(vec![x], vec![loss])).unwrap()
}

/// Runs `func` with a ramp input and returns the wrt shadow.
fn shadow_of(
    func: &Function,
    grad: &Gradient,
    orig: &Function,
    x: ArrayId,
    loss: ArrayId,
) -> Vec<f64> {
    let mut mem = Memory::for_function(func);
    let n = orig.arrays()[x.index()].len;
    let ramp: Vec<f64> = (0..n).map(|i| 0.03 * i as f64 - 1.2).collect();
    mem.set_f64(x, &ramp);
    mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    tapeflow_ir::interp::run(func, &mut mem).unwrap();
    mem.get_f64(grad.shadow_of(x).unwrap())
}

#[test]
fn full_builder_matches_classic_compile() {
    let (func, x, loss) = sample();
    // `full` runs opt before ad; feed compile() the same post-opt input.
    let (opted, _) = tapeflow_ir::opt::optimize(&func);
    let grad = gradient(&opted, x, loss);
    let opts = CompileOptions::with_spad_bytes(256);
    let classic = compile(&grad, &opts).unwrap();

    let run = PipelineBuilder::full(opts, AdOptions::new(vec![x], vec![loss]))
        .with_verify(true)
        .run_source(&func)
        .unwrap();
    assert_eq!(
        run.report.pass_names(),
        ["opt", "ad", "regions", "layering", "streams", "spad-index"]
    );
    let built = run.into_compiled().unwrap();
    assert_eq!(built.stats, classic.stats);
    assert_eq!(
        pretty::pretty(&built.func).to_string(),
        pretty::pretty(&classic.func).to_string(),
        "builder and compile() must produce the same program"
    );
}

#[test]
fn custom_order_omitting_streaming_matches_aos_mode() {
    // A `--passes` list that stops after Pass 1's layout change must
    // reproduce CompileMode::AosOnly exactly.
    let (func, x, loss) = sample();
    let grad = gradient(&func, x, loss);
    let aos_opts = CompileOptions {
        mode: CompileMode::AosOnly,
        ..CompileOptions::with_spad_bytes(256)
    };
    let classic = compile(&grad, &aos_opts).unwrap();

    let run = PipelineBuilder::from_names(
        &["ad", "regions", "aos-layout"],
        CompileOptions::with_spad_bytes(256),
        Some(AdOptions::new(vec![x], vec![loss])),
    )
    .unwrap()
    .with_verify(true)
    .run_source(&func)
    .unwrap();
    let built = run.into_compiled().unwrap();
    assert_eq!(built.stats, classic.stats);
    assert_eq!(
        pretty::pretty(&built.func).to_string(),
        pretty::pretty(&classic.func).to_string()
    );
    assert_eq!(built.options.mode, CompileMode::AosOnly);
}

#[test]
fn from_names_rejects_bad_assemblies() {
    let opts = CompileOptions::default();
    let ad = AdOptions::new(vec![], vec![]);
    let err = |names: &[&str], ad: Option<AdOptions>| match PipelineBuilder::from_names(
        names, opts, ad,
    ) {
        Err(CoreError::Pipeline(msg)) => msg,
        other => panic!("expected Pipeline error for {names:?}, got {other:?}"),
    };
    assert!(err(&["frobnicate"], None).contains("unknown pass"));
    assert!(err(&["regions", "regions"], Some(ad.clone())).contains("twice"));
    assert!(err(&["ad", "layering"], Some(ad.clone())).contains("requires `regions`"));
    assert!(err(
        &["ad", "regions", "layering", "spad-index"],
        Some(ad.clone())
    )
    .contains("requires `streams`"));
    assert!(err(
        &["ad", "regions", "layering", "aos-layout"],
        Some(ad.clone())
    )
    .contains("conflicts"));
    assert!(err(&["ad"], None).contains("no AD options"));
    assert!(err(&["ad", "opt"], Some(ad)).contains("before `ad`"));
}

#[test]
fn missing_prerequisite_state_is_a_structured_error() {
    // `regions` without a gradient (no `ad`, pipeline fed a source
    // function) must fail with a Pipeline error, not a panic.
    let (func, _, _) = sample();
    let b =
        PipelineBuilder::from_names(&["opt", "regions"], CompileOptions::default(), None).unwrap();
    match b.run_source(&func) {
        Err(CoreError::Pipeline(msg)) => assert!(msg.contains("gradient")),
        other => panic!("expected Pipeline error, got {other:?}"),
    }
}

#[test]
fn into_compiled_without_terminal_pass_is_an_error() {
    let (func, _, _) = sample();
    let run = PipelineBuilder::from_names(&["opt"], CompileOptions::default(), None)
        .unwrap()
        .run_source(&func)
        .unwrap();
    match run.into_compiled() {
        Err(CoreError::Pipeline(msg)) => assert!(msg.contains("terminal")),
        other => panic!("expected Pipeline error, got {other:?}"),
    }
}

#[test]
fn streams_snapshot_is_verified_and_gradient_equivalent() {
    // With IR capture on, the streams pass materializes the post-Pass-3
    // intermediate: it must verify and compute the same gradients as
    // both the plain gradient function and the final program.
    let (func, x, loss) = sample();
    let grad = gradient(&func, x, loss);
    let run = PipelineBuilder::full(
        CompileOptions::with_spad_bytes(256),
        AdOptions::new(vec![x], vec![loss]),
    )
    .with_verify(true)
    .with_ir_capture(true)
    .run_source(&func)
    .unwrap();
    let streams_ir = run.state.streams_ir.clone().expect("captured snapshot");
    tapeflow_ir::verify::verify(&streams_ir).unwrap();
    let baseline = shadow_of(&grad.func, &grad, &func, x, loss);
    assert_eq!(baseline, shadow_of(&streams_ir, &grad, &func, x, loss));
    let final_func = run.into_compiled().unwrap().func;
    assert_eq!(baseline, shadow_of(&final_func, &grad, &func, x, loss));
}

#[test]
fn report_records_timing_verification_and_snapshots() {
    let (func, x, loss) = sample();
    let run = PipelineBuilder::full(
        CompileOptions::default(),
        AdOptions::new(vec![x], vec![loss]),
    )
    .with_verify(true)
    .with_ir_capture(true)
    .run_source(&func)
    .unwrap();
    assert_eq!(run.report.records.len(), 6);
    for r in &run.report.records {
        assert_eq!(r.verified, Some(true), "pass {} not verified", r.name);
        assert!(r.snapshot.is_some(), "pass {} missing snapshot", r.name);
        assert!(r.ir_insts > 0);
    }
    // Stats grow monotonically toward the final program's.
    let last = run.report.records.last().unwrap();
    assert!(last.stats.fwd_layers > 0);
    assert!(run.report.render_timings().contains("spad-index"));
    assert!(run
        .report
        .render_snapshots()
        .contains("// ===== IR after pass 6/6: spad-index"));
}

#[test]
fn registry_lists_all_seven_passes() {
    let names: Vec<&str> = registered_passes().iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        [
            "opt",
            "ad",
            "regions",
            "layering",
            "streams",
            "spad-index",
            "aos-layout"
        ]
    );
}

#[test]
fn per_pass_ir_deltas_chain_and_attribute_growth() {
    let (func, x, loss) = sample();
    let run = PipelineBuilder::full(
        CompileOptions::default(),
        AdOptions::new(vec![x], vec![loss]),
    )
    .run_source(&func)
    .unwrap();
    let recs = &run.report.records;
    for w in recs.windows(2) {
        assert_eq!(
            w[0].ir_after, w[1].ir_before,
            "per-pass counters must chain: {} -> {}",
            w[0].name, w[1].name
        );
    }
    // `ad` emits the reverse sweep: instructions and values must grow,
    // and the conservative tape policy allocates tape capacity.
    let ad = recs.iter().find(|r| r.name == "ad").unwrap();
    assert!(ad.insts_delta() > 0, "ad added {} insts", ad.insts_delta());
    assert!(ad.values_delta() > 0);
    assert!(ad.tape_slots_delta() >= 0, "ad never removes tape capacity");
    for r in recs {
        assert_eq!(r.ir_insts, r.ir_after.insts);
        assert_eq!(
            r.insts_delta(),
            r.ir_after.insts as i64 - r.ir_before.insts as i64
        );
    }
}
