//! End-to-end pipeline tests: compiled Tapeflow programs must compute
//! bit-identical gradients to the plain gradient function (tiling and
//! streaming preserve iteration order exactly), and the stream schedule
//! must satisfy the paper's LIFO stream-stack invariant.

use tapeflow_autodiff::{differentiate, AdOptions, Gradient};
use tapeflow_core::{compile, CompileMode, CompileOptions, CoreError};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{ArrayId, ArrayKind, Function, FunctionBuilder, Memory, Op, Scalar};

/// Runs a function (gradient or compiled) and returns the wrt shadows.
fn run_shadows(
    func: &Function,
    grad: &Gradient,
    orig: &Function,
    base: &Memory,
    wrt: &[ArrayId],
    loss: ArrayId,
) -> Vec<Vec<f64>> {
    let mut mem = Memory::for_function(func);
    for i in 0..orig.arrays().len() {
        mem.clone_array_from(base, ArrayId::new(i));
    }
    mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    tapeflow_ir::interp::run(func, &mut mem).unwrap();
    wrt.iter()
        .map(|&w| mem.get_f64(grad.shadow_of(w).unwrap()))
        .collect()
}

struct Pipeline {
    orig: Function,
    grad: Gradient,
    base: Memory,
    wrt: Vec<ArrayId>,
    loss: ArrayId,
}

impl Pipeline {
    fn baseline(&self) -> Vec<Vec<f64>> {
        run_shadows(
            &self.grad.func,
            &self.grad,
            &self.orig,
            &self.base,
            &self.wrt,
            self.loss,
        )
    }

    fn compiled(&self, opts: &CompileOptions) -> Vec<Vec<f64>> {
        let c = compile(&self.grad, opts).unwrap_or_else(|e| panic!("compile: {e}"));
        tapeflow_ir::verify::verify(&c.func).unwrap();
        run_shadows(
            &c.func, &self.grad, &self.orig, &self.base, &self.wrt, self.loss,
        )
    }

    fn assert_equivalent(&self, opts: &CompileOptions) {
        assert_eq!(
            self.baseline(),
            self.compiled(opts),
            "compiled program must match the gradient bit for bit ({opts:?})"
        );
    }
}

/// `loss = sum_i f(x[i])` with `per_iter` taped values per iteration.
fn chain_pipeline(n: usize, per_iter: usize) -> Pipeline {
    let mut b = FunctionBuilder::new(format!("chain{per_iter}"));
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let mut v = b.load(x, i);
        for _ in 0..per_iter {
            // Each tanh result is needed by REV -> one tape slot each.
            v = b.tanh(v);
        }
        let c = b.load_cell(loss);
        let s = b.fadd(c, v);
        b.store_cell(loss, s);
    });
    let orig = b.finish();
    let grad = differentiate(&orig, &AdOptions::new(vec![x], vec![loss])).unwrap();
    let mut base = Memory::for_function(&orig);
    base.set_f64(
        x,
        &(0..n).map(|i| (i as f64) * 0.07 - 1.1).collect::<Vec<_>>(),
    );
    Pipeline {
        orig,
        grad,
        base,
        wrt: vec![x],
        loss,
    }
}

/// Nested matvec-like program producing two regions at two levels.
fn nested_pipeline(m: usize, n: usize) -> Pipeline {
    let mut b = FunctionBuilder::new("nested");
    let a = b.array("A", m * n, ArrayKind::Input, Scalar::F64);
    let v = b.array("v", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, m as i64, |b, i| {
        let acc = b.cell_f64("acc", 0.0);
        let z = b.f64(0.0);
        b.store_cell(acc, z);
        b.for_loop("j", 0, n as i64, |b, j| {
            let idx = b.idx2(i, n as i64, j);
            let aij = b.load(a, idx);
            let vj = b.load(v, j);
            let p = b.fmul(aij, vj);
            let t = b.tanh(p);
            let c = b.load_cell(acc);
            let s = b.fadd(c, t);
            b.store_cell(acc, s);
        });
        let r = b.load_cell(acc);
        let e = b.exp(r);
        let c = b.load_cell(loss);
        let s = b.fadd(c, e);
        b.store_cell(loss, s);
    });
    let orig = b.finish();
    let grad = differentiate(&orig, &AdOptions::new(vec![a, v], vec![loss])).unwrap();
    let mut base = Memory::for_function(&orig);
    base.set_f64(
        a,
        &(0..m * n)
            .map(|i| (i as f64) * 0.013 - 0.4)
            .collect::<Vec<_>>(),
    );
    base.set_f64(
        v,
        &(0..n).map(|i| 0.3 - (i as f64) * 0.05).collect::<Vec<_>>(),
    );
    Pipeline {
        orig,
        grad,
        base,
        wrt: vec![a, v],
        loss,
    }
}

#[test]
fn full_pipeline_preserves_gradients() {
    chain_pipeline(64, 2).assert_equivalent(&CompileOptions::default());
}

#[test]
fn aos_only_preserves_gradients() {
    let opts = CompileOptions {
        mode: CompileMode::AosOnly,
        ..CompileOptions::default()
    };
    chain_pipeline(64, 3).assert_equivalent(&opts);
}

#[test]
fn single_buffered_preserves_gradients() {
    let opts = CompileOptions {
        double_buffer: false,
        ..CompileOptions::default()
    };
    chain_pipeline(48, 2).assert_equivalent(&opts);
}

#[test]
fn nested_regions_two_levels() {
    let p = nested_pipeline(6, 8);
    // Check the plan really has two levels.
    let c = compile(&p.grad, &CompileOptions::default()).unwrap();
    assert_eq!(c.plan.levels, 2, "two region-nesting levels expected");
    p.assert_equivalent(&CompileOptions::default());
}

#[test]
fn spad_size_sweep_preserves_gradients() {
    let p = nested_pipeline(5, 7);
    for bytes in [64, 128, 256, 512, 1024, 2048] {
        let opts = CompileOptions::with_spad_bytes(bytes);
        p.assert_equivalent(&opts);
    }
}

#[test]
fn tiny_spad_forces_segmentation_with_duplicates() {
    // 12 taped tanh values per iteration; one struct cannot fit in a
    // 2-entry layer, so the body is segmented and the chain of uses
    // forces duplicated slots.
    let p = chain_pipeline(10, 12);
    let opts = CompileOptions {
        spad_entries: 8, // double-buffered: 4-entry layers
        ..CompileOptions::default()
    };
    let c = compile(&p.grad, &opts).unwrap();
    let seg = c.plan.regions.iter().any(|r| {
        matches!(
            r.layout,
            tapeflow_core::layering::RegionLayout::Segmented { .. }
        )
    });
    assert!(seg, "segmentation expected at this scratchpad size");
    p.assert_equivalent(&opts);
}

#[test]
fn segmentation_duplicates_cross_segment_values() {
    // x*y products consumed far later: u_k folds all earlier products.
    let n = 4usize;
    let k = 10usize;
    let mut b = FunctionBuilder::new("crossseg");
    let x = b.array("x", n * k, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        // k tanh chain values, each consumed by the *next* statement's
        // adjoint, so segment-crossing consumption is guaranteed.
        let mut vals = Vec::new();
        for kk in 0..k {
            let kv = b.i64(kk as i64);
            let idx = b.idx2(i, k as i64, kv);
            let v = b.load(x, idx);
            let t = b.tanh(v);
            vals.push(t);
        }
        // product of all: every val consumed at the end.
        let mut prod = vals[0];
        for &t in &vals[1..] {
            prod = b.fmul(prod, t);
        }
        let c = b.load_cell(loss);
        let s = b.fadd(c, prod);
        b.store_cell(loss, s);
    });
    let orig = b.finish();
    let grad = differentiate(&orig, &AdOptions::new(vec![x], vec![loss])).unwrap();
    let mut base = Memory::for_function(&orig);
    base.set_f64(
        x,
        &(0..n * k)
            .map(|i| 0.4 + 0.01 * i as f64)
            .collect::<Vec<_>>(),
    );
    let p = Pipeline {
        orig,
        grad,
        base,
        wrt: vec![x],
        loss,
    };
    let opts = CompileOptions {
        spad_entries: 16,
        ..CompileOptions::default()
    };
    let c = compile(&p.grad, &opts).unwrap();
    assert!(
        c.stats.duplicated_slots > 0,
        "cross-segment consumers must force redundant stores"
    );
    p.assert_equivalent(&opts);
}

#[test]
fn spad_too_small_is_reported() {
    let p = nested_pipeline(4, 4); // two levels
    let opts = CompileOptions {
        spad_entries: 2, // one entry per level < 2 needed for double buffer
        ..CompileOptions::default()
    };
    assert!(matches!(
        compile(&p.grad, &opts),
        Err(CoreError::SpadTooSmall { .. })
    ));
}

#[test]
fn streams_obey_lifo_stack_order() {
    // The paper coordinates REV streams with a stack of FWD stream
    // records; our static addressing must produce the same LIFO order:
    // per region, REV-Streams pop exactly the reverse of FWD-Stream
    // pushes.
    let p = chain_pipeline(40, 2);
    let c = compile(&p.grad, &CompileOptions::default()).unwrap();
    let mut mem = Memory::for_function(&c.func);
    for i in 0..p.orig.arrays().len() {
        mem.clone_array_from(&p.base, ArrayId::new(i));
    }
    mem.set_f64_at(p.grad.shadow_of(p.loss).unwrap(), 0, 1.0);
    let trace = trace_function(
        &c.func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(c.phase_barrier),
        },
    )
    .unwrap();
    let mut outs: Vec<(u64, u32)> = Vec::new();
    let mut ins: Vec<(u64, u32)> = Vec::new();
    for node in trace.nodes() {
        match node.op {
            Op::StreamOut(_) => outs.push((node.addr, node.bytes)),
            Op::StreamIn(_) => ins.push((node.addr, node.bytes)),
            _ => {}
        }
    }
    assert!(!outs.is_empty());
    assert_eq!(outs.len(), ins.len(), "every push is popped");
    let rev: Vec<_> = outs.into_iter().rev().collect();
    assert_eq!(rev, ins, "REV streams pop in LIFO order of FWD streams");
}

#[test]
fn layer_counts_match_plan() {
    let p = chain_pipeline(40, 2);
    let opts = CompileOptions::default();
    let c = compile(&p.grad, &opts).unwrap();
    let mut mem = Memory::for_function(&c.func);
    for i in 0..p.orig.arrays().len() {
        mem.clone_array_from(&p.base, ArrayId::new(i));
    }
    mem.set_f64_at(p.grad.shadow_of(p.loss).unwrap(), 0, 1.0);
    let trace = trace_function(&c.func, &mut mem, TraceOptions::default()).unwrap();
    // SAlloc count = FWD layers + REV layers = 2 × plan.
    assert_eq!(u64::from(trace.layer_count()), 2 * c.stats.fwd_layers);
}

#[test]
fn merged_region_shrinks_old_tapes() {
    let p = chain_pipeline(32, 2);
    let c = compile(&p.grad, &CompileOptions::default()).unwrap();
    // Old per-value tape arrays are shrunk to zero length.
    for t in &p.grad.tapes {
        assert_eq!(c.func.array(t.array).len, 0);
    }
    // One merged region with 2 slots per iteration.
    assert_eq!(c.stats.regions, 1);
    assert_eq!(c.stats.merged_tape_bytes, 32 * 2 * 8);
}

#[test]
fn compiled_output_keeps_provenance() {
    let p = chain_pipeline(64, 3);
    let c = compile(&p.grad, &CompileOptions::default()).unwrap();
    tapeflow_ir::verify::verify_provenance(&c.func, Some(p.orig.insts().len())).unwrap();
    tapeflow_ir::verify::verify_provenance_regions(&c.func).unwrap();
    // The lowered scratchpad stores still name the primal source op they
    // taped, and record the rewrite chain that produced them.
    let chained = c.func.insts().iter().enumerate().any(|(i, inst)| {
        matches!(inst.op, Op::SpadStore) && {
            let pr = c.func.prov(tapeflow_ir::InstId::new(i));
            pr.source.is_some() && pr.region.is_some() && pr.rewritten_by == Some("spad-index")
        }
    });
    assert!(chained, "no spad.store with a full provenance chain");
}

#[test]
fn segmented_output_stamps_layers() {
    let p = chain_pipeline(10, 12);
    let opts = CompileOptions {
        spad_entries: 8,
        ..CompileOptions::default()
    };
    let c = compile(&p.grad, &opts).unwrap();
    tapeflow_ir::verify::verify_provenance_regions(&c.func).unwrap();
    // Segments are layers: tape accesses in a segmented region carry one.
    let layered = (0..c.func.insts().len())
        .map(|i| c.func.prov(tapeflow_ir::InstId::new(i)))
        .any(|pr| pr.layer.is_some() && pr.region.is_some());
    assert!(layered, "segmented compile lost its layer stamps");
}
