//! Randomized pipeline checking: random stateful programs are
//! differentiated and compiled at random scratchpad sizes/modes; the
//! compiled program must compute bit-identical gradients to the plain
//! gradient function and its streams must obey the LIFO stack order.
//! Deterministic in-tree xorshift generation (the container has no
//! network access to fetch `proptest`), so every run exercises the same
//! cases.

use tapeflow_autodiff::{differentiate, AdOptions, TapePolicy};
use tapeflow_core::{compile, CompileMode, CompileOptions};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{
    ArrayId, ArrayKind, CmpKind, Function, FunctionBuilder, Memory, Op, Scalar, ValueId,
};

/// Tiny deterministic xorshift64 RNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// One step of a random inner-loop computation over (x_i, running state).
#[derive(Clone, Copy, Debug)]
enum StepOp {
    Tanh,
    SafeExp,
    Sin,
    MulX,
    AddState,
    MinX,
    SelectGt,
    Sqrt1p,
}

const STEPS: [StepOp; 8] = [
    StepOp::Tanh,
    StepOp::SafeExp,
    StepOp::Sin,
    StepOp::MulX,
    StepOp::AddState,
    StepOp::MinX,
    StepOp::SelectGt,
    StepOp::Sqrt1p,
];

fn gen_steps(r: &mut Rng, lo: usize, hi: usize) -> Vec<StepOp> {
    let n = lo + r.below((hi - lo) as u64) as usize;
    (0..n).map(|_| STEPS[r.below(8) as usize]).collect()
}

fn apply_step(
    b: &mut FunctionBuilder,
    op: StepOp,
    v: ValueId,
    xi: ValueId,
    state: ValueId,
) -> ValueId {
    match op {
        StepOp::Tanh => b.tanh(v),
        StepOp::SafeExp => {
            let t = b.tanh(v);
            b.exp(t)
        }
        StepOp::Sin => b.sin(v),
        StepOp::MulX => b.fmul(v, xi),
        StepOp::AddState => b.fadd(v, state),
        StepOp::MinX => b.fmin(v, xi),
        StepOp::SelectGt => {
            let zero = b.f64(0.0);
            let c = b.fcmp(CmpKind::Gt, v, zero);
            let half = b.f64(0.5);
            let lo = b.fmul(v, half);
            b.select(c, v, lo)
        }
        StepOp::Sqrt1p => {
            let a = b.fabs(v);
            let one = b.f64(1.0);
            let s = b.fadd(a, one);
            b.sqrt(s)
        }
    }
}

/// Builds: two nested loops over a grid; inner body applies the random
/// step chain, threading a mutable state cell; loss accumulates results.
fn build_program(steps: &[StepOp], rows: usize, cols: usize) -> (Function, ArrayId, ArrayId) {
    let mut b = FunctionBuilder::new("randpipe");
    let x = b.array("x", rows * cols, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let state = b.cell_f64("state", 0.1);
    b.for_loop("r", 0, rows as i64, |b, r| {
        b.for_loop("c", 0, cols as i64, |b, c| {
            let idx = b.idx2(r, cols as i64, c);
            let xi = b.load(x, idx);
            let st = b.load_cell(state);
            let mut v = xi;
            for &op in steps {
                v = apply_step(b, op, v, xi, st);
            }
            let half = b.f64(0.5);
            let hs = b.fmul(st, half);
            let ns = b.fadd(hs, v);
            b.store_cell(state, ns);
            let cur = b.load_cell(loss);
            let s = b.fadd(cur, v);
            b.store_cell(loss, s);
        });
    });
    (b.finish(), x, loss)
}

fn shadows(
    func: &Function,
    grad: &tapeflow_autodiff::Gradient,
    x: ArrayId,
    loss: ArrayId,
    data: &[f64],
) -> Vec<f64> {
    let mut mem = Memory::for_function(func);
    mem.set_f64(x, data);
    mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    tapeflow_ir::interp::run(func, &mut mem).unwrap();
    mem.get_f64(grad.shadow_of(x).unwrap())
}

#[test]
fn compiled_gradients_bit_identical() {
    for case in 0..48u64 {
        let mut r = Rng::new(case);
        let steps = gen_steps(&mut r, 1, 6);
        let rows = 2 + r.below(3) as usize;
        let cols = 2 + r.below(5) as usize;
        let spad_bytes = [64usize, 128, 256, 1024][r.below(4) as usize];
        let double_buffer = r.bool();
        let aos_only = r.bool();
        let policy = if r.bool() {
            TapePolicy::Conservative
        } else {
            TapePolicy::Minimal
        };
        let seed = r.below(1000);

        let (func, x, loss) = build_program(&steps, rows, cols);
        tapeflow_ir::verify::verify(&func).unwrap();
        let grad = differentiate(
            &func,
            &AdOptions::new(vec![x], vec![loss]).with_policy(policy),
        )
        .unwrap();
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((seed as f64 + i as f64) * 0.37).sin() * 0.8)
            .collect();
        let baseline = shadows(&grad.func, &grad, x, loss, &data);
        let opts = CompileOptions {
            spad_entries: (spad_bytes / 8).max(2),
            double_buffer,
            mode: if aos_only {
                CompileMode::AosOnly
            } else {
                CompileMode::Full
            },
            compress_tape: false,
        };
        match compile(&grad, &opts) {
            Err(tapeflow_core::CoreError::RegionTooLarge { .. })
            | Err(tapeflow_core::CoreError::SpadTooSmall { .. }) => {
                // Legitimately infeasible at this scratchpad size.
            }
            Err(e) => panic!("case {case}: compile: {e}"),
            Ok(c) => {
                tapeflow_ir::verify::verify(&c.func).unwrap();
                let got = shadows(&c.func, &grad, x, loss, &data);
                assert_eq!(&baseline, &got, "case {case}: {steps:?}");
            }
        }
    }
}

#[test]
fn stream_stack_lifo_under_random_programs() {
    for case in 0..48u64 {
        let mut r = Rng::new(0x11F0 ^ case);
        let steps = gen_steps(&mut r, 1, 5);
        let cols = 3 + r.below(6) as usize;
        let (func, x, loss) = build_program(&steps, 3, cols);
        let grad = differentiate(&func, &AdOptions::new(vec![x], vec![loss])).unwrap();
        let Ok(c) = compile(&grad, &CompileOptions::with_spad_bytes(128)) else {
            continue; // infeasible at 128 B: nothing to check
        };
        let mut mem = Memory::for_function(&c.func);
        let data: Vec<f64> = (0..3 * cols).map(|i| 0.01 * i as f64).collect();
        mem.set_f64(x, &data);
        mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
        let trace = trace_function(
            &c.func,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(c.phase_barrier),
            },
        )
        .unwrap();
        let outs: Vec<(u64, u32)> = trace
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::StreamOut(_)))
            .map(|n| (n.addr, n.bytes))
            .collect();
        let ins: Vec<(u64, u32)> = trace
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::StreamIn(_)))
            .map(|n| (n.addr, n.bytes))
            .collect();
        let popped: Vec<_> = outs.iter().rev().copied().collect();
        assert_eq!(popped, ins, "case {case}: {steps:?}");
    }
}
