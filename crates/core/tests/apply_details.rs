//! Structural checks of the rewriter's output: the compiled program's
//! shape, not just its semantics.

use tapeflow_autodiff::{differentiate, AdOptions, Gradient, TapePolicy};
use tapeflow_core::layering::RegionLayout;
use tapeflow_core::{compile, CompileOptions};
use tapeflow_ir::{ArrayKind, Function, FunctionBuilder, Op, Scalar, Stmt};

fn conv_like(n: usize, k: usize) -> (Function, Gradient) {
    let mut b = FunctionBuilder::new("conv");
    let img = b.array("img", n, ArrayKind::Input, Scalar::F64);
    let fil = b.array("fil", k, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let acc = b.cell_f64("acc", 0.0);
    b.for_loop("i", 0, (n - k + 1) as i64, |b, i| {
        let zero = b.f64(0.0);
        b.store_cell(acc, zero);
        b.for_loop("j", 0, k as i64, |b, j| {
            let idx = b.iadd(i, j);
            let iv = b.load(img, idx);
            let fv = b.load(fil, j);
            let p = b.fmul(iv, fv);
            let c = b.load_cell(acc);
            let s = b.fadd(c, p);
            b.store_cell(acc, s);
        });
        let r = b.load_cell(acc);
        let sq = b.fmul(r, r);
        let c = b.load_cell(loss);
        let s = b.fadd(c, sq);
        b.store_cell(loss, s);
    });
    let f = b.finish();
    // Conservative = Enzyme-realistic: the inner products' operands are
    // taped, giving the two-level region structure the tests inspect.
    let g = differentiate(
        &f,
        &AdOptions::new(vec![img, fil], vec![loss]).with_policy(TapePolicy::Conservative),
    )
    .unwrap();
    (f, g)
}

fn count_ops(func: &Function, pred: impl Fn(&Op) -> bool) -> usize {
    func.insts().iter().filter(|i| pred(&i.op)).count()
}

#[test]
fn small_inner_loop_is_collapsed_into_layers() {
    // A 3-deep nest whose innermost loop has only 5 iterations and whose
    // middle loop belongs to no other region: a 1 KB scratchpad layer
    // must absorb whole inner sweeps (collapse = 1) and tile the middle
    // loop, rather than producing 5-iteration layers.
    let mut b = FunctionBuilder::new("nest3");
    let x = b.array("x", 8 * 6 * 5, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let acc = b.cell_f64("acc", 0.0);
    b.for_loop("i", 0, 8, |b, i| {
        let zero = b.f64(0.0);
        b.store_cell(acc, zero);
        b.for_loop("j", 0, 6, |b, j| {
            b.for_loop("k", 0, 5, |b, k| {
                let idx = b.idx3(i, 6, j, 5, k);
                let v = b.load(x, idx);
                let e = b.exp(v);
                let c = b.load_cell(acc);
                let s = b.fadd(c, e);
                b.store_cell(acc, s);
            });
        });
        let r = b.load_cell(acc);
        let sq = b.fmul(r, r);
        let c = b.load_cell(loss);
        let s = b.fadd(c, sq);
        b.store_cell(loss, s);
    });
    let f = b.finish();
    let g = differentiate(
        &f,
        &AdOptions::new(vec![x], vec![loss]).with_policy(TapePolicy::Conservative),
    )
    .unwrap();
    let c = compile(&g, &CompileOptions::default()).unwrap();
    let inner_region = c
        .plan
        .regions
        .iter()
        .find(|r| r.region.path.len() == 3)
        .expect("inner region exists");
    match inner_region.layout {
        RegionLayout::Tiled {
            collapse,
            inner_prod,
            tile_iters,
        } => {
            assert_eq!(collapse, 1, "inner k-loop absorbed");
            assert_eq!(inner_prod, 5);
            assert!(tile_iters > 1, "layer spans several middle iterations");
        }
        ref other => panic!("expected tiled layout, got {other:?}"),
    }
}

#[test]
fn compiled_program_has_matching_stream_pairs_and_barriers() {
    let (_, g) = conv_like(48, 4);
    let c = compile(&g, &CompileOptions::default()).unwrap();
    let outs = count_ops(&c.func, |o| matches!(o, Op::StreamOut(_)));
    let ins = count_ops(&c.func, |o| matches!(o, Op::StreamIn(_)));
    let sallocs = count_ops(&c.func, |o| matches!(o, Op::SAlloc { .. }));
    let barriers = count_ops(&c.func, |o| matches!(o, Op::Barrier));
    assert_eq!(outs, ins, "one REV-Stream per FWD-Stream site");
    assert_eq!(sallocs, outs + ins, "one SAlloc per layer site");
    // Layer barriers plus the phase barrier.
    assert_eq!(barriers, sallocs + 1);
}

#[test]
fn aos_mode_emits_no_scratchpad_ops() {
    let (_, g) = conv_like(48, 4);
    let c = compile(
        &g,
        &CompileOptions {
            mode: tapeflow_core::CompileMode::AosOnly,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        count_ops(&c.func, |o| matches!(
            o,
            Op::SpadLoad | Op::SpadStore | Op::StreamIn(_) | Op::StreamOut(_) | Op::SAlloc { .. }
        )),
        0
    );
    // The tape still exists — as merged AoS arrays accessed via the cache.
    assert!(
        count_ops(
            &c.func,
            |o| matches!(o, Op::Store(a) if c.func.array(*a).kind.is_tape())
        ) > 0
    );
}

#[test]
fn full_mode_leaves_no_tape_array_accesses_outside_streams() {
    let (_, g) = conv_like(48, 4);
    let c = compile(&g, &CompileOptions::default()).unwrap();
    for inst in c.func.insts() {
        if let Op::Load(a) | Op::Store(a) = inst.op {
            assert!(
                !c.func.array(a).kind.is_tape(),
                "tape arrays must only be reached through streams"
            );
        }
    }
}

#[test]
fn spad_allocations_respect_level_partitions() {
    let (_, g) = conv_like(64, 5);
    let c = compile(&g, &CompileOptions::default()).unwrap();
    // Every SAlloc's [base, base+size) stays within the scratchpad.
    let cap = c.options.spad_entries as u32;
    let mut seen_ranges: Vec<(u32, u32)> = Vec::new();
    for inst in c.func.insts() {
        if let Op::SAlloc { size, base } = inst.op {
            assert!(base + size <= cap, "SAlloc {base}+{size} exceeds {cap}");
            seen_ranges.push((base, size));
        }
    }
    assert!(!seen_ranges.is_empty());
    // Distinct region levels get disjoint ranges.
    let mut plan_ranges: Vec<(u32, u32)> = c
        .plan
        .regions
        .iter()
        .map(|r| (r.spad_base, r.spad_range))
        .collect();
    plan_ranges.sort_unstable();
    plan_ranges.dedup();
    for w in plan_ranges.windows(2) {
        assert!(w[0].0 + w[0].1 <= w[1].0, "region ranges overlap: {w:?}");
    }
}

#[test]
fn body_statement_count_grows_with_instrumentation() {
    // Sanity on the rewrite: the compiled program carries the original
    // compute plus the streaming scaffolding.
    let (_, g) = conv_like(48, 4);
    let c = compile(&g, &CompileOptions::default()).unwrap();
    assert!(c.func.insts().len() > g.func.insts().len());
    // And the top-level structure is preserved: exactly one phase barrier.
    let top_barriers = c
        .func
        .body
        .iter()
        .filter(|s| matches!(s, Stmt::Inst(i) if matches!(c.func.inst(*i).op, Op::Barrier)))
        .count();
    assert_eq!(top_barriers, 1);
}
