//! Plan-aware static lints: checks over the `FtoR` pairing and the layer
//! plan that the function-level analyses in `tapeflow_ir::lint` cannot
//! see.
//!
//! The function-level lints prove properties of one IR view in isolation;
//! the rules here cross-check the compilation *artifacts* against each
//! other — every FWD tape store must have a landing site in the layer
//! plan, every REV load must resolve to the same site its store filled,
//! per-layer footprints must fit the scratchpad partition they were
//! assigned, and §3.7 segment duplication must actually cover every
//! cross-segment consumer.
//!
//! Entry point: [`lint_plan`]. Diagnostics reuse
//! [`tapeflow_ir::lint::Diagnostic`] and the same deterministic order.

use crate::compress::{quantized_width, width_for, SlotEncoding, TapeEncoding};
use crate::layering::{LayerPlan, RegionLayout, Site};
use crate::CompileOptions;
use tapeflow_autodiff::Gradient;
use tapeflow_ir::lint::{sort_diagnostics, Diagnostic, Severity, Span};
use tapeflow_ir::{Op, ValueDef};

fn tape_label(grad: &Gradient, k: usize) -> String {
    let arr = grad.tapes[k].array;
    format!("tape {k} ({} `{}`)", arr, grad.func.array(arr).name)
}

/// One entry of the lint rule catalog, as printed by
/// `tapeflow lint --explain <rule>`.
#[derive(Clone, Copy, Debug)]
pub struct RuleDoc {
    /// Rule name, as it appears in diagnostic tables.
    pub rule: &'static str,
    /// Severity the rule fires at.
    pub severity: Severity,
    /// Which layer proves it: the function-level IR analyses, the
    /// plan-level artifact cross-checks, or the value-range analysis.
    pub layer: &'static str,
    /// One-paragraph explanation of what the rule proves and why a
    /// finding matters.
    pub what: &'static str,
}

/// Every lint rule the toolchain can emit, across the function-level
/// analyses ([`tapeflow_ir::lint`]), the value-range analysis
/// ([`tapeflow_ir::vra`]) and the plan-level cross-checks in this
/// module. Sorted by name; looked up by `tapeflow lint --explain`.
pub const RULE_CATALOG: &[RuleDoc] = &[
    RuleDoc {
        rule: "double-buffer-overlap",
        severity: Severity::Error,
        layer: "plan",
        what: "A layer's tape footprint fits its region's scratchpad range \
               only when the whole range is single-buffered; with double \
               buffering enabled, the working half and the streaming half \
               would overlap and REV would restore half-evicted values.",
    },
    RuleDoc {
        rule: "float-nonfinite",
        severity: Severity::Error,
        layer: "value-ranges",
        what: "The float interval domain proves a value can become NaN or \
               infinite on *every* execution consistent with the declared \
               input ranges — e.g. a division whose denominator's range is \
               exactly [0, 0]. Gradients through such a value are garbage.",
    },
    RuleDoc {
        rule: "ftor-mismatch",
        severity: Severity::Error,
        layer: "plan",
        what: "A REV tape load resolves to a different region/slot/offset \
               than the FWD store that filled it, so the restored value is \
               not the value that was saved.",
    },
    RuleDoc {
        rule: "ftor-unmapped",
        severity: Severity::Error,
        layer: "plan",
        what: "A managed FWD tape store (or a REV load of one) has no \
               landing site in the layer plan at all; the streaming \
               rewrite would drop the value on the floor.",
    },
    RuleDoc {
        rule: "layer-capacity",
        severity: Severity::Error,
        layer: "plan",
        what: "A layer's per-iteration tape footprint exceeds the \
               scratchpad range its region was assigned, so stores would \
               evict live entries before their REV loads.",
    },
    RuleDoc {
        rule: "segment-dup-missing",
        severity: Severity::Error,
        layer: "plan",
        what: "A REV load lands in a §3.7 segment whose slot list (own + \
               duplicated) does not contain the tape it restores — the \
               duplication pass failed to localize the read.",
    },
    RuleDoc {
        rule: "spad-bank-conflict",
        severity: Severity::Warning,
        layer: "function",
        what: "A scratchpad access pattern strides across banks so that \
               consecutive accesses hit the same bank; correct but \
               serialized, costing cycles in the performance model.",
    },
    RuleDoc {
        rule: "spad-capacity",
        severity: Severity::Error,
        layer: "function",
        what: "The live scratchpad footprint at some program point exceeds \
               the configured scratchpad size.",
    },
    RuleDoc {
        rule: "spad-oob",
        severity: Severity::Error,
        layer: "function",
        what: "A scratchpad access's provable index range falls outside \
               the allocated scratchpad region.",
    },
    RuleDoc {
        rule: "spad-partition",
        severity: Severity::Error,
        layer: "plan",
        what: "A region's assigned scratchpad range overruns the physical \
               scratchpad; two regions' ranges would alias.",
    },
    RuleDoc {
        rule: "stream-deadlock",
        severity: Severity::Error,
        layer: "function",
        what: "A cycle in the stream dependence graph in which every edge \
               is a blocking FIFO — producers and consumers would wait on \
               each other forever.",
    },
    RuleDoc {
        rule: "tape-index-oob",
        severity: Severity::Error,
        layer: "function",
        what: "A tape store or load whose provable ordinal range exceeds \
               the tape array's extent.",
    },
    RuleDoc {
        rule: "tape-never-loaded",
        severity: Severity::Warning,
        layer: "function+plan",
        what: "A tape that FWD stores but REV never loads: streamed out \
               and back for nothing, a recompute opportunity the min-tape \
               heuristic missed.",
    },
    RuleDoc {
        rule: "tape-read-before-write",
        severity: Severity::Error,
        layer: "function",
        what: "A REV tape load whose ordinal can precede every FWD store \
               of that tape — it would read an uninitialized slot.",
    },
    RuleDoc {
        rule: "unsound-narrow",
        severity: Severity::Error,
        layer: "plan",
        what: "A tape slot kept at a width below 8 bytes whose stored \
               value cannot be *independently* re-proved to fit: the rule \
               re-runs the value-range analysis from scratch and accepts \
               the narrow width only if a fresh proof (integer itof path \
               or quantized-float path) yields a width no wider than the \
               one tape-compress chose. The compression pass must not be \
               its own checker.",
    },
];

/// Looks up a rule's catalog entry by name.
pub fn explain_rule(name: &str) -> Option<&'static RuleDoc> {
    RULE_CATALOG.iter().find(|d| d.rule == name)
}

/// Whether Pass 5 elided tape slot `k` (no store/load sites remain in
/// the plan; REV rematerializes the value from an input array instead).
fn elided(encoding: Option<&TapeEncoding>, k: usize) -> bool {
    encoding.is_some_and(|e| matches!(e.slots.get(k), Some(SlotEncoding::Remat(_))))
}

/// Runs every plan-level rule over a gradient and its layer plan and
/// returns the findings in canonical order.
///
/// `encoding` is the Pass 5 tape encoding the plan was rewritten under,
/// if `tape-compress` ran (e.g. [`crate::CompiledProgram::encoding`]):
/// slots it elided legitimately have no sites in the plan and are skipped
/// by the pairing rules.
///
/// `tape-never-loaded` warnings are only raised for region-managed tapes;
/// unmanaged tapes keep their plain store/load instructions in the
/// compiled function, where the function-level rule of the same name
/// already reports them.
pub fn lint_plan(
    grad: &Gradient,
    plan: &LayerPlan,
    opts: &CompileOptions,
    encoding: Option<&TapeEncoding>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    ftor_pairing(grad, plan, encoding, &mut diags);
    layer_capacity(plan, opts, &mut diags);
    spad_partition(plan, opts, &mut diags);
    segment_dups(grad, plan, &mut diags);
    tape_liveness(grad, plan, encoding, &mut diags);
    narrow_soundness(grad, encoding, &mut diags);
    sort_diagnostics(&mut diags);
    diags
}

/// `unsound-narrow` (error): every tape slot `tape-compress` kept at a
/// width below 8 bytes must *independently* re-prove that the width
/// covers the stored value's range — the compression pass must not be
/// its own checker. The rule re-runs the value-range analysis from
/// scratch over the gradient function and accepts a narrow width only if
/// a fresh proof (the `itof` integer path or the quantized-float path)
/// yields a width no wider than the chosen one.
fn narrow_soundness(grad: &Gradient, encoding: Option<&TapeEncoding>, diags: &mut Vec<Diagnostic>) {
    let Some(enc) = encoding else { return };
    let narrowed: Vec<(usize, u8)> = enc
        .slots
        .iter()
        .enumerate()
        .filter_map(|(k, s)| match s {
            SlotEncoding::Keep { width } if *width < 8 => Some((k, *width)),
            _ => None,
        })
        .collect();
    if narrowed.is_empty() {
        return;
    }
    // Fresh analysis — deliberately NOT the pipeline's cached artifact.
    let ranges = tapeflow_ir::vra::value_ranges(&grad.func);
    for (k, chosen) in narrowed {
        let info = &grad.tapes[k];
        let stored = grad.func.inst(info.store).args[1];
        let mut proven: Option<u8> = None;
        if info.as_int {
            if let ValueDef::Inst(ci) = grad.func.value(stored).def {
                let conv = grad.func.inst(ci);
                if conv.op == Op::IToF {
                    proven = ranges
                        .ints
                        .get(conv.args[0].index())
                        .copied()
                        .flatten()
                        .map(|r| width_for(r.lo, r.hi));
                }
            }
        }
        if proven.is_none() {
            proven = ranges
                .floats
                .get(stored.index())
                .copied()
                .flatten()
                .as_ref()
                .and_then(quantized_width);
        }
        match proven {
            None => diags.push(Diagnostic {
                rule: "unsound-narrow",
                severity: Severity::Error,
                span: Span::at_inst_array(info.store, info.array),
                message: format!(
                    "{}: encoded at {chosen} B but the stored value has no \
                     provable integer or quantized range",
                    tape_label(grad, k)
                ),
            }),
            Some(req) if req > chosen => diags.push(Diagnostic {
                rule: "unsound-narrow",
                severity: Severity::Error,
                span: Span::at_inst_array(info.store, info.array),
                message: format!(
                    "{}: encoded at {chosen} B but the re-proved range needs \
                     {req} B",
                    tape_label(grad, k)
                ),
            }),
            Some(_) => {}
        }
    }
}

/// `ftor-unmapped` / `ftor-mismatch` (errors): every managed FWD tape
/// store must have a site in the plan, every REV load of that tape must
/// have one too, and the two must agree on region, slot and DRAM offset —
/// otherwise REV restores a different value than FWD saved.
fn ftor_pairing(
    grad: &Gradient,
    plan: &LayerPlan,
    encoding: Option<&TapeEncoding>,
    diags: &mut Vec<Diagnostic>,
) {
    for (k, t) in grad.tapes.iter().enumerate() {
        if plan.unmanaged.contains(&k) || elided(encoding, k) {
            continue;
        }
        let store = match plan.store_site.get(&t.store) {
            Some(s) => *s,
            None => {
                diags.push(Diagnostic {
                    rule: "ftor-unmapped",
                    severity: Severity::Error,
                    span: Span::at_inst_array(t.store, t.array),
                    message: format!(
                        "{}: FWD store {} has no site in the layer plan",
                        tape_label(grad, k),
                        t.store
                    ),
                });
                continue;
            }
        };
        for &load in &t.loads {
            let Some(site) = plan.load_site.get(&load) else {
                diags.push(Diagnostic {
                    rule: "ftor-unmapped",
                    severity: Severity::Error,
                    span: Span::at_inst_array(load, t.array),
                    message: format!(
                        "{}: REV load {} has no site in the layer plan",
                        tape_label(grad, k),
                        load
                    ),
                });
                continue;
            };
            if (site.region, site.tape, site.global_off)
                != (store.region, store.tape, store.global_off)
            {
                diags.push(Diagnostic {
                    rule: "ftor-mismatch",
                    severity: Severity::Error,
                    span: Span::at_inst_array(load, t.array),
                    message: format!(
                        "{}: REV load {} resolves to region {} slot {} but the \
                         FWD store fills region {} slot {}",
                        tape_label(grad, k),
                        load,
                        site.region,
                        site.global_off,
                        store.region,
                        store.global_off
                    ),
                });
            }
        }
    }
}

/// Per-layer scratchpad footprint of a region, in entries.
fn layer_footprint(layout: &RegionLayout, rsize_total: usize) -> Option<u64> {
    match layout {
        RegionLayout::LayoutOnly => None,
        RegionLayout::Tiled {
            tile_iters,
            inner_prod,
            ..
        } => Some(tile_iters * inner_prod * rsize_total as u64),
        RegionLayout::Segmented { segments } => segments.iter().map(|s| s.size() as u64).max(),
    }
}

/// `layer-capacity` / `double-buffer-overlap` (errors): a layer's tape
/// footprint must fit its region's scratchpad range — the whole range
/// single-buffered, half of it when double buffering keeps the other half
/// streaming.
fn layer_capacity(plan: &LayerPlan, opts: &CompileOptions, diags: &mut Vec<Diagnostic>) {
    for (ri, rp) in plan.regions.iter().enumerate() {
        let Some(fp) = layer_footprint(&rp.layout, rp.rsize_total) else {
            continue;
        };
        let range = u64::from(rp.spad_range);
        if fp > range {
            diags.push(Diagnostic {
                rule: "layer-capacity",
                severity: Severity::Error,
                span: Span::default(),
                message: format!(
                    "region {ri}: layer footprint of {fp} entries exceeds its \
                     {range}-entry scratchpad range"
                ),
            });
        } else if opts.double_buffer && fp > range / 2 {
            diags.push(Diagnostic {
                rule: "double-buffer-overlap",
                severity: Severity::Error,
                span: Span::default(),
                message: format!(
                    "region {ri}: layer footprint of {fp} entries overlaps the \
                     second double-buffer half ({} entries per half)",
                    range / 2
                ),
            });
        }
    }
}

/// `spad-partition` (error): a region's assigned range must lie inside
/// the scratchpad.
fn spad_partition(plan: &LayerPlan, opts: &CompileOptions, diags: &mut Vec<Diagnostic>) {
    for (ri, rp) in plan.regions.iter().enumerate() {
        if matches!(rp.layout, RegionLayout::LayoutOnly) {
            continue;
        }
        let end = u64::from(rp.spad_base) + u64::from(rp.spad_range);
        if end > opts.spad_entries as u64 {
            diags.push(Diagnostic {
                rule: "spad-partition",
                severity: Severity::Error,
                span: Span::default(),
                message: format!(
                    "region {ri}: scratchpad range [{}, {end}) overruns the \
                     {}-entry scratchpad",
                    rp.spad_base, opts.spad_entries
                ),
            });
        }
    }
}

/// `segment-dup-missing` (error): a REV load placed in a §3.7 segment
/// whose slot list (own + duplicated) does not actually contain the tape
/// it restores — the duplication pass failed to localize the read.
fn segment_dups(grad: &Gradient, plan: &LayerPlan, diags: &mut Vec<Diagnostic>) {
    for (k, t) in grad.tapes.iter().enumerate() {
        for &load in &t.loads {
            let Some(site) = plan.load_site.get(&load) else {
                continue; // ftor_pairing already reported it
            };
            let Some(seg_idx) = site.segment else {
                continue;
            };
            let rp = &plan.regions[site.region];
            let RegionLayout::Segmented { segments } = &rp.layout else {
                continue;
            };
            let seg = &segments[seg_idx];
            if !seg.own.contains(&site.tape) && !seg.dups.contains(&site.tape) {
                diags.push(Diagnostic {
                    rule: "segment-dup-missing",
                    severity: Severity::Error,
                    span: Span::at_inst_array(load, t.array),
                    message: format!(
                        "{}: REV load {} lands in segment {} of region {}, which \
                         neither owns nor duplicates slot {}",
                        tape_label(grad, k),
                        load,
                        seg_idx,
                        site.region,
                        site.tape
                    ),
                });
            }
        }
    }
}

/// `tape-never-loaded` (warning): a region-managed tape with no REV
/// loads — it is streamed out and back in but never read, so the min-tape
/// heuristic missed a recompute opportunity.
fn tape_liveness(
    grad: &Gradient,
    plan: &LayerPlan,
    encoding: Option<&TapeEncoding>,
    diags: &mut Vec<Diagnostic>,
) {
    for (k, t) in grad.tapes.iter().enumerate() {
        if plan.unmanaged.contains(&k) || !t.loads.is_empty() || elided(encoding, k) {
            continue;
        }
        diags.push(Diagnostic {
            rule: "tape-never-loaded",
            severity: Severity::Warning,
            span: Span::at_array(t.array),
            message: format!(
                "{}: stored in FWD but never loaded in REV",
                tape_label(grad, k)
            ),
        });
    }
}

/// Checks whether this [`Site`] belongs to `plan` at all (used by tests
/// and debugging tools; sites are plain data and can go stale when plans
/// are rebuilt).
pub fn site_in_plan(site: &Site, plan: &LayerPlan) -> bool {
    site.region < plan.regions.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use crate::CompileOptions;
    use tapeflow_autodiff::AdOptions;
    use tapeflow_ir::{ArrayKind, FunctionBuilder, Scalar};

    /// sum_i exp(x[i]) — compiles with one tiled region at default options.
    fn toy() -> (Gradient, LayerPlan, CompileOptions) {
        let mut b = FunctionBuilder::new("toy");
        let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
        let loss = b.cell_f64("loss", 0.0);
        b.for_loop("i", 0, 64, |b, i| {
            let v = b.load(x, i);
            let e = b.exp(v);
            let acc = b.load_cell(loss);
            let s = b.fadd(acc, e);
            b.store_cell(loss, s);
        });
        let f = b.finish();
        let loss_id = f.array_by_name("loss").unwrap();
        let opts = CompileOptions::default();
        let run = PipelineBuilder::full(opts, AdOptions::new(vec![x], vec![loss_id]))
            .with_verify(true)
            .run_source(&f)
            .unwrap();
        let grad = run.state.gradient.clone().unwrap();
        let plan = run.state.plan.clone().unwrap();
        (grad, plan, opts)
    }

    #[test]
    fn healthy_plan_is_clean_of_errors() {
        let (grad, plan, opts) = toy();
        let diags = lint_plan(&grad, &plan, &opts, None);
        assert!(
            diags.iter().all(|d| d.severity == Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn dropping_a_load_site_is_an_ftor_error() {
        let (grad, mut plan, opts) = toy();
        let victim = *plan.load_site.keys().min().unwrap();
        plan.load_site.remove(&victim);
        let diags = lint_plan(&grad, &plan, &opts, None);
        assert!(diags.iter().any(|d| d.rule == "ftor-unmapped"), "{diags:?}");
    }

    #[test]
    fn corrupting_a_site_offset_is_a_mismatch() {
        let (grad, mut plan, opts) = toy();
        let victim = *plan.load_site.keys().min().unwrap();
        plan.load_site.get_mut(&victim).unwrap().global_off += 1;
        let diags = lint_plan(&grad, &plan, &opts, None);
        assert!(diags.iter().any(|d| d.rule == "ftor-mismatch"), "{diags:?}");
    }

    #[test]
    fn shrinking_a_region_range_breaks_capacity() {
        let (grad, mut plan, opts) = toy();
        let rp = plan
            .regions
            .iter_mut()
            .find(|r| !matches!(r.layout, RegionLayout::LayoutOnly))
            .expect("toy has a streamed region");
        rp.spad_range = 1;
        let diags = lint_plan(&grad, &plan, &opts, None);
        assert!(
            diags.iter().any(|d| d.rule == "layer-capacity"),
            "{diags:?}"
        );
    }

    #[test]
    fn moving_a_region_past_the_spad_is_a_partition_error() {
        let (grad, mut plan, opts) = toy();
        plan.regions[0].spad_base = opts.spad_entries as u32;
        let diags = lint_plan(&grad, &plan, &opts, None);
        assert!(
            diags.iter().any(|d| d.rule == "spad-partition"),
            "{diags:?}"
        );
    }

    #[test]
    fn double_buffer_overlap_is_detected() {
        let (grad, mut plan, opts) = toy();
        assert!(opts.double_buffer);
        let rp = plan
            .regions
            .iter_mut()
            .find(|r| !matches!(r.layout, RegionLayout::LayoutOnly))
            .unwrap();
        // Keep the footprint inside the full range but past one half.
        if let Some(fp) = layer_footprint(&rp.layout, rp.rsize_total) {
            rp.spad_range = (fp + fp / 2).max(2) as u32;
        }
        let diags = lint_plan(&grad, &plan, &opts, None);
        assert!(
            diags.iter().any(|d| d.rule == "double-buffer-overlap"),
            "{diags:?}"
        );
    }
}
