//! Pass 3: `streams` — terminal lowering to first-class stream-command
//! IR.
//!
//! The pass runs the shared rewriter (see [`crate::apply`]) at
//! [`Lowering::Tape`] depth: region loops are restructured into layers,
//! `FWD-Stream`/`REV-Stream` commands and barriers are inserted, and
//! every tape access becomes an explicit [`tapeflow_ir::Op::TapeStore`]
//! or [`tapeflow_ir::Op::TapeLoad`]. The result is a complete, runnable
//! program state — it verifies, parses, pretty-prints, lints, and
//! interprets to the same gradients as the final scratchpad-indexed
//! form — not a side-channel snapshot of a fused walk. Pass 4
//! ([`crate::spad_index`]) consumes it as its sole input.

use crate::apply::{rewrite, Lowering};
use crate::compress::TapeEncoding;
use crate::layering::LayerPlan;
use crate::{CompileOptions, CoreError};
use tapeflow_autodiff::Gradient;
use tapeflow_ir::{Function, InstId};

/// The `streams` pass's terminal IR plus the plan context Pass 4 needs.
#[derive(Clone, Debug)]
pub struct StreamsProgram {
    /// The stream-command program (`tape.store`/`tape.load`/streams).
    pub func: Function,
    /// The FWD/REV phase barrier instruction in [`StreamsProgram::func`].
    pub phase_barrier: InstId,
    /// The (possibly compressed) layer plan the lowering followed.
    pub plan: LayerPlan,
    /// Options the program was lowered under.
    pub options: CompileOptions,
    /// Pass 5 encoding baked into the lowering, if one ran.
    pub encoding: Option<TapeEncoding>,
}

/// Lowers the gradient to the stream-command terminal form.
///
/// # Errors
///
/// [`CoreError::Internal`] if the lowered function fails verification.
pub fn lower_streams(
    grad: &Gradient,
    plan: LayerPlan,
    options: CompileOptions,
    encoding: Option<TapeEncoding>,
) -> Result<StreamsProgram, CoreError> {
    let (func, phase_barrier) = rewrite(grad, &plan, options, Lowering::Tape, encoding.as_ref())?;
    Ok(StreamsProgram {
        func,
        phase_barrier,
        plan,
        options,
        encoding,
    })
}
