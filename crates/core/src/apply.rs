//! The shared gradient-function rewriter behind Pass 1's layout change
//! and Pass 3's terminal stream lowering.
//!
//! Walking the gradient function once, it
//!
//! * replaces every per-value tape array with its merged array-of-structs
//!   region (Pass 1's layout change — also the whole story in
//!   [`CompileMode::AosOnly`], via [`Lowering::Aos`]);
//! * restructures each region loop according to the Pass 2 plan — tiling
//!   it into layer-sized chunks or cutting its body into segments — and
//!   terminates every layer with a barrier (Pass 2's schedule);
//! * inserts `FWD-Stream`/`REV-Stream` commands at layer boundaries with
//!   statically computed DRAM tile addresses and double-buffered
//!   scratchpad bases (Pass 3; the static mirrored addressing plays the
//!   role of the paper's runtime stream stack, and a LIFO-order check in
//!   the test suite verifies the equivalence);
//! * lowers tape stores/loads to the first-class stream-command ops
//!   [`Op::TapeStore`]/[`Op::TapeLoad`] — scratchpad side explicit, DRAM
//!   side carried by the stream commands — emitting §3.7 redundant
//!   duplicate stores at segment tails;
//! * applies a Pass 5 [`TapeEncoding`] when one is present: elided slots'
//!   stores disappear, their loads rematerialize from the input array,
//!   and width-narrowed regions stream through
//!   [`Op::StreamOutC`]/[`Op::StreamInC`] codecs.
//!
//! The result is the `streams` pass's terminal IR (see
//! [`crate::streams`]); rewriting the tape ops into plain scratchpad
//! accesses is Pass 4's job ([`crate::spad_index`]), a separate
//! structural rewrite that no longer shares this walk.

use crate::compress::{RematRecipe, TapeEncoding};
use crate::layering::{LayerPlan, RegionLayout, Segment, Site};
use crate::{CompileOptions, CompileStats, CoreError};
use std::collections::{HashMap, HashSet};
use tapeflow_autodiff::{Gradient, Span};
use tapeflow_ir::{
    ArrayId, ArrayKind, Bound, Const, Function, InstId, LoopId, Op, Provenance, Scalar, Stmt,
    ValueDef, ValueId,
};

/// How far the rewriter lowers tape accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Lowering {
    /// Pass 1 only: merged AoS regions, cache-resident accesses
    /// ([`CompileMode::AosOnly`]).
    Aos,
    /// Passes 1–3: layers, streams, and `tape.store`/`tape.load` ops —
    /// the `streams` pass's terminal form.
    Tape,
}

/// Runs the rewriter, returning the rewritten (verified) function and
/// its FWD/REV phase barrier.
///
/// # Errors
///
/// [`CoreError::Internal`] if the rewritten function fails verification.
pub(crate) fn rewrite(
    grad: &Gradient,
    plan: &LayerPlan,
    opts: CompileOptions,
    lowering: Lowering,
    encoding: Option<&TapeEncoding>,
) -> Result<(Function, InstId), CoreError> {
    let mut rw = Rw::new(grad, plan, opts, lowering, encoding);
    rw.g.set_prov_ctx(Provenance::created_by(rw.pass()));
    let mut body = Vec::new();
    rw.walk(&grad.func.body, &mut body)?;
    rw.g.body = body;
    tapeflow_ir::verify::verify(&rw.g)?;
    let phase_barrier = rw.new_phase_barrier.ok_or_else(|| {
        CoreError::Pipeline("rewritten function lost its FWD/REV phase barrier".into())
    })?;
    Ok((rw.g, phase_barrier))
}

/// The compile-stats block summarizing a plan (shared by the terminal
/// passes).
pub(crate) fn compile_stats(plan: &LayerPlan, opts: &CompileOptions) -> CompileStats {
    CompileStats {
        regions: plan.regions.len(),
        fwd_layers: plan.total_fwd_layers,
        duplicated_slots: plan
            .regions
            .iter()
            .map(|r| match &r.layout {
                RegionLayout::Segmented { segments } => segments.iter().map(|s| s.dups.len()).sum(),
                _ => 0,
            })
            .sum(),
        merged_tape_bytes: plan.regions.iter().map(|r| r.merged_len() as u64 * 8).sum(),
        spad_entries: opts.spad_entries,
    }
}

struct TileCtx {
    region: usize,
    base: ValueId,
    /// Local tile iteration (`Some` for tiled layouts, `None` for
    /// segmented ones where the layer holds a single struct).
    local_iv: Option<ValueId>,
    rsize: usize,
    /// Collapsed inner loops (old loop ids, outermost first) whose full
    /// sweep lives inside one layer struct, with their trip counts.
    collapsed: Vec<(LoopId, u64)>,
    /// Product of the collapsed trips.
    inner_prod: u64,
}

struct Rw<'a> {
    grad: &'a Gradient,
    plan: &'a LayerPlan,
    opts: CompileOptions,
    lowering: Lowering,
    g: Function,
    vmap: Vec<Option<ValueId>>,
    consts: HashMap<(bool, u64), ValueId>,
    merged: Vec<ArrayId>,
    fwd_region_loop: HashMap<LoopId, usize>,
    rev_region_loop: HashMap<LoopId, usize>,
    /// Ordinal value and trip count per open old loop.
    ord_stack: Vec<(LoopId, ValueId, u64)>,
    tile_stack: Vec<TileCtx>,
    new_phase_barrier: Option<InstId>,
    /// Pass 5: FWD tape stores dropped entirely (elided slots).
    elide: HashSet<InstId>,
    /// Pass 5: REV tape loads rebuilt from an input array.
    remat: HashMap<InstId, RematRecipe>,
    /// Pass 5: per-region stream codec (`struct_elems`, `struct_bytes`).
    codec: Vec<Option<(u16, u16)>>,
}

impl<'a> Rw<'a> {
    fn new(
        grad: &'a Gradient,
        plan: &'a LayerPlan,
        opts: CompileOptions,
        lowering: Lowering,
        encoding: Option<&TapeEncoding>,
    ) -> Self {
        let mut g = Function::new(format!("tf_{}", grad.func.name));
        // Managed per-value tape arrays disappear (their merged region
        // replaces them); shrink to zero so they cost no address space.
        // Elided slots' arrays disappear too: their accesses are dropped
        // or rematerialized, so they are managed without being sited.
        let mut managed: std::collections::HashSet<ArrayId> = plan
            .regions
            .iter()
            .flat_map(|r| r.region.tapes.iter().map(|&t| grad.tapes[t].array))
            .collect();
        let (elide, remat, codec) = match encoding {
            Some(enc) => {
                let elide = enc.elided_stores(grad);
                for (k, s) in enc.slots.iter().enumerate() {
                    if matches!(s, crate::compress::SlotEncoding::Remat(_)) {
                        managed.insert(grad.tapes[k].array);
                    }
                }
                (elide, enc.remat_loads(grad), enc.region_codec.clone())
            }
            None => (
                HashSet::new(),
                HashMap::new(),
                vec![None; plan.regions.len()],
            ),
        };
        for (i, a) in grad.func.arrays().iter().enumerate() {
            let len = if managed.contains(&ArrayId::new(i)) {
                0
            } else {
                a.len
            };
            let id = g.add_array(a.name.clone(), len, a.kind, a.elem);
            if let Some(r) = a.range {
                g.set_array_range(id, r);
            }
        }
        let mut merged = Vec::with_capacity(plan.regions.len());
        for (ri, rp) in plan.regions.iter().enumerate() {
            merged.push(g.add_array(
                format!("R{ri}"),
                rp.merged_len(),
                ArrayKind::Tape,
                Scalar::F64,
            ));
        }
        // Region loops are restructured for both the streamed snapshot
        // and the final scratchpad-indexed form.
        let layered = lowering != Lowering::Aos;
        let mut fwd_region_loop = HashMap::new();
        let mut rev_region_loop = HashMap::new();
        if layered {
            for (ri, rp) in plan.regions.iter().enumerate() {
                let collapse = match rp.layout {
                    RegionLayout::LayoutOnly => continue,
                    RegionLayout::Tiled { collapse, .. } => collapse,
                    RegionLayout::Segmented { .. } => 0,
                };
                let l = rp.region.path[rp.region.path.len() - 1 - collapse];
                fwd_region_loop.insert(l, ri);
                rev_region_loop.insert(grad.loop_map[&l], ri);
            }
        }
        Rw {
            grad,
            plan,
            opts,
            lowering,
            g,
            vmap: vec![None; grad.func.values().len()],
            consts: HashMap::new(),
            merged,
            fwd_region_loop,
            rev_region_loop,
            ord_stack: Vec::new(),
            tile_stack: Vec::new(),
            new_phase_barrier: None,
            elide,
            remat,
            codec,
        }
    }

    // ---- helpers -----------------------------------------------------------

    /// Pass name stamped into the provenance of instructions this
    /// rewriter creates.
    fn pass(&self) -> &'static str {
        match self.lowering {
            Lowering::Aos => "aos-layout",
            Lowering::Tape => "streams",
        }
    }

    /// Provenance template for pass-created helper instructions at the
    /// current walk position: the pass name, plus the innermost open
    /// region if the walk is inside one.
    fn scope_prov(&self) -> Provenance {
        let mut p = Provenance::created_by(self.pass());
        if let Some(ctx) = self.tile_stack.last() {
            p = p.with_region(ctx.region as u32);
        }
        p
    }

    fn cf(&mut self, v: f64) -> ValueId {
        let key = (true, v.to_bits());
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.g.add_const(Const::F64(v));
        self.consts.insert(key, id);
        id
    }

    fn ci(&mut self, v: i64) -> ValueId {
        let key = (false, v as u64);
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = self.g.add_const(Const::I64(v));
        self.consts.insert(key, id);
        id
    }

    fn emit(&mut self, out: &mut Vec<Stmt>, op: Op, args: Vec<ValueId>) -> Option<ValueId> {
        let (i, r) = self.g.add_inst(op, args);
        out.push(Stmt::Inst(i));
        r
    }

    fn emit_r(&mut self, out: &mut Vec<Stmt>, op: Op, args: Vec<ValueId>) -> ValueId {
        self.emit(out, op, args).expect("op defines a result")
    }

    fn map_val(&mut self, v: ValueId) -> ValueId {
        match self.grad.func.value(v).def {
            ValueDef::Const(Const::F64(c)) => self.cf(c),
            ValueDef::Const(Const::I64(c)) => self.ci(c),
            _ => self.vmap[v.index()].expect("value mapped before use"),
        }
    }

    fn map_bound(&mut self, b: Bound) -> Bound {
        match b {
            Bound::Const(c) => Bound::Const(c),
            Bound::Value(v) => Bound::Value(self.map_val(v)),
        }
    }

    /// Emits `(iv - start) / step`, folding the trivial case.
    fn ordinal_of(&mut self, iv: ValueId, start: i64, step: i64, out: &mut Vec<Stmt>) -> ValueId {
        if start == 0 && step == 1 {
            return iv;
        }
        let s = self.ci(start);
        let d = self.emit_r(out, Op::ISub, vec![iv, s]);
        if step == 1 {
            d
        } else {
            let st = self.ci(step);
            self.emit_r(out, Op::IDiv, vec![d, st])
        }
    }

    /// Linearizes the ordinals of the loops in `path` (must all be on the
    /// ordinal stack).
    fn fold_lin(&mut self, path: &[LoopId], out: &mut Vec<Stmt>) -> ValueId {
        if path.is_empty() {
            return self.ci(0);
        }
        let lookup = |me: &Self, l: LoopId| -> (ValueId, u64) {
            me.ord_stack
                .iter()
                .rev()
                .find(|(ol, _, _)| *ol == l)
                .map(|&(_, o, t)| (o, t))
                .expect("path loop ordinal on stack")
        };
        let (mut lin, _) = lookup(self, path[0]);
        for &l in &path[1..] {
            let (o, trip) = lookup(self, l);
            let t = self.ci(trip as i64);
            let m = self.emit_r(out, Op::IMul, vec![lin, t]);
            lin = self.emit_r(out, Op::IAdd, vec![m, o]);
        }
        lin
    }

    /// Scratchpad buffer base for the current layer instance.
    fn buffer_base(
        &mut self,
        spad_base: u32,
        range: u32,
        parity_src: Option<ValueId>,
        out: &mut Vec<Stmt>,
    ) -> ValueId {
        let base_c = self.ci(spad_base as i64);
        match (self.opts.double_buffer, parity_src) {
            (true, Some(src)) => {
                let two = self.ci(2);
                let par = self.emit_r(out, Op::IRem, vec![src, two]);
                let half = self.ci((range / 2) as i64);
                let off = self.emit_r(out, Op::IMul, vec![par, half]);
                self.emit_r(out, Op::IAdd, vec![base_c, off])
            }
            _ => base_c,
        }
    }

    /// Rebuilds an elided slot's value by reloading its input array:
    /// `array[konst + sum(coeff * rev_ordinal)]` (Pass 5 remat).
    fn emit_remat(&mut self, recipe: &RematRecipe, out: &mut Vec<Stmt>) -> ValueId {
        let mut idx = self.ci(recipe.konst);
        for &(rl, c) in &recipe.terms {
            let ord = self
                .ord_stack
                .iter()
                .rev()
                .find(|(ol, _, _)| *ol == rl)
                .map(|&(_, o, _)| o)
                .expect("remat loop ordinal on stack");
            let c_c = self.ci(c);
            let m = self.emit_r(out, Op::IMul, vec![ord, c_c]);
            idx = self.emit_r(out, Op::IAdd, vec![idx, m]);
        }
        self.emit_r(out, Op::Load(recipe.array), vec![idx])
    }

    /// `FWD-Stream` drain op for region `ri` (codec-aware).
    fn stream_out_op(&self, ri: usize) -> Op {
        match self.codec[ri] {
            Some((e, b)) => Op::StreamOutC {
                array: self.merged[ri],
                struct_elems: e,
                struct_bytes: b,
            },
            None => Op::StreamOut(self.merged[ri]),
        }
    }

    /// `REV-Stream` fill op for region `ri` (codec-aware).
    fn stream_in_op(&self, ri: usize) -> Op {
        match self.codec[ri] {
            Some((e, b)) => Op::StreamInC {
                array: self.merged[ri],
                struct_elems: e,
                struct_bytes: b,
            },
            None => Op::StreamIn(self.merged[ri]),
        }
    }

    // ---- main walk -----------------------------------------------------------

    fn walk(&mut self, stmts: &[Stmt], out: &mut Vec<Stmt>) -> Result<(), CoreError> {
        for s in stmts {
            match s {
                Stmt::Inst(old) => self.rewrite_inst(*old, out),
                Stmt::For { loop_id, body } => {
                    if let Some(&ri) = self.fwd_region_loop.get(loop_id) {
                        match &self.plan.regions[ri].layout {
                            RegionLayout::Tiled {
                                tile_iters,
                                collapse,
                                inner_prod,
                            } => {
                                let (t, c, ip) = (*tile_iters, *collapse, *inner_prod);
                                self.emit_fwd_tiled(ri, t, c, ip, *loop_id, body, out)?;
                            }
                            RegionLayout::Segmented { segments } => {
                                let segs = segments.clone();
                                self.emit_fwd_segmented(ri, &segs, *loop_id, body, out)?;
                            }
                            RegionLayout::LayoutOnly => unreachable!("not in region maps"),
                        }
                    } else if let Some(&ri) = self.rev_region_loop.get(loop_id) {
                        match &self.plan.regions[ri].layout {
                            RegionLayout::Tiled {
                                tile_iters,
                                collapse,
                                inner_prod,
                            } => {
                                let (t, c, ip) = (*tile_iters, *collapse, *inner_prod);
                                self.emit_rev_tiled(ri, t, c, ip, *loop_id, body, out)?;
                            }
                            RegionLayout::Segmented { segments } => {
                                let segs = segments.clone();
                                self.emit_rev_segmented(ri, &segs, *loop_id, body, out)?;
                            }
                            RegionLayout::LayoutOnly => unreachable!("not in region maps"),
                        }
                    } else {
                        self.clone_loop(*loop_id, body, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn clone_loop(
        &mut self,
        old: LoopId,
        body: &[Stmt],
        out: &mut Vec<Stmt>,
    ) -> Result<(), CoreError> {
        let info = self.grad.func.loop_info(old).clone();
        let ctx = self.scope_prov();
        self.g.set_prov_ctx(ctx);
        let start = self.map_bound(info.start);
        let end = self.map_bound(info.end);
        let (nlid, niv) = self.g.add_loop(info.name.clone(), start, end, info.step);
        self.vmap[info.iv.index()] = Some(niv);
        let mut inner = Vec::new();
        // Keep an ordinal available for stream addressing in nested
        // regions. REV loops iterate ordinals directly; FWD loops derive
        // theirs from the induction variable.
        let trip = info.trip_count().unwrap_or(0);
        let is_rev = self.grad.loop_map.values().any(|&r| r == old);
        let ord = if is_rev {
            niv
        } else if let Some(s) = info.start.as_const() {
            self.ordinal_of(niv, s, info.step, &mut inner)
        } else {
            niv
        };
        self.ord_stack.push((old, ord, trip));
        self.walk(body, &mut inner)?;
        self.ord_stack.pop();
        out.push(Stmt::For {
            loop_id: nlid,
            body: inner,
        });
        Ok(())
    }

    fn rewrite_inst(&mut self, old: InstId, out: &mut Vec<Stmt>) {
        let inst = self.grad.func.inst(old).clone();
        let gp = self.grad.func.prov(old);
        if self.elide.contains(&old) {
            // Elided slot: the FWD store vanishes; REV rematerializes.
            return;
        }
        if let Some(recipe) = self.remat.get(&old).cloned() {
            // Rematerialized loads chain the primal they reconstruct and
            // record the compression rewrite that replaced them.
            self.g.set_prov_ctx(Provenance {
                created_by: self.pass(),
                rewritten_by: Some("tape-compress"),
                ..gp
            });
            let res = self.emit_remat(&recipe, out);
            self.vmap[inst.result.expect("load has result").index()] = Some(res);
            return;
        }
        if let Some(site) = self.plan.store_site.get(&old).copied() {
            // Lowered tape accesses keep the AD provenance chain (source
            // primal, region/layer from the plan) and record this pass
            // as the rewriter.
            self.g.set_prov_ctx(Provenance {
                region: Some(site.region as u32),
                rewritten_by: Some(self.pass()),
                ..gp
            });
            let val = self.map_val(inst.args[1]);
            match self.lowering {
                Lowering::Aos => {
                    let lin = self.map_val(inst.args[0]);
                    let idx = self.aos_index(site, lin, out);
                    self.emit(out, Op::Store(self.merged[site.region]), vec![idx, val]);
                }
                Lowering::Tape => {
                    let idx = self.spad_index(site, out);
                    let op = Op::TapeStore {
                        array: self.merged[site.region],
                        off: site.global_off as u32,
                    };
                    self.emit(out, op, vec![idx, val]);
                }
            }
            return;
        }
        if let Some(site) = self.plan.load_site.get(&old).copied() {
            self.g.set_prov_ctx(Provenance {
                region: Some(site.region as u32),
                rewritten_by: Some(self.pass()),
                ..gp
            });
            let res = match self.lowering {
                Lowering::Aos => {
                    let lin = self.map_val(inst.args[0]);
                    let idx = self.aos_index(site, lin, out);
                    self.emit_r(out, Op::Load(self.merged[site.region]), vec![idx])
                }
                Lowering::Tape => {
                    // The struct's linear index is the original store/load
                    // address chain, already cloned in the body — no new
                    // instructions here, only a reference.
                    let lin = self.map_val(inst.args[0]);
                    let idx = self.spad_index(site, out);
                    let op = Op::TapeLoad {
                        array: self.merged[site.region],
                        rsize: self.plan.regions[site.region].rsize_total as u32,
                        off: site.global_off as u32,
                    };
                    self.emit_r(out, op, vec![lin, idx])
                }
            };
            self.vmap[inst.result.expect("load has result").index()] = Some(res);
            return;
        }
        // Plain clone: the AD provenance carries over untouched.
        self.g.set_prov_ctx(gp);
        let args: Vec<ValueId> = inst.args.iter().map(|&a| self.map_val(a)).collect();
        let (nid, res) = self.g.add_inst(inst.op, args);
        out.push(Stmt::Inst(nid));
        if let (Some(r0), Some(r)) = (inst.result, res) {
            self.vmap[r0.index()] = Some(r);
        }
        if old == self.grad.phase_barrier {
            self.new_phase_barrier = Some(nid);
        }
    }

    /// `lin * rsize_total + global_off` — the AoS DRAM element index.
    fn aos_index(&mut self, site: Site, lin: ValueId, out: &mut Vec<Stmt>) -> ValueId {
        let r = self.ci(self.plan.regions[site.region].rsize_total as i64);
        let m = self.emit_r(out, Op::IMul, vec![lin, r]);
        let off = self.ci(site.global_off as i64);
        self.emit_r(out, Op::IAdd, vec![m, off])
    }

    /// Scratchpad entry index for a site, using the innermost open tile
    /// context of the site's region. For collapsed nests the struct index
    /// is `j * inner_prod + lin(collapsed ordinals)`.
    fn spad_index(&mut self, site: Site, out: &mut Vec<Stmt>) -> ValueId {
        let ctx = self
            .tile_stack
            .iter()
            .rev()
            .find(|c| c.region == site.region)
            .expect("tape access inside its region's layer");
        let (base, local_iv, rsize) = (ctx.base, ctx.local_iv, ctx.rsize);
        let collapsed = ctx.collapsed.clone();
        let inner_prod = ctx.inner_prod;
        match local_iv {
            Some(j) => {
                let struct_idx = if collapsed.is_empty() {
                    j
                } else {
                    let ip = self.ci(inner_prod as i64);
                    let jp = self.emit_r(out, Op::IMul, vec![j, ip]);
                    let path: Vec<LoopId> = collapsed.iter().map(|(l, _)| *l).collect();
                    let lin = self.fold_lin(&path, out);
                    self.emit_r(out, Op::IAdd, vec![jp, lin])
                };
                let r = self.ci(rsize as i64);
                let jr = self.emit_r(out, Op::IMul, vec![struct_idx, r]);
                let off = self.ci(site.local_off as i64);
                let jo = self.emit_r(out, Op::IAdd, vec![jr, off]);
                self.emit_r(out, Op::IAdd, vec![base, jo])
            }
            None => {
                let off = self.ci(site.local_off as i64);
                self.emit_r(out, Op::IAdd, vec![base, off])
            }
        }
    }

    // ---- tiled layouts -----------------------------------------------------------

    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn emit_fwd_tiled(
        &mut self,
        ri: usize,
        tile: u64,
        collapse: usize,
        inner_prod: u64,
        old: LoopId,
        body: &[Stmt],
        out: &mut Vec<Stmt>,
    ) -> Result<(), CoreError> {
        let rp = &self.plan.regions[ri];
        let (spad_base, range, rsize) = (rp.spad_base, rp.spad_range, rp.rsize_total);
        let boundary = rp.region.path.len() - 1 - collapse;
        let outer_path: Vec<LoopId> = rp.region.path[..boundary].to_vec();
        let collapsed: Vec<(LoopId, u64)> = rp.region.path[boundary + 1..]
            .iter()
            .map(|l| {
                (
                    *l,
                    self.grad
                        .func
                        .loop_info(*l)
                        .trip_count()
                        .expect("static trip"),
                )
            })
            .collect();
        let info = self.grad.func.loop_info(old).clone();
        let n = info.trip_count().expect("static trip") as i64;
        let (s, st) = (info.start.as_const().expect("static"), info.step);
        let nt = (n as u64).div_ceil(tile) as i64;
        let region_prov = Provenance::created_by(self.pass()).with_region(ri as u32);
        self.g.set_prov_ctx(region_prov);
        let (outer_lid, t_iv) = self.g.add_loop(
            format!("{}.tile", info.name),
            Bound::Const(0),
            Bound::Const(nt),
            1,
        );
        let mut ob = Vec::new();
        self.emit(
            &mut ob,
            Op::SAlloc {
                size: range,
                base: spad_base,
            },
            vec![],
        );
        let base = self.buffer_base(spad_base, range, Some(t_iv), &mut ob);
        let t_c = self.ci(tile as i64);
        let tile_lo = self.emit_r(&mut ob, Op::IMul, vec![t_iv, t_c]);
        let n_c = self.ci(n);
        let rem = self.emit_r(&mut ob, Op::ISub, vec![n_c, tile_lo]);
        let cnt = self.emit_r(&mut ob, Op::IMin, vec![t_c, rem]);
        let (inner_lid, j_iv) = self.g.add_loop(
            format!("{}.in", info.name),
            Bound::Const(0),
            Bound::Value(cnt),
            1,
        );
        let mut ib = Vec::new();
        let o = self.emit_r(&mut ib, Op::IAdd, vec![tile_lo, j_iv]);
        let orig_iv = if s == 0 && st == 1 {
            o
        } else {
            let st_c = self.ci(st);
            let m = self.emit_r(&mut ib, Op::IMul, vec![o, st_c]);
            let s_c = self.ci(s);
            self.emit_r(&mut ib, Op::IAdd, vec![m, s_c])
        };
        self.vmap[info.iv.index()] = Some(orig_iv);
        self.ord_stack.push((old, o, n as u64));
        self.tile_stack.push(TileCtx {
            region: ri,
            base,
            local_iv: Some(j_iv),
            rsize,
            collapsed: collapsed.clone(),
            inner_prod,
        });
        self.walk(body, &mut ib)?;
        self.tile_stack.pop();
        self.ord_stack.pop();
        ob.push(Stmt::For {
            loop_id: inner_lid,
            body: ib,
        });
        // FWD-Stream: spill this layer's region tile to DRAM.
        self.g.set_prov_ctx(region_prov);
        let outer_lin = self.fold_lin(&outer_path, &mut ob);
        let a = self.emit_r(&mut ob, Op::IMul, vec![outer_lin, n_c]);
        let b = self.emit_r(&mut ob, Op::IAdd, vec![a, tile_lo]);
        let r_c = self.ci((rsize as u64 * inner_prod) as i64);
        let elem = self.emit_r(&mut ob, Op::IMul, vec![b, r_c]);
        let elems = self.emit_r(&mut ob, Op::IMul, vec![cnt, r_c]);
        let op = self.stream_out_op(ri);
        self.emit(&mut ob, op, vec![base, elem, elems]);
        self.emit(&mut ob, Op::Barrier, vec![]);
        out.push(Stmt::For {
            loop_id: outer_lid,
            body: ob,
        });
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_rev_tiled(
        &mut self,
        ri: usize,
        tile: u64,
        collapse: usize,
        inner_prod: u64,
        old: LoopId,
        body: &[Stmt],
        out: &mut Vec<Stmt>,
    ) -> Result<(), CoreError> {
        let rp = &self.plan.regions[ri];
        let (spad_base, range, rsize) = (rp.spad_base, rp.spad_range, rp.rsize_total);
        let boundary = rp.region.path.len() - 1 - collapse;
        let rev_outer_path: Vec<LoopId> = rp.region.path[..boundary]
            .iter()
            .map(|l| self.grad.loop_map[l])
            .collect();
        let rev_collapsed: Vec<(LoopId, u64)> = rp.region.path[boundary + 1..]
            .iter()
            .map(|l| {
                (
                    self.grad.loop_map[l],
                    self.grad
                        .func
                        .loop_info(*l)
                        .trip_count()
                        .expect("static trip"),
                )
            })
            .collect();
        let info = self.grad.func.loop_info(old).clone();
        let n = info.trip_count().expect("static trip") as i64;
        let nt = (n as u64).div_ceil(tile) as i64;
        let region_prov = Provenance::created_by(self.pass()).with_region(ri as u32);
        self.g.set_prov_ctx(region_prov);
        let (outer_lid, t_iv) = self.g.add_loop(
            format!("{}.tile", info.name),
            Bound::Const(nt - 1),
            Bound::Const(-1),
            -1,
        );
        let mut ob = Vec::new();
        self.emit(
            &mut ob,
            Op::SAlloc {
                size: range,
                base: spad_base,
            },
            vec![],
        );
        let base = self.buffer_base(spad_base, range, Some(t_iv), &mut ob);
        let t_c = self.ci(tile as i64);
        let tile_lo = self.emit_r(&mut ob, Op::IMul, vec![t_iv, t_c]);
        let n_c = self.ci(n);
        let rem = self.emit_r(&mut ob, Op::ISub, vec![n_c, tile_lo]);
        let cnt = self.emit_r(&mut ob, Op::IMin, vec![t_c, rem]);
        // REV-Stream: preload this layer's region tile before compute.
        let outer_lin = self.fold_lin(&rev_outer_path, &mut ob);
        let a = self.emit_r(&mut ob, Op::IMul, vec![outer_lin, n_c]);
        let b = self.emit_r(&mut ob, Op::IAdd, vec![a, tile_lo]);
        let r_c = self.ci((rsize as u64 * inner_prod) as i64);
        let elem = self.emit_r(&mut ob, Op::IMul, vec![b, r_c]);
        let elems = self.emit_r(&mut ob, Op::IMul, vec![cnt, r_c]);
        let op = self.stream_in_op(ri);
        self.emit(&mut ob, op, vec![base, elem, elems]);
        let one = self.ci(1);
        let cnt_m1 = self.emit_r(&mut ob, Op::ISub, vec![cnt, one]);
        let (inner_lid, j_iv) = self.g.add_loop(
            format!("{}.in", info.name),
            Bound::Value(cnt_m1),
            Bound::Const(-1),
            -1,
        );
        let mut ib = Vec::new();
        let o = self.emit_r(&mut ib, Op::IAdd, vec![tile_lo, j_iv]);
        self.vmap[info.iv.index()] = Some(o);
        self.ord_stack.push((old, o, n as u64));
        self.tile_stack.push(TileCtx {
            region: ri,
            base,
            local_iv: Some(j_iv),
            rsize,
            collapsed: rev_collapsed,
            inner_prod,
        });
        self.walk(body, &mut ib)?;
        self.tile_stack.pop();
        self.ord_stack.pop();
        ob.push(Stmt::For {
            loop_id: inner_lid,
            body: ib,
        });
        self.g.set_prov_ctx(region_prov);
        self.emit(&mut ob, Op::Barrier, vec![]);
        out.push(Stmt::For {
            loop_id: outer_lid,
            body: ob,
        });
        Ok(())
    }

    // ---- segmented layouts (§3.7) ------------------------------------------------

    fn emit_fwd_segmented(
        &mut self,
        ri: usize,
        segments: &[Segment],
        old: LoopId,
        body: &[Stmt],
        out: &mut Vec<Stmt>,
    ) -> Result<(), CoreError> {
        let rp = &self.plan.regions[ri];
        let (spad_base, range, rsize) = (rp.spad_base, rp.spad_range, rp.rsize_total);
        let outer_path: Vec<LoopId> = rp.region.path[..rp.region.path.len() - 1].to_vec();
        let info = self.grad.func.loop_info(old).clone();
        let n = info.trip_count().expect("static trip") as i64;
        let (s, st) = (info.start.as_const().expect("static"), info.step);
        let (nlid, niv) = self
            .g
            .add_loop(info.name.clone(), info.start, info.end, info.step);
        self.vmap[info.iv.index()] = Some(niv);
        let region_prov = Provenance::created_by(self.pass()).with_region(ri as u32);
        self.g.set_prov_ctx(region_prov);
        let mut nb = Vec::new();
        let o = self.ordinal_of(niv, s, st, &mut nb);
        self.ord_stack.push((old, o, n as u64));
        let n_seg = segments.len() as i64;
        let spans = &self.grad.spans.fwd[&Some(old)];
        for (si, seg) in segments.iter().enumerate() {
            // Each segment is its own layer: stamp the segment index so
            // attribution can split the region by layer.
            let seg_prov = region_prov.with_layer(si as u32);
            self.g.set_prov_ctx(seg_prov);
            self.emit(
                &mut nb,
                Op::SAlloc {
                    size: range,
                    base: spad_base,
                },
                vec![],
            );
            // Layer parity across the whole region: o * S + si.
            let s_c = self.ci(n_seg);
            let os = self.emit_r(&mut nb, Op::IMul, vec![o, s_c]);
            let si_c = self.ci(si as i64);
            let layer_ord = self.emit_r(&mut nb, Op::IAdd, vec![os, si_c]);
            let base = self.buffer_base(spad_base, range, Some(layer_ord), &mut nb);
            self.tile_stack.push(TileCtx {
                region: ri,
                base,
                local_iv: None,
                rsize,
                collapsed: Vec::new(),
                inner_prod: 1,
            });
            let slice = segment_slice(spans, seg.src_range, body);
            self.walk(slice, &mut nb)?;
            // §3.7 redundant stores: duplicate foreign-consumed values into
            // this segment's struct.
            for (k, &t) in seg.dups.iter().enumerate() {
                let dup_store = self.grad.tapes[t].store;
                // A duplicate chains the same primal as the store it
                // shadows, placed in this segment.
                self.g.set_prov_ctx(Provenance {
                    region: Some(ri as u32),
                    layer: Some(si as u32),
                    rewritten_by: Some(self.pass()),
                    ..self.grad.func.prov(dup_store)
                });
                let store = self.grad.func.inst(dup_store).clone();
                let val = self.map_val(store.args[1]);
                let off = self.ci((seg.own.len() + k) as i64);
                let idx = self.emit_r(&mut nb, Op::IAdd, vec![base, off]);
                let op = Op::TapeStore {
                    array: self.merged[ri],
                    off: (seg.offset + seg.own.len() + k) as u32,
                };
                self.emit(&mut nb, op, vec![idx, val]);
            }
            self.tile_stack.pop();
            // FWD-Stream the segment struct.
            self.g.set_prov_ctx(seg_prov);
            let outer_lin = self.fold_lin(&outer_path, &mut nb);
            let n_c = self.ci(n);
            let a = self.emit_r(&mut nb, Op::IMul, vec![outer_lin, n_c]);
            let b = self.emit_r(&mut nb, Op::IAdd, vec![a, o]);
            let r_c = self.ci(rsize as i64);
            let m = self.emit_r(&mut nb, Op::IMul, vec![b, r_c]);
            let off_c = self.ci(seg.offset as i64);
            let elem = self.emit_r(&mut nb, Op::IAdd, vec![m, off_c]);
            let elems = self.ci(seg.size() as i64);
            let op = self.stream_out_op(ri);
            self.emit(&mut nb, op, vec![base, elem, elems]);
            self.emit(&mut nb, Op::Barrier, vec![]);
        }
        self.ord_stack.pop();
        out.push(Stmt::For {
            loop_id: nlid,
            body: nb,
        });
        Ok(())
    }

    fn emit_rev_segmented(
        &mut self,
        ri: usize,
        segments: &[Segment],
        old: LoopId,
        body: &[Stmt],
        out: &mut Vec<Stmt>,
    ) -> Result<(), CoreError> {
        let rp = &self.plan.regions[ri];
        let (spad_base, range, rsize) = (rp.spad_base, rp.spad_range, rp.rsize_total);
        let rev_outer_path: Vec<LoopId> = rp.region.path[..rp.region.path.len() - 1]
            .iter()
            .map(|l| self.grad.loop_map[l])
            .collect();
        let info = self.grad.func.loop_info(old).clone();
        let n = self.plan.regions[ri].region.trip_innermost as i64;
        let (nlid, niv) = self
            .g
            .add_loop(info.name.clone(), info.start, info.end, info.step);
        self.vmap[info.iv.index()] = Some(niv);
        let mut nb = Vec::new();
        let o = niv; // REV loops iterate ordinals.
        self.ord_stack.push((old, o, n as u64));
        let n_seg = segments.len() as i64;
        let rev_spans = &self.grad.spans.rev[&Some(old)];
        // REV visits segments last-to-first, which is the natural order of
        // the mirrored body.
        let region_prov = Provenance::created_by(self.pass()).with_region(ri as u32);
        for si in (0..segments.len()).rev() {
            let seg = &segments[si];
            let seg_prov = region_prov.with_layer(si as u32);
            self.g.set_prov_ctx(seg_prov);
            self.emit(
                &mut nb,
                Op::SAlloc {
                    size: range,
                    base: spad_base,
                },
                vec![],
            );
            let s_c = self.ci(n_seg);
            let os = self.emit_r(&mut nb, Op::IMul, vec![o, s_c]);
            let si_c = self.ci(si as i64);
            let layer_ord = self.emit_r(&mut nb, Op::IAdd, vec![os, si_c]);
            let base = self.buffer_base(spad_base, range, Some(layer_ord), &mut nb);
            // REV-Stream the segment struct in before compute.
            let outer_lin = self.fold_lin(&rev_outer_path, &mut nb);
            let n_c = self.ci(n);
            let a = self.emit_r(&mut nb, Op::IMul, vec![outer_lin, n_c]);
            let b = self.emit_r(&mut nb, Op::IAdd, vec![a, o]);
            let r_c = self.ci(rsize as i64);
            let m = self.emit_r(&mut nb, Op::IMul, vec![b, r_c]);
            let off_c = self.ci(seg.offset as i64);
            let elem = self.emit_r(&mut nb, Op::IAdd, vec![m, off_c]);
            let elems = self.ci(seg.size() as i64);
            let op = self.stream_in_op(ri);
            self.emit(&mut nb, op, vec![base, elem, elems]);
            self.tile_stack.push(TileCtx {
                region: ri,
                base,
                local_iv: None,
                rsize,
                collapsed: Vec::new(),
                inner_prod: 1,
            });
            let slice = rev_segment_slice(rev_spans, seg.src_range, body);
            self.walk(slice, &mut nb)?;
            self.tile_stack.pop();
            self.g.set_prov_ctx(seg_prov);
            self.emit(&mut nb, Op::Barrier, vec![]);
        }
        self.ord_stack.pop();
        out.push(Stmt::For {
            loop_id: nlid,
            body: nb,
        });
        Ok(())
    }
}

/// FWD-body statement slice covering source statements `[a, b)`.
fn segment_slice<'s>(spans: &[Span], (a, b): (usize, usize), body: &'s [Stmt]) -> &'s [Stmt] {
    let start = spans
        .iter()
        .find(|sp| sp.src_stmt == a)
        .map(|sp| sp.start)
        .expect("span for segment start");
    let end = spans
        .iter()
        .find(|sp| sp.src_stmt == b - 1)
        .map(|sp| sp.end)
        .expect("span for segment end");
    &body[start..end]
}

/// REV-body statement slice covering source statements `[a, b)` — the
/// mirrored body stores them reversed, so the slice starts at `b - 1`.
fn rev_segment_slice<'s>(spans: &[Span], (a, b): (usize, usize), body: &'s [Stmt]) -> &'s [Stmt] {
    let start = spans
        .iter()
        .find(|sp| sp.src_stmt == b - 1)
        .map(|sp| sp.start)
        .expect("rev span for segment end");
    let end = spans
        .iter()
        .find(|sp| sp.src_stmt == a)
        .map(|sp| sp.end)
        .expect("rev span for segment start");
    &body[start..end]
}
