//! # tapeflow-core
//!
//! The **Tapeflow compiler** — the paper's primary contribution. Starting
//! from the gradient function an AD front-end produces
//! ([`tapeflow_autodiff::Gradient`]), four passes turn the implicit,
//! cache-orchestrated tape into an explicitly streamed one:
//!
//! * **Pass 1 — Region formation** ([`regions`]): merges the per-SSA-value
//!   struct-of-arrays tape arrays into per-loop **array-of-structs
//!   regions**, packing values produced together (and consumed together
//!   in REV) into adjacent slots (paper §3.3, Algorithm 1).
//! * **Pass 2 — Layering** ([`layering`]): schedules execution into
//!   **layers** sized to the on-chip scratchpad — tiling a region's loop
//!   when a struct fits, or cutting the loop body into statement
//!   *segments* when a single iteration overflows the scratchpad,
//!   duplicating tape stores whose consumers land in other segments
//!   (paper §3.4 Algorithm 2 and §3.7).
//! * **Pass 3 — Explicit streaming** ([`streams`]): terminal lowering to
//!   first-class stream-command IR — `FWD-Stream` / `REV-Stream` commands
//!   at layer boundaries so tape tiles move between DRAM and the
//!   scratchpad just in time, double-buffered so streams run ahead of
//!   compute (paper §3.5). The result is a complete, verifiable program
//!   state, not a snapshot.
//! * **Pass 4 — Scratchpad indexing** ([`spad_index`]): a standalone
//!   rewrite of the stream-command IR, turning tape loads and stores into
//!   scratchpad accesses with compiler-generated indices (paper §3.6,
//!   Algorithm 3).
//! * **Pass 5 — Tape compression** ([`compress`], opt-in): elides tape
//!   slots whose values are rematerializable affine reads of unwritten
//!   inputs and narrows integer-valued slots to their proven byte width,
//!   shrinking the streamed DRAM footprint before Passes 3–4 consume the
//!   plan.
//!
//! [`compile`] runs the pipeline; [`CompileMode::AosOnly`] stops after the
//! layout change (both layouts still go through the cache), which is the
//! configuration behind the paper's Figure 4.3.
//!
//! ```rust
//! use tapeflow_ir::{ArrayKind, FunctionBuilder, Scalar};
//! use tapeflow_autodiff::{differentiate, AdOptions};
//! use tapeflow_core::{compile, CompileOptions};
//!
//! let mut b = FunctionBuilder::new("sumexp2");
//! let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
//! let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
//! b.for_loop("i", 0, 64, |b, i| {
//!     let v = b.load(x, i);
//!     let e = b.exp(v);
//!     let sq = b.fmul(e, e);
//!     let c = b.load_cell(loss);
//!     let s = b.fadd(c, sq);
//!     b.store_cell(loss, s);
//! });
//! let f = b.finish();
//! let grad = differentiate(&f, &AdOptions::new(vec![x], vec![loss])).unwrap();
//! // A 128 B scratchpad holds 16 entries -> 8-entry layers once double
//! // buffered, so the 64 iterations split into 8 forward layers.
//! let compiled = compile(&grad, &CompileOptions::with_spad_bytes(128)).unwrap();
//! assert_eq!(compiled.stats.fwd_layers, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apply;
pub mod compress;
pub mod layering;
pub mod lint;
pub mod pipeline;
pub mod regions;
pub mod spad_index;
pub mod streams;

use std::error::Error;
use std::fmt;
use tapeflow_ir::{Function, InstId};

/// How far to run the pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompileMode {
    /// All four passes: AoS regions, layers, streams, scratchpad.
    #[default]
    Full,
    /// Pass 1 only: array-of-structs layout, tape still cache-resident
    /// (the paper's Figure 4.3 configuration).
    AosOnly,
}

/// Scratchpad specification and pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Scratchpad capacity in 8 B entries (paper baseline: 1 KB = 128).
    pub spad_entries: usize,
    /// Double-buffer layers so streams overlap the adjacent layer's
    /// compute (halves the per-layer capacity).
    pub double_buffer: bool,
    /// Pipeline depth.
    pub mode: CompileMode,
    /// Run Pass 5 (`tape-compress`) between layering and the terminal
    /// lowering: elide rematerializable tape slots and narrow
    /// integer-valued ones (only meaningful in [`CompileMode::Full`]).
    pub compress_tape: bool,
}

impl Default for CompileOptions {
    /// The paper's baseline: 1 KB scratchpad (128 × 8 B entries), double
    /// buffered, full pipeline.
    fn default() -> Self {
        CompileOptions {
            spad_entries: 128,
            double_buffer: true,
            mode: CompileMode::Full,
            compress_tape: false,
        }
    }
}

impl CompileOptions {
    /// Convenience: a full-pipeline configuration with the given
    /// scratchpad size in **bytes** (like the paper's 64 B – 2 KB sweep).
    pub fn with_spad_bytes(bytes: usize) -> Self {
        CompileOptions {
            spad_entries: (bytes / 8).max(1),
            ..CompileOptions::default()
        }
    }
}

/// Aggregate statistics about a compiled program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Regions formed by Pass 1 (excluding unmanaged top-level tapes).
    pub regions: usize,
    /// Dynamic forward layers (= SAlloc executions in FWD).
    pub fwd_layers: u64,
    /// Tape slots duplicated across segments (§3.7 redundant stores).
    pub duplicated_slots: usize,
    /// Total bytes of merged tape regions in DRAM.
    pub merged_tape_bytes: u64,
    /// Scratchpad entries the program was compiled for.
    pub spad_entries: usize,
}

/// Result of [`compile`].
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The rewritten gradient function.
    pub func: Function,
    /// The FWD/REV phase barrier in the rewritten function.
    pub phase_barrier: InstId,
    /// The layer plan the function was compiled against.
    pub plan: layering::LayerPlan,
    /// Pipeline configuration used.
    pub options: CompileOptions,
    /// The Pass 5 tape encoding the program was lowered under, when
    /// `tape-compress` ran.
    pub encoding: Option<compress::TapeEncoding>,
    /// Summary statistics.
    pub stats: CompileStats,
}

/// Errors raised by the Tapeflow pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// The scratchpad cannot hold even one struct of some region *after*
    /// segmentation (a single statement stores more slots than a layer
    /// can hold).
    RegionTooLarge {
        /// Index of the offending region.
        region: usize,
        /// Slots required by one indivisible statement.
        slots: usize,
        /// Per-layer capacity in entries.
        capacity: usize,
    },
    /// The scratchpad is too small to give every nesting level a buffer.
    SpadTooSmall {
        /// Entries available.
        entries: usize,
        /// Nesting levels requiring buffers.
        levels: usize,
    },
    /// The rewritten function failed verification (internal bug).
    Internal(tapeflow_ir::verify::VerifyError),
    /// The pass manager's post-pass IR verification failed (names the
    /// offending pass — internal bug in that pass).
    PassVerify {
        /// Registered name of the pass after which verification failed.
        pass: &'static str,
        /// The verifier's diagnosis.
        error: tapeflow_ir::verify::VerifyError,
    },
    /// The AD front-end failed inside the pipeline (`ad` pass).
    Ad(tapeflow_autodiff::AdError),
    /// `--passes` named a pass outside the registry.
    UnknownPass {
        /// The unrecognized name.
        name: String,
    },
    /// A pass's required artifact is not available when the pass runs —
    /// a dependency-violating `--passes` order (e.g. `spad-index` without
    /// `streams`) or a pipeline seeded without the needed state.
    MissingArtifact {
        /// The pass whose requirement is unmet.
        pass: &'static str,
        /// The missing artifact (the violated dependency edge).
        artifact: pipeline::Artifact,
    },
    /// A pass conflicts with an artifact an earlier pass already produced
    /// (e.g. two terminal lowerings, or `opt` after `ad`).
    ArtifactConflict {
        /// The pass that cannot run.
        pass: &'static str,
        /// The already-present artifact it clashes with.
        artifact: pipeline::Artifact,
    },
    /// The pipeline itself is assembled or driven wrong in some other
    /// way: duplicate pass name, missing AD options, or no terminal
    /// lowering.
    Pipeline(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RegionTooLarge {
                region,
                slots,
                capacity,
            } => write!(
                f,
                "region {region}: a single statement needs {slots} tape slots but a layer holds {capacity}"
            ),
            CoreError::SpadTooSmall { entries, levels } => write!(
                f,
                "scratchpad of {entries} entries cannot serve {levels} nesting levels"
            ),
            CoreError::Internal(e) => write!(f, "rewritten function invalid: {e}"),
            CoreError::PassVerify { pass, error } => {
                write!(f, "IR invalid after pass `{pass}`: {error}")
            }
            CoreError::Ad(e) => write!(f, "ad pass: {e}"),
            CoreError::UnknownPass { name } => {
                let registry: Vec<&str> = pipeline::registered_passes()
                    .iter()
                    .map(|(n, _)| *n)
                    .collect();
                write!(
                    f,
                    "unknown pass {name:?} (registered: {})",
                    registry.join(", ")
                )
            }
            CoreError::MissingArtifact { pass, artifact } => {
                let producers = artifact.producers();
                if producers.is_empty() {
                    write!(
                        f,
                        "pass `{pass}` requires `{artifact}`, which only running the pipeline from a source function provides"
                    )
                } else {
                    write!(
                        f,
                        "pass `{pass}` requires `{artifact}`, produced by `{}` — add it before `{pass}`",
                        producers.join("` or `")
                    )
                }
            }
            CoreError::ArtifactConflict { pass, artifact } => write!(
                f,
                "pass `{pass}` conflicts with `{artifact}`, already produced by `{}` earlier in the pipeline",
                artifact.producers().join("` or `")
            ),
            CoreError::Pipeline(msg) => write!(f, "pipeline: {msg}"),
        }
    }
}

impl Error for CoreError {}

impl From<tapeflow_ir::verify::VerifyError> for CoreError {
    fn from(e: tapeflow_ir::verify::VerifyError) -> Self {
        CoreError::Internal(e)
    }
}

impl From<tapeflow_autodiff::AdError> for CoreError {
    fn from(e: tapeflow_autodiff::AdError) -> Self {
        CoreError::Ad(e)
    }
}

/// Runs the Tapeflow pipeline over a gradient function.
///
/// This is a thin wrapper over [`pipeline::PipelineBuilder`]: it seeds
/// the pipeline state with `grad` and runs the standard pass sequence for
/// `options.mode` (`regions → layering → streams → spad-index` for
/// [`CompileMode::Full`], `regions → aos-layout` for
/// [`CompileMode::AosOnly`]). Use the builder directly for custom pass
/// orders, per-pass timing or post-pass IR snapshots.
///
/// # Errors
///
/// See [`CoreError`].
pub fn compile(
    grad: &tapeflow_autodiff::Gradient,
    options: &CompileOptions,
) -> Result<CompiledProgram, CoreError> {
    pipeline::PipelineBuilder::for_options(options)
        .run_gradient(grad)?
        .into_compiled()
}
