//! The pass manager: every stage of the Tapeflow compilation flow —
//! `ir::opt` cleanups, the AD transform and core Passes 1–5 — as a
//! registered [`Pass`] running over a shared [`PipelineState`], assembled
//! by a [`PipelineBuilder`] and reported on by a [`PipelineReport`].
//!
//! This is the architecture the paper's toolflow implies (Enzyme sits
//! inside LLVM's pass pipeline; Tapeflow's passes follow it): each stage
//! is a named pass declaring the typed [`Artifact`]s it *requires*,
//! *produces* and *conflicts with*, the IR is verified after every pass
//! in checked mode, and per-pass wall time, [`CompileStats`] and optional
//! post-pass IR snapshots are recorded — the in-tree analogue of `opt`'s
//! `--time-passes` / `--print-after-all`.
//!
//! Registered passes, in canonical order:
//!
//! | name | stage | requires | produces |
//! |---|---|---|---|
//! | `opt` | const-fold / CSE / DCE (the paper's `-O3` assumption) | source-ir | source-ir |
//! | `ad` | reverse-mode AD: FWD + tape + REV gradient function | source-ir | gradient-ir |
//! | `regions` | Pass 1 (§3.3): merge SoA tape arrays into AoS regions | gradient-ir | regions |
//! | `layering` | Pass 2 (§3.4/§3.7): scratchpad-sized layers | gradient-ir, regions | layer-plan |
//! | `value-ranges` | whole-program value-range analysis (abstract interpretation) | gradient-ir | value-ranges |
//! | `tape-compress` | Pass 5: elide / narrow tape slots per region | gradient-ir, layer-plan, value-ranges | tape-encoding |
//! | `streams` | Pass 3 (§3.5): terminal lowering to stream-command IR | gradient-ir, layer-plan | streams-ir |
//! | `spad-index` | Pass 4 (§3.6): tape ops → scratchpad accesses | streams-ir | compiled-ir |
//! | `aos-layout` | terminal AoS lowering ([`CompileMode::AosOnly`]) | gradient-ir, regions | layer-plan, compiled-ir |
//!
//! `streams` and `spad-index` are genuinely independent rewrites:
//! `streams` materializes a complete, verified stream-command program
//! ([`crate::streams::StreamsProgram`]) and `spad-index` consumes that
//! form — there is no fused walk and no snapshot side-channel. Pipeline
//! assembly ([`PipelineBuilder::from_names`]) and execution both validate
//! the artifact graph, so a missing or conflicting dependency is a
//! structured error naming the violated edge.
//!
//! [`crate::compile`] is a thin wrapper over the builder, so the standard
//! entry point and the pass manager can never drift apart.
//!
//! ```rust
//! use tapeflow_ir::{ArrayKind, FunctionBuilder, Scalar};
//! use tapeflow_autodiff::AdOptions;
//! use tapeflow_core::pipeline::PipelineBuilder;
//! use tapeflow_core::CompileOptions;
//!
//! let mut b = FunctionBuilder::new("pipe");
//! let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
//! let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
//! b.for_loop("i", 0, 64, |b, i| {
//!     let v = b.load(x, i);
//!     let e = b.exp(v);
//!     let c = b.load_cell(loss);
//!     let s = b.fadd(c, e);
//!     b.store_cell(loss, s);
//! });
//! let f = b.finish();
//! let run = PipelineBuilder::full(CompileOptions::default(), AdOptions::new(vec![x], vec![loss]))
//!     .with_verify(true)
//!     .run_source(&f)
//!     .unwrap();
//! assert_eq!(run.report.pass_names(), ["opt", "ad", "regions", "layering", "streams", "spad-index"]);
//! let compiled = run.into_compiled().unwrap();
//! assert!(compiled.stats.fwd_layers > 0);
//! ```

use crate::apply::{compile_stats, rewrite, Lowering};
use crate::compress::{compress_tapes, TapeEncoding};
use crate::layering::{self, LayerPlan, RegionLayout};
use crate::regions::{self, FormedRegions};
use crate::spad_index::apply_spad_index;
use crate::streams::{lower_streams, StreamsProgram};
use crate::{CompileMode, CompileOptions, CompileStats, CompiledProgram, CoreError};
use std::fmt;
use std::time::{Duration, Instant};
use tapeflow_autodiff::{differentiate, AdOptions, Gradient};
use tapeflow_ir::lint::{self, Diagnostic, LintConfig};
use tapeflow_ir::vra::{self, ValueRanges};
use tapeflow_ir::{opt::OptStats, pretty, verify, ArrayKind, Function, Op};

/// A typed pipeline artifact: one kind of state a pass can require,
/// produce, or conflict with. The artifact graph replaces ad-hoc
/// prerequisite tables — [`PipelineBuilder::from_names`] simulates it at
/// assembly time and [`PipelineBuilder::run_source`] re-checks it per
/// pass at execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// The (possibly optimized) source function
    /// ([`PipelineState::func`]).
    SourceIr,
    /// The AD front-end's gradient ([`PipelineState::gradient`]).
    GradientIr,
    /// Pass 1's formed regions ([`PipelineState::formed`]).
    Regions,
    /// Pass 2's layer plan ([`PipelineState::plan`]).
    LayerPlan,
    /// The value-range analysis result ([`PipelineState::ranges`]).
    ValueRanges,
    /// Pass 5's tape encoding ([`PipelineState::encoding`]).
    TapeEncoding,
    /// Pass 3's terminal stream-command program
    /// ([`PipelineState::streams`]).
    StreamsIr,
    /// A terminal lowering's compiled program
    /// ([`PipelineState::compiled`]).
    CompiledIr,
}

impl Artifact {
    /// Stable kebab-case name used in errors and reports.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::SourceIr => "source-ir",
            Artifact::GradientIr => "gradient-ir",
            Artifact::Regions => "regions",
            Artifact::LayerPlan => "layer-plan",
            Artifact::ValueRanges => "value-ranges",
            Artifact::TapeEncoding => "tape-encoding",
            Artifact::StreamsIr => "streams-ir",
            Artifact::CompiledIr => "compiled-ir",
        }
    }

    /// Registered passes that produce this artifact (empty for
    /// `source-ir`, which is seeded by `run_source`).
    pub fn producers(self) -> &'static [&'static str] {
        match self {
            Artifact::SourceIr => &[],
            Artifact::GradientIr => &["ad"],
            Artifact::Regions => &["regions"],
            Artifact::LayerPlan => &["layering", "aos-layout"],
            Artifact::ValueRanges => &["value-ranges"],
            Artifact::TapeEncoding => &["tape-compress"],
            Artifact::StreamsIr => &["streams"],
            Artifact::CompiledIr => &["spad-index", "aos-layout"],
        }
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The evolving program plus the typed artifacts passes read and write.
/// Transform passes replace [`PipelineState::current_ir`]'s view;
/// analysis passes (Passes 1, 2 and 5) only attach artifacts.
#[derive(Debug, Default)]
pub struct PipelineState {
    /// The source function (set by [`PipelineBuilder::run_source`],
    /// replaced by the `opt` pass's output).
    pub func: Option<Function>,
    /// The AD front-end's output (set by the `ad` pass, or seeded by
    /// [`PipelineBuilder::run_gradient`]).
    pub gradient: Option<Gradient>,
    /// Pass 1 artifact: formed regions.
    pub formed: Option<FormedRegions>,
    /// Pass 2 artifact: the layer plan (rewritten in place by
    /// `tape-compress` when that pass runs).
    pub plan: Option<LayerPlan>,
    /// `value-ranges` artifact: proven ranges over the gradient function
    /// (consumed by `tape-compress` and the lint front-end).
    pub ranges: Option<ValueRanges>,
    /// Pass 5 artifact: the tape encoding.
    pub encoding: Option<TapeEncoding>,
    /// Pass 3 artifact: the terminal stream-command program.
    pub streams: Option<StreamsProgram>,
    /// Terminal lowering output (`spad-index` or `aos-layout`).
    pub compiled: Option<CompiledProgram>,
    /// `opt` pass statistics.
    pub opt_stats: Option<OptStats>,
}

impl PipelineState {
    /// Whether the typed artifact is present in the state.
    pub fn has(&self, a: Artifact) -> bool {
        match a {
            Artifact::SourceIr => self.func.is_some(),
            Artifact::GradientIr => self.gradient.is_some(),
            Artifact::Regions => self.formed.is_some(),
            Artifact::LayerPlan => self.plan.is_some(),
            Artifact::ValueRanges => self.ranges.is_some(),
            Artifact::TapeEncoding => self.encoding.is_some(),
            Artifact::StreamsIr => self.streams.is_some(),
            Artifact::CompiledIr => self.compiled.is_some(),
        }
    }

    /// The most-lowered function currently in the state: the compiled
    /// program if a terminal pass ran, else the stream-command program,
    /// else the gradient function, else the (possibly optimized) source.
    pub fn current_ir(&self) -> Option<&Function> {
        if let Some(c) = &self.compiled {
            return Some(&c.func);
        }
        if let Some(sp) = &self.streams {
            return Some(&sp.func);
        }
        if let Some(g) = &self.gradient {
            return Some(&g.func);
        }
        self.func.as_ref()
    }

    /// Compile statistics as far as the artifacts determine them: full
    /// [`CompileStats`] once a terminal pass ran, partial counts from the
    /// formed regions / layer plan before that.
    pub fn stats(&self) -> CompileStats {
        if let Some(c) = &self.compiled {
            return c.stats;
        }
        let mut s = CompileStats::default();
        if let Some(f) = &self.formed {
            s.regions = f.regions.len();
        }
        if let Some(p) = &self.plan {
            s.regions = p.regions.len();
            s.fwd_layers = p.total_fwd_layers;
            s.duplicated_slots = p
                .regions
                .iter()
                .map(|r| match &r.layout {
                    RegionLayout::Segmented { segments } => {
                        segments.iter().map(|seg| seg.dups.len()).sum()
                    }
                    _ => 0,
                })
                .sum();
            s.merged_tape_bytes = p.regions.iter().map(|r| r.merged_len() as u64 * 8).sum();
        }
        s
    }
}

/// What a pass hands back to the manager on success.
#[derive(Clone, Debug, Default)]
pub struct PassOutcome {
    /// One-line pass-specific detail for the report (counts, sizes).
    pub detail: String,
}

impl PassOutcome {
    fn detail(detail: String) -> Self {
        PassOutcome { detail }
    }
}

/// One registered stage of the compilation flow.
pub trait Pass {
    /// Registry name (`opt`, `ad`, `regions`, `layering`, `value-ranges`,
    /// `tape-compress`, `streams`, `spad-index`, `aos-layout`).
    fn name(&self) -> &'static str;
    /// One-line description for reports and `--passes help`.
    fn description(&self) -> &'static str;
    /// Artifacts that must be present before the pass runs.
    fn requires(&self) -> &'static [Artifact] {
        &[]
    }
    /// Artifacts the pass leaves in the state.
    fn produces(&self) -> &'static [Artifact] {
        &[]
    }
    /// Artifacts that must *not* be present when the pass runs (e.g. a
    /// terminal lowering forbids an existing compiled program).
    fn conflicts(&self) -> &'static [Artifact] {
        &[]
    }
    /// Runs the pass over the evolving state. The manager has already
    /// checked [`Pass::requires`]/[`Pass::conflicts`] against the state.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`]; a direct call with missing prerequisite
    /// artifacts surfaces as [`CoreError::MissingArtifact`].
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError>;
}

fn missing(pass: &'static str, artifact: Artifact) -> CoreError {
    CoreError::MissingArtifact { pass, artifact }
}

// ---- the registered passes -------------------------------------------------

struct OptPass;

impl Pass for OptPass {
    fn name(&self) -> &'static str {
        "opt"
    }
    fn description(&self) -> &'static str {
        "const-fold / CSE / DCE cleanups (the paper's -O3 assumption)"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[Artifact::SourceIr]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::SourceIr]
    }
    fn conflicts(&self) -> &'static [Artifact] {
        // A source rewrite after `ad` would invalidate the AD maps.
        &[Artifact::GradientIr]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        if state.gradient.is_some() {
            return Err(CoreError::ArtifactConflict {
                pass: "opt",
                artifact: Artifact::GradientIr,
            });
        }
        let func = state
            .func
            .take()
            .ok_or_else(|| missing("opt", Artifact::SourceIr))?;
        let (g, stats) = tapeflow_ir::opt::optimize(&func);
        let detail = format!(
            "folded {}, cse {}, dce {}",
            stats.folded, stats.cse_hits, stats.dce_removed
        );
        state.func = Some(g);
        state.opt_stats = Some(stats);
        Ok(PassOutcome::detail(detail))
    }
}

struct AdPass {
    opts: AdOptions,
}

impl Pass for AdPass {
    fn name(&self) -> &'static str {
        "ad"
    }
    fn description(&self) -> &'static str {
        "reverse-mode AD: FWD + tape + REV gradient function"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[Artifact::SourceIr]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::GradientIr]
    }
    fn conflicts(&self) -> &'static [Artifact] {
        &[Artifact::GradientIr]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        if state.gradient.is_some() {
            return Err(CoreError::ArtifactConflict {
                pass: "ad",
                artifact: Artifact::GradientIr,
            });
        }
        let func = state
            .func
            .as_ref()
            .ok_or_else(|| missing("ad", Artifact::SourceIr))?;
        let grad = differentiate(func, &self.opts)?;
        let detail = format!(
            "taped {} values ({} B), recomputed {}, adjoint cells {}",
            grad.stats.taped_values,
            grad.stats.tape_bytes,
            grad.stats.recomputed_values,
            grad.stats.adjoint_cells
        );
        state.gradient = Some(grad);
        Ok(PassOutcome::detail(detail))
    }
}

struct RegionsPass;

impl Pass for RegionsPass {
    fn name(&self) -> &'static str {
        "regions"
    }
    fn description(&self) -> &'static str {
        "Pass 1 (3.3): merge SoA tape arrays into AoS regions"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[Artifact::GradientIr]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::Regions]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("regions", Artifact::GradientIr))?;
        let formed = regions::form_regions(grad);
        let detail = format!(
            "{} regions, {} unmanaged tapes, {} nesting levels",
            formed.regions.len(),
            formed.unmanaged.len(),
            formed.levels
        );
        state.formed = Some(formed);
        Ok(PassOutcome::detail(detail))
    }
}

struct LayeringPass {
    opts: CompileOptions,
}

impl Pass for LayeringPass {
    fn name(&self) -> &'static str {
        "layering"
    }
    fn description(&self) -> &'static str {
        "Pass 2 (3.4/3.7): schedule FWD/REV into scratchpad-sized layers"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[Artifact::GradientIr, Artifact::Regions]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::LayerPlan]
    }
    fn conflicts(&self) -> &'static [Artifact] {
        &[Artifact::CompiledIr]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("layering", Artifact::GradientIr))?;
        let formed = state
            .formed
            .clone()
            .ok_or_else(|| missing("layering", Artifact::Regions))?;
        let plan = layering::plan_layers(grad, formed, &self.opts)?;
        // Extend provenance with the placement the plan just decided:
        // every managed tape store/load in the gradient learns its
        // region (and, for segmented layouts, the segment it runs in as
        // its static layer — tiled layers are an iteration-space split,
        // so no single static layer exists for them).
        let grad_mut = state
            .gradient
            .as_mut()
            .ok_or_else(|| missing("layering", Artifact::GradientIr))?;
        for (&inst, site) in plan.store_site.iter().chain(plan.load_site.iter()) {
            let mut p = grad_mut.func.prov(inst).with_region(site.region as u32);
            if let Some(seg) = site.segment {
                p = p.with_layer(seg as u32);
            }
            grad_mut.func.set_prov(inst, p);
        }
        let segmented = plan
            .regions
            .iter()
            .filter(|r| matches!(r.layout, RegionLayout::Segmented { .. }))
            .count();
        let detail = format!(
            "{} fwd layers, {} segmented regions, {} duplicated slots",
            plan.total_fwd_layers,
            segmented,
            plan.regions
                .iter()
                .map(|r| match &r.layout {
                    RegionLayout::Segmented { segments } =>
                        segments.iter().map(|s| s.dups.len()).sum(),
                    _ => 0,
                })
                .sum::<usize>()
        );
        state.plan = Some(plan);
        Ok(PassOutcome::detail(detail))
    }
}

struct ValueRangesPass;

impl Pass for ValueRangesPass {
    fn name(&self) -> &'static str {
        "value-ranges"
    }
    fn description(&self) -> &'static str {
        "whole-program value-range analysis (array-content abstract interpretation)"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[Artifact::GradientIr]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::ValueRanges]
    }
    fn conflicts(&self) -> &'static [Artifact] {
        &[Artifact::ValueRanges]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("value-ranges", Artifact::GradientIr))?;
        let ranges = vra::value_ranges(&grad.func);
        let (bi, ui) = ranges.int_census(&grad.func);
        let (bf, uf) = ranges.float_census(&grad.func);
        let detail = format!(
            "bounded {bi}/{} i64 values, {bf}/{} f64 values, {} nonfinite finding(s)",
            bi + ui,
            bf + uf,
            ranges.diagnostics.len()
        );
        state.ranges = Some(ranges);
        Ok(PassOutcome::detail(detail))
    }
}

struct TapeCompressPass;

impl Pass for TapeCompressPass {
    fn name(&self) -> &'static str {
        "tape-compress"
    }
    fn description(&self) -> &'static str {
        "Pass 5: elide rematerializable slots, narrow provably small slots"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[
            Artifact::GradientIr,
            Artifact::LayerPlan,
            Artifact::ValueRanges,
        ]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::TapeEncoding]
    }
    fn conflicts(&self) -> &'static [Artifact] {
        // Must run before the terminal lowerings consume the plan.
        &[
            Artifact::TapeEncoding,
            Artifact::StreamsIr,
            Artifact::CompiledIr,
        ]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        let plan = state
            .plan
            .take()
            .ok_or_else(|| missing("tape-compress", Artifact::LayerPlan))?;
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("tape-compress", Artifact::GradientIr))?;
        let ranges = state
            .ranges
            .as_ref()
            .ok_or_else(|| missing("tape-compress", Artifact::ValueRanges))?;
        let (plan, enc) = compress_tapes(grad, plan, ranges);
        let detail = format!(
            "elided {}/{} slots, narrowed {}, tape bytes {} -> {}",
            enc.elided_slots,
            enc.slots.len(),
            enc.narrowed_slots,
            enc.bytes_before,
            enc.bytes_after
        );
        state.plan = Some(plan);
        state.encoding = Some(enc);
        Ok(PassOutcome::detail(detail))
    }
}

struct StreamsPass {
    opts: CompileOptions,
}

impl Pass for StreamsPass {
    fn name(&self) -> &'static str {
        "streams"
    }
    fn description(&self) -> &'static str {
        "Pass 3 (3.5): terminal lowering to stream-command IR"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[Artifact::GradientIr, Artifact::LayerPlan]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::StreamsIr]
    }
    fn conflicts(&self) -> &'static [Artifact] {
        &[Artifact::StreamsIr, Artifact::CompiledIr]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("streams", Artifact::GradientIr))?;
        let plan = state
            .plan
            .clone()
            .ok_or_else(|| missing("streams", Artifact::LayerPlan))?;
        let sp = lower_streams(grad, plan, self.opts, state.encoding.clone())?;
        let (stores, loads, outs) =
            sp.func
                .insts()
                .iter()
                .fold((0, 0, 0), |(s, l, o), i| match i.op {
                    Op::TapeStore { .. } => (s + 1, l, o),
                    Op::TapeLoad { .. } => (s, l + 1, o),
                    Op::StreamOut(_) | Op::StreamOutC { .. } => (s, l, o + 1),
                    _ => (s, l, o),
                });
        let detail = format!("{stores} tape stores, {loads} tape loads, {outs} stream pairs");
        state.streams = Some(sp);
        Ok(PassOutcome::detail(detail))
    }
}

struct SpadIndexPass;

impl Pass for SpadIndexPass {
    fn name(&self) -> &'static str {
        "spad-index"
    }
    fn description(&self) -> &'static str {
        "Pass 4 (3.6): rewrite tape accesses into scratchpad indices"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[Artifact::StreamsIr]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::CompiledIr]
    }
    fn conflicts(&self) -> &'static [Artifact] {
        &[Artifact::CompiledIr]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        let sp = state
            .streams
            .as_ref()
            .ok_or_else(|| missing("spad-index", Artifact::StreamsIr))?;
        let compiled = apply_spad_index(sp)?;
        let detail = format!(
            "{} merged tape bytes, {} spad entries",
            compiled.stats.merged_tape_bytes, compiled.stats.spad_entries
        );
        state.compiled = Some(compiled);
        Ok(PassOutcome::detail(detail))
    }
}

struct AosLayoutPass {
    opts: CompileOptions,
}

impl Pass for AosLayoutPass {
    fn name(&self) -> &'static str {
        "aos-layout"
    }
    fn description(&self) -> &'static str {
        "terminal AoS lowering: merged regions stay cache-resident (Fig 4.3)"
    }
    fn requires(&self) -> &'static [Artifact] {
        &[Artifact::GradientIr, Artifact::Regions]
    }
    fn produces(&self) -> &'static [Artifact] {
        &[Artifact::LayerPlan, Artifact::CompiledIr]
    }
    fn conflicts(&self) -> &'static [Artifact] {
        &[
            Artifact::LayerPlan,
            Artifact::TapeEncoding,
            Artifact::StreamsIr,
            Artifact::CompiledIr,
        ]
    }
    fn run(&self, state: &mut PipelineState) -> Result<PassOutcome, CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("aos-layout", Artifact::GradientIr))?;
        let formed = state
            .formed
            .clone()
            .ok_or_else(|| missing("aos-layout", Artifact::Regions))?;
        let opts = CompileOptions {
            mode: CompileMode::AosOnly,
            ..self.opts
        };
        let plan = layering::plan_layers(grad, formed, &opts)?;
        state.plan = Some(plan.clone());
        let (func, phase_barrier) = rewrite(grad, &plan, opts, Lowering::Aos, None)?;
        let stats = compile_stats(&plan, &opts);
        let detail = format!("{} merged tape bytes", stats.merged_tape_bytes);
        state.compiled = Some(CompiledProgram {
            func,
            phase_barrier,
            plan,
            options: opts,
            encoding: None,
            stats,
        });
        Ok(PassOutcome::detail(detail))
    }
}

// ---- builder ---------------------------------------------------------------

/// Registered pass names with one-line descriptions, in canonical order.
pub fn registered_passes() -> [(&'static str, &'static str); 9] {
    [
        ("opt", OptPass.description()),
        (
            "ad",
            AdPass {
                opts: AdOptions::new(vec![], vec![]),
            }
            .description(),
        ),
        ("regions", RegionsPass.description()),
        (
            "layering",
            LayeringPass {
                opts: CompileOptions::default(),
            }
            .description(),
        ),
        ("value-ranges", ValueRangesPass.description()),
        ("tape-compress", TapeCompressPass.description()),
        (
            "streams",
            StreamsPass {
                opts: CompileOptions::default(),
            }
            .description(),
        ),
        ("spad-index", SpadIndexPass.description()),
        (
            "aos-layout",
            AosLayoutPass {
                opts: CompileOptions::default(),
            }
            .description(),
        ),
    ]
}

/// Assembles and runs pass pipelines.
///
/// The standard shapes are [`PipelineBuilder::full`] (the paper's whole
/// toolflow), [`PipelineBuilder::aos_only`] (Fig 4.3's Pass-1-only
/// configuration), [`PipelineBuilder::enzyme_baseline`] (opt + AD, no
/// Tapeflow passes) and [`PipelineBuilder::for_options`] (the
/// gradient-seeded suffix [`crate::compile`] runs). Custom orders come
/// from [`PipelineBuilder::from_names`].
pub struct PipelineBuilder {
    passes: Vec<Box<dyn Pass + Send + Sync>>,
    verify: bool,
    capture_ir: bool,
    lint: Option<LintConfig>,
}

impl fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("passes", &self.pass_names())
            .field("verify", &self.verify)
            .field("capture_ir", &self.capture_ir)
            .field("lint", &self.lint)
            .finish()
    }
}

impl PipelineBuilder {
    /// An empty pipeline; add passes via [`PipelineBuilder::push`]. IR
    /// verification after every pass defaults to on in debug builds.
    pub fn empty() -> Self {
        PipelineBuilder {
            passes: Vec::new(),
            verify: cfg!(debug_assertions),
            capture_ir: false,
            lint: None,
        }
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn push(mut self, pass: Box<dyn Pass + Send + Sync>) -> Self {
        self.passes.push(pass);
        self
    }

    /// The standard gradient-seeded pipeline for `options.mode`:
    /// `regions → layering → streams → spad-index` for
    /// [`CompileMode::Full`] (plus `tape-compress` between `layering` and
    /// `streams` when `options.compress_tape` is set), `regions →
    /// aos-layout` for [`CompileMode::AosOnly`]. This is what
    /// [`crate::compile`] runs.
    pub fn for_options(options: &CompileOptions) -> Self {
        let opts = *options;
        let b = Self::empty().push(Box::new(RegionsPass));
        match opts.mode {
            CompileMode::Full => {
                let b = b.push(Box::new(LayeringPass { opts }));
                let b = if opts.compress_tape {
                    b.push(Box::new(ValueRangesPass))
                        .push(Box::new(TapeCompressPass))
                } else {
                    b
                };
                b.push(Box::new(StreamsPass { opts }))
                    .push(Box::new(SpadIndexPass))
            }
            CompileMode::AosOnly => b.push(Box::new(AosLayoutPass { opts })),
        }
    }

    /// The whole toolflow from source: `opt → ad → regions → layering →
    /// streams → spad-index`.
    pub fn full(options: CompileOptions, ad: AdOptions) -> Self {
        let opts = CompileOptions {
            mode: CompileMode::Full,
            ..options
        };
        let b = Self::empty()
            .push(Box::new(OptPass))
            .push(Box::new(AdPass { opts: ad }))
            .push(Box::new(RegionsPass))
            .push(Box::new(LayeringPass { opts }));
        let b = if opts.compress_tape {
            b.push(Box::new(ValueRangesPass))
                .push(Box::new(TapeCompressPass))
        } else {
            b
        };
        b.push(Box::new(StreamsPass { opts }))
            .push(Box::new(SpadIndexPass))
    }

    /// The Pass-1-only toolflow from source: `opt → ad → regions →
    /// aos-layout` (Fig 4.3's configuration).
    pub fn aos_only(options: CompileOptions, ad: AdOptions) -> Self {
        Self::empty()
            .push(Box::new(OptPass))
            .push(Box::new(AdPass { opts: ad }))
            .push(Box::new(RegionsPass))
            .push(Box::new(AosLayoutPass { opts: options }))
    }

    /// The Enzyme baseline from source: `opt → ad` — the gradient
    /// function with a cache-orchestrated tape, no Tapeflow passes.
    pub fn enzyme_baseline(ad: AdOptions) -> Self {
        Self::empty()
            .push(Box::new(OptPass))
            .push(Box::new(AdPass { opts: ad }))
    }

    /// Assembles a pipeline from registered pass names (the CLI's
    /// `--passes a,b,c`), validating the artifact graph: every pass's
    /// required artifacts must be produced earlier in the list (the run
    /// is assumed to start from a source function), and no pass may
    /// produce an artifact an earlier pass's conflict set forbids.
    /// `ad_opts` is required iff the list contains `ad`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPass`] for a name outside the registry;
    /// [`CoreError::MissingArtifact`] when a pass's requirement is not
    /// produced before it (e.g. `spad-index` without `streams`, or
    /// `tape-compress` without `layering`); [`CoreError::ArtifactConflict`]
    /// when a pass would clash with an artifact already produced (e.g.
    /// `aos-layout` after `layering`); [`CoreError::Pipeline`] for a
    /// duplicate name or missing AD options.
    pub fn from_names(
        names: &[&str],
        options: CompileOptions,
        ad_opts: Option<AdOptions>,
    ) -> Result<Self, CoreError> {
        let known: Vec<&str> = registered_passes().iter().map(|(n, _)| *n).collect();
        for n in names {
            if !known.contains(n) {
                return Err(CoreError::UnknownPass {
                    name: (*n).to_string(),
                });
            }
        }
        for n in &known {
            if names.iter().filter(|x| *x == n).count() > 1 {
                return Err(CoreError::Pipeline(format!("pass `{n}` listed twice")));
            }
        }
        if names.contains(&"ad") && ad_opts.is_none() {
            return Err(CoreError::Pipeline(
                "pass list contains `ad` but no AD options (wrt/loss) were supplied".into(),
            ));
        }
        let mut b = Self::empty();
        for n in names {
            b = b.push(match *n {
                "opt" => Box::new(OptPass) as Box<dyn Pass + Send + Sync>,
                "ad" => Box::new(AdPass {
                    opts: ad_opts.clone().expect("checked above"),
                }),
                "regions" => Box::new(RegionsPass),
                "layering" => Box::new(LayeringPass { opts: options }),
                "value-ranges" => Box::new(ValueRangesPass),
                "tape-compress" => Box::new(TapeCompressPass),
                "streams" => Box::new(StreamsPass { opts: options }),
                "spad-index" => Box::new(SpadIndexPass),
                "aos-layout" => Box::new(AosLayoutPass { opts: options }),
                _ => unreachable!("validated against the registry"),
            });
        }
        // Simulate the artifact graph over the assembled order, seeded
        // with the source function `run_source` provides.
        let mut avail = vec![Artifact::SourceIr];
        for pass in &b.passes {
            for &a in pass.requires() {
                if !avail.contains(&a) {
                    return Err(CoreError::MissingArtifact {
                        pass: pass.name(),
                        artifact: a,
                    });
                }
            }
            for &a in pass.conflicts() {
                if avail.contains(&a) {
                    return Err(CoreError::ArtifactConflict {
                        pass: pass.name(),
                        artifact: a,
                    });
                }
            }
            for &a in pass.produces() {
                if !avail.contains(&a) {
                    avail.push(a);
                }
            }
        }
        Ok(b)
    }

    /// Turns post-pass IR verification on or off (default: on in debug
    /// builds, off in release).
    #[must_use]
    pub fn with_verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Turns post-pass IR snapshot capture on or off (the CLI's
    /// `--print-after-all`).
    #[must_use]
    pub fn with_ir_capture(mut self, on: bool) -> Self {
        self.capture_ir = on;
        self
    }

    /// Turns post-pass static-analysis linting on (`Some(config)`) or off
    /// (`None`; the default) — the CLI's `--lint-after-all`, mirroring
    /// `--print-after-all`. The lints only *record* findings into each
    /// [`PassRecord`]; they never abort the pipeline or perturb the
    /// compiled output.
    #[must_use]
    pub fn with_lint(mut self, cfg: Option<LintConfig>) -> Self {
        self.lint = cfg;
        self
    }

    /// Names of the assembled passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline from a source function (clones it into the
    /// state).
    ///
    /// # Errors
    ///
    /// The first failing pass's [`CoreError`];
    /// [`CoreError::MissingArtifact`]/[`CoreError::ArtifactConflict`]
    /// when a pass's artifact contract does not hold at its turn; or
    /// [`CoreError::PassVerify`] when a post-pass verification fails.
    pub fn run_source(&self, func: &Function) -> Result<PipelineRun, CoreError> {
        let state = PipelineState {
            func: Some(func.clone()),
            ..PipelineState::default()
        };
        self.execute(state)
    }

    /// Runs the pipeline seeded with an existing gradient (what
    /// [`crate::compile`] does); the pass list must not contain `opt` or
    /// `ad`.
    ///
    /// # Errors
    ///
    /// See [`PipelineBuilder::run_source`].
    pub fn run_gradient(&self, grad: &Gradient) -> Result<PipelineRun, CoreError> {
        let state = PipelineState {
            gradient: Some(grad.clone()),
            ..PipelineState::default()
        };
        self.execute(state)
    }

    fn execute(&self, mut state: PipelineState) -> Result<PipelineRun, CoreError> {
        let mut records = Vec::with_capacity(self.passes.len());
        let mut ir_before = state.current_ir().map(IrCounts::of).unwrap_or_default();
        for pass in &self.passes {
            // Re-check the artifact contract against the live state (the
            // assembly-time simulation cannot know how the run was
            // seeded).
            for &a in pass.requires() {
                if !state.has(a) {
                    return Err(CoreError::MissingArtifact {
                        pass: pass.name(),
                        artifact: a,
                    });
                }
            }
            for &a in pass.conflicts() {
                if state.has(a) {
                    return Err(CoreError::ArtifactConflict {
                        pass: pass.name(),
                        artifact: a,
                    });
                }
            }
            let t0 = Instant::now();
            let outcome = pass.run(&mut state)?;
            let wall = t0.elapsed();
            let verified = if self.verify {
                match state.current_ir() {
                    Some(f) => {
                        verify::verify(f).map_err(|error| CoreError::PassVerify {
                            pass: pass.name(),
                            error,
                        })?;
                        // No pass may drop provenance. Once AD ran, the
                        // `source` back-references live in the source
                        // function's id space (known only when this run
                        // was source-seeded); before that the current IR
                        // is its own source level.
                        let source_bound = if state.gradient.is_some()
                            || state.streams.is_some()
                            || state.compiled.is_some()
                        {
                            state.func.as_ref().map(|sf| sf.insts().len())
                        } else {
                            None
                        };
                        verify::verify_provenance(f, source_bound).map_err(|error| {
                            CoreError::PassVerify {
                                pass: pass.name(),
                                error,
                            }
                        })?;
                        // Post-lowering, every tape/stream/scratchpad
                        // access must still know its region.
                        if state.streams.is_some() || state.compiled.is_some() {
                            verify::verify_provenance_regions(f).map_err(|error| {
                                CoreError::PassVerify {
                                    pass: pass.name(),
                                    error,
                                }
                            })?;
                        }
                        Some(true)
                    }
                    None => None,
                }
            } else {
                None
            };
            let snapshot = if self.capture_ir {
                state.current_ir().map(|f| pretty::pretty(f).to_string())
            } else {
                None
            };
            let lint = match &self.lint {
                Some(cfg) => state.current_ir().map(|f| lint::lint_function(f, cfg)),
                None => None,
            };
            let ir_after = state.current_ir().map(IrCounts::of).unwrap_or_default();
            records.push(PassRecord {
                name: pass.name(),
                description: pass.description(),
                wall,
                stats: state.stats(),
                ir_insts: ir_after.insts,
                ir_before,
                ir_after,
                verified,
                detail: outcome.detail,
                snapshot,
                lint,
            });
            ir_before = ir_after;
        }
        Ok(PipelineRun {
            state,
            report: PipelineReport { records },
        })
    }
}

// ---- reports ---------------------------------------------------------------

/// Coarse size counters of one IR view, captured before and after every
/// pass so reports can attribute growth or shrinkage (values, ops, tape
/// slots added/removed) to the pass that caused it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IrCounts {
    /// Instructions.
    pub insts: usize,
    /// SSA values.
    pub values: usize,
    /// Tape arrays declared.
    pub tape_arrays: usize,
    /// Total tape capacity in 8-byte slots across those arrays.
    pub tape_slots: u64,
}

impl IrCounts {
    /// Counts `func`.
    pub fn of(func: &Function) -> Self {
        IrCounts {
            insts: func.insts().len(),
            values: func.values().len(),
            tape_arrays: func.arrays_of_kind(ArrayKind::Tape).count(),
            tape_slots: func.bytes_of_kind(ArrayKind::Tape) / 8,
        }
    }
}

/// What the manager recorded about one executed pass.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// Registered pass name.
    pub name: &'static str,
    /// One-line pass description.
    pub description: &'static str,
    /// Wall-clock time of the pass itself (excludes verification and
    /// snapshotting).
    pub wall: Duration,
    /// Compile statistics after the pass (partial until a terminal
    /// lowering runs; see [`PipelineState::stats`]).
    pub stats: CompileStats,
    /// Instruction count of the current IR after the pass.
    pub ir_insts: usize,
    /// IR size counters before the pass ran (all-zero when no IR existed
    /// yet, e.g. ahead of `opt`/`ad` in a source-seeded run).
    pub ir_before: IrCounts,
    /// IR size counters after the pass ran.
    pub ir_after: IrCounts,
    /// `Some(true)` when post-pass verification ran and passed; `None`
    /// when verification was off or no IR existed yet. (A failure aborts
    /// the pipeline with [`CoreError::PassVerify`].)
    pub verified: Option<bool>,
    /// One-line pass-specific detail (counts, sizes).
    pub detail: String,
    /// Pretty-printed IR after the pass (only with IR capture).
    pub snapshot: Option<String>,
    /// Static-analysis findings on the IR after the pass (only with
    /// [`PipelineBuilder::with_lint`]; `None` when linting was off or no
    /// IR existed yet).
    pub lint: Option<Vec<Diagnostic>>,
}

impl PassRecord {
    /// Instructions added (positive) or removed (negative) by the pass.
    pub fn insts_delta(&self) -> i64 {
        self.ir_after.insts as i64 - self.ir_before.insts as i64
    }

    /// SSA values added or removed by the pass.
    pub fn values_delta(&self) -> i64 {
        self.ir_after.values as i64 - self.ir_before.values as i64
    }

    /// Tape slots (8 B each) added or removed by the pass.
    pub fn tape_slots_delta(&self) -> i64 {
        self.ir_after.tape_slots as i64 - self.ir_before.tape_slots as i64
    }
}

/// Per-pass wall time, statistics and snapshots for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// One record per executed pass, in run order.
    pub records: Vec<PassRecord>,
}

impl PipelineReport {
    /// Names of the executed passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.records.iter().map(|r| r.name).collect()
    }

    /// Total wall time across all passes.
    pub fn total_wall(&self) -> Duration {
        self.records.iter().map(|r| r.wall).sum()
    }

    /// An LLVM-`--time-passes`-style text table: per-pass wall time,
    /// instruction count, verification status and detail.
    pub fn render_timings(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "// === pass timing (wall clock) ===");
        let total = self.total_wall().as_secs_f64().max(1e-12);
        for r in &self.records {
            let ms = r.wall.as_secs_f64() * 1e3;
            let share = r.wall.as_secs_f64() / total * 100.0;
            let _ = writeln!(
                out,
                "//   {:<13} {:>9.3} ms ({:>5.1}%)  {:>6} insts  {}  {}",
                r.name,
                ms,
                share,
                r.ir_insts,
                match r.verified {
                    Some(true) => "verified",
                    _ => "        ",
                },
                r.detail
            );
        }
        let _ = writeln!(
            out,
            "//   {:<13} {:>9.3} ms",
            "total",
            self.total_wall().as_secs_f64() * 1e3
        );
        out
    }

    /// The captured IR snapshots with `--print-after-all`-style banners.
    /// Empty when the run captured no IR.
    pub fn render_snapshots(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let n = self.records.len();
        for (i, r) in self.records.iter().enumerate() {
            let Some(ir) = &r.snapshot else { continue };
            let _ = writeln!(
                out,
                "// ===== IR after pass {}/{}: {} ({}) =====",
                i + 1,
                n,
                r.name,
                r.description
            );
            out.push_str(ir);
        }
        out
    }

    /// The per-pass lint findings with `--lint-after-all`-style banners.
    /// Every linted pass gets a banner (like `--print-after-all` prints
    /// every pass's IR); tables follow only where there are findings.
    /// Empty when the run linted nothing.
    pub fn render_lint(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let n = self.records.len();
        for (i, r) in self.records.iter().enumerate() {
            let Some(diags) = &r.lint else { continue };
            let (errors, warnings) = lint::counts(diags);
            let _ = writeln!(
                out,
                "// ===== lint after pass {}/{}: {} ({} error(s), {} warning(s)) =====",
                i + 1,
                n,
                r.name,
                errors,
                warnings
            );
            out.push_str(&lint::render_table(diags));
        }
        out
    }
}

/// A completed pipeline execution: the final state plus the report.
#[derive(Debug)]
pub struct PipelineRun {
    /// Final pipeline state with every artifact the passes produced.
    pub state: PipelineState,
    /// Per-pass records.
    pub report: PipelineReport,
}

impl PipelineRun {
    /// The compiled program, consuming the run.
    ///
    /// # Errors
    ///
    /// [`CoreError::Pipeline`] when the pipeline had no terminal lowering
    /// pass (`spad-index` or `aos-layout`).
    pub fn into_compiled(self) -> Result<CompiledProgram, CoreError> {
        self.state.compiled.ok_or_else(|| {
            CoreError::Pipeline(
                "pipeline has no terminal lowering pass (`spad-index` or `aos-layout`)".into(),
            )
        })
    }
}
